// Quickstart: build a WRSN with the paper's Table II defaults, run a short
// simulation, and print the headline metrics.
//
//   ./quickstart [days]
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  // 1. Configure — SimConfig defaults reproduce Table II of the paper.
  SimConfig cfg = SimConfig::paper_defaults();
  cfg.sim_duration = days(argc > 1 ? std::atof(argv[1]) : 10.0);
  cfg.scheduler = "combined";                        // Section IV-D-2
  cfg.activation = ActivationPolicy::kRoundRobin;    // Section III-C
  cfg.energy_request_percentage = 0.6;               // the ERP knob (K)

  // 2. Run.
  World world(cfg);
  const MetricsReport r = world.run();

  // 3. Report.
  std::cout << "WRSN quickstart — " << cfg.num_sensors << " sensors, "
            << cfg.num_targets << " targets, " << cfg.num_rvs
            << " recharging vehicles, "
            << cfg.sim_duration.value() / 86400.0 << " simulated days\n\n"
            << "scheduler:             " << cfg.scheduler << '\n'
            << "activation policy:     " << to_string(cfg.activation) << '\n'
            << "energy request pct:    " << cfg.energy_request_percentage << "\n\n"
            << "RV traveling distance: " << r.rv_travel_distance.value() / 1e3
            << " km\n"
            << "RV traveling energy:   " << r.rv_travel_energy.value() / 1e6
            << " MJ\n"
            << "energy recharged:      " << r.energy_recharged.value() / 1e6
            << " MJ\n"
            << "objective score (2):   " << r.objective_score().value() / 1e6
            << " MJ\n"
            << "target coverage:       " << 100.0 * r.coverage_ratio << " %\n"
            << "nonfunctional sensors: " << r.nonfunctional_pct << " %\n"
            << "recharge requests:     " << r.recharge_requests << " ("
            << r.sensors_recharged << " served, mean latency "
            << r.avg_request_latency.value() / 60.0 << " min)\n"
            << "packets delivered:     " << r.packets_delivered << '\n';
  return 0;
}
