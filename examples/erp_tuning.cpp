// ERP tuning: find the largest Energy Request Percentage (K) that still
// keeps the target missing rate at its structural floor — the practical
// recipe Section V-B's trade-off figure implies.
//
//   ./erp_tuning [days] [max_extra_missing_pct]
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  const double horizon_days = argc > 1 ? std::atof(argv[1]) : 30.0;
  // How much missing rate above the K=0 baseline the operator tolerates.
  const double tolerance_pct = argc > 2 ? std::atof(argv[2]) : 0.25;

  ThreadPool pool;
  auto run_at = [&](double erp) {
    SimConfig cfg = SimConfig::paper_defaults();
    cfg.sim_duration = days(horizon_days);
    cfg.energy_request_percentage = erp;
    return run_mean(cfg, 2, &pool);
  };

  std::cout << "ERP tuning (" << horizon_days
            << " simulated days per point, tolerance +" << tolerance_pct
            << " pp missing rate over the K=0 baseline)\n\n";

  const MetricsReport baseline = run_at(0.0);
  const double floor_pct = 100.0 * baseline.missing_rate;

  Table t({"K (ERP)", "missing rate (%)", "travel (MJ)", "saving vs K=0 (%)",
           "acceptable"});
  t.set_precision(3);
  double best_k = 0.0, best_saving = 0.0;
  for (double k = 0.0; k <= 1.001; k += 0.1) {
    const MetricsReport r = k == 0.0 ? baseline : run_at(k);
    const double missing_pct = 100.0 * r.missing_rate;
    const double base_travel = baseline.rv_travel_energy.value();
    const double saving =
        base_travel > 0.0
            ? 100.0 * (base_travel - r.rv_travel_energy.value()) / base_travel
            : 0.0;
    const bool ok = missing_pct <= floor_pct + tolerance_pct;
    if (ok && saving > best_saving) {
      best_saving = saving;
      best_k = k;
    }
    t.add_row({k, missing_pct, r.rv_travel_energy.value() / 1e6, saving,
               std::string(ok ? "yes" : "no")});
  }
  t.print(std::cout);

  std::cout << "\nrecommended ERP: K = " << best_k << " (saves " << best_saving
            << " % of RV traveling energy while keeping the missing rate within "
            << tolerance_pct << " pp of the structural floor " << floor_pct
            << " %)\n"
            << "paper guidance: detection degrades once K exceeds ~0.6 "
               "(Fig. 5).\n";
  return 0;
}
