// Pre-deployment analysis: before committing sensors to the field, check
// density against Eq. (1), connectivity to the base station, hop depth and
// coverage degree across candidate deployment sizes.
//
//   ./network_analysis [field_side_m]
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "geom/coverage.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  const double side = argc > 1 ? std::atof(argv[1]) : 200.0;
  SimConfig base = SimConfig::paper_defaults();
  base.field_side = meters(side);

  const std::size_t n_min =
      min_sensors_for_coverage(side * side, base.sensing_range.value());
  std::cout << "Deployment analysis for a " << side << " m x " << side
            << " m field (d_s = " << base.sensing_range.value()
            << " m, d_c = " << base.comm_range.value() << " m)\n"
            << "Eq. (1) lattice minimum for full coverage: " << n_min
            << " sensors\n\n";

  Table t({"sensors", "avg degree", "isolated", "BS-reachable (%)",
           "avg hops", "avg route (m)", "coverage degree", "components"});
  t.set_precision(2);

  for (double factor : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    const auto n = static_cast<std::size_t>(static_cast<double>(n_min) * factor);
    SimConfig cfg = base;
    cfg.num_sensors = n;
    RngStreams streams(42);
    Xoshiro256 deploy = streams.stream("deployment");
    Xoshiro256 targets = streams.stream("target-placement");
    Network net(cfg, deploy, targets);
    const NetworkStats s = compute_stats(net);
    t.add_row({static_cast<long long>(n), s.avg_degree,
               static_cast<long long>(s.isolated_sensors),
               100.0 * static_cast<double>(s.reachable_sensors) /
                   static_cast<double>(n),
               s.avg_hops_to_base, s.avg_route_length_m, s.avg_coverage_degree,
               static_cast<long long>(s.connected_components)});
  }
  t.print(std::cout);

  std::cout << "\nreading the table: pick the smallest deployment with ~100%\n"
               "BS-reachability and a coverage degree comfortably above 1 —\n"
               "the redundancy that round-robin activation then converts into\n"
               "lifetime (Table II uses "
            << SimConfig{}.num_sensors << " sensors, ~3x the Eq. (1) bound).\n";
  return 0;
}
