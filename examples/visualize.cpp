// Renders SVG snapshots of a running simulation: the deployed field at t=0,
// mid-run (with depleted sensors and RVs out on tours), and at the end.
//
//   ./visualize [output_dir] [days]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/config.hpp"
#include "sim/svg.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const double horizon = argc > 2 ? std::atof(argv[2]) : 20.0;

  SimConfig cfg = SimConfig::paper_defaults();
  cfg.sim_duration = days(horizon);
  cfg.seed = 3141;

  World world(cfg);
  SvgOptions options;
  options.draw_cluster_links = true;
  options.draw_sensing_discs = true;

  const std::string start = out_dir + "/wrsn_t0.svg";
  save_svg(start, world, options);
  std::cout << "wrote " << start << " (fresh deployment, clusters formed)\n";

  world.run_until(days(horizon / 2.0));
  const std::string mid = out_dir + "/wrsn_mid.svg";
  save_svg(mid, world, options);
  std::cout << "wrote " << mid << " (t = " << horizon / 2.0
            << " d: batteries drained, RVs in the field)\n";

  world.run_until(cfg.sim_duration);
  const std::string end = out_dir + "/wrsn_end.svg";
  save_svg(end, world, options);
  std::cout << "wrote " << end << " (t = " << horizon << " d)\n";

  const MetricsReport r = world.report();
  std::cout << "\nfinal: coverage " << 100.0 * r.coverage_ratio << " %, "
            << r.sensors_recharged << " recharges, RVs traveled "
            << r.rv_travel_distance.value() / 1e3 << " km\n"
            << "open the SVGs in a browser; color encodes battery level,\n"
            << "ringed circles are active monitors, crosses are depleted nodes.\n";
  return 0;
}
