// Fleet planning: how many recharging vehicles does a deployment need, and
// which scheduling scheme should they run?
//
// Sweeps the fleet size for each scheduler and prints coverage, request
// latency and the recharging cost so an operator can pick the cheapest fleet
// meeting a coverage target.
//
//   ./fleet_planning [days]
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  const double horizon_days = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double coverage_target = 0.99;

  std::cout << "Fleet planning sweep (" << horizon_days
            << " simulated days per point, coverage target "
            << 100.0 * coverage_target << " %)\n\n";

  ThreadPool pool;
  Table t({"scheduler", "RVs", "coverage (%)", "nonfunc (%)",
           "mean latency (min)", "RV km", "cost (m/sensor)"});
  t.set_precision(2);

  struct Pick {
    std::string name;
    std::size_t rvs = 0;
    double cost = 0.0;
  };
  std::vector<Pick> picks;

  for (const std::string sched : {"greedy", "partition", "combined"}) {
    Pick pick{sched, 0, 0.0};
    for (std::size_t m = 1; m <= 5; ++m) {
      SimConfig cfg = SimConfig::paper_defaults();
      cfg.sim_duration = days(horizon_days);
      cfg.scheduler = sched;
      cfg.num_rvs = m;
      const MetricsReport r = run_mean(cfg, 2, &pool);
      t.add_row({sched, static_cast<long long>(m),
                 100.0 * r.coverage_ratio, r.nonfunctional_pct,
                 r.avg_request_latency.value() / 60.0,
                 r.rv_travel_distance.value() / 1e3,
                 r.recharging_cost_m_per_sensor()});
      if (pick.rvs == 0 && r.coverage_ratio >= coverage_target) {
        pick.rvs = m;
        pick.cost = r.recharging_cost_m_per_sensor();
      }
    }
    picks.push_back(pick);
  }
  t.print(std::cout);

  std::cout << "\nsmallest fleet meeting the coverage target:\n";
  for (const auto& p : picks) {
    if (p.rvs == 0) {
      std::cout << "  " << p.name << ": not met with <= 5 RVs\n";
    } else {
      std::cout << "  " << p.name << ": " << p.rvs << " RV(s) at "
                << p.cost << " m/sensor\n";
    }
  }
  return 0;
}
