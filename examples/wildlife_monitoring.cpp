// Wildlife monitoring scenario (the paper's motivating example: detecting
// the presence of rare animals with densely deployed sensors).
//
// A handful of animals roam a large reserve; sensors are dense enough that
// each animal is covered by several sensors, so round-robin activation plus
// ERC batching keeps the network alive with few recharging vehicles. The
// example prints a day-by-day trajectory so the dynamics are visible.
//
//   ./wildlife_monitoring [days]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "activity/redundancy.hpp"
#include "core/config.hpp"
#include "core/table.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  SimConfig cfg;
  cfg.num_sensors = 800;                 // dense deployment over a reserve
  cfg.num_targets = 8;                   // animals under observation
  cfg.num_rvs = 2;
  cfg.field_side = meters(300.0);
  cfg.comm_range = meters(18.0);
  cfg.sensing_range = meters(10.0);
  cfg.target_period = hours(6.0);        // rest period between walks
  cfg.target_motion = TargetMotion::kRandomWaypoint;  // animals walk, not jump
  cfg.target_speed = MeterPerSecond{0.3};
  cfg.sim_duration = days(argc > 1 ? std::atof(argv[1]) : 20.0);
  cfg.scheduler = "partition";  // reserve is large: confine RVs
  cfg.activation = ActivationPolicy::kRoundRobin;
  cfg.energy_request_percentage = 0.5;
  cfg.metrics_sample_period = days(1.0);
  cfg.seed = 20260706;

  World world(cfg);
  world.enable_time_series(true);

  // Pre-flight redundancy check: how much sensing overlap does the reserve
  // have for round-robin to convert into lifetime?
  {
    Xoshiro256 rng(1);
    const auto red = analyze_redundancy(world.network(), world.clusters(),
                                        /*max_k=*/4, /*field_samples=*/20000, rng);
    std::cout << "redundancy: animals covered by " << red.min_degree << ".."
              << red.max_degree << " sensors (mean "
              << red.mean_degree << "); field 1/2/3-coverage "
              << 100.0 * red.k_coverage[1] << "/"
              << 100.0 * red.k_coverage[2] << "/"
              << 100.0 * red.k_coverage[3]
              << " %; round-robin can idle "
              << 100.0 * red.rr_sleep_fraction
              << " % of clustered sensors at any instant\n\n";
  }

  const MetricsReport r = world.run();

  std::cout << "Wildlife monitoring: " << cfg.num_targets << " animals, "
            << cfg.num_sensors << " sensors over "
            << cfg.field_side.value() << " m x " << cfg.field_side.value()
            << " m, " << cfg.num_rvs << " RVs ("
            << cfg.scheduler << " scheduling)\n\n";

  Table t({"day", "alive sensors", "animals covered", "coverable",
           "pending requests", "RV km so far"});
  t.set_precision(1);
  for (const auto& p : world.time_series()) {
    t.add_row({p.t / 86400.0, static_cast<long long>(p.alive),
               static_cast<long long>(p.covered),
               static_cast<long long>(p.coverable),
               static_cast<long long>(p.pending_requests),
               p.rv_travel_distance / 1e3});
  }
  t.print(std::cout);

  std::cout << "\nsummary: coverage " << std::fixed << std::setprecision(2)
            << 100.0 * r.coverage_ratio << " %, missing rate "
            << 100.0 * r.missing_rate << " %, " << r.sensors_recharged
            << " recharges over " << r.rv_travel_distance.value() / 1e3
            << " km of RV travel\n"
            << "recharging cost: " << r.recharging_cost_m_per_sensor()
            << " m per operational sensor\n";
  return 0;
}
