// wrsn_trace — dump the discrete-event stream of a simulation as CSV
// (one row per processed event), for debugging schedules and for teaching
// material. Use short horizons: a 120-day run emits hundreds of thousands
// of events.
//
//   wrsn_trace [--days N] [--set KEY=VALUE]... [--out FILE]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/error.hpp"
#include "sim/world.hpp"

namespace {

const char* kind_name(wrsn::EventKind kind) {
  switch (kind) {
    case wrsn::EventKind::kSlotRotation: return "slot-rotation";
    case wrsn::EventKind::kTargetMove: return "target-move";
    case wrsn::EventKind::kSensorCrossing: return "sensor-crossing";
    case wrsn::EventKind::kRvArrival: return "rv-arrival";
    case wrsn::EventKind::kRvChargeDone: return "rv-charge-done";
    case wrsn::EventKind::kRvBaseChargeDone: return "rv-base-charge-done";
    case wrsn::EventKind::kMetricsSample: return "metrics-sample";
    case wrsn::EventKind::kSimEnd: return "sim-end";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace wrsn;
  SimConfig cfg = SimConfig::paper_defaults();
  cfg.sim_duration = days(1.0);
  std::string out_path;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto need_value = [&](std::size_t& i) -> const std::string& {
    WRSN_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "wrsn_trace [--days N] [--set KEY=VALUE]... [--out FILE]\n";
      return 0;
    }
    if (a == "--days") {
      config_set(cfg, "sim_days", need_value(i));
    } else if (a == "--set") {
      const std::string& kv = need_value(i);
      const auto eq = kv.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--set expects KEY=VALUE");
      config_set(cfg, kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--out") {
      out_path = need_value(i);
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      return 2;
    }
  }
  cfg.validate();

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    WRSN_REQUIRE(file.good(), "cannot open '" + out_path + "'");
  }
  std::ostream& out = file.is_open() ? static_cast<std::ostream&>(file) : std::cout;

  out << "t_seconds,t_hours,event,subject\n";
  std::size_t count = 0;
  World world(cfg);
  world.set_tracer([&](const World::TraceEvent& e) {
    out << e.time << ',' << e.time / 3600.0 << ',' << kind_name(e.kind) << ','
        << e.subject << '\n';
    ++count;
  });
  world.run();

  std::cerr << "traced " << count << " events over "
            << cfg.sim_duration.value() / 86400.0 << " simulated day(s)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "wrsn_trace: " << e.what() << '\n';
  return 1;
}
