// wrsn_trace — dump the discrete-event stream of a simulation (one record
// per processed event), for debugging schedules and for teaching material.
// Use short horizons: a 120-day run emits hundreds of thousands of events.
//
//   wrsn_trace [--days N] [--threads N] [--set KEY=VALUE]...
//              [--faults FILE|SPEC] [--out FILE] [--format csv|jsonl]
//              [--telemetry FILE] [--spans FILE] [--chrome-trace FILE]
//              [--flight-recorder N]
//
// --threads N is shorthand for --set threads=N (deterministic shard
// executor; the trace stream is byte-identical at any thread count).
//
// Formats (both carry the same fields; see obs/trace.hpp):
//   csv    t_seconds,t_hours,event,subject,epoch,queue_size   (default)
//   jsonl  schema-versioned JSON lines; line 1 is a meta record
//
// --telemetry FILE additionally writes the run's telemetry registry (event
// pop counts, stale discards, queue high-water mark, scheduler timings) as
// JSON, or Prometheus text exposition when FILE ends in ".prom".
// --spans / --chrome-trace write lifecycle spans (schema wrsn.spans v2 JSONL
// / Chrome trace-event JSON for Perfetto); --flight-recorder N keeps the last
// N events in memory and dumps them to stderr on assert failure or Ctrl-C.
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/error.hpp"
#include "net/routing.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/snapshot.hpp"
#include "sim/world.hpp"

namespace {
// --checkpoint-on-signal: SIGINT/SIGTERM request a stop at the next event
// boundary, where the world is quiescent and a snapshot is exact.
volatile std::sig_atomic_t g_stop_requested = 0;
extern "C" void checkpoint_signal_handler(int) { g_stop_requested = 1; }
}  // namespace

int main(int argc, char** argv) try {
  using namespace wrsn;
  SimConfig cfg = SimConfig::paper_defaults();
  cfg.sim_duration = days(1.0);
  std::string out_path, format = "csv", telemetry_path;
  std::string spans_path, chrome_path;
  std::string checkpoint_prefix, restore_path;
  double checkpoint_every = 0.0;
  bool checkpoint_on_signal = false;
  std::size_t flight_capacity = 0;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto need_value = [&](std::size_t& i) -> const std::string& {
    WRSN_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "wrsn_trace [--days N] [--threads N] [--set KEY=VALUE]...\n"
                   "           [--faults FILE|SPEC] [--out FILE] [--format csv|jsonl]\n"
                   "           [--telemetry FILE] [--spans FILE] [--chrome-trace FILE]\n"
                   "           [--flight-recorder N]\n"
                   "           [--checkpoint PREFIX] [--checkpoint-every S]\n"
                   "           [--checkpoint-on-signal] [--restore FILE]\n"
                   "           [--list-routers]\n"
                   "checkpoint flags behave as in wrsn_sim: snapshots are\n"
                   "PREFIX.NNNNNN.snap + PREFIX.manifest.jsonl; a signal stop\n"
                   "exits 75 and --restore continues byte-identically\n";
      return 0;
    }
    if (a == "--list-routers") {
      for (const std::string& name : routing_names()) std::cout << name << '\n';
      return 0;
    }
    if (a == "--days") {
      config_set(cfg, "sim_days", need_value(i));
    } else if (a == "--threads") {
      config_set(cfg, "threads", need_value(i));
    } else if (a == "--faults") {
      apply_fault_arg(cfg, need_value(i));
    } else if (a == "--set") {
      const std::string& kv = need_value(i);
      const auto eq = kv.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--set expects KEY=VALUE");
      config_set(cfg, kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--out") {
      out_path = need_value(i);
    } else if (a == "--format") {
      format = need_value(i);
      WRSN_REQUIRE(format == "csv" || format == "jsonl",
                   "--format must be csv or jsonl");
    } else if (a == "--telemetry") {
      telemetry_path = need_value(i);
    } else if (a == "--spans") {
      spans_path = need_value(i);
    } else if (a == "--chrome-trace") {
      chrome_path = need_value(i);
    } else if (a == "--flight-recorder") {
      flight_capacity = static_cast<std::size_t>(std::stoul(need_value(i)));
      WRSN_REQUIRE(flight_capacity > 0, "--flight-recorder must be positive");
    } else if (a == "--checkpoint") {
      checkpoint_prefix = need_value(i);
    } else if (a == "--checkpoint-every") {
      checkpoint_every = std::stod(need_value(i));
      WRSN_REQUIRE(checkpoint_every > 0.0, "--checkpoint-every must be positive");
    } else if (a == "--checkpoint-on-signal") {
      checkpoint_on_signal = true;
    } else if (a == "--restore") {
      restore_path = need_value(i);
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      return 2;
    }
  }
  cfg.validate();
  WRSN_REQUIRE(
      !checkpoint_prefix.empty() || (checkpoint_every <= 0.0 && !checkpoint_on_signal),
      "--checkpoint-every/--checkpoint-on-signal require --checkpoint PREFIX");

  // Restore rebuilds the world from the config embedded in the snapshot.
  std::unique_ptr<WorldSnapshot> restored;
  if (!restore_path.empty()) {
    restored = std::make_unique<WorldSnapshot>(load_snapshot_file(restore_path));
    cfg = config_from_text(restored->config_text);
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    WRSN_REQUIRE(file.good(), "cannot open '" + out_path + "'");
  }
  std::ostream& out = file.is_open() ? static_cast<std::ostream&>(file) : std::cout;

  std::unique_ptr<obs::TraceSink> sink;
  if (format == "jsonl") {
    sink = std::make_unique<obs::JsonlTraceSink>(out);
  } else {
    sink = std::make_unique<obs::CsvTraceSink>(out);
  }

  std::ofstream spans_file, chrome_file;
  std::unique_ptr<obs::JsonlSpanSink> spans_sink;
  std::unique_ptr<obs::ChromeTraceSink> chrome_sink;
  std::unique_ptr<obs::SpanLog> span_log;
  if (!spans_path.empty()) {
    spans_file.open(spans_path);
    WRSN_REQUIRE(spans_file.good(), "cannot open '" + spans_path + "'");
    spans_sink = std::make_unique<obs::JsonlSpanSink>(spans_file);
  }
  if (!chrome_path.empty()) {
    chrome_file.open(chrome_path);
    WRSN_REQUIRE(chrome_file.good(), "cannot open '" + chrome_path + "'");
    chrome_sink = std::make_unique<obs::ChromeTraceSink>(chrome_file);
  }
  if (spans_sink != nullptr || chrome_sink != nullptr) {
    span_log = std::make_unique<obs::SpanLog>(spans_sink.get(), chrome_sink.get());
  }

  // A restored run continues the snapshot's span numbering so stitched span
  // files stay consistent across the interruption.
  if (restored != nullptr && span_log != nullptr && !restored->span_state.empty()) {
    BinReader span_reader(restored->span_state);
    span_log->deserialize(span_reader);
    span_reader.expect_end();
  }

  obs::TelemetryRegistry registry;
  if (!telemetry_path.empty()) obs::require_writable(telemetry_path);
  std::size_t count = 0;
  auto world_ptr = restored != nullptr ? std::make_unique<World>(*restored)
                                       : std::make_unique<World>(cfg);
  World& world = *world_ptr;
  world.set_trace_sink(sink.get());
  if (!telemetry_path.empty()) world.set_telemetry(&registry);
  world.set_span_log(span_log.get());
  std::unique_ptr<obs::FlightRecorder> flight;
  if (flight_capacity > 0) {
    flight = std::make_unique<obs::FlightRecorder>(flight_capacity);
    flight->set_label("wrsn_trace seed " + std::to_string(cfg.seed));
    flight->set_context_provider([&world] { return to_json(world.report()); });
    world.set_flight_recorder(flight.get());
    obs::FlightRecorder::arm_failure_hook();
    // With --checkpoint-on-signal this tool's own handler owns the signals.
    if (!checkpoint_on_signal) obs::FlightRecorder::arm_signal_handlers();
  }
  std::unique_ptr<CheckpointWriter> checkpointer;
  if (!checkpoint_prefix.empty()) {
    checkpointer = std::make_unique<CheckpointWriter>(checkpoint_prefix);
    if (checkpoint_on_signal) {
      std::signal(SIGINT, checkpoint_signal_handler);
      std::signal(SIGTERM, checkpoint_signal_handler);
    }
    double next_checkpoint =
        checkpoint_every > 0.0 ? checkpoint_every : cfg.sim_duration.value() * 2.0;
    world.set_checkpoint_hook([&, next_checkpoint](const World& w) mutable {
      if (checkpoint_on_signal && g_stop_requested != 0) return true;
      if (checkpoint_every > 0.0 && w.now().value() >= next_checkpoint) {
        checkpointer->save(w, /*terminal=*/false);
        while (next_checkpoint <= w.now().value()) next_checkpoint += checkpoint_every;
      }
      return false;
    });
  }
  world.set_tracer([&](const World::TraceEvent&) { ++count; });
  world.run();
  if (!world.finished()) {
    // Signal stop at a quiescent boundary: terminal snapshot + flight dump,
    // then the distinctive "stopped but resumable" exit code 75.
    sink->finish();
    const std::string snap_path = checkpointer->save(world, /*terminal=*/true);
    obs::FlightRecorder::dump_all("checkpoint-signal");
    std::cerr << "wrsn_trace: stopped by signal at t=" << world.now().value()
              << "s after " << world.events_processed()
              << " events; snapshot saved to " << snap_path
              << " (resume with --restore)\n";
    return 75;
  }
  sink->finish();
  if (span_log != nullptr) span_log->finish(world.now().value());
  if (!spans_path.empty()) std::cerr << "wrote spans to " << spans_path << '\n';
  if (!chrome_path.empty()) {
    std::cerr << "wrote Chrome trace to " << chrome_path << '\n';
  }

  if (!telemetry_path.empty()) {
    obs::write_registry_file(telemetry_path, registry);
    std::cerr << "wrote telemetry to " << telemetry_path << '\n';
  }
  std::cerr << "traced " << count << " events over "
            << cfg.sim_duration.value() / 86400.0 << " simulated day(s)\n";
  return 0;
} catch (const std::exception& e) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_trace: " << e.what() << '\n';
  return 1;
} catch (...) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_trace: unknown error\n";
  return 1;
}
