// wrsn_trace — dump the discrete-event stream of a simulation (one record
// per processed event), for debugging schedules and for teaching material.
// Use short horizons: a 120-day run emits hundreds of thousands of events.
//
//   wrsn_trace [--days N] [--set KEY=VALUE]... [--faults FILE|SPEC]
//              [--out FILE] [--format csv|jsonl] [--telemetry FILE]
//
// Formats (both carry the same fields; see obs/trace.hpp):
//   csv    t_seconds,t_hours,event,subject,epoch,queue_size   (default)
//   jsonl  schema-versioned JSON lines; line 1 is a meta record
//
// --telemetry FILE additionally writes the run's telemetry registry (event
// pop counts, stale discards, queue high-water mark, scheduler timings) as
// JSON, or Prometheus text exposition when FILE ends in ".prom".
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/error.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) try {
  using namespace wrsn;
  SimConfig cfg = SimConfig::paper_defaults();
  cfg.sim_duration = days(1.0);
  std::string out_path, format = "csv", telemetry_path;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto need_value = [&](std::size_t& i) -> const std::string& {
    WRSN_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "wrsn_trace [--days N] [--set KEY=VALUE]... [--faults FILE|SPEC]\n"
                   "           [--out FILE] [--format csv|jsonl] [--telemetry FILE]\n";
      return 0;
    }
    if (a == "--days") {
      config_set(cfg, "sim_days", need_value(i));
    } else if (a == "--faults") {
      apply_fault_arg(cfg, need_value(i));
    } else if (a == "--set") {
      const std::string& kv = need_value(i);
      const auto eq = kv.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--set expects KEY=VALUE");
      config_set(cfg, kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--out") {
      out_path = need_value(i);
    } else if (a == "--format") {
      format = need_value(i);
      WRSN_REQUIRE(format == "csv" || format == "jsonl",
                   "--format must be csv or jsonl");
    } else if (a == "--telemetry") {
      telemetry_path = need_value(i);
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      return 2;
    }
  }
  cfg.validate();

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    WRSN_REQUIRE(file.good(), "cannot open '" + out_path + "'");
  }
  std::ostream& out = file.is_open() ? static_cast<std::ostream&>(file) : std::cout;

  std::unique_ptr<obs::TraceSink> sink;
  if (format == "jsonl") {
    sink = std::make_unique<obs::JsonlTraceSink>(out);
  } else {
    sink = std::make_unique<obs::CsvTraceSink>(out);
  }

  obs::TelemetryRegistry registry;
  if (!telemetry_path.empty()) obs::require_writable(telemetry_path);
  std::size_t count = 0;
  World world(cfg);
  world.set_trace_sink(sink.get());
  if (!telemetry_path.empty()) world.set_telemetry(&registry);
  world.set_tracer([&](const World::TraceEvent&) { ++count; });
  world.run();
  sink->finish();

  if (!telemetry_path.empty()) {
    obs::write_registry_file(telemetry_path, registry);
    std::cerr << "wrote telemetry to " << telemetry_path << '\n';
  }
  std::cerr << "traced " << count << " events over "
            << cfg.sim_duration.value() / 86400.0 << " simulated day(s)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "wrsn_trace: " << e.what() << '\n';
  return 1;
} catch (...) {
  std::cerr << "wrsn_trace: unknown error\n";
  return 1;
}
