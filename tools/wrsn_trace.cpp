// wrsn_trace — dump the discrete-event stream of a simulation (one record
// per processed event), for debugging schedules and for teaching material.
// Use short horizons: a 120-day run emits hundreds of thousands of events.
//
//   wrsn_trace [--days N] [--threads N] [--set KEY=VALUE]...
//              [--faults FILE|SPEC] [--out FILE] [--format csv|jsonl]
//              [--telemetry FILE] [--spans FILE] [--chrome-trace FILE]
//              [--flight-recorder N]
//
// --threads N is shorthand for --set threads=N (deterministic shard
// executor; the trace stream is byte-identical at any thread count).
//
// Formats (both carry the same fields; see obs/trace.hpp):
//   csv    t_seconds,t_hours,event,subject,epoch,queue_size   (default)
//   jsonl  schema-versioned JSON lines; line 1 is a meta record
//
// --telemetry FILE additionally writes the run's telemetry registry (event
// pop counts, stale discards, queue high-water mark, scheduler timings) as
// JSON, or Prometheus text exposition when FILE ends in ".prom".
// --spans / --chrome-trace write lifecycle spans (schema wrsn.spans v2 JSONL
// / Chrome trace-event JSON for Perfetto); --flight-recorder N keeps the last
// N events in memory and dumps them to stderr on assert failure or Ctrl-C.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/error.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) try {
  using namespace wrsn;
  SimConfig cfg = SimConfig::paper_defaults();
  cfg.sim_duration = days(1.0);
  std::string out_path, format = "csv", telemetry_path;
  std::string spans_path, chrome_path;
  std::size_t flight_capacity = 0;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto need_value = [&](std::size_t& i) -> const std::string& {
    WRSN_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "wrsn_trace [--days N] [--threads N] [--set KEY=VALUE]...\n"
                   "           [--faults FILE|SPEC] [--out FILE] [--format csv|jsonl]\n"
                   "           [--telemetry FILE] [--spans FILE] [--chrome-trace FILE]\n"
                   "           [--flight-recorder N]\n";
      return 0;
    }
    if (a == "--days") {
      config_set(cfg, "sim_days", need_value(i));
    } else if (a == "--threads") {
      config_set(cfg, "threads", need_value(i));
    } else if (a == "--faults") {
      apply_fault_arg(cfg, need_value(i));
    } else if (a == "--set") {
      const std::string& kv = need_value(i);
      const auto eq = kv.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--set expects KEY=VALUE");
      config_set(cfg, kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--out") {
      out_path = need_value(i);
    } else if (a == "--format") {
      format = need_value(i);
      WRSN_REQUIRE(format == "csv" || format == "jsonl",
                   "--format must be csv or jsonl");
    } else if (a == "--telemetry") {
      telemetry_path = need_value(i);
    } else if (a == "--spans") {
      spans_path = need_value(i);
    } else if (a == "--chrome-trace") {
      chrome_path = need_value(i);
    } else if (a == "--flight-recorder") {
      flight_capacity = static_cast<std::size_t>(std::stoul(need_value(i)));
      WRSN_REQUIRE(flight_capacity > 0, "--flight-recorder must be positive");
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      return 2;
    }
  }
  cfg.validate();

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    WRSN_REQUIRE(file.good(), "cannot open '" + out_path + "'");
  }
  std::ostream& out = file.is_open() ? static_cast<std::ostream&>(file) : std::cout;

  std::unique_ptr<obs::TraceSink> sink;
  if (format == "jsonl") {
    sink = std::make_unique<obs::JsonlTraceSink>(out);
  } else {
    sink = std::make_unique<obs::CsvTraceSink>(out);
  }

  std::ofstream spans_file, chrome_file;
  std::unique_ptr<obs::JsonlSpanSink> spans_sink;
  std::unique_ptr<obs::ChromeTraceSink> chrome_sink;
  std::unique_ptr<obs::SpanLog> span_log;
  if (!spans_path.empty()) {
    spans_file.open(spans_path);
    WRSN_REQUIRE(spans_file.good(), "cannot open '" + spans_path + "'");
    spans_sink = std::make_unique<obs::JsonlSpanSink>(spans_file);
  }
  if (!chrome_path.empty()) {
    chrome_file.open(chrome_path);
    WRSN_REQUIRE(chrome_file.good(), "cannot open '" + chrome_path + "'");
    chrome_sink = std::make_unique<obs::ChromeTraceSink>(chrome_file);
  }
  if (spans_sink != nullptr || chrome_sink != nullptr) {
    span_log = std::make_unique<obs::SpanLog>(spans_sink.get(), chrome_sink.get());
  }

  obs::TelemetryRegistry registry;
  if (!telemetry_path.empty()) obs::require_writable(telemetry_path);
  std::size_t count = 0;
  World world(cfg);
  world.set_trace_sink(sink.get());
  if (!telemetry_path.empty()) world.set_telemetry(&registry);
  world.set_span_log(span_log.get());
  std::unique_ptr<obs::FlightRecorder> flight;
  if (flight_capacity > 0) {
    flight = std::make_unique<obs::FlightRecorder>(flight_capacity);
    flight->set_label("wrsn_trace seed " + std::to_string(cfg.seed));
    flight->set_context_provider([&world] { return to_json(world.report()); });
    world.set_flight_recorder(flight.get());
    obs::FlightRecorder::arm_failure_hook();
    obs::FlightRecorder::arm_signal_handlers();
  }
  world.set_tracer([&](const World::TraceEvent&) { ++count; });
  world.run();
  sink->finish();
  if (span_log != nullptr) span_log->finish(world.now().value());
  if (!spans_path.empty()) std::cerr << "wrote spans to " << spans_path << '\n';
  if (!chrome_path.empty()) {
    std::cerr << "wrote Chrome trace to " << chrome_path << '\n';
  }

  if (!telemetry_path.empty()) {
    obs::write_registry_file(telemetry_path, registry);
    std::cerr << "wrote telemetry to " << telemetry_path << '\n';
  }
  std::cerr << "traced " << count << " events over "
            << cfg.sim_duration.value() / 86400.0 << " simulated day(s)\n";
  return 0;
} catch (const std::exception& e) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_trace: " << e.what() << '\n';
  return 1;
} catch (...) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_trace: unknown error\n";
  return 1;
}
