// wrsn_sweep — cross-product experiment driver.
//
// Sweeps any set of config keys over value lists, runs the requested number
// of replicas per grid point, and writes one CSV row per point with means
// and 95% CIs for the headline metrics. This is the generic engine behind
// "reproduce figure X with different parameters".
//
//   wrsn_sweep --sweep KEY=V1,V2,... [--sweep KEY=...]...
//              [--config FILE] [--set KEY=VALUE]... [--days N] [--seeds N]
//              [--threads N] [--faults FILE|SPEC] [--csv FILE]
//              [--telemetry FILE] [--spans PREFIX] [--chrome-trace PREFIX]
//              [--flight-recorder N]
//
// --threads N (or the `threads` config key / WRSN_THREADS env) is the TOTAL
// thread budget, split between outer replica workers and inner per-replica
// shard threads so that outer x inner <= N: the sweep first spends the
// budget on whole replicas (outer = min(N, points x seeds)) and gives any
// leftover factor to each replica's deterministic shard executor
// (inner = N / outer). Reports are byte-identical for any split. With no
// budget given, the historical default applies: one hardware thread per
// replica worker, serial replicas.
//
// --telemetry FILE aggregates telemetry (event-loop counters, scheduler
// timing histograms) over every replica of every grid point and writes it
// as JSON (Prometheus text when FILE ends in .prom).
//
// --spans / --chrome-trace take a filename PREFIX, not a single file: every
// replica writes its own PREFIX.point<P>.rep<R>.jsonl / .json (replicas run
// concurrently, so they cannot share a sink). --flight-recorder N attaches a
// per-replica recorder of the last N events, labelled point/rep, dumped to
// stderr on assert failure or Ctrl-C.
//
// Example (Fig. 6 grid):
//   wrsn_sweep --sweep scheduler=greedy,partition,combined
//              --sweep energy_request_percentage=0,0.2,0.4,0.6,0.8,1
//              --days 120 --seeds 3 --csv fig6.csv
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config_io.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "obs/telemetry.hpp"
#include "sim/runner.hpp"

namespace {

using namespace wrsn;

struct Sweep {
  std::string key;
  std::vector<std::string> values;
};

struct Metric {
  const char* name;
  double (*get)(const MetricsReport&);
};

const Metric kMetrics[] = {
    {"travel_km",
     [](const MetricsReport& r) { return r.rv_travel_distance.value() / 1e3; }},
    {"travel_mj",
     [](const MetricsReport& r) { return r.rv_travel_energy.value() / 1e6; }},
    {"recharged_mj",
     [](const MetricsReport& r) { return r.energy_recharged.value() / 1e6; }},
    {"objective_mj",
     [](const MetricsReport& r) { return r.objective_score().value() / 1e6; }},
    {"coverage_pct",
     [](const MetricsReport& r) { return 100.0 * r.coverage_ratio; }},
    {"nonfunctional_pct",
     [](const MetricsReport& r) { return r.nonfunctional_pct; }},
    {"cost_m_per_sensor",
     [](const MetricsReport& r) { return r.recharging_cost_m_per_sensor(); }},
    {"latency_min",
     [](const MetricsReport& r) { return r.avg_request_latency.value() / 60.0; }},
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  SimConfig base = SimConfig::paper_defaults();
  std::vector<Sweep> sweeps;
  std::size_t seeds = 2;
  std::string csv_path, telemetry_path, spans_prefix, chrome_prefix;
  std::size_t flight_capacity = 0;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto need_value = [&](std::size_t& i) -> const std::string& {
    WRSN_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "see the header of tools/wrsn_sweep.cpp for usage\n"
                   "`wrsn_sim --list` prints every enum-like knob as a\n"
                   "ready-made --sweep KEY=V1,V2,... line\n";
      return 0;
    }
    if (a == "--sweep") {
      const std::string& spec = need_value(i);
      const auto eq = spec.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--sweep expects KEY=V1,V2,...");
      Sweep sweep;
      sweep.key = spec.substr(0, eq);
      sweep.values = split(spec.substr(eq + 1), ',');
      WRSN_REQUIRE(!sweep.values.empty(), "--sweep needs at least one value");
      sweeps.push_back(std::move(sweep));
    } else if (a == "--config") {
      base = load_config(need_value(i), base);
    } else if (a == "--set") {
      const std::string& kv = need_value(i);
      const auto eq = kv.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--set expects KEY=VALUE");
      config_set(base, kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--days") {
      config_set(base, "sim_days", need_value(i));
    } else if (a == "--threads") {
      config_set(base, "threads", need_value(i));
    } else if (a == "--faults") {
      apply_fault_arg(base, need_value(i));
    } else if (a == "--seeds") {
      seeds = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (a == "--csv") {
      csv_path = need_value(i);
    } else if (a == "--telemetry") {
      telemetry_path = need_value(i);
    } else if (a == "--spans") {
      spans_prefix = need_value(i);
    } else if (a == "--chrome-trace") {
      chrome_prefix = need_value(i);
    } else if (a == "--flight-recorder") {
      flight_capacity = static_cast<std::size_t>(std::stoul(need_value(i)));
      WRSN_REQUIRE(flight_capacity > 0, "--flight-recorder must be positive");
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      return 2;
    }
  }
  WRSN_REQUIRE(!sweeps.empty(), "at least one --sweep is required");
  WRSN_REQUIRE(seeds > 0, "--seeds must be positive");

  std::size_t total_points = 1;
  for (const Sweep& s : sweeps) total_points *= s.values.size();
  std::cout << "sweeping " << total_points << " grid point(s) x " << seeds
            << " replica(s), " << base.sim_duration.value() / 86400.0
            << " simulated days each\n";

  std::ofstream csv;
  if (!csv_path.empty()) {
    csv.open(csv_path);
    WRSN_REQUIRE(csv.good(), "cannot open '" + csv_path + "'");
  }
  std::ostream& out = csv.is_open() ? static_cast<std::ostream&>(csv) : std::cout;

  // Header.
  for (const Sweep& s : sweeps) out << s.key << ',';
  for (std::size_t m = 0; m < std::size(kMetrics); ++m) {
    out << kMetrics[m].name << ',' << kMetrics[m].name << "_ci95"
        << (m + 1 < std::size(kMetrics) ? "," : "\n");
  }

  obs::TelemetryRegistry telemetry;
  obs::TelemetryRegistry* telemetry_ptr =
      telemetry_path.empty() ? nullptr : &telemetry;
  if (telemetry_ptr != nullptr) obs::require_writable(telemetry_path);

  // Materialize the grid up front (mixed-radix counter over the sweeps), so
  // the (point x replica) product flattens into one task list and a single
  // parallel_for keeps every worker busy across point boundaries instead of
  // draining the pool once per point.
  std::vector<SimConfig> point_cfgs;
  std::vector<std::vector<std::string>> point_values;
  point_cfgs.reserve(total_points);
  point_values.reserve(total_points);
  std::vector<std::size_t> idx(sweeps.size(), 0);
  for (std::size_t point = 0; point < total_points; ++point) {
    SimConfig cfg = base;
    std::vector<std::string> values;
    values.reserve(sweeps.size());
    for (std::size_t k = 0; k < sweeps.size(); ++k) {
      config_set(cfg, sweeps[k].key, sweeps[k].values[idx[k]]);
      values.push_back(sweeps[k].values[idx[k]]);
    }
    cfg.validate();
    point_cfgs.push_back(std::move(cfg));
    point_values.push_back(std::move(values));
    for (std::size_t k = sweeps.size(); k-- > 0;) {
      if (++idx[k] < sweeps[k].values.size()) break;
      idx[k] = 0;
    }
  }

  const std::size_t total_tasks = total_points * seeds;

  // Thread-budget split (see file header): outer replica workers x inner
  // per-replica shard threads <= budget. The budget comes from the single
  // `threads` knob (CLI / config / WRSN_THREADS); when nobody set it, keep
  // the historical default of hardware-concurrency replica workers with
  // serial replicas.
  const bool budget_given =
      base.threads != 0 || std::getenv("WRSN_THREADS") != nullptr;
  const std::size_t budget =
      budget_given ? resolve_threads(base.threads)
                   : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t outer = std::max<std::size_t>(std::min(budget, total_tasks), 1);
  const std::size_t inner = budget_given ? std::max<std::size_t>(budget / outer, 1) : 1;
  for (SimConfig& cfg : point_cfgs) cfg.threads = inner;
  if (budget_given) {
    std::cout << "thread budget " << budget << ": " << outer
              << " replica worker(s) x " << inner << " shard thread(s)\n";
  }
  std::vector<MetricsReport> reports(total_tasks);
  // Replica-private registries, merged in task order after the parallel
  // phase so the aggregate is independent of completion order.
  std::vector<obs::TelemetryRegistry> local_telemetry(
      telemetry_ptr != nullptr ? total_tasks : 0);

  // Rows stream out in point order as soon as every replica of a point has
  // finished, each flushed immediately, so partial results survive an
  // interrupted sweep.
  std::mutex write_mutex;
  std::vector<std::size_t> remaining(total_points, seeds);
  std::size_t next_write = 0;
  // Progress/ETA bookkeeping: replicas completed so far (updated under the
  // write mutex) against the wall clock since the sweep started. The ETA is
  // a straight linear extrapolation — good enough to answer "lunch or
  // overnight?" for a homogeneous grid.
  const auto sweep_began = std::chrono::steady_clock::now();
  std::size_t tasks_done = 0;
  auto format_eta = [](double s) {
    std::ostringstream os;
    if (s >= 3600.0) {
      os << s / 3600.0 << 'h';
    } else if (s >= 60.0) {
      os << s / 60.0 << 'm';
    } else {
      os << s << 's';
    }
    return os.str();
  };
  auto write_row = [&](std::size_t point) {
    for (const std::string& v : point_values[point]) out << v << ',';
    for (std::size_t m = 0; m < std::size(kMetrics); ++m) {
      RunningStats stats;
      for (std::size_t i = 0; i < seeds; ++i) {
        stats.add(kMetrics[m].get(reports[point * seeds + i]));
      }
      out << stats.mean() << ',' << stats.ci95_halfwidth()
          << (m + 1 < std::size(kMetrics) ? "," : "\n");
    }
    out.flush();
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - sweep_began)
                               .count();
    std::cerr << "point " << point + 1 << '/' << total_points << " done ("
              << tasks_done << '/' << total_tasks << " replicas";
    if (tasks_done > 0 && tasks_done < total_tasks) {
      const double eta =
          elapsed * static_cast<double>(total_tasks - tasks_done) /
          static_cast<double>(tasks_done);
      std::cerr << ", ETA " << format_eta(eta);
    }
    std::cerr << ")\n";
  };

  if (flight_capacity > 0) {
    obs::FlightRecorder::arm_failure_hook();
    obs::FlightRecorder::arm_signal_handlers();
  }

  ThreadPool pool(outer);
  pool.parallel_for(total_tasks, [&](std::size_t task) {
    const std::size_t point = task / seeds;
    const std::size_t replica = task % seeds;
    SimConfig cfg = point_cfgs[point];
    // Same per-replica seed derivation as run_replicas, so the flattened
    // grid reproduces the sequential driver's reports byte for byte.
    cfg.seed = point_cfgs[point].seed + replica;
    // Replicas run concurrently, so span sinks cannot be shared: each task
    // gets its own PREFIX.point<P>.rep<R> file pair and its own recorder.
    const std::string tag =
        ".point" + std::to_string(point) + ".rep" + std::to_string(replica);
    std::ofstream spans_file, chrome_file;
    std::unique_ptr<obs::JsonlSpanSink> spans_sink;
    std::unique_ptr<obs::ChromeTraceSink> chrome_sink;
    std::unique_ptr<obs::SpanLog> span_log;
    std::unique_ptr<obs::FlightRecorder> flight;
    if (!spans_prefix.empty()) {
      const std::string path = spans_prefix + tag + ".jsonl";
      spans_file.open(path);
      WRSN_REQUIRE(spans_file.good(), "cannot open '" + path + "'");
      spans_sink = std::make_unique<obs::JsonlSpanSink>(spans_file);
    }
    if (!chrome_prefix.empty()) {
      const std::string path = chrome_prefix + tag + ".json";
      chrome_file.open(path);
      WRSN_REQUIRE(chrome_file.good(), "cannot open '" + path + "'");
      chrome_sink = std::make_unique<obs::ChromeTraceSink>(chrome_file);
    }
    if (spans_sink != nullptr || chrome_sink != nullptr) {
      span_log =
          std::make_unique<obs::SpanLog>(spans_sink.get(), chrome_sink.get());
    }
    if (flight_capacity > 0) {
      flight = std::make_unique<obs::FlightRecorder>(flight_capacity);
      flight->set_label("wrsn_sweep" + tag + " seed " + std::to_string(cfg.seed));
    }
    ReplicaInstruments instruments;
    instruments.telemetry =
        telemetry_ptr != nullptr ? &local_telemetry[task] : nullptr;
    instruments.spans = span_log.get();
    instruments.flight = flight.get();
    reports[task] = run_replica(cfg, instruments);
    if (span_log != nullptr) span_log->finish(point_cfgs[point].sim_duration.value());
    const std::lock_guard lock(write_mutex);
    ++tasks_done;
    if (--remaining[point] == 0) {
      while (next_write < total_points && remaining[next_write] == 0) {
        write_row(next_write);
        ++next_write;
      }
    }
  });
  if (telemetry_ptr != nullptr) {
    for (const obs::TelemetryRegistry& local : local_telemetry) {
      telemetry.merge_from(local);
    }
  }
  if (csv.is_open()) {
    std::cout << "\nwrote " << total_points << " row(s) to " << csv_path << '\n';
  }
  if (!telemetry_path.empty()) {
    obs::write_registry_file(telemetry_path, telemetry);
    std::cout << "wrote telemetry to " << telemetry_path << '\n';
  }
  return 0;
} catch (const std::exception& e) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_sweep: " << e.what() << '\n';
  return 1;
} catch (...) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_sweep: unknown error\n";
  return 1;
}
