// wrsn_sweep — cross-product experiment driver.
//
// Sweeps any set of config keys over value lists, runs the requested number
// of replicas per grid point, and writes one CSV row per point with means
// and 95% CIs for the headline metrics. This is the generic engine behind
// "reproduce figure X with different parameters".
//
//   wrsn_sweep --sweep KEY=V1,V2,... [--sweep KEY=...]...
//              [--config FILE] [--set KEY=VALUE]... [--days N] [--seeds N]
//              [--threads N] [--faults FILE|SPEC] [--csv FILE]
//              [--telemetry FILE] [--spans PREFIX] [--chrome-trace PREFIX]
//              [--flight-recorder N]
//              [--journal DIR] [--resume DIR]
//              [--watchdog-s S] [--retries N] [--retry-backoff-ms MS]
//              [--inject-fail POINT,REPLICA] [--list-routers]
//
// --threads N (or the `threads` config key / WRSN_THREADS env) is the TOTAL
// thread budget, split between outer replica workers and inner per-replica
// shard threads so that outer x inner <= N: the sweep first spends the
// budget on whole replicas (outer = min(N, points x seeds)) and gives any
// leftover factor to each replica's deterministic shard executor
// (inner = N / outer). Reports are byte-identical for any split. With no
// budget given, the historical default applies: one hardware thread per
// replica worker, serial replicas.
//
// --telemetry FILE aggregates telemetry (event-loop counters, scheduler
// timing histograms) over every replica of every grid point and writes it
// as JSON (Prometheus text when FILE ends in .prom).
//
// --spans / --chrome-trace take a filename PREFIX, not a single file: every
// replica writes its own PREFIX.point<P>.rep<R>.jsonl / .json (replicas run
// concurrently, so they cannot share a sink). --flight-recorder N attaches a
// per-replica recorder of the last N events, labelled point/rep, dumped to
// stderr on assert failure or Ctrl-C.
//
// Crash safety. Every output file (CSV, telemetry, per-replica span/chrome
// files) is written to a temp name and atomically renamed into place, so an
// interrupted sweep never leaves a truncated file under a final name.
// --journal DIR additionally records each finished (point, replica) cell in
// an fsync'd append-only journal (DIR/journal.jsonl, schema
// wrsn.sweep-journal, validated by wrsn_jsonl_check) next to a manifest
// (DIR/manifest.json) hashing the config x grid; after a crash or kill,
//   wrsn_sweep ... --resume DIR
// re-reads the journal, skips every finished cell, and produces output
// byte-identical to an uninterrupted sweep. Cells that quarantined (below)
// are not journaled, so a resume retries them.
//
// Supervision. Each replica runs under a supervisor (sim/supervisor.hpp):
// --watchdog-s bounds its wall-clock time (cooperative, event-granular),
// failures retry with exponential backoff (--retries, --retry-backoff-ms),
// and a replica that keeps failing is QUARANTINED instead of aborting the
// sweep: the run completes, prints a `failed_points` section to stderr, and
// exits 3 (distinct from 1 = hard error). --inject-fail POINT,REPLICA makes
// that one cell throw on every attempt — the test hook for this machinery.
//
// Example (Fig. 6 grid):
//   wrsn_sweep --sweep scheduler=greedy,partition,combined
//              --sweep energy_request_percentage=0,0.2,0.4,0.6,0.8,1
//              --days 120 --seeds 3 --csv fig6.csv
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/atomic_file.hpp"
#include "core/binio.hpp"
#include "core/config_io.hpp"
#include "core/error.hpp"
#include "core/json.hpp"
#include "core/parallel.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "net/routing.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "obs/telemetry.hpp"
#include "sim/runner.hpp"
#include "sim/supervisor.hpp"
#include "sim/world.hpp"

namespace {

using namespace wrsn;

struct Sweep {
  std::string key;
  std::vector<std::string> values;
};

struct Metric {
  const char* name;
  double (*get)(const MetricsReport&);
};

const Metric kMetrics[] = {
    {"travel_km",
     [](const MetricsReport& r) { return r.rv_travel_distance.value() / 1e3; }},
    {"travel_mj",
     [](const MetricsReport& r) { return r.rv_travel_energy.value() / 1e6; }},
    {"recharged_mj",
     [](const MetricsReport& r) { return r.energy_recharged.value() / 1e6; }},
    {"objective_mj",
     [](const MetricsReport& r) { return r.objective_score().value() / 1e6; }},
    {"coverage_pct",
     [](const MetricsReport& r) { return 100.0 * r.coverage_ratio; }},
    {"nonfunctional_pct",
     [](const MetricsReport& r) { return r.nonfunctional_pct; }},
    {"cost_m_per_sensor",
     [](const MetricsReport& r) { return r.recharging_cost_m_per_sensor(); }},
    {"latency_min",
     [](const MetricsReport& r) { return r.avg_request_latency.value() / 60.0; }},
};
constexpr std::size_t kNumMetrics = std::size(kMetrics);
using MetricValues = std::array<double, kNumMetrics>;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

// --- sweep journal (JSONL, schema "wrsn.sweep-journal") -------------------
// One meta line, then one `cell` record per finished (point, replica) with
// the metric values the CSV aggregation needs (full 17-digit precision, so
// a resumed sweep reproduces the uninterrupted CSV byte for byte), then at
// most one terminal `done` record once every cell succeeded.

std::string journal_meta_line() {
  JsonWriter w;
  w.begin_object()
      .field("record", "meta")
      .field("schema", "wrsn.sweep-journal")
      .field("version", std::int64_t{1});
  w.key("fields").begin_array();
  for (const char* f : {"id", "point", "replica", "seed", "m"}) w.value(f);
  w.end_array().end_object();
  return w.str();
}

std::string journal_cell_line(std::uint64_t id, std::size_t point,
                              std::size_t replica, std::uint64_t seed,
                              const MetricValues& m) {
  JsonWriter w;
  w.begin_object()
      .field("record", "cell")
      .field("id", id)
      .field("point", static_cast<std::uint64_t>(point))
      .field("replica", static_cast<std::uint64_t>(replica))
      .field("seed", seed);
  w.key("m").begin_array();
  for (const double v : m) w.value(v);
  w.end_array().end_object();
  return w.str();
}

std::string journal_done_line(std::uint64_t cells) {
  JsonWriter w;
  w.begin_object().field("record", "done").field("cells", cells).end_object();
  return w.str();
}

// Identity of a sweep for resume purposes: base config text + grid spec +
// replica count. A journal can only resume the exact campaign it recorded.
// `threads` is normalized out: reports are byte-identical for any thread
// split, so a resume may use a different budget than the original run.
std::uint64_t campaign_hash(const SimConfig& base,
                            const std::vector<Sweep>& sweeps,
                            std::size_t seeds) {
  SimConfig ident = base;
  ident.threads = 0;
  std::string blob = config_to_text(ident);
  for (const Sweep& s : sweeps) {
    blob += '\n' + s.key + '=';
    for (const std::string& v : s.values) blob += v + ',';
  }
  blob += "\nseeds=" + std::to_string(seeds);
  return fnv1a64(blob);
}

// Minimal field extraction from already-json_validate'd journal lines (the
// same validate-then-scan idiom as wrsn_jsonl_check).
bool find_json_u64(const std::string& line, const std::string& key,
                   std::uint64_t* out) {
  const auto pos = line.find('"' + key + "\":");
  if (pos == std::string::npos) return false;
  *out = std::strtoull(line.c_str() + pos + key.size() + 3, nullptr, 10);
  return true;
}

bool find_json_doubles(const std::string& line, const std::string& key,
                       MetricValues* out) {
  const auto pos = line.find('"' + key + "\":[");
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + key.size() + 4;
  for (double& v : *out) {
    char* end = nullptr;
    v = std::strtod(p, &end);
    if (end == p) return false;
    p = end;
    if (*p == ',') ++p;
  }
  return *p == ']';
}

}  // namespace

int main(int argc, char** argv) try {
  SimConfig base = SimConfig::paper_defaults();
  std::vector<Sweep> sweeps;
  std::size_t seeds = 2;
  std::string csv_path, telemetry_path, spans_prefix, chrome_prefix;
  std::size_t flight_capacity = 0;
  std::string journal_dir;
  bool resume = false;
  SupervisorOptions sup_options;  // watchdog off, 2 retries, 100 ms backoff
  bool inject_fail = false;
  std::size_t inject_point = 0, inject_replica = 0;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto need_value = [&](std::size_t& i) -> const std::string& {
    WRSN_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "see the header of tools/wrsn_sweep.cpp for usage\n"
                   "`wrsn_sim --list` prints every enum-like knob as a\n"
                   "ready-made --sweep KEY=V1,V2,... line\n";
      return 0;
    }
    if (a == "--list-routers") {
      for (const std::string& name : wrsn::routing_names()) std::cout << name << '\n';
      return 0;
    }
    if (a == "--sweep") {
      const std::string& spec = need_value(i);
      const auto eq = spec.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--sweep expects KEY=V1,V2,...");
      Sweep sweep;
      sweep.key = spec.substr(0, eq);
      sweep.values = split(spec.substr(eq + 1), ',');
      WRSN_REQUIRE(!sweep.values.empty(), "--sweep needs at least one value");
      sweeps.push_back(std::move(sweep));
    } else if (a == "--config") {
      base = load_config(need_value(i), base);
    } else if (a == "--set") {
      const std::string& kv = need_value(i);
      const auto eq = kv.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--set expects KEY=VALUE");
      config_set(base, kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--days") {
      config_set(base, "sim_days", need_value(i));
    } else if (a == "--threads") {
      config_set(base, "threads", need_value(i));
    } else if (a == "--faults") {
      apply_fault_arg(base, need_value(i));
    } else if (a == "--seeds") {
      seeds = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (a == "--csv") {
      csv_path = need_value(i);
    } else if (a == "--telemetry") {
      telemetry_path = need_value(i);
    } else if (a == "--spans") {
      spans_prefix = need_value(i);
    } else if (a == "--chrome-trace") {
      chrome_prefix = need_value(i);
    } else if (a == "--flight-recorder") {
      flight_capacity = static_cast<std::size_t>(std::stoul(need_value(i)));
      WRSN_REQUIRE(flight_capacity > 0, "--flight-recorder must be positive");
    } else if (a == "--journal") {
      journal_dir = need_value(i);
    } else if (a == "--resume") {
      journal_dir = need_value(i);
      resume = true;
    } else if (a == "--watchdog-s") {
      sup_options.watchdog_s = std::stod(need_value(i));
    } else if (a == "--retries") {
      sup_options.max_retries = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (a == "--retry-backoff-ms") {
      sup_options.backoff_ms = std::stod(need_value(i));
    } else if (a == "--inject-fail") {
      const std::vector<std::string> pr = split(need_value(i), ',');
      WRSN_REQUIRE(pr.size() == 2, "--inject-fail expects POINT,REPLICA");
      inject_fail = true;
      inject_point = static_cast<std::size_t>(std::stoul(pr[0]));
      inject_replica = static_cast<std::size_t>(std::stoul(pr[1]));
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      return 2;
    }
  }
  WRSN_REQUIRE(!sweeps.empty(), "at least one --sweep is required");
  WRSN_REQUIRE(seeds > 0, "--seeds must be positive");

  std::size_t total_points = 1;
  for (const Sweep& s : sweeps) total_points *= s.values.size();
  std::cout << "sweeping " << total_points << " grid point(s) x " << seeds
            << " replica(s), " << base.sim_duration.value() / 86400.0
            << " simulated days each\n";

  // Materialize the grid up front (mixed-radix counter over the sweeps), so
  // the (point x replica) product flattens into one task list and a single
  // parallel_for keeps every worker busy across point boundaries instead of
  // draining the pool once per point.
  std::vector<SimConfig> point_cfgs;
  std::vector<std::vector<std::string>> point_values;
  point_cfgs.reserve(total_points);
  point_values.reserve(total_points);
  std::vector<std::size_t> idx(sweeps.size(), 0);
  for (std::size_t point = 0; point < total_points; ++point) {
    SimConfig cfg = base;
    std::vector<std::string> values;
    values.reserve(sweeps.size());
    for (std::size_t k = 0; k < sweeps.size(); ++k) {
      config_set(cfg, sweeps[k].key, sweeps[k].values[idx[k]]);
      values.push_back(sweeps[k].values[idx[k]]);
    }
    cfg.validate();
    point_cfgs.push_back(std::move(cfg));
    point_values.push_back(std::move(values));
    for (std::size_t k = sweeps.size(); k-- > 0;) {
      if (++idx[k] < sweeps[k].values.size()) break;
      idx[k] = 0;
    }
  }

  const std::size_t total_tasks = total_points * seeds;

  // --- journal / resume ---------------------------------------------------
  std::vector<MetricValues> values(total_tasks, MetricValues{});
  std::vector<char> done(total_tasks, 0);
  std::vector<std::string> failures(total_tasks);
  std::unique_ptr<JournalWriter> journal;
  std::uint64_t journal_next_id = 1;
  bool journal_has_done = false;
  if (!journal_dir.empty()) {
    const std::uint64_t hash = campaign_hash(base, sweeps, seeds);
    const std::string manifest_path = journal_dir + "/manifest.json";
    const std::string journal_path = journal_dir + "/journal.jsonl";
    std::filesystem::create_directories(journal_dir);
    std::ifstream manifest_in(manifest_path);
    if (manifest_in.is_open()) {
      // Existing campaign: only --resume may append to it, and only when
      // the config x grid identity matches exactly.
      WRSN_REQUIRE(resume, "journal '" + journal_dir +
                               "' already exists; use --resume to continue it");
      std::ostringstream buf;
      buf << manifest_in.rdbuf();
      std::uint64_t recorded = 0;
      WRSN_REQUIRE(
          find_json_u64(buf.str(), "campaign_hash", &recorded) && recorded == hash,
          "journal '" + journal_dir +
              "' records a different campaign (config/grid/seeds mismatch)");
    } else {
      WRSN_REQUIRE(!resume, "nothing to resume: no manifest in '" + journal_dir + "'");
      JsonWriter w;
      w.begin_object()
          .field("record", "manifest")
          .field("schema", "wrsn.sweep-journal")
          .field("version", std::int64_t{1})
          .field("campaign_hash", hash)
          .field("points", static_cast<std::uint64_t>(total_points))
          .field("seeds", static_cast<std::uint64_t>(seeds))
          .end_object();
      write_file_atomic(manifest_path, w.str() + "\n");
    }
    std::ifstream journal_in(journal_path);
    std::size_t restored_cells = 0;
    std::size_t journal_lines = 0;
    if (journal_in.is_open()) {
      std::string line;
      while (std::getline(journal_in, line)) {
        if (line.empty()) continue;
        ++journal_lines;
        std::string err;
        WRSN_REQUIRE(json_validate(line, &err),
                     journal_path + ": corrupt journal line: " + err);
        if (line.find("\"record\":\"done\"") != std::string::npos) {
          journal_has_done = true;
          continue;
        }
        if (line.find("\"record\":\"cell\"") == std::string::npos) continue;
        std::uint64_t id = 0, point = 0, replica = 0;
        MetricValues m{};
        WRSN_REQUIRE(find_json_u64(line, "id", &id) &&
                         find_json_u64(line, "point", &point) &&
                         find_json_u64(line, "replica", &replica) &&
                         find_json_doubles(line, "m", &m),
                     journal_path + ": malformed cell record");
        WRSN_REQUIRE(point < total_points && replica < seeds,
                     journal_path + ": cell outside the campaign grid");
        const std::size_t task = point * seeds + replica;
        values[task] = m;
        done[task] = 1;
        ++restored_cells;
        journal_next_id = std::max(journal_next_id, id + 1);
      }
    }
    journal = std::make_unique<JournalWriter>(journal_path);
    if (journal_lines == 0) journal->append(journal_meta_line());
    if (resume) {
      std::cout << "resuming from " << journal_dir << ": " << restored_cells
                << '/' << total_tasks << " cell(s) already finished\n";
    }
  }

  // Thread-budget split (see file header): outer replica workers x inner
  // per-replica shard threads <= budget. The budget comes from the single
  // `threads` knob (CLI / config / WRSN_THREADS); when nobody set it, keep
  // the historical default of hardware-concurrency replica workers with
  // serial replicas.
  const bool budget_given =
      base.threads != 0 || std::getenv("WRSN_THREADS") != nullptr;
  const std::size_t budget =
      budget_given ? resolve_threads(base.threads)
                   : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t outer = std::max<std::size_t>(std::min(budget, total_tasks), 1);
  const std::size_t inner = budget_given ? std::max<std::size_t>(budget / outer, 1) : 1;
  for (SimConfig& cfg : point_cfgs) cfg.threads = inner;
  if (budget_given) {
    std::cout << "thread budget " << budget << ": " << outer
              << " replica worker(s) x " << inner << " shard thread(s)\n";
  }

  obs::TelemetryRegistry telemetry;
  obs::TelemetryRegistry* telemetry_ptr =
      telemetry_path.empty() ? nullptr : &telemetry;
  if (telemetry_ptr != nullptr) obs::require_writable(telemetry_path);
  // Replica-private registries, merged in task order after the parallel
  // phase so the aggregate is independent of completion order. The
  // supervisor's own counters (supervisor/retries, ...) land here too.
  std::vector<obs::TelemetryRegistry> local_telemetry(
      telemetry_ptr != nullptr ? total_tasks : 0);

  // Progress/ETA bookkeeping: replicas completed so far (updated under the
  // write mutex) against the wall clock since the sweep started. The ETA is
  // a straight linear extrapolation — good enough to answer "lunch or
  // overnight?" for a homogeneous grid.
  std::mutex write_mutex;
  std::vector<std::size_t> remaining(total_points, seeds);
  for (std::size_t task = 0; task < total_tasks; ++task) {
    if (done[task]) --remaining[task / seeds];
  }
  const auto sweep_began = std::chrono::steady_clock::now();
  std::size_t tasks_done = 0, tasks_todo = 0;
  for (std::size_t task = 0; task < total_tasks; ++task) {
    if (!done[task]) ++tasks_todo;
  }
  auto format_eta = [](double s) {
    std::ostringstream os;
    if (s >= 3600.0) {
      os << s / 3600.0 << 'h';
    } else if (s >= 60.0) {
      os << s / 60.0 << 'm';
    } else {
      os << s << 's';
    }
    return os.str();
  };

  if (flight_capacity > 0) {
    obs::FlightRecorder::arm_failure_hook();
    obs::FlightRecorder::arm_signal_handlers();
  }

  ThreadPool pool(outer);
  pool.parallel_for(total_tasks, [&](std::size_t task) {
    if (done[task]) return;  // journaled by a previous (interrupted) run
    const std::size_t point = task / seeds;
    const std::size_t replica = task % seeds;
    SimConfig cfg = point_cfgs[point];
    // Same per-replica seed derivation as run_replicas, so the flattened
    // grid reproduces the sequential driver's reports byte for byte.
    cfg.seed = point_cfgs[point].seed + replica;
    const std::string tag =
        ".point" + std::to_string(point) + ".rep" + std::to_string(replica);

    SupervisorOptions options = sup_options;
    ReplicaSupervisor supervisor(
        options, telemetry_ptr != nullptr ? &local_telemetry[task] : nullptr);
    // Each attempt opens its own sinks and commits them only on success, so
    // retried attempts never leave partial or duplicated span files.
    const ReplicaResult result = supervisor.supervise([&]() {
      WRSN_REQUIRE(!(inject_fail && point == inject_point && replica == inject_replica),
                   "injected failure (--inject-fail)");
      std::unique_ptr<AtomicFile> spans_file, chrome_file;
      std::unique_ptr<obs::JsonlSpanSink> spans_sink;
      std::unique_ptr<obs::ChromeTraceSink> chrome_sink;
      std::unique_ptr<obs::SpanLog> span_log;
      std::unique_ptr<obs::FlightRecorder> flight;
      if (!spans_prefix.empty()) {
        spans_file = std::make_unique<AtomicFile>(spans_prefix + tag + ".jsonl");
        spans_sink = std::make_unique<obs::JsonlSpanSink>(spans_file->stream());
      }
      if (!chrome_prefix.empty()) {
        chrome_file = std::make_unique<AtomicFile>(chrome_prefix + tag + ".json");
        chrome_sink = std::make_unique<obs::ChromeTraceSink>(chrome_file->stream());
      }
      if (spans_sink != nullptr || chrome_sink != nullptr) {
        span_log =
            std::make_unique<obs::SpanLog>(spans_sink.get(), chrome_sink.get());
      }
      if (flight_capacity > 0) {
        flight = std::make_unique<obs::FlightRecorder>(flight_capacity);
        flight->set_label("wrsn_sweep" + tag + " seed " + std::to_string(cfg.seed));
      }

      AttemptOutcome out;
      World world(cfg);
      world.set_telemetry(telemetry_ptr != nullptr ? &local_telemetry[task]
                                                   : nullptr);
      world.set_span_log(span_log.get());
      world.set_flight_recorder(flight.get());
      if (options.watchdog_s > 0.0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.watchdog_s));
        std::uint32_t tick = 0;
        world.set_checkpoint_hook([deadline, tick](const World&) mutable {
          if (++tick % 1024 != 0) return false;
          return std::chrono::steady_clock::now() >= deadline;
        });
      }
      world.run_until(cfg.sim_duration);
      if (!world.finished()) {
        out.status = AttemptOutcome::Status::kTimeout;
        return out;
      }
      out.status = AttemptOutcome::Status::kOk;
      out.report = world.report();
      if (span_log != nullptr) span_log->finish(world.now().value());
      if (spans_file != nullptr) spans_file->commit();
      if (chrome_file != nullptr) chrome_file->commit();
      return out;
    });

    const std::lock_guard lock(write_mutex);
    ++tasks_done;
    if (result.ok) {
      for (std::size_t m = 0; m < kNumMetrics; ++m) {
        values[task][m] = kMetrics[m].get(result.report);
      }
      done[task] = 1;
      if (journal != nullptr) {
        journal->append(journal_cell_line(journal_next_id++, point, replica,
                                          cfg.seed, values[task]));
      }
    } else {
      failures[task] = result.error + " (" + std::to_string(result.attempts) +
                       " attempt(s)" + (result.timed_out ? ", timed out" : "") +
                       ")";
    }
    if (--remaining[point] == 0 || !result.ok) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - sweep_began)
                                 .count();
      std::cerr << "point " << point + 1 << '/' << total_points
                << (result.ok ? " done (" : " FAILED a replica (") << tasks_done
                << '/' << tasks_todo << " replicas";
      if (tasks_done > 0 && tasks_done < tasks_todo) {
        const double eta = elapsed *
                           static_cast<double>(tasks_todo - tasks_done) /
                           static_cast<double>(tasks_done);
        std::cerr << ", ETA " << format_eta(eta);
      }
      std::cerr << ")\n";
    }
  });

  if (telemetry_ptr != nullptr) {
    for (const obs::TelemetryRegistry& local : local_telemetry) {
      telemetry.merge_from(local);
    }
  }

  // --- output -------------------------------------------------------------
  // The CSV is assembled in memory and published with one atomic rename: an
  // interrupted sweep leaves either the previous file or the complete new
  // one, never a truncated half-row. (Recovery of partial progress is the
  // journal's job, not the CSV's.)
  std::ostringstream csv_text;
  for (const Sweep& s : sweeps) csv_text << s.key << ',';
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    csv_text << kMetrics[m].name << ',' << kMetrics[m].name << "_ci95"
             << (m + 1 < kNumMetrics ? "," : "\n");
  }
  for (std::size_t point = 0; point < total_points; ++point) {
    for (const std::string& v : point_values[point]) csv_text << v << ',';
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      RunningStats stats;
      for (std::size_t i = 0; i < seeds; ++i) {
        if (done[point * seeds + i]) stats.add(values[point * seeds + i][m]);
      }
      if (stats.count() > 0) {
        csv_text << stats.mean() << ',' << stats.ci95_halfwidth();
      } else {
        csv_text << "nan,nan";  // every replica of this point quarantined
      }
      csv_text << (m + 1 < kNumMetrics ? "," : "\n");
    }
  }
  if (!csv_path.empty()) {
    AtomicFile csv(csv_path);
    csv.stream() << csv_text.str();
    csv.commit();
    std::cout << "\nwrote " << total_points << " row(s) to " << csv_path << '\n';
  } else {
    std::cout << csv_text.str();
  }
  if (!telemetry_path.empty()) {
    obs::write_registry_file(telemetry_path, telemetry);
    std::cout << "wrote telemetry to " << telemetry_path << '\n';
  }

  std::size_t failed_cells = 0;
  for (std::size_t task = 0; task < total_tasks; ++task) {
    if (!done[task]) ++failed_cells;
  }
  if (journal != nullptr && failed_cells == 0 && !journal_has_done) {
    journal->append(journal_done_line(static_cast<std::uint64_t>(total_tasks)));
  }
  if (failed_cells > 0) {
    // Quarantined cells: the sweep still completed (exit 3, not 1), the CSV
    // holds every healthy point, and a --resume retries exactly these cells.
    std::cerr << "failed_points:\n";
    for (std::size_t task = 0; task < total_tasks; ++task) {
      if (done[task]) continue;
      const std::size_t point = task / seeds;
      const std::size_t replica = task % seeds;
      std::cerr << "  point " << point << " replica " << replica << " seed "
                << point_cfgs[point].seed + replica << ": " << failures[task]
                << '\n';
    }
    std::cerr << failed_cells << " cell(s) quarantined"
              << (journal != nullptr ? "; rerun with --resume to retry them\n"
                                     : "\n");
    return 3;
  }
  return 0;
} catch (const std::exception& e) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_sweep: " << e.what() << '\n';
  return 1;
} catch (...) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_sweep: unknown error\n";
  return 1;
}
