// wrsn_sim — command-line driver for the WRSN simulator.
//
//   wrsn_sim [options]
//     --config FILE        load a key=value config file (see --print-config)
//     --set KEY=VALUE      override one config key (repeatable)
//     --days N             shorthand for --set sim_days=N
//     --seed N             shorthand for --set seed=N
//     --scheduler NAME     shorthand for --set scheduler=NAME
//     --routing NAME       shorthand for --set routing=NAME
//     --threads N          shorthand for --set threads=N
//     --seeds N            run N replicas (seed, seed+1, ...) and report
//                          mean +/- 95% CI per metric
//     --csv FILE           append one CSV row per replica to FILE
//     --series FILE        write the time series of the first replica as CSV
//     --svg FILE           render the first replica's final state as SVG
//     --print-config       print the effective configuration and exit
//     --list-keys          list every recognized config key and exit
//     --list-schedulers    list registered scheduler policies and exit
//     --list-routers       list registered routing policies and exit
//     --list               list every enum-like knob with its values and exit
//     --help               this text
#include <algorithm>
#include <csignal>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/atomic_file.hpp"
#include "core/config_io.hpp"
#include "core/error.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "net/routing.hpp"
#include "obs/telemetry.hpp"
#include "sched/policy.hpp"
#include "sim/runner.hpp"
#include "sim/snapshot.hpp"
#include "sim/svg.hpp"
#include "sim/world.hpp"

namespace {

using namespace wrsn;

// Set by the SIGINT/SIGTERM handler when --checkpoint-on-signal is active;
// the checkpoint hook polls it at event granularity, so the stop always
// lands at a quiescent event boundary where a snapshot is exact.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void checkpoint_signal_handler(int) { g_stop_requested = 1; }

[[noreturn]] void usage(int code) {
  std::cout <<
      "wrsn_sim — WRSN joint charging & activity management simulator\n"
      "\n"
      "  --config FILE        load a key=value config file\n"
      "  --set KEY=VALUE      override one config key (repeatable)\n"
      "  --days N             shorthand for --set sim_days=N\n"
      "  --seed N             shorthand for --set seed=N\n"
      "  --scheduler NAME     a registered policy (see --list-schedulers)\n"
      "  --routing NAME       a registered routing policy (see --list-routers)\n"
      "  --threads N          shorthand for --set threads=N: worker threads\n"
      "                       for the deterministic intra-simulation shards\n"
      "                       (0 = auto from WRSN_THREADS, default 1; output\n"
      "                       is byte-identical at any thread count)\n"
      "  --faults FILE|SPEC   enable fault injection: a config file of\n"
      "                       fault.* keys, or a comma list such as\n"
      "                       request_loss_prob=0.2,rv_breakdown_at_h=6\n"
      "  --seeds N            replicas to run (mean +/- 95% CI reported)\n"
      "  --csv FILE           append one CSV row per replica\n"
      "  --json FILE          write all replica reports as a JSON array\n"
      "  --telemetry FILE     write aggregated telemetry (event counts, queue\n"
      "                       high-water, scheduler timings) as JSON, or as\n"
      "                       Prometheus text when FILE ends in .prom\n"
      "  --series FILE        time series of the first replica as CSV\n"
      "  --svg FILE           final state of the first replica as SVG\n"
      "  --spans FILE         lifecycle spans of the first replica as JSONL\n"
      "                       (schema wrsn.spans v2; see obs/spans.hpp)\n"
      "  --chrome-trace FILE  same spans as Chrome trace-event JSON, loadable\n"
      "                       in https://ui.perfetto.dev or chrome://tracing\n"
      "  --flight-recorder N  keep the last N events of the first replica in\n"
      "                       memory; dumped to stderr on assert failure,\n"
      "                       simulation error, or Ctrl-C\n"
      "  --checkpoint PREFIX  write world snapshots as PREFIX.NNNNNN.snap\n"
      "                       (atomic temp+rename) plus an fsync'd manifest\n"
      "                       journal PREFIX.manifest.jsonl (wrsn.snapshot)\n"
      "  --checkpoint-every S snapshot every S simulated seconds\n"
      "                       (requires --checkpoint)\n"
      "  --checkpoint-on-signal\n"
      "                       on SIGINT/SIGTERM, stop at the next event\n"
      "                       boundary, write a terminal snapshot and the\n"
      "                       flight-recorder dump, and exit 75; resume with\n"
      "                       --restore (requires --checkpoint)\n"
      "  --restore FILE       resume from a snapshot file; the configuration\n"
      "                       is taken from the snapshot and the completed\n"
      "                       run is byte-identical to an uninterrupted one\n"
      "  --print-config       print the effective configuration and exit\n"
      "  --list-keys          list recognized config keys and exit\n"
      "  --list-schedulers    list registered scheduler policies and exit\n"
      "  --list-routers       list registered routing policies and exit\n"
      "  --list               list every enum-like knob and its accepted\n"
      "                       values (one sweepable knob=v1,v2,... per line)\n"
      "  --help               this text\n";
  std::exit(code);
}

void print_schedulers() {
  const SchedulerRegistry& registry = SchedulerRegistry::instance();
  std::size_t width = 0;
  for (const std::string& name : registry.names()) {
    width = std::max(width, name.size());
  }
  for (const std::string& name : registry.names()) {
    std::cout << std::left << std::setw(static_cast<int>(width) + 2) << name
              << registry.summary(name) << '\n';
  }
}

void print_routers() {
  const RoutingRegistry& registry = RoutingRegistry::instance();
  std::size_t width = 0;
  for (const std::string& name : registry.names()) {
    width = std::max(width, name.size());
  }
  for (const std::string& name : registry.names()) {
    std::cout << std::left << std::setw(static_cast<int>(width) + 2) << name
              << registry.summary(name) << '\n';
  }
}

void print_list(std::ostream& os, const std::string& knob,
                const std::vector<std::string>& values) {
  os << knob << '=';
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i ? "," : "") << values[i];
  }
  os << '\n';
}

// Every enum-like knob with its accepted values, in `key=v1,v2,...` form so
// a shell loop can split a line straight into `--set key=value` sweeps.
void print_knob_lists() {
  print_list(std::cout, "scheduler", scheduler_names());
  print_list(std::cout, "routing", routing_names());
  print_list(std::cout, "activation", activation_policy_names());
  print_list(std::cout, "target_motion", target_motion_names());
  print_list(std::cout, "rv.charge_profile", charge_profile_names());
}

struct MetricRow {
  const char* name;
  double (*get)(const MetricsReport&);
};

const MetricRow kMetrics[] = {
    {"rv travel distance (km)",
     [](const MetricsReport& r) { return r.rv_travel_distance.value() / 1e3; }},
    {"rv travel energy (MJ)",
     [](const MetricsReport& r) { return r.rv_travel_energy.value() / 1e6; }},
    {"energy recharged (MJ)",
     [](const MetricsReport& r) { return r.energy_recharged.value() / 1e6; }},
    {"objective score (MJ)",
     [](const MetricsReport& r) { return r.objective_score().value() / 1e6; }},
    {"coverage ratio (%)",
     [](const MetricsReport& r) { return 100.0 * r.coverage_ratio; }},
    {"missing rate (%)",
     [](const MetricsReport& r) { return 100.0 * r.missing_rate; }},
    {"nonfunctional (%)",
     [](const MetricsReport& r) { return r.nonfunctional_pct; }},
    {"recharging cost (m/sensor)",
     [](const MetricsReport& r) { return r.recharging_cost_m_per_sensor(); }},
    {"recharge requests",
     [](const MetricsReport& r) { return static_cast<double>(r.recharge_requests); }},
    {"sensors recharged",
     [](const MetricsReport& r) { return static_cast<double>(r.sensors_recharged); }},
    {"mean request latency (min)",
     [](const MetricsReport& r) { return r.avg_request_latency.value() / 60.0; }},
    {"sensor deaths",
     [](const MetricsReport& r) { return static_cast<double>(r.sensor_deaths); }},
    {"packets delivered (k)",
     [](const MetricsReport& r) { return r.packets_delivered / 1e3; }},
    {"delivery ratio (%)",
     [](const MetricsReport& r) { return 100.0 * r.delivery_ratio(); }},
};

void write_csv(const std::string& path, const SimConfig& cfg,
               const std::vector<MetricsReport>& reports) {
  const bool exists = static_cast<bool>(std::ifstream(path));
  std::ofstream os(path, std::ios::app);
  WRSN_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  if (!exists) {
    os << "seed,scheduler,routing,activation,erp";
    for (const MetricRow& m : kMetrics) os << ',' << m.name;
    os << '\n';
  }
  for (std::size_t i = 0; i < reports.size(); ++i) {
    os << cfg.seed + i << ',' << cfg.scheduler << ',' << cfg.routing << ','
       << to_string(cfg.activation) << ',' << cfg.energy_request_percentage;
    for (const MetricRow& m : kMetrics) os << ',' << m.get(reports[i]);
    os << '\n';
  }
}

void write_series(const std::string& path, const TimeSeries& series) {
  std::ofstream os(path);
  WRSN_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  os << "t_hours,alive,covered,coverable,pending_requests,rv_km\n";
  for (const TimeSeriesPoint& p : series) {
    os << p.t / 3600.0 << ',' << p.alive << ',' << p.covered << ','
       << p.coverable << ',' << p.pending_requests << ','
       << p.rv_travel_distance / 1e3 << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) try {
  SimConfig cfg = SimConfig::paper_defaults();
  std::size_t seeds = 1;
  std::string csv_path, series_path, svg_path, json_path, telemetry_path;
  std::string spans_path, chrome_path;
  std::string checkpoint_prefix, restore_path;
  double checkpoint_every = 0.0;
  bool checkpoint_on_signal = false;
  std::size_t flight_capacity = 0;
  bool print_config = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto need_value = [&](std::size_t& i) -> const std::string& {
    WRSN_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") usage(0);
    if (a == "--list-keys") {
      for (const std::string& k : config_keys()) std::cout << k << '\n';
      return 0;
    }
    if (a == "--list-schedulers") {
      print_schedulers();
      return 0;
    }
    if (a == "--list-routers") {
      print_routers();
      return 0;
    }
    if (a == "--list") {
      print_knob_lists();
      return 0;
    }
    if (a == "--config") {
      cfg = load_config(need_value(i), cfg);
    } else if (a == "--set") {
      const std::string& kv = need_value(i);
      const auto eq = kv.find('=');
      WRSN_REQUIRE(eq != std::string::npos, "--set expects KEY=VALUE");
      config_set(cfg, kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--days") {
      config_set(cfg, "sim_days", need_value(i));
    } else if (a == "--seed") {
      config_set(cfg, "seed", need_value(i));
    } else if (a == "--scheduler") {
      config_set(cfg, "scheduler", need_value(i));
    } else if (a == "--routing") {
      config_set(cfg, "routing", need_value(i));
    } else if (a == "--threads") {
      config_set(cfg, "threads", need_value(i));
    } else if (a == "--faults") {
      apply_fault_arg(cfg, need_value(i));
    } else if (a == "--seeds") {
      seeds = static_cast<std::size_t>(std::stoul(need_value(i)));
      WRSN_REQUIRE(seeds > 0, "--seeds must be positive");
    } else if (a == "--csv") {
      csv_path = need_value(i);
    } else if (a == "--json") {
      json_path = need_value(i);
    } else if (a == "--telemetry") {
      telemetry_path = need_value(i);
    } else if (a == "--spans") {
      spans_path = need_value(i);
    } else if (a == "--chrome-trace") {
      chrome_path = need_value(i);
    } else if (a == "--flight-recorder") {
      flight_capacity = static_cast<std::size_t>(std::stoul(need_value(i)));
      WRSN_REQUIRE(flight_capacity > 0, "--flight-recorder must be positive");
    } else if (a == "--series") {
      series_path = need_value(i);
    } else if (a == "--svg") {
      svg_path = need_value(i);
    } else if (a == "--checkpoint") {
      checkpoint_prefix = need_value(i);
    } else if (a == "--checkpoint-every") {
      checkpoint_every = std::stod(need_value(i));
      WRSN_REQUIRE(checkpoint_every > 0.0, "--checkpoint-every must be positive");
    } else if (a == "--checkpoint-on-signal") {
      checkpoint_on_signal = true;
    } else if (a == "--restore") {
      restore_path = need_value(i);
    } else if (a == "--print-config") {
      print_config = true;
    } else {
      std::cerr << "unknown option '" << a << "'\n\n";
      usage(2);
    }
  }

  cfg.validate();
  if (print_config) {
    std::cout << config_to_text(cfg);
    return 0;
  }

  // Checkpoint/restore is a single-replica feature: a snapshot captures ONE
  // world, and replica fan-out would leave the other seeds unrecoverable.
  const bool checkpointing = !checkpoint_prefix.empty();
  WRSN_REQUIRE(checkpointing || (checkpoint_every <= 0.0 && !checkpoint_on_signal),
               "--checkpoint-every/--checkpoint-on-signal require --checkpoint PREFIX");
  WRSN_REQUIRE((!checkpointing && restore_path.empty()) || seeds == 1,
               "--checkpoint/--restore require a single replica (--seeds 1)");

  // Restore rebuilds the world from the snapshot's own embedded config; the
  // command line must not silently fork the configuration mid-campaign.
  std::unique_ptr<WorldSnapshot> restored;
  if (!restore_path.empty()) {
    restored = std::make_unique<WorldSnapshot>(load_snapshot_file(restore_path));
    cfg = config_from_text(restored->config_text);
  }

  // First replica runs in-process so its series / final state can be dumped.
  obs::TelemetryRegistry telemetry;
  obs::TelemetryRegistry* telemetry_ptr =
      telemetry_path.empty() ? nullptr : &telemetry;
  if (telemetry_ptr != nullptr) obs::require_writable(telemetry_path);
  std::vector<MetricsReport> reports;
  {
    // Span tracing, Chrome export and flight recording attach to the first
    // replica (like --series / --svg); sweeps use wrsn_sweep's per-replica
    // files. All are observational: the report is byte-identical either way.
    std::ofstream spans_file, chrome_file;
    std::unique_ptr<obs::JsonlSpanSink> spans_sink;
    std::unique_ptr<obs::ChromeTraceSink> chrome_sink;
    std::unique_ptr<obs::SpanLog> span_log;
    std::unique_ptr<obs::FlightRecorder> flight;
    if (!spans_path.empty()) {
      spans_file.open(spans_path);
      WRSN_REQUIRE(spans_file.good(), "cannot open '" + spans_path + "'");
      spans_sink = std::make_unique<obs::JsonlSpanSink>(spans_file);
    }
    if (!chrome_path.empty()) {
      chrome_file.open(chrome_path);
      WRSN_REQUIRE(chrome_file.good(), "cannot open '" + chrome_path + "'");
      chrome_sink = std::make_unique<obs::ChromeTraceSink>(chrome_file);
    }
    if (spans_sink != nullptr || chrome_sink != nullptr) {
      span_log =
          std::make_unique<obs::SpanLog>(spans_sink.get(), chrome_sink.get());
    }

    // A restored run continues the snapshot's span numbering so stitched
    // span files stay consistent across the interruption.
    if (restored != nullptr && span_log != nullptr &&
        !restored->span_state.empty()) {
      BinReader span_reader(restored->span_state);
      span_log->deserialize(span_reader);
      span_reader.expect_end();
    }

    auto world_ptr = restored != nullptr ? std::make_unique<World>(*restored)
                                         : std::make_unique<World>(cfg);
    World& world = *world_ptr;
    world.set_telemetry(telemetry_ptr);
    world.set_span_log(span_log.get());
    if (flight_capacity > 0) {
      flight = std::make_unique<obs::FlightRecorder>(flight_capacity);
      flight->set_label("wrsn_sim seed " + std::to_string(cfg.seed));
      flight->set_context_provider([&world] { return to_json(world.report()); });
      world.set_flight_recorder(flight.get());
      obs::FlightRecorder::arm_failure_hook();
      // With --checkpoint-on-signal the tool's own handler owns SIGINT /
      // SIGTERM (it checkpoints instead of dumping and aborting).
      if (!checkpoint_on_signal) obs::FlightRecorder::arm_signal_handlers();
    }

    std::unique_ptr<CheckpointWriter> checkpointer;
    if (checkpointing) {
      checkpointer = std::make_unique<CheckpointWriter>(checkpoint_prefix);
      if (checkpoint_on_signal) {
        std::signal(SIGINT, checkpoint_signal_handler);
        std::signal(SIGTERM, checkpoint_signal_handler);
      }
      double next_checkpoint =
          checkpoint_every > 0.0 ? checkpoint_every : cfg.sim_duration.value() * 2.0;
      world.set_checkpoint_hook([&, next_checkpoint](const World& w) mutable {
        if (checkpoint_on_signal && g_stop_requested != 0) return true;
        if (checkpoint_every > 0.0 && w.now().value() >= next_checkpoint) {
          checkpointer->save(w, /*terminal=*/false);
          while (next_checkpoint <= w.now().value()) {
            next_checkpoint += checkpoint_every;
          }
        }
        return false;
      });
    }

    world.enable_time_series(!series_path.empty());
    reports.push_back(world.run());

    if (!world.finished()) {
      // Stopped by SIGINT/SIGTERM at a quiescent event boundary: flush a
      // terminal snapshot + flight dump, then exit with the distinctive
      // "stopped but resumable" code 75 (EX_TEMPFAIL).
      const std::string snap_path = checkpointer->save(world, /*terminal=*/true);
      obs::FlightRecorder::dump_all("checkpoint-signal");
      std::cerr << "wrsn_sim: stopped by signal at t=" << world.now().value()
                << "s after " << world.events_processed()
                << " events; snapshot saved to " << snap_path
                << " (resume with --restore)\n";
      return 75;
    }

    if (span_log != nullptr) span_log->finish(world.now().value());
    if (!series_path.empty()) write_series(series_path, world.time_series());
    if (!svg_path.empty()) save_svg(svg_path, world);
  }
  if (seeds > 1) {
    SimConfig rest = cfg;
    rest.seed = cfg.seed + 1;
    ThreadPool pool;
    auto more = run_replicas(rest, seeds - 1, &pool, telemetry_ptr);
    reports.insert(reports.end(), more.begin(), more.end());
  }

  std::cout << "wrsn_sim: " << cfg.scheduler << " / "
            << to_string(cfg.activation)
            << ", ERP=" << cfg.energy_request_percentage << ", "
            << cfg.sim_duration.value() / 86400.0 << " days x " << seeds
            << " replica(s)\n\n";

  Table t(seeds > 1
              ? std::vector<std::string>{"metric", "mean", "+/- 95% CI", "min", "max"}
              : std::vector<std::string>{"metric", "value"});
  t.set_precision(3);
  for (const MetricRow& m : kMetrics) {
    RunningStats stats;
    for (const MetricsReport& r : reports) stats.add(m.get(r));
    if (seeds > 1) {
      t.add_row({std::string(m.name), stats.mean(), stats.ci95_halfwidth(),
                 stats.min(), stats.max()});
    } else {
      t.add_row({std::string(m.name), stats.mean()});
    }
  }
  t.print(std::cout);

  if (!csv_path.empty()) {
    write_csv(csv_path, cfg, reports);
    std::cout << "\nwrote " << reports.size() << " row(s) to " << csv_path << '\n';
  }
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    WRSN_REQUIRE(os.good(), "cannot open '" + json_path + "' for writing");
    os << '[';
    for (std::size_t i = 0; i < reports.size(); ++i) {
      os << (i ? "," : "") << '\n' << to_json(reports[i]);
    }
    os << "\n]\n";
    std::cout << "wrote JSON reports to " << json_path << '\n';
  }
  if (!telemetry_path.empty()) {
    obs::write_registry_file(telemetry_path, telemetry);
    std::cout << "wrote telemetry to " << telemetry_path << '\n';
  }
  if (!series_path.empty()) std::cout << "wrote time series to " << series_path << '\n';
  if (!svg_path.empty()) std::cout << "wrote final-state SVG to " << svg_path << '\n';
  if (!spans_path.empty()) std::cout << "wrote spans to " << spans_path << '\n';
  if (!chrome_path.empty()) {
    std::cout << "wrote Chrome trace to " << chrome_path
              << " (load in https://ui.perfetto.dev)\n";
  }
  return 0;
} catch (const std::exception& e) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_sim: " << e.what() << '\n';
  return 1;
} catch (...) {
  wrsn::obs::FlightRecorder::dump_all("graceful-failure");
  std::cerr << "wrsn_sim: unknown error\n";
  return 1;
}
