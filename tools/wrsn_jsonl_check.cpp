// wrsn_jsonl_check — validate a JSON-lines file with core/json's parser.
//
//   wrsn_jsonl_check FILE [--schema wrsn.trace] [--whole]
//
// --whole treats FILE as one multi-line JSON document instead of JSON lines
// (used for the Chrome trace-event export, which is a single pretty-spread
// object); --schema then checks textual containment over the whole document.
//
// Every non-empty line must be one well-formed JSON value. With --schema,
// the first line must additionally be a meta record carrying
// "schema":"<name>" and a "version" field (the JSONL trace contract; see
// obs/trace.hpp). Schema-specific record checks:
//   wrsn.spans          every span record carries the schema-v2 fields
//                       (obs/spans.hpp) and t1_s >= t0_s
//   wrsn.snapshot       checkpoint manifests (sim/snapshot.hpp): snapshot
//                       records carry id/file/t_s/events/bytes/terminal,
//                       ids are strictly increasing, and at most one record
//                       is terminal — the last one
//   wrsn.sweep-journal  sweep journals (wrsn_sweep --journal): cell records
//                       carry id/point/replica/seed/m, ids are strictly
//                       increasing, and at most one `done` record exists —
//                       on the last line
// Exit 0 when the whole file validates; exit 1 with the first offending
// line number otherwise. Used as the ctest smoke check for
// `wrsn_trace --format jsonl`, `wrsn_sim --spans/--checkpoint` and
// `wrsn_sweep --journal`.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/json.hpp"

namespace {

// Extracts the numeric value following `"key":` in an already-validated JSON
// line; returns false when the key is absent.
bool find_number(const std::string& line, const std::string& key, double* out) {
  const auto pos = line.find('"' + key + "\":");
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + key.size() + 3, nullptr);
  return true;
}

// Span records must carry every schema-v2 field. json_validate has already
// run, so textual containment is a sound check for key presence.
const char* check_span_record(const std::string& line) {
  static const char* const kRequired[] = {"id", "parent", "root",  "track",
                                          "subject", "name", "t0_s", "t1_s",
                                          "outcome", "value", "mark"};
  for (const char* key : kRequired) {
    if (line.find('"' + std::string(key) + "\":") == std::string::npos) {
      return key;
    }
  }
  return nullptr;
}

// Field-presence check shared by the journal-style schemas.
const char* first_missing(const std::string& line,
                          const std::vector<const char*>& required) {
  for (const char* key : required) {
    if (line.find('"' + std::string(key) + "\":") == std::string::npos) {
      return key;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace wrsn;
  std::string path, schema;
  bool whole = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "wrsn_jsonl_check FILE [--schema NAME] [--whole]\n";
      return 0;
    }
    if (a == "--schema") {
      WRSN_REQUIRE(i + 1 < args.size(), "--schema needs a value");
      schema = args[++i];
    } else if (a == "--whole") {
      whole = true;
    } else if (path.empty()) {
      path = a;
    } else {
      std::cerr << "unexpected argument '" << a << "'\n";
      return 2;
    }
  }
  WRSN_REQUIRE(!path.empty(), "usage: wrsn_jsonl_check FILE [--schema NAME]");

  std::ifstream in(path);
  WRSN_REQUIRE(in.good(), "cannot open '" + path + "'");

  if (whole) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string doc = buffer.str();
    std::string whole_error;
    if (!json_validate(doc, &whole_error)) {
      std::cerr << path << ": invalid JSON: " << whole_error << '\n';
      return 1;
    }
    if (!schema.empty() && doc.find(schema) == std::string::npos) {
      std::cerr << path << ": document does not mention schema '" << schema
                << "'\n";
      return 1;
    }
    std::cout << path << ": whole-file JSON ok (" << doc.size() << " bytes)\n";
    return 0;
  }

  std::string line, error;
  std::size_t line_no = 0, records = 0;
  // Journal-schema state: monotone-id and single-terminal-record checks.
  double last_id = 0.0;
  std::size_t terminal_line = 0;  // line of a terminal/done record, if seen
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!json_validate(line, &error)) {
      std::cerr << path << ':' << line_no << ": invalid JSON: " << error << '\n';
      return 1;
    }
    if (terminal_line != 0) {
      std::cerr << path << ':' << line_no
                << ": record after the terminal record on line " << terminal_line
                << '\n';
      return 1;
    }
    if (records == 0 && !schema.empty()) {
      // Cheap containment check is enough for a smoke test; the structural
      // guarantees come from json_validate above.
      const bool has_schema =
          line.find("\"schema\":\"" + schema + "\"") != std::string::npos;
      const bool has_version = line.find("\"version\":") != std::string::npos;
      if (!has_schema || !has_version) {
        std::cerr << path << ":1: meta record does not declare schema '"
                  << schema << "' with a version\n";
        return 1;
      }
    }
    if (records > 0 && schema == "wrsn.spans" &&
        line.find("\"record\":\"span\"") != std::string::npos) {
      if (const char* missing = check_span_record(line)) {
        std::cerr << path << ':' << line_no << ": span record missing field '"
                  << missing << "'\n";
        return 1;
      }
      double t0 = 0.0, t1 = 0.0;
      if (find_number(line, "t0_s", &t0) && find_number(line, "t1_s", &t1) &&
          t1 < t0) {
        std::cerr << path << ':' << line_no << ": span ends before it starts ("
                  << t1 << " < " << t0 << ")\n";
        return 1;
      }
    }
    if (records > 0 && schema == "wrsn.snapshot" &&
        line.find("\"record\":\"snapshot\"") != std::string::npos) {
      if (const char* missing = first_missing(
              line, {"id", "file", "t_s", "events", "bytes", "terminal"})) {
        std::cerr << path << ':' << line_no
                  << ": snapshot record missing field '" << missing << "'\n";
        return 1;
      }
      double id = 0.0;
      find_number(line, "id", &id);
      if (id <= last_id) {
        std::cerr << path << ':' << line_no << ": snapshot id " << id
                  << " not greater than previous id " << last_id << '\n';
        return 1;
      }
      last_id = id;
      if (line.find("\"terminal\":true") != std::string::npos) {
        terminal_line = line_no;
      }
    }
    if (records > 0 && schema == "wrsn.sweep-journal") {
      if (line.find("\"record\":\"cell\"") != std::string::npos) {
        if (const char* missing = first_missing(
                line, {"id", "point", "replica", "seed", "m"})) {
          std::cerr << path << ':' << line_no
                    << ": cell record missing field '" << missing << "'\n";
          return 1;
        }
        double id = 0.0;
        find_number(line, "id", &id);
        if (id <= last_id) {
          std::cerr << path << ':' << line_no << ": cell id " << id
                    << " not greater than previous id " << last_id << '\n';
          return 1;
        }
        last_id = id;
      } else if (line.find("\"record\":\"done\"") != std::string::npos) {
        terminal_line = line_no;
      }
    }
    ++records;
  }
  if (records == 0) {
    std::cerr << path << ": no JSON records found\n";
    return 1;
  }
  std::cout << path << ": " << records << " JSON record(s) ok\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "wrsn_jsonl_check: " << e.what() << '\n';
  return 1;
}
