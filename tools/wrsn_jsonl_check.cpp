// wrsn_jsonl_check — validate a JSON-lines file with core/json's parser.
//
//   wrsn_jsonl_check FILE [--schema wrsn.trace]
//
// Every non-empty line must be one well-formed JSON value. With --schema,
// the first line must additionally be a meta record carrying
// "schema":"<name>" and a "version" field (the JSONL trace contract; see
// obs/trace.hpp). Exit 0 when the whole file validates; exit 1 with the
// first offending line number otherwise. Used as the ctest smoke check for
// `wrsn_trace --format jsonl`.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/json.hpp"

int main(int argc, char** argv) try {
  using namespace wrsn;
  std::string path, schema;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::cout << "wrsn_jsonl_check FILE [--schema NAME]\n";
      return 0;
    }
    if (a == "--schema") {
      WRSN_REQUIRE(i + 1 < args.size(), "--schema needs a value");
      schema = args[++i];
    } else if (path.empty()) {
      path = a;
    } else {
      std::cerr << "unexpected argument '" << a << "'\n";
      return 2;
    }
  }
  WRSN_REQUIRE(!path.empty(), "usage: wrsn_jsonl_check FILE [--schema NAME]");

  std::ifstream in(path);
  WRSN_REQUIRE(in.good(), "cannot open '" + path + "'");

  std::string line, error;
  std::size_t line_no = 0, records = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!json_validate(line, &error)) {
      std::cerr << path << ':' << line_no << ": invalid JSON: " << error << '\n';
      return 1;
    }
    if (records == 0 && !schema.empty()) {
      // Cheap containment check is enough for a smoke test; the structural
      // guarantees come from json_validate above.
      const bool has_schema =
          line.find("\"schema\":\"" + schema + "\"") != std::string::npos;
      const bool has_version = line.find("\"version\":") != std::string::npos;
      if (!has_schema || !has_version) {
        std::cerr << path << ":1: meta record does not declare schema '"
                  << schema << "' with a version\n";
        return 1;
      }
    }
    ++records;
  }
  if (records == 0) {
    std::cerr << path << ": no JSON records found\n";
    return 1;
  }
  std::cout << path << ": " << records << " JSON record(s) ok\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "wrsn_jsonl_check: " << e.what() << '\n';
  return 1;
}
