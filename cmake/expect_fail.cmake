# Runs a command expected to fail gracefully: exit code must be exactly
# EXPECT_RC (default 1, i.e. a handled error, not a crash/abort) and stderr
# must match EXPECT_STDERR. Used by the CLI smoke tests to pin down the
# "one-line diagnostic, nonzero exit" contract of the tools.
#
#   cmake -DCMD=/path/to/tool "-DARGS=--config;missing.cfg"
#         -DEXPECT_STDERR=regex [-DEXPECT_RC=1] -P expect_fail.cmake
if(NOT DEFINED CMD)
  message(FATAL_ERROR "expect_fail.cmake: CMD is required")
endif()
if(NOT DEFINED EXPECT_RC)
  set(EXPECT_RC 1)
endif()

execute_process(
  COMMAND ${CMD} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL ${EXPECT_RC})
  message(FATAL_ERROR
    "expected exit code ${EXPECT_RC}, got '${rc}'\nstderr: ${err}")
endif()
if(DEFINED EXPECT_STDERR AND NOT err MATCHES "${EXPECT_STDERR}")
  message(FATAL_ERROR
    "stderr does not match '${EXPECT_STDERR}':\n${err}")
endif()
