#pragma once
// Sensor/RV battery with piecewise-constant discharge.
//
// The discrete-event engine never "ticks" batteries: between events each
// battery drains at a constant power, so the level at any time and the time
// of the next threshold crossing are closed-form. Battery owns only energy
// book-keeping; which power applies when is the simulator's job.

#include <optional>

#include "core/units.hpp"

namespace wrsn {

class Battery {
 public:
  Battery() = default;
  // Starts full.
  explicit Battery(Joule capacity);
  Battery(Joule capacity, Joule initial_level);

  [[nodiscard]] Joule capacity() const { return capacity_; }
  [[nodiscard]] Joule level() const { return level_; }
  [[nodiscard]] bool depleted() const { return level_.value() <= 0.0; }
  [[nodiscard]] double fraction() const {
    return capacity_.value() > 0.0 ? level_.value() / capacity_.value() : 0.0;
  }
  // Demand d_i of Section IV-A: capacity minus current level.
  [[nodiscard]] Joule demand() const { return capacity_ - level_; }

  // Removes energy; clamps at zero and returns the energy actually drawn.
  Joule drain(Joule amount);
  // Adds energy; clamps at capacity and returns the energy actually stored.
  Joule charge(Joule amount);
  void refill() { level_ = capacity_; }
  // Direct write-back for the simulator's struct-of-arrays settlement
  // (sim/sensor_soa.hpp): the SoA block does the clamp arithmetic and
  // mirrors the result here so every other reader stays current. The caller
  // is responsible for keeping the value inside [0, capacity].
  void set_level(Joule level) { level_ = level; }

  // Time until the level falls to `threshold` when draining at `power`.
  // nullopt when power is zero/negative or the level is already at or below
  // the threshold is *not* special-cased to zero: callers distinguish
  // "already below" themselves, so this returns 0 s in that case.
  [[nodiscard]] std::optional<Second> time_to_reach(Joule threshold, Watt power) const;

 private:
  Joule capacity_{0.0};
  Joule level_{0.0};
};

}  // namespace wrsn
