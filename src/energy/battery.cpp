#include "energy/battery.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace wrsn {

Battery::Battery(Joule capacity) : Battery(capacity, capacity) {}

Battery::Battery(Joule capacity, Joule initial_level)
    : capacity_(capacity), level_(initial_level) {
  WRSN_REQUIRE(capacity.value() > 0.0, "battery capacity must be positive");
  WRSN_REQUIRE(initial_level.value() >= 0.0 && initial_level <= capacity,
               "initial level must lie in [0, capacity]");
}

Joule Battery::drain(Joule amount) {
  WRSN_REQUIRE(amount.value() >= 0.0, "drain amount must be non-negative");
  const Joule drawn = std::min(amount, level_);
  level_ -= drawn;
  return drawn;
}

Joule Battery::charge(Joule amount) {
  WRSN_REQUIRE(amount.value() >= 0.0, "charge amount must be non-negative");
  const Joule stored = std::min(amount, capacity_ - level_);
  level_ += stored;
  return stored;
}

std::optional<Second> Battery::time_to_reach(Joule threshold, Watt power) const {
  if (power.value() <= 0.0) return std::nullopt;
  if (level_ <= threshold) return Second{0.0};
  return (level_ - threshold) / power;
}

}  // namespace wrsn
