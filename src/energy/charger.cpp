#include "energy/charger.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace wrsn {

Charger::Charger(Watt output_power) : power_(output_power) {
  WRSN_REQUIRE(output_power.value() > 0.0, "charger power must be positive");
}

Second Charger::transfer_time(Joule amount) const {
  WRSN_REQUIRE(amount.value() >= 0.0, "transfer amount must be non-negative");
  return amount / power_;
}

Joule Charger::deliver(Battery& sink, Joule budget) const {
  WRSN_REQUIRE(budget.value() >= 0.0, "charge budget must be non-negative");
  return sink.charge(std::min(budget, sink.demand()));
}

Joule Charger::deliver_full(Battery& sink) const {
  return sink.charge(sink.demand());
}

}  // namespace wrsn
