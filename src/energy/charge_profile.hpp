#pragma once
// Charging time models for the wireless energy transfer (the paper cites the
// Panasonic Ni-MH handbook [15] for its "recharge time model").
//
//   * kConstantPower — energy flows at the charger's rated power until full;
//     dwell = demand / P. The default, and what Section IV's schedulers
//     implicitly assume (dwell proportional to demand).
//   * kTaperedCcCv  — constant power until the knee state-of-charge, then
//     the acceptance power tapers linearly to a trickle at 100% (the classic
//     -dV/dt endgame of Ni-MH charging). Same average behaviour at low
//     state-of-charge, materially longer dwell for nearly-full batteries.
//
// Both models are exactly integrable, so the DES can schedule charge-done
// events in closed form.

#include "core/config.hpp"
#include "core/units.hpp"
#include "energy/battery.hpp"

namespace wrsn {

struct ChargeProfile {
  ChargeProfileKind kind = ChargeProfileKind::kConstantPower;
  Watt rated_power{1.2};
  // Taper parameters (kTaperedCcCv only): full power below `knee_soc`, then
  // linear taper down to `trickle_fraction` * rated_power at SoC = 1.
  double knee_soc = 0.8;
  double trickle_fraction = 0.1;

  // Time to charge `battery` from its current level up to `target_level`.
  // target_level is clamped to [level, capacity].
  [[nodiscard]] Second time_to_reach(const Battery& battery, Joule target_level) const;
  // Convenience: time to full.
  [[nodiscard]] Second time_to_full(const Battery& battery) const;

  // Energy delivered after charging `battery` for `duration` (closed form,
  // inverse of time_to_reach). Does not modify the battery.
  [[nodiscard]] Joule energy_after(const Battery& battery, Second duration) const;

  void validate() const;
};

}  // namespace wrsn
