#pragma once
// Wireless charging model (recharge time per the Ni-MH handbook [15]):
// a constant-power transfer, so charging a demand d takes d / P seconds.
// Also models the RV traction energy e_m and the base-station dock.

#include "core/units.hpp"
#include "energy/battery.hpp"

namespace wrsn {

class Charger {
 public:
  explicit Charger(Watt output_power);

  [[nodiscard]] Watt output_power() const { return power_; }

  // Time to transfer `amount` of energy.
  [[nodiscard]] Second transfer_time(Joule amount) const;

  // Transfers up to `budget` into `sink`, bounded by the sink's headroom.
  // Returns the energy actually delivered.
  Joule deliver(Battery& sink, Joule budget) const;
  // Fills the sink completely (budget = demand).
  Joule deliver_full(Battery& sink) const;

 private:
  Watt power_;
};

// Traction model of an RV: energy and time to cover a distance.
struct Traction {
  JoulePerMeter move_cost;
  MeterPerSecond speed;

  [[nodiscard]] Joule energy(Meter d) const { return move_cost * d; }
  [[nodiscard]] Second time(Meter d) const { return d / speed; }
};

}  // namespace wrsn
