#include "energy/charge_profile.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace wrsn {

void ChargeProfile::validate() const {
  WRSN_REQUIRE(rated_power.value() > 0.0, "charger power must be positive");
  WRSN_REQUIRE(knee_soc > 0.0 && knee_soc < 1.0, "knee SoC must lie in (0,1)");
  WRSN_REQUIRE(trickle_fraction > 0.0 && trickle_fraction <= 1.0,
               "trickle fraction must lie in (0,1]");
}

namespace {

// Taper coefficients: P(s) = P * (a - b*s) for s in [knee, 1], with
// P(knee) = P and P(1) = trickle * P.
struct Taper {
  double a;
  double b;
};

Taper taper_of(const ChargeProfile& p) {
  const double beta = (1.0 - p.trickle_fraction) / (1.0 - p.knee_soc);
  return {1.0 + beta * p.knee_soc, beta};
}

}  // namespace

Second ChargeProfile::time_to_reach(const Battery& battery, Joule target_level) const {
  validate();
  const double cap = battery.capacity().value();
  const double s0 = battery.fraction();
  const double s1 =
      std::clamp(target_level.value() / cap, s0, 1.0);
  if (s1 <= s0) return Second{0.0};
  const double pw = rated_power.value();

  if (kind == ChargeProfileKind::kConstantPower) {
    return Second{cap * (s1 - s0) / pw};
  }

  double t = 0.0;
  double s = s0;
  if (s < knee_soc) {
    const double s_cc_end = std::min(s1, knee_soc);
    t += cap * (s_cc_end - s) / pw;
    s = s_cc_end;
  }
  if (s1 > s) {
    const Taper tp = taper_of(*this);
    if (tp.b <= 1e-12) {
      t += cap * (s1 - s) / pw;  // trickle == 1: no actual taper
    } else {
      // ds/dt = (P/C) (a - b s)  =>  t = C/(P b) ln((a - b s)/(a - b s1)).
      t += cap / (pw * tp.b) * std::log((tp.a - tp.b * s) / (tp.a - tp.b * s1));
    }
  }
  return Second{t};
}

Second ChargeProfile::time_to_full(const Battery& battery) const {
  return time_to_reach(battery, battery.capacity());
}

Joule ChargeProfile::energy_after(const Battery& battery, Second duration) const {
  validate();
  WRSN_REQUIRE(duration.value() >= 0.0, "duration must be non-negative");
  const double cap = battery.capacity().value();
  const double s0 = battery.fraction();
  const double pw = rated_power.value();
  double t = duration.value();
  double s = s0;

  if (kind == ChargeProfileKind::kConstantPower) {
    s = std::min(1.0, s0 + pw * t / cap);
    return Joule{cap * (s - s0)};
  }

  if (s < knee_soc) {
    const double t_knee = cap * (knee_soc - s) / pw;
    if (t <= t_knee) {
      s += pw * t / cap;
      return Joule{cap * (s - s0)};
    }
    s = knee_soc;
    t -= t_knee;
  }
  const Taper tp = taper_of(*this);
  if (tp.b <= 1e-12) {
    s = std::min(1.0, s + pw * t / cap);
  } else {
    // Invert the taper solution: a - b s(t) = (a - b s) e^{-P b t / C}.
    const double decayed = (tp.a - tp.b * s) * std::exp(-pw * tp.b * t / cap);
    s = std::min(1.0, (tp.a - decayed) / tp.b);
  }
  return Joule{cap * (s - s0)};
}

}  // namespace wrsn
