#pragma once
// Deterministic fault injection (ISSUE 4).
//
// A FaultPlan is a pure function of (SimConfig.seed, SimConfig.fault): every
// fault the simulation will experience — RV breakdown windows, per-sensor
// hardware-fault windows, per-sensor battery self-discharge noise, and the
// drop/delay verdict of every request-uplink attempt — is derived from named
// RNG sub-streams of the master seed. Nothing depends on event interleaving
// or engine choice, so the fast and reference World engines observe exactly
// the same faults and stay bit-identical under a shared plan.
//
// The World owns a FaultInjector (absent when faults are disabled) and
// consults it at event boundaries only:
//   * add_request -> uplink(sensor, attempt): deliver / drop / delay.
//     Dropped attempts are retried after retry_delay(attempt) (exponential
//     backoff) until max_retries, then the request expires (TTL).
//   * constructor -> rv_breakdowns(rv) / sensor_faults(sensor) are pushed as
//     kRvBreakdown / kSensorFaultStart / kSensorFaultEnd events.
//   * update_drain -> extra_drain_w(sensor) adds the self-discharge noise.

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "net/ids.hpp"

namespace wrsn {

// A closed fault interval [start, end) in simulation seconds.
struct FaultWindow {
  double start = 0.0;
  double end = 0.0;
};

enum class UplinkOutcome : std::uint8_t {
  kDeliver,  // request reaches the base station now
  kDrop,     // attempt lost; sensor retries after backoff (or expires)
  kDelay,    // attempt deferred; lands `delay` seconds later
};

struct UplinkDecision {
  UplinkOutcome outcome = UplinkOutcome::kDeliver;
  double delay_s = 0.0;  // only meaningful for kDelay
};

class FaultPlan {
 public:
  // Precomputes all fault windows for the configured horizon. `config` must
  // already be validated; `config.fault.enabled` is not consulted here (the
  // caller decides whether to build a plan at all).
  explicit FaultPlan(const SimConfig& config);

  [[nodiscard]] const FaultConfig& config() const { return fault_; }

  // Breakdown windows of RV `rv`, ascending and non-overlapping, clipped to
  // the horizon. The RV goes out of service at `start` and rejoins (towed
  // back to base, refilled) at `end`.
  [[nodiscard]] const std::vector<FaultWindow>& rv_breakdowns(std::size_t rv) const;

  // Transient hardware-fault windows of sensor `s` (sensing down, radio
  // still relaying), ascending and non-overlapping.
  [[nodiscard]] const std::vector<FaultWindow>& sensor_faults(SensorId s) const;

  // Extra constant battery drain (self-discharge noise) of sensor `s`, in
  // watts. Zero when battery_noise_per_day is zero.
  [[nodiscard]] double extra_drain_w(SensorId s) const { return extra_drain_w_[s]; }

  // Verdict for the `attempt`-th uplink attempt (0-based) of sensor `s`'s
  // current request. Order-independent: each (sensor, attempt) pair draws
  // from its own sub-stream, so the verdict does not depend on how many
  // other sensors requested first.
  [[nodiscard]] UplinkDecision uplink(SensorId s, std::uint64_t attempt) const;

  // Backoff delay before re-emitting after the `attempt`-th drop:
  // retry_timeout * backoff^attempt, seconds.
  [[nodiscard]] double retry_delay_s(std::uint64_t attempt) const;

  [[nodiscard]] std::uint64_t max_retries() const { return fault_.request_max_retries; }

 private:
  FaultConfig fault_;
  RngStreams streams_;
  std::vector<std::vector<FaultWindow>> rv_windows_;
  std::vector<std::vector<FaultWindow>> sensor_windows_;
  std::vector<double> extra_drain_w_;
};

// Runtime handle the World holds; currently a thin owner of the plan, kept
// separate so mutable injection state (e.g. adaptive fault campaigns) can be
// added later without touching the plan's pure-function contract.
class FaultInjector {
 public:
  explicit FaultInjector(const SimConfig& config) : plan_(config) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultConfig& config() const { return plan_.config(); }

 private:
  FaultPlan plan_;
};

}  // namespace wrsn
