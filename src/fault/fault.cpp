#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace wrsn {

namespace {

// Draws ascending non-overlapping [start, start+duration) windows with
// exponential inter-arrival times at `rate` (per second), clipped to the
// horizon. The gap is measured from the end of the previous window so a
// window never starts while the previous one is still open.
std::vector<FaultWindow> draw_windows(Xoshiro256 rng, double rate_per_s,
                                      double duration_s, double horizon_s) {
  std::vector<FaultWindow> windows;
  if (rate_per_s <= 0.0 || duration_s <= 0.0) return windows;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(rate_per_s);
    if (t >= horizon_s) break;
    windows.push_back({t, std::min(t + duration_s, horizon_s)});
    t += duration_s;
  }
  return windows;
}

}  // namespace

FaultPlan::FaultPlan(const SimConfig& config)
    : fault_(config.fault), streams_(config.seed) {
  const double horizon = config.sim_duration.value();

  rv_windows_.resize(config.num_rvs);
  const double mtbf_s = fault_.rv_mtbf_hours * 3600.0;
  for (std::size_t r = 0; r < config.num_rvs; ++r) {
    rv_windows_[r] =
        draw_windows(streams_.stream("fault-rv-breakdown", r),
                     mtbf_s > 0.0 ? 1.0 / mtbf_s : 0.0,
                     fault_.rv_repair_duration.value(), horizon);
  }
  // Pinned demo breakdown of RV 0, merged in unless it would overlap a drawn
  // window (the handler ignores breakdowns of an already-broken RV anyway;
  // keeping the plan windows disjoint keeps them easy to reason about).
  const double pinned = fault_.rv_breakdown_at.value();
  if (pinned > 0.0 && pinned < horizon && !rv_windows_.empty()) {
    auto& w0 = rv_windows_[0];
    const double end = std::min(pinned + fault_.rv_repair_duration.value(), horizon);
    const bool overlaps =
        std::any_of(w0.begin(), w0.end(), [&](const FaultWindow& w) {
          return w.start < end && pinned < w.end;
        });
    if (!overlaps) {
      w0.push_back({pinned, end});
      std::sort(w0.begin(), w0.end(),
                [](const FaultWindow& a, const FaultWindow& b) {
                  return a.start < b.start;
                });
    }
  }

  sensor_windows_.resize(config.num_sensors);
  const double fault_rate_s = fault_.sensor_fault_rate_per_day / 86400.0;
  for (std::size_t s = 0; s < config.num_sensors; ++s) {
    sensor_windows_[s] =
        draw_windows(streams_.stream("fault-sensor", s), fault_rate_s,
                     fault_.sensor_fault_duration.value(), horizon);
  }

  extra_drain_w_.assign(config.num_sensors, 0.0);
  if (fault_.battery_noise_per_day > 0.0) {
    const double max_w =
        fault_.battery_noise_per_day * config.battery.capacity.value() / 86400.0;
    for (std::size_t s = 0; s < config.num_sensors; ++s) {
      Xoshiro256 rng = streams_.stream("fault-battery-noise", s);
      extra_drain_w_[s] = rng.uniform(0.0, max_w);
    }
  }
}

const std::vector<FaultWindow>& FaultPlan::rv_breakdowns(std::size_t rv) const {
  WRSN_REQUIRE(rv < rv_windows_.size(), "RV id out of range");
  return rv_windows_[rv];
}

const std::vector<FaultWindow>& FaultPlan::sensor_faults(SensorId s) const {
  WRSN_REQUIRE(s < sensor_windows_.size(), "sensor id out of range");
  return sensor_windows_[s];
}

UplinkDecision FaultPlan::uplink(SensorId s, std::uint64_t attempt) const {
  UplinkDecision d;
  if (fault_.request_loss_prob <= 0.0 && fault_.request_delay_prob <= 0.0) {
    return d;
  }
  // One sub-stream per (sensor, attempt): the verdict is independent of the
  // order in which the World evaluates requests, which is what keeps the
  // fast and reference engines in lock-step under faults.
  Xoshiro256 rng =
      streams_.stream("fault-uplink", (static_cast<std::uint64_t>(s) << 16) | attempt);
  const double u = rng.uniform();
  if (u < fault_.request_loss_prob) {
    d.outcome = UplinkOutcome::kDrop;
    return d;
  }
  if (u < fault_.request_loss_prob + fault_.request_delay_prob) {
    d.outcome = UplinkOutcome::kDelay;
    d.delay_s = rng.uniform(0.0, fault_.request_delay_max.value());
    return d;
  }
  return d;
}

double FaultPlan::retry_delay_s(std::uint64_t attempt) const {
  return fault_.request_retry_timeout.value() *
         std::pow(fault_.request_retry_backoff, static_cast<double>(attempt));
}

}  // namespace wrsn
