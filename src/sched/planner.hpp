#pragma once
// Recharge route planners (Section IV).
//
//   * greedy_next          — Algorithm 2, one destination per step.
//   * insertion_sequence   — Algorithm 3, single-RV sequence built by
//                            profitable insertions between crt and dest.
//   * partition_items      — Partition-Scheme grouping (K-means, Eq. 15)
//                            plus group->RV matching.
//   * combined_plan        — Combined-Scheme: Algorithm 3 sequentially over
//                            the global item list for each RV.
//
// All planners work on aggregated RechargeItems and respect the RV energy
// budget: traction energy + delivered energy + the return leg to base must
// fit within the available energy (constraint (7) with the reserve of
// Algorithm 3's "reserve energy for the dest node"). Critical items
// (clusters with members near depletion) are prioritized for destination
// selection per Section III-C.
//
// The free functions below are the O(n) linear-scan REFERENCE
// implementations. The production hot path is sched/plan_context.hpp, which
// answers the same queries with grid-pruned branch-and-bound search and is
// bit-identical to these scans on every input (enforced by the
// planner-equivalence property tests).

#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "geom/vec2.hpp"
#include "sched/request.hpp"

namespace wrsn {

struct RvPlanState {
  Vec2 pos;         // current RV position
  Joule available;  // energy usable for travel + delivery this tour
};

struct PlannerParams {
  JoulePerMeter em;  // traction cost
  Vec2 base;         // base-station position (return leg)
};

// Algorithm 2: index of the affordable item with maximum recharge profit
// d - e_m * dist(rv, item); critical items take precedence. `taken[i]`
// marks items already claimed. nullopt when nothing is affordable.
[[nodiscard]] std::optional<std::size_t> greedy_next(
    const RvPlanState& rv, const std::vector<RechargeItem>& items,
    const std::vector<bool>& taken, const PlannerParams& params);

// Extension baseline: the affordable item nearest to the RV (critical items
// first), ignoring demand. Same contract as greedy_next.
[[nodiscard]] std::optional<std::size_t> nearest_next(
    const RvPlanState& rv, const std::vector<RechargeItem>& items,
    const std::vector<bool>& taken, const PlannerParams& params);

// Extension baseline: the affordable item whose lowest member battery
// fraction is smallest (earliest estimated depletion deadline). Same
// contract as greedy_next.
[[nodiscard]] std::optional<std::size_t> edf_next(
    const RvPlanState& rv, const std::vector<RechargeItem>& items,
    const std::vector<bool>& taken, const PlannerParams& params);

// Algorithm 3: builds a visiting sequence (indices into `items`) for one RV.
// Marks chosen items in `taken`. The first element is the max-profit
// destination; remaining elements were inserted while their profit
// difference p(s, n) stayed positive and the budget allowed it.
[[nodiscard]] std::vector<std::size_t> insertion_sequence(
    const RvPlanState& rv, const std::vector<RechargeItem>& items,
    std::vector<bool>& taken, const PlannerParams& params);

// Partition-Scheme: K-means on item positions into `num_groups` groups
// (fewer when there are fewer items). groups[g] lists item indices.
[[nodiscard]] std::vector<std::vector<std::size_t>> partition_items(
    const std::vector<RechargeItem>& items, std::size_t num_groups,
    Xoshiro256& rng);

// Matches each group (by its centroid) to the nearest available RV;
// returns rv index per group. Greedy min-distance matching, exact for the
// fleet sizes of the paper (m = 3).
[[nodiscard]] std::vector<std::size_t> match_groups_to_rvs(
    const std::vector<Vec2>& group_centroids, const std::vector<Vec2>& rv_positions);

// Combined-Scheme: Algorithm 3 for each RV in turn over the shared item
// list. sequences[a] is RV a's visiting order (possibly empty).
[[nodiscard]] std::vector<std::vector<std::size_t>> combined_plan(
    const std::vector<RvPlanState>& rvs, const std::vector<RechargeItem>& items,
    const PlannerParams& params);

// Total traction length of the open path rv.pos -> items[seq...] -> (+base
// return when `include_return`). Shared by planners, tests and benches.
[[nodiscard]] double sequence_length(Vec2 start, const std::vector<RechargeItem>& items,
                                     const std::vector<std::size_t>& seq,
                                     std::optional<Vec2> return_to = std::nullopt);

// Plan profit: sum of demands minus e_m * path length (expression (2) for a
// single tour, no return leg — matching the paper's objective).
[[nodiscard]] Joule sequence_profit(Vec2 start, const std::vector<RechargeItem>& items,
                                    const std::vector<std::size_t>& seq,
                                    JoulePerMeter em);

}  // namespace wrsn
