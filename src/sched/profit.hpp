#pragma once
// Recharge profit (Section IV): energy delivered minus RV traveling energy,
// the objective of expression (2) and the selection rule of Algorithms 2/3.

#include "core/units.hpp"
#include "geom/vec2.hpp"
#include "sched/request.hpp"

namespace wrsn {

// Profit of driving from `from` straight to `item` and serving it:
//   demand - e_m * dist(from, item.pos)
[[nodiscard]] inline Joule recharge_profit(Vec2 from, const RechargeItem& item,
                                           JoulePerMeter em) {
  return item.demand - em * Meter{distance(from, item.pos)};
}

// Energy needed to drive from `from` to the item, fill it, and still make it
// back to `base` (the affordability check of Algorithms 2/3). Shared by the
// linear-scan reference planners and the grid-pruned PlanContext so both
// evaluate the exact same floating-point expression.
[[nodiscard]] inline Joule serve_cost(Vec2 from, const RechargeItem& item,
                                      JoulePerMeter em, Vec2 base) {
  const double travel = distance(from, item.pos) + distance(item.pos, base);
  return em * Meter{travel} + item.demand;
}

// Detour length of inserting point `p` between `a` and `b`.
[[nodiscard]] inline double insertion_detour(Vec2 a, Vec2 b, Vec2 p) {
  return distance(a, p) + distance(p, b) - distance(a, b);
}

// Profit difference p(s, n) of Algorithm 3: demand gained minus the traction
// energy of the detour.
[[nodiscard]] inline Joule insertion_profit(Vec2 a, Vec2 b, const RechargeItem& item,
                                            JoulePerMeter em) {
  return item.demand - em * Meter{insertion_detour(a, b, item.pos)};
}

}  // namespace wrsn
