#include "sched/plan_context.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "obs/telemetry.hpp"
#include "sched/profit.hpp"

namespace wrsn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Below this size the linear reference scan wins: the branch-and-bound
// bookkeeping costs more than the handful of distance evaluations it saves.
constexpr std::size_t kSmallN = 16;

// Conservative slack applied to every pruning threshold. Profit-domain
// thresholds get (slack + kAbsSlack) * (1 + kRelSlack) and squared distance
// lower bounds are shaved by kLbShave, so floating-point rounding can only
// keep a cell alive — never discard one holding the item the reference scan
// would pick. The margins dwarf the few-ulp error of the profit expressions
// at the magnitudes the simulator produces (<= ~1e7 J / m).
constexpr double kRelSlack = 1e-9;
constexpr double kAbsSlack = 1e-9;
constexpr double kLbShave = 1.0 - 1e-12;

double field_extent(const std::vector<RechargeItem>& items, Vec2 base) {
  double extent = std::max({1.0, base.x, base.y});
  for (const auto& item : items) {
    extent = std::max({extent, item.pos.x, item.pos.y});
  }
  return extent;
}

// ~sqrt(n) cells per side keeps O(1) expected items per cell at any density.
double cell_size_for(double extent, std::size_t n) {
  const double side = std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1))));
  const int cells = std::clamp(static_cast<int>(side), 1, 256);
  return extent / static_cast<double>(cells);
}

}  // namespace

bool planners_use_reference() {
  static const bool use = [] {
    const char* env = std::getenv("WRSN_REFERENCE_PLANNERS");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return use;
}

PlanContext::PlanContext(const std::vector<RechargeItem>& items,
                         const PlannerParams& params, PlanArena* arena)
    : items_(&items),
      params_(params),
      grid_(field_extent(items, params.base),
            cell_size_for(field_extent(items, params.base), items.size())),
      base_dist_(ArenaAllocator<double>(arena)),
      critical_(ArenaAllocator<std::size_t>(arena)),
      cell_max_demand_(ArenaAllocator<double>(arena)),
      cell_max_demand_noncrit_(ArenaAllocator<double>(arena)) {
  const std::size_t n = items.size();
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(items[i].pos);
    if (items[i].critical) critical_.push_back(i);
  }
  // Same call the reference's serve_cost makes, so the sum in serve() is
  // bit-identical to its `travel` expression. Each slot is written exactly
  // once from per-item inputs, so the precompute shards freely across the
  // installed executor (core/parallel.hpp).
  base_dist_.resize(n);
  ParallelExec* exec = current_parallel();
  if (exec != nullptr && exec->should_shard(n)) {
    exec->for_shards(n, [this, &items](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        base_dist_[i] = distance(items[i].pos, params_.base);
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      base_dist_[i] = distance(items[i].pos, params.base);
    }
  }
  grid_.build(positions);

  cell_max_demand_.assign(grid_.num_cells(), -kInf);
  cell_max_demand_noncrit_.assign(grid_.num_cells(), -kInf);
  max_demand_noncrit_ = -kInf;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cell =
        grid_.cell_index(grid_.cell_coord(positions[i].x), grid_.cell_coord(positions[i].y));
    const double d = items[i].demand.value();
    cell_max_demand_[cell] = std::max(cell_max_demand_[cell], d);
    if (!items[i].critical) {
      cell_max_demand_noncrit_[cell] = std::max(cell_max_demand_noncrit_[cell], d);
      max_demand_noncrit_ = std::max(max_demand_noncrit_, d);
    }
  }
}

std::optional<std::size_t> PlanContext::greedy_next(
    const RvPlanState& rv, const std::vector<bool>& taken) const {
  if (planners_use_reference() || size() < kSmallN) {
    return wrsn::greedy_next(rv, *items_, taken, params_);
  }
  WRSN_OBS_SCOPE("planner/ctx_greedy");
  WRSN_REQUIRE(taken.size() == size(), "taken mask size mismatch");
  const auto& items = *items_;
  const double em = params_.em.value();
  auto serve = [&](std::size_t i) {
    return params_.em * Meter{distance(rv.pos, items[i].pos) + base_dist_[i]} +
           items[i].demand;
  };

  // Critical phase: an affordable critical item beats every non-critical
  // one. Ascending scan, strictly-greater profit wins — exact reference tie
  // behaviour (lowest index on equal profit).
  {
    std::optional<std::size_t> best;
    Joule best_profit{-kInf};
    for (std::size_t i : critical_) {
      if (taken[i]) continue;
      if (serve(i) > rv.available) continue;
      const Joule p = recharge_profit(rv.pos, items[i], params_.em);
      if (!best || p > best_profit) {
        best = i;
        best_profit = p;
      }
    }
    if (best) return best;
  }

  // Non-critical phase: ring-expanding branch-and-bound. A cell can only
  // supply profit <= cell_max_demand - em * dist_lower_bound.
  std::size_t best_i = kInvalidId;
  Joule best_profit{-kInf};
  bool have = false;
  const int qx = grid_.cell_coord(rv.pos.x);
  const int qy = grid_.cell_coord(rv.pos.y);
  const int cps = grid_.cells_per_side();

  auto visit_cell = [&](int cx, int cy) {
    if (cx < 0 || cx >= cps || cy < 0 || cy >= cps) return;
    const std::size_t cell = grid_.cell_index(cx, cy);
    const double cellmax = cell_max_demand_noncrit_[cell];
    if (cellmax == -kInf) return;  // empty, or critical items only
    if (have) {
      const double slack = cellmax - best_profit.value();
      // Profit never exceeds the demand (the traction term is >= 0), so a
      // cell whose best demand trails the incumbent is out regardless of
      // position; otherwise prune on the distance the slack still affords.
      if (slack < 0.0) return;
      const double thr = (slack + kAbsSlack) * (1.0 + kRelSlack) / em;
      if (grid_.cell_distance_lower_bound_sq(rv.pos, cx, cy) * kLbShave > thr * thr) {
        return;
      }
    }
    grid_.for_each_in_cell(cx, cy, [&](std::size_t i) {
      if (items[i].critical || taken[i]) return;
      if (serve(i) > rv.available) return;
      const Joule p = recharge_profit(rv.pos, items[i], params_.em);
      // Ring order is not index order: on an exact tie, take the lower
      // index, which is what the reference's ascending strict-> scan keeps.
      if (!have || p > best_profit || (p == best_profit && i < best_i)) {
        have = true;
        best_profit = p;
        best_i = i;
      }
    });
  };

  for (int ring = 0; ring < cps; ++ring) {
    if (ring > 0 && have) {
      // Every cell from this ring outward sits at distance
      // > (ring - 1) * cell_size; stop once even the global best demand
      // cannot beat the incumbent from there.
      const double ring_lb = static_cast<double>(ring - 1) * grid_.cell_size() * kLbShave;
      const double slack = max_demand_noncrit_ - best_profit.value();
      const double thr = (slack + kAbsSlack) * (1.0 + kRelSlack) / em;
      if (ring_lb > thr) break;
    }
    if (ring == 0) {
      visit_cell(qx, qy);
      continue;
    }
    for (int cx = qx - ring; cx <= qx + ring; ++cx) {
      visit_cell(cx, qy - ring);
      visit_cell(cx, qy + ring);
    }
    for (int cy = qy - ring + 1; cy <= qy + ring - 1; ++cy) {
      visit_cell(qx - ring, cy);
      visit_cell(qx + ring, cy);
    }
  }
  if (!have) return std::nullopt;
  return best_i;
}

std::optional<std::size_t> PlanContext::nearest_next(
    const RvPlanState& rv, const std::vector<bool>& taken) const {
  if (planners_use_reference() || size() < kSmallN) {
    return wrsn::nearest_next(rv, *items_, taken, params_);
  }
  WRSN_OBS_SCOPE("planner/ctx_nearest");
  WRSN_REQUIRE(taken.size() == size(), "taken mask size mismatch");
  const auto& items = *items_;
  auto serve = [&](std::size_t i) {
    return params_.em * Meter{distance(rv.pos, items[i].pos) + base_dist_[i]} +
           items[i].demand;
  };

  {
    std::optional<std::size_t> best;
    double best_d2 = kInf;
    for (std::size_t i : critical_) {
      if (taken[i]) continue;
      if (serve(i) > rv.available) continue;
      const double d2 = squared_distance(rv.pos, items[i].pos);
      if (!best || d2 < best_d2) {
        best = i;
        best_d2 = d2;
      }
    }
    if (best) return best;
  }

  // Nearest affordable non-critical item; plain geometric ring search with
  // the affordability filter applied inside the cells. The incumbent only
  // advances on affordable items, so the bound stays sound.
  std::size_t best_i = kInvalidId;
  double best_d2 = kInf;
  bool have = false;
  const int qx = grid_.cell_coord(rv.pos.x);
  const int qy = grid_.cell_coord(rv.pos.y);
  const int cps = grid_.cells_per_side();

  auto visit_cell = [&](int cx, int cy) {
    if (cx < 0 || cx >= cps || cy < 0 || cy >= cps) return;
    const std::size_t cell = grid_.cell_index(cx, cy);
    if (cell_max_demand_noncrit_[cell] == -kInf) return;
    if (have &&
        grid_.cell_distance_lower_bound_sq(rv.pos, cx, cy) * kLbShave > best_d2) {
      return;
    }
    grid_.for_each_in_cell(cx, cy, [&](std::size_t i) {
      if (items[i].critical || taken[i]) return;
      if (serve(i) > rv.available) return;
      const double d2 = squared_distance(rv.pos, items[i].pos);
      if (!have || d2 < best_d2 || (d2 == best_d2 && i < best_i)) {
        have = true;
        best_d2 = d2;
        best_i = i;
      }
    });
  };

  for (int ring = 0; ring < cps; ++ring) {
    if (ring > 0 && have) {
      const double ring_lb = static_cast<double>(ring - 1) * grid_.cell_size() * kLbShave;
      if (ring_lb * ring_lb > best_d2) break;
    }
    if (ring == 0) {
      visit_cell(qx, qy);
      continue;
    }
    for (int cx = qx - ring; cx <= qx + ring; ++cx) {
      visit_cell(cx, qy - ring);
      visit_cell(cx, qy + ring);
    }
    for (int cy = qy - ring + 1; cy <= qy + ring - 1; ++cy) {
      visit_cell(qx - ring, cy);
      visit_cell(qx + ring, cy);
    }
  }
  if (!have) return std::nullopt;
  return best_i;
}

std::optional<std::size_t> PlanContext::edf_next(
    const RvPlanState& rv, const std::vector<bool>& taken) const {
  // The EDF key is the battery fraction, not a spatial quantity — nothing
  // for the grid to prune on.
  return wrsn::edf_next(rv, *items_, taken, params_);
}

void PlanContext::best_insertion_in_slot(Vec2 a, Vec2 b, std::size_t slot,
                                         Joule spent, Joule available,
                                         const std::vector<bool>& taken,
                                         Joule max_untaken_demand, Joule& best_profit,
                                         std::size_t& best_item,
                                         std::size_t& best_slot) const {
  const auto& items = *items_;
  const double em = params_.em.value();

  // The detour is never negative, so no insertion beats the incumbent once
  // even the largest untaken demand trails it.
  const double max_demand = max_untaken_demand.value();
  if (max_demand + std::abs(max_demand) * kRelSlack + kAbsSlack <
      best_profit.value()) {
    return;
  }

  // Median length inequality: d(a,p) + d(p,b) >= 2 * d(mid,p), hence
  // detour(a,b,p) >= 2 * d(mid,p) - d(a,b) and
  // profit(p) <= demand(p) + em * d(a,b) - 2 * em * d(mid,p).
  // Rings therefore expand around the slot midpoint.
  const double d_ab = distance(a, b);
  const Vec2 mid{(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
  const int qx = grid_.cell_coord(mid.x);
  const int qy = grid_.cell_coord(mid.y);
  const int cps = grid_.cells_per_side();

  auto visit_cell = [&](int cx, int cy) {
    if (cx < 0 || cx >= cps || cy < 0 || cy >= cps) return;
    const std::size_t cell = grid_.cell_index(cx, cy);
    const double cellmax = cell_max_demand_[cell];
    if (cellmax == -kInf) return;
    if (cellmax + std::abs(cellmax) * kRelSlack + kAbsSlack < best_profit.value()) {
      return;
    }
    const double slack = cellmax - best_profit.value() + em * d_ab;
    if (slack < 0.0) return;
    const double thr = (slack + kAbsSlack) * (1.0 + kRelSlack) / (2.0 * em);
    if (grid_.cell_distance_lower_bound_sq(mid, cx, cy) * kLbShave > thr * thr) {
      return;
    }
    grid_.for_each_in_cell(cx, cy, [&](std::size_t n) {
      if (taken[n]) return;
      const Joule extra =
          params_.em * Meter{insertion_detour(a, b, items[n].pos)} + items[n].demand;
      if (spent + extra > available) return;
      const Joule p = insertion_profit(a, b, items[n], params_.em);
      // Reference order is slot-major, item-ascending, strictly-greater
      // profit: an equal profit can only win inside the same slot at a
      // lower item index (ring order visits items out of index order).
      if (p > best_profit ||
          (p == best_profit && best_item != kInvalidId && best_slot == slot &&
           n < best_item)) {
        best_profit = p;
        best_item = n;
        best_slot = slot;
      }
    });
  };

  for (int ring = 0; ring < cps; ++ring) {
    if (ring > 0) {
      const double ring_lb = static_cast<double>(ring - 1) * grid_.cell_size() * kLbShave;
      const double slack = max_demand - best_profit.value() + em * d_ab;
      if (slack < 0.0) break;
      const double thr = (slack + kAbsSlack) * (1.0 + kRelSlack) / (2.0 * em);
      if (ring_lb > thr) break;
    }
    if (ring == 0) {
      visit_cell(qx, qy);
      continue;
    }
    for (int cx = qx - ring; cx <= qx + ring; ++cx) {
      visit_cell(cx, qy - ring);
      visit_cell(cx, qy + ring);
    }
    for (int cy = qy - ring + 1; cy <= qy + ring - 1; ++cy) {
      visit_cell(qx - ring, cy);
      visit_cell(qx + ring, cy);
    }
  }
}

std::vector<std::size_t> PlanContext::insertion_sequence(
    const RvPlanState& rv, std::vector<bool>& taken) const {
  if (planners_use_reference() || size() < kSmallN) {
    return wrsn::insertion_sequence(rv, *items_, taken, params_);
  }
  WRSN_OBS_SCOPE("planner/ctx_insertion");
  WRSN_REQUIRE(taken.size() == size(), "taken mask size mismatch");
  const auto& items = *items_;

  std::vector<std::size_t> seq;
  const auto dest = greedy_next(rv, taken);
  if (!dest) return seq;
  seq.push_back(*dest);
  taken[*dest] = true;
  Joule spent = params_.em * Meter{distance(rv.pos, items[*dest].pos) +
                                   base_dist_[*dest]} +
                items[*dest].demand;

  auto waypoint = [&](std::size_t k) -> Vec2 {
    return k == 0 ? rv.pos : items[seq[k - 1]].pos;
  };

  for (;;) {
    // Largest demand still on the table this round — the global bound for
    // slot skips and ring stops.
    double max_untaken = -kInf;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!taken[i]) max_untaken = std::max(max_untaken, items[i].demand.value());
    }
    if (max_untaken == -kInf) break;

    Joule best_profit{0.0};
    std::size_t best_item = kInvalidId;
    std::size_t best_slot = 0;
    for (std::size_t slot = 0; slot + 1 <= seq.size(); ++slot) {
      best_insertion_in_slot(waypoint(slot), waypoint(slot + 1), slot, spent,
                             rv.available, taken, Joule{max_untaken}, best_profit,
                             best_item, best_slot);
    }
    if (best_item == kInvalidId) break;
    const Vec2 a = waypoint(best_slot);
    const Vec2 b = waypoint(best_slot + 1);
    spent += params_.em * Meter{insertion_detour(a, b, items[best_item].pos)} +
             items[best_item].demand;
    seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(best_slot), best_item);
    taken[best_item] = true;
  }
  return seq;
}

}  // namespace wrsn
