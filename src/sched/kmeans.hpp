#pragma once
// K-means (Lloyd) clustering used by the Partition-Scheme (Section IV-D-1):
// the recharge node list is split into m geographic groups, one per RV,
// minimizing the within-cluster sum of squares (Eq. (15)). Initialization is
// k-means++ seeded from the caller's RNG stream, so results are
// deterministic per replica.

#include <cstddef>
#include <vector>

#include "core/rng.hpp"
#include "geom/vec2.hpp"

namespace wrsn {

struct KMeansResult {
  std::vector<std::size_t> assignment;  // point index -> cluster in [0, k)
  std::vector<Vec2> centroids;
  double wcss = 0.0;   // within-cluster sum of squares at convergence
  std::size_t iterations = 0;
  bool converged = false;
};

// Runs Lloyd's algorithm on `points` with k clusters. If k >= points.size()
// each point gets its own cluster. `max_iterations` bounds the Lloyd loop.
// The production path prunes assignment scans with Elkan/Hamerly-style
// triangle-inequality bounds but is bit-identical to kmeans_reference on every input
// (same RNG consumption, same assignment, centroids, wcss and iteration
// count); WRSN_REFERENCE_PLANNERS=1 forces the reference path.
[[nodiscard]] KMeansResult kmeans(const std::vector<Vec2>& points, std::size_t k,
                                  Xoshiro256& rng, std::size_t max_iterations = 100);

// Plain Lloyd reference (full O(n*k) scan per iteration); identical output.
[[nodiscard]] KMeansResult kmeans_reference(const std::vector<Vec2>& points,
                                            std::size_t k, Xoshiro256& rng,
                                            std::size_t max_iterations = 100);

// WCSS of an arbitrary assignment (used by tests to verify local optimality).
[[nodiscard]] double wcss_of(const std::vector<Vec2>& points,
                             const std::vector<std::size_t>& assignment,
                             const std::vector<Vec2>& centroids);

}  // namespace wrsn
