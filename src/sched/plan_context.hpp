#pragma once
// PlanContext — spatial acceleration for the recharge planners (hot path).
//
// Per planning round the context precomputes, once over the item list:
//   * a SpatialGrid over item positions,
//   * each item's return-leg length to base (the second sqrt of the
//     affordability check, hoisted out of every query),
//   * per-cell maximum demands (branch-and-bound upper bounds),
//   * the list of critical items (destination selection scans these first,
//     per Section III-C they dominate regardless of profit).
//
// Queries then run as ring-expanding branch-and-bound over grid cells: a
// cell is pruned when its best possible profit
//     max_demand(cell) - e_m * dist_lower_bound(cell)
// cannot beat the incumbent, and the ring expansion stops when even the
// global maximum demand at the ring's distance lower bound cannot. All
// bounds are shaved by a relative epsilon so floating-point rounding can
// only make pruning more conservative, never unsound: every query returns
// the bit-identical result of the corresponding linear-scan reference in
// sched/planner.hpp (ties included — lowest index wins, exactly like an
// ascending reference scan with strict comparisons).
//
// Setting the environment variable WRSN_REFERENCE_PLANNERS=1 routes every
// query back to the reference scans (A/B hook for tests and benches).

#include <optional>
#include <vector>

#include "geom/grid.hpp"
#include "sched/arena.hpp"
#include "sched/planner.hpp"
#include "sched/request.hpp"

namespace wrsn {

// True when WRSN_REFERENCE_PLANNERS is set (to anything but "" or "0"):
// PlanContext queries and the optimized tsp/kmeans routines then fall back
// to their linear reference implementations. Read once per process.
[[nodiscard]] bool planners_use_reference();

class PlanContext {
 public:
  // `items` and `params` must outlive the context; the item list must not
  // change while the context is in use (the `taken` mask may). When `arena`
  // is non-null the precomputed tables are bump-allocated from it (freed
  // wholesale at the arena's next reset, which must not happen while the
  // context is alive); a null arena falls back to the heap.
  PlanContext(const std::vector<RechargeItem>& items, const PlannerParams& params,
              PlanArena* arena = nullptr);

  [[nodiscard]] const std::vector<RechargeItem>& items() const { return *items_; }
  [[nodiscard]] const PlannerParams& params() const { return params_; }
  [[nodiscard]] std::size_t size() const { return items_->size(); }
  // Precomputed distance(items[i].pos, params.base).
  [[nodiscard]] double base_distance(std::size_t i) const { return base_dist_[i]; }

  // Algorithm 2 destination selection; bit-identical to wrsn::greedy_next.
  [[nodiscard]] std::optional<std::size_t> greedy_next(
      const RvPlanState& rv, const std::vector<bool>& taken) const;

  // Nearest affordable item (critical first); bit-identical to
  // wrsn::nearest_next.
  [[nodiscard]] std::optional<std::size_t> nearest_next(
      const RvPlanState& rv, const std::vector<bool>& taken) const;

  // Earliest-deadline item. No spatial structure to exploit (the key is the
  // battery fraction), so this simply forwards to the reference scan.
  [[nodiscard]] std::optional<std::size_t> edf_next(
      const RvPlanState& rv, const std::vector<bool>& taken) const;

  // Algorithm 3 with grid-pruned insertion scans; bit-identical to
  // wrsn::insertion_sequence.
  [[nodiscard]] std::vector<std::size_t> insertion_sequence(
      const RvPlanState& rv, std::vector<bool>& taken) const;

 private:
  // Best insertion of any untaken item between waypoints a and b, given the
  // running budget; updates best_{profit,item,slot} in place (exact
  // reference tie semantics: strictly-greater profit wins; an equal profit
  // only wins within the same slot at a lower item index).
  void best_insertion_in_slot(Vec2 a, Vec2 b, std::size_t slot, Joule spent,
                              Joule available, const std::vector<bool>& taken,
                              Joule max_untaken_demand, Joule& best_profit,
                              std::size_t& best_item, std::size_t& best_slot) const;

  const std::vector<RechargeItem>* items_;
  PlannerParams params_;
  SpatialGrid grid_;
  ArenaVector<double> base_dist_;        // item -> distance to base
  ArenaVector<std::size_t> critical_;    // critical item indices, ascending
  ArenaVector<double> cell_max_demand_;  // over all items in the cell
  ArenaVector<double> cell_max_demand_noncrit_;
  double max_demand_noncrit_ = 0.0;      // global bound for ring stops
};

}  // namespace wrsn
