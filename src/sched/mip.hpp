#pragma once
// Explicit representation of the JRSSAM mixed-integer program of
// Section IV-A (objective (2), constraints (3)-(14)).
//
// The MIP is NP-hard, so the library solves it heuristically (Algorithms
// 2/3 + the multi-RV schemes); this module makes the formulation itself a
// first-class artifact:
//   * JrssamModel      — the instance data (recharge list, RVs, coverage),
//   * RouteSolution    — candidate routes, one closed base->...->base tour
//                        per RV,
//   * validate()       — checks every constraint and reports violations,
//   * objective()      — expression (2) for a candidate solution,
//   * exact_multi_rv() — branch-and-bound optimum for tiny instances,
//                        used by tests to bound heuristic regret.

#include <string>
#include <vector>

#include "core/units.hpp"
#include "geom/vec2.hpp"
#include "sched/planner.hpp"
#include "sched/request.hpp"

namespace wrsn {

struct JrssamModel {
  // Recharge node list R: position and demand d_i per node.
  std::vector<Vec2> node_pos;
  std::vector<Joule> demand;
  // RVs: shared capacity C_r, traction cost e_m, depot v_0.
  std::size_t num_rvs = 1;
  Joule rv_capacity{0.0};
  JoulePerMeter move_cost{5.6};
  Vec2 base;

  [[nodiscard]] std::size_t num_nodes() const { return node_pos.size(); }
  // Traveling cost c_ij between nodes (or node and base via the overloads).
  [[nodiscard]] Joule edge_cost(std::size_t i, std::size_t j) const;
  [[nodiscard]] Joule base_cost(std::size_t i) const;

  // Builds a model from planner-level items (each item contributes one node
  // at its representative position with its aggregated demand).
  [[nodiscard]] static JrssamModel from_items(const std::vector<RechargeItem>& items,
                                              std::size_t num_rvs, Joule rv_capacity,
                                              const PlannerParams& params);
};

// routes[a] is RV a's visiting order over node indices; the base depot is
// implicit at both ends (constraint (3)). An RV may stay home (empty route),
// which relaxes constraint (9) the way the heuristics do when the list is
// short.
struct RouteSolution {
  std::vector<std::vector<std::size_t>> routes;
};

struct ConstraintViolation {
  std::string constraint;  // e.g. "(7) capacity", "(8) node served twice"
  std::string detail;
};

// All violations of constraints (3)-(14) semantics for the candidate (empty
// result = feasible). Degree constraints (4) and subtour elimination
// (13)-(14) hold by construction of RouteSolution, so the checks cover:
// route indices valid, every node served at most once (8), capacity (7).
[[nodiscard]] std::vector<ConstraintViolation> validate(const JrssamModel& model,
                                                        const RouteSolution& sol);

// Expression (2): total demand served minus total traveling cost, including
// the depot legs required by constraint (3).
[[nodiscard]] Joule objective(const JrssamModel& model, const RouteSolution& sol);

struct ExactMultiResult {
  RouteSolution solution;
  Joule objective{0.0};
  std::size_t nodes_explored = 0;
};

// Exhaustive branch-and-bound over node->RV assignments and visit orders.
// Exponential: instances are limited to num_nodes() <= 10 and num_rvs <= 3.
[[nodiscard]] ExactMultiResult exact_multi_rv(const JrssamModel& model);

}  // namespace wrsn
