#include "sched/planner.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "obs/telemetry.hpp"
#include "sched/kmeans.hpp"
#include "sched/profit.hpp"

namespace wrsn {

namespace {

// Energy needed to drive to the item, fill it, and still make it home.
Joule serve_cost(Vec2 from, const RechargeItem& item, const PlannerParams& params) {
  return serve_cost(from, item, params.em, params.base);
}

}  // namespace

std::optional<std::size_t> greedy_next(const RvPlanState& rv,
                                       const std::vector<RechargeItem>& items,
                                       const std::vector<bool>& taken,
                                       const PlannerParams& params) {
  WRSN_OBS_SCOPE("planner/greedy");
  WRSN_REQUIRE(taken.size() == items.size(), "taken mask size mismatch");
  std::optional<std::size_t> best;
  Joule best_profit{-std::numeric_limits<double>::infinity()};
  bool best_critical = false;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (taken[i]) continue;
    if (serve_cost(rv.pos, items[i], params) > rv.available) continue;
    const Joule p = recharge_profit(rv.pos, items[i], params.em);
    // Critical items dominate non-critical ones regardless of profit.
    if (items[i].critical != best_critical) {
      if (items[i].critical) {
        best = i;
        best_profit = p;
        best_critical = true;
      }
      continue;
    }
    if (p > best_profit) {
      best = i;
      best_profit = p;
    }
  }
  return best;
}

std::optional<std::size_t> nearest_next(const RvPlanState& rv,
                                        const std::vector<RechargeItem>& items,
                                        const std::vector<bool>& taken,
                                        const PlannerParams& params) {
  WRSN_REQUIRE(taken.size() == items.size(), "taken mask size mismatch");
  std::optional<std::size_t> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  bool best_critical = false;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (taken[i]) continue;
    if (serve_cost(rv.pos, items[i], params) > rv.available) continue;
    const double d2 = squared_distance(rv.pos, items[i].pos);
    if (items[i].critical != best_critical) {
      if (items[i].critical) {
        best = i;
        best_d2 = d2;
        best_critical = true;
      }
      continue;
    }
    if (d2 < best_d2) {
      best = i;
      best_d2 = d2;
    }
  }
  return best;
}

std::optional<std::size_t> edf_next(const RvPlanState& rv,
                                    const std::vector<RechargeItem>& items,
                                    const std::vector<bool>& taken,
                                    const PlannerParams& params) {
  WRSN_REQUIRE(taken.size() == items.size(), "taken mask size mismatch");
  std::optional<std::size_t> best;
  double best_fraction = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (taken[i]) continue;
    if (serve_cost(rv.pos, items[i], params) > rv.available) continue;
    if (items[i].min_fraction < best_fraction) {
      best = i;
      best_fraction = items[i].min_fraction;
    }
  }
  return best;
}

std::vector<std::size_t> insertion_sequence(const RvPlanState& rv,
                                            const std::vector<RechargeItem>& items,
                                            std::vector<bool>& taken,
                                            const PlannerParams& params) {
  WRSN_OBS_SCOPE("planner/insertion");
  WRSN_REQUIRE(taken.size() == items.size(), "taken mask size mismatch");

  std::vector<std::size_t> seq;
  const auto dest = greedy_next(rv, items, taken, params);
  if (!dest) return seq;
  seq.push_back(*dest);
  taken[*dest] = true;
  Joule spent = params.em * Meter{distance(rv.pos, items[*dest].pos) +
                                  distance(items[*dest].pos, params.base)} +
                items[*dest].demand;

  // Waypoint positions of the current sequence, prefixed by the RV location;
  // insertions go between consecutive waypoints (crt ... dest), never after
  // dest — dest stays the final stop, so the base-return leg is fixed.
  auto waypoint = [&](std::size_t k) -> Vec2 {
    return k == 0 ? rv.pos : items[seq[k - 1]].pos;
  };

  for (;;) {
    Joule best_profit{0.0};
    std::size_t best_item = kInvalidId;
    std::size_t best_slot = 0;
    for (std::size_t slot = 0; slot + 1 <= seq.size(); ++slot) {
      const Vec2 a = waypoint(slot);
      const Vec2 b = waypoint(slot + 1);
      for (std::size_t n = 0; n < items.size(); ++n) {
        if (taken[n]) continue;
        const Joule extra =
            params.em * Meter{insertion_detour(a, b, items[n].pos)} + items[n].demand;
        if (spent + extra > rv.available) continue;
        const Joule p = insertion_profit(a, b, items[n], params.em);
        if (p > best_profit) {
          best_profit = p;
          best_item = n;
          best_slot = slot;
        }
      }
    }
    if (best_item == kInvalidId) break;
    const Vec2 a = waypoint(best_slot);
    const Vec2 b = waypoint(best_slot + 1);
    spent += params.em * Meter{insertion_detour(a, b, items[best_item].pos)} +
             items[best_item].demand;
    seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(best_slot), best_item);
    taken[best_item] = true;
  }
  return seq;
}

std::vector<std::vector<std::size_t>> partition_items(
    const std::vector<RechargeItem>& items, std::size_t num_groups, Xoshiro256& rng) {
  WRSN_OBS_SCOPE("planner/partition");
  WRSN_REQUIRE(num_groups > 0, "need at least one group");
  std::vector<Vec2> positions;
  positions.reserve(items.size());
  for (const auto& item : items) positions.push_back(item.pos);

  const std::size_t k = std::min(num_groups, items.size());
  std::vector<std::vector<std::size_t>> groups(num_groups);
  if (items.empty()) return groups;

  const KMeansResult km = kmeans(positions, k, rng);
  for (std::size_t i = 0; i < items.size(); ++i) {
    groups[km.assignment[i]].push_back(i);
  }
  return groups;
}

std::vector<std::size_t> match_groups_to_rvs(const std::vector<Vec2>& group_centroids,
                                             const std::vector<Vec2>& rv_positions) {
  WRSN_REQUIRE(group_centroids.size() <= rv_positions.size(),
               "more groups than RVs");
  const std::size_t g = group_centroids.size();
  std::vector<std::size_t> rv_of_group(g, kInvalidId);
  std::vector<bool> rv_used(rv_positions.size(), false);
  // Repeatedly bind the globally closest (group, rv) pair.
  for (std::size_t round = 0; round < g; ++round) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bg = kInvalidId, br = kInvalidId;
    for (std::size_t gi = 0; gi < g; ++gi) {
      if (rv_of_group[gi] != kInvalidId) continue;
      for (std::size_t r = 0; r < rv_positions.size(); ++r) {
        if (rv_used[r]) continue;
        const double d = squared_distance(group_centroids[gi], rv_positions[r]);
        if (d < best) {
          best = d;
          bg = gi;
          br = r;
        }
      }
    }
    WRSN_ASSERT(bg != kInvalidId && br != kInvalidId, "matching ran out of pairs");
    rv_of_group[bg] = br;
    rv_used[br] = true;
  }
  return rv_of_group;
}

std::vector<std::vector<std::size_t>> combined_plan(
    const std::vector<RvPlanState>& rvs, const std::vector<RechargeItem>& items,
    const PlannerParams& params) {
  WRSN_OBS_SCOPE("planner/combined");
  std::vector<bool> taken(items.size(), false);
  std::vector<std::vector<std::size_t>> sequences;
  sequences.reserve(rvs.size());
  for (const RvPlanState& rv : rvs) {
    sequences.push_back(insertion_sequence(rv, items, taken, params));
  }
  return sequences;
}

double sequence_length(Vec2 start, const std::vector<RechargeItem>& items,
                       const std::vector<std::size_t>& seq,
                       std::optional<Vec2> return_to) {
  double len = 0.0;
  Vec2 cur = start;
  for (std::size_t idx : seq) {
    WRSN_REQUIRE(idx < items.size(), "sequence index out of range");
    len += distance(cur, items[idx].pos);
    cur = items[idx].pos;
  }
  if (return_to) len += distance(cur, *return_to);
  return len;
}

Joule sequence_profit(Vec2 start, const std::vector<RechargeItem>& items,
                      const std::vector<std::size_t>& seq, JoulePerMeter em) {
  Joule demand{0.0};
  for (std::size_t idx : seq) demand += items[idx].demand;
  return demand - em * Meter{sequence_length(start, items, seq)};
}

}  // namespace wrsn
