#include "sched/tsp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "geom/grid.hpp"
#include "obs/telemetry.hpp"
#include "sched/plan_context.hpp"

namespace wrsn {

namespace {

constexpr std::size_t kBadIndex = std::numeric_limits<std::size_t>::max();

// Under this many stops the quadratic scans beat the grid bookkeeping
// (measured crossover for 2-opt sits between 100 and 500 stops).
constexpr std::size_t kSmallTour = 128;

// Candidate radii are inflated and ring lower bounds shaved by these slacks
// so rounding can only admit extra candidates (harmless — the exact
// acceptance test rejects them), never lose one the reference would take.
constexpr double kRelSlack = 1e-9;
constexpr double kAbsSlack = 1e-9;
constexpr double kLbShave = 1.0 - 1e-12;

double tour_extent(Vec2 start, const std::vector<Vec2>& points) {
  double extent = std::max({1.0, start.x, start.y});
  for (const Vec2& p : points) extent = std::max({extent, p.x, p.y});
  return extent;
}

double cell_size_for(double extent, std::size_t n) {
  const double side = std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1))));
  const int cells = std::clamp(static_cast<int>(side), 1, 256);
  return extent / static_cast<double>(cells);
}

}  // namespace

std::vector<std::size_t> nearest_neighbor_tour_reference(
    Vec2 start, const std::vector<Vec2>& points) {
  WRSN_OBS_SCOPE("tsp/nearest-neighbor");
  const std::size_t n = points.size();
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  Vec2 cur = start;
  for (std::size_t step = 0; step < n; ++step) {
    double best_d2 = std::numeric_limits<double>::infinity();
    std::size_t best = kBadIndex;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double d2 = squared_distance(cur, points[i]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    WRSN_ASSERT(best != kBadIndex, "nearest neighbour found no candidate");
    used[best] = true;
    order.push_back(best);
    cur = points[best];
  }
  return order;
}

std::vector<std::size_t> nearest_neighbor_tour(Vec2 start,
                                               const std::vector<Vec2>& points) {
  const std::size_t n = points.size();
  if (planners_use_reference() || n < kSmallTour) {
    return nearest_neighbor_tour_reference(start, points);
  }
  WRSN_OBS_SCOPE("tsp/nearest-neighbor");

  const double extent = tour_extent(start, points);
  SpatialGrid grid(extent, cell_size_for(extent, n));
  grid.build(points);
  const int cps = grid.cells_per_side();
  const double cell = grid.cell_size();

  // Per-cell count of not-yet-visited points, so exhausted cells are skipped
  // without touching their id slices.
  std::vector<std::size_t> remaining(grid.num_cells(), 0);
  for (const Vec2& p : points) {
    ++remaining[grid.cell_index(grid.cell_coord(p.x), grid.cell_coord(p.y))];
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  Vec2 cur = start;
  for (std::size_t step = 0; step < n; ++step) {
    double best_d2 = std::numeric_limits<double>::infinity();
    std::size_t best = kBadIndex;
    const int qx = grid.cell_coord(cur.x);
    const int qy = grid.cell_coord(cur.y);
    auto visit_cell = [&](int cx, int cy) {
      if (cx < 0 || cx >= cps || cy < 0 || cy >= cps) return;
      const std::size_t ci = grid.cell_index(cx, cy);
      if (remaining[ci] == 0) return;
      if (best != kBadIndex &&
          grid.cell_distance_lower_bound_sq(cur, cx, cy) * kLbShave > best_d2) {
        return;
      }
      grid.for_each_in_cell(cx, cy, [&](std::size_t i) {
        if (used[i]) return;
        const double d2 = squared_distance(cur, points[i]);
        // Strictly-closer wins; on an exact tie the lower index, matching
        // the reference's ascending strict-< scan.
        if (d2 < best_d2 || (d2 == best_d2 && i < best)) {
          best_d2 = d2;
          best = i;
        }
      });
    };
    for (int ring = 0; ring < cps; ++ring) {
      if (ring > 0 && best != kBadIndex) {
        const double ring_lb = static_cast<double>(ring - 1) * cell * kLbShave;
        if (ring_lb * ring_lb > best_d2) break;
      }
      if (ring == 0) {
        visit_cell(qx, qy);
        continue;
      }
      for (int cx = qx - ring; cx <= qx + ring; ++cx) {
        visit_cell(cx, qy - ring);
        visit_cell(cx, qy + ring);
      }
      for (int cy = qy - ring + 1; cy <= qy + ring - 1; ++cy) {
        visit_cell(qx - ring, cy);
        visit_cell(qx + ring, cy);
      }
    }
    WRSN_ASSERT(best != kBadIndex, "nearest neighbour found no candidate");
    used[best] = true;
    --remaining[grid.cell_index(grid.cell_coord(points[best].x),
                                grid.cell_coord(points[best].y))];
    order.push_back(best);
    cur = points[best];
  }
  return order;
}

void two_opt_reference(Vec2 start, const std::vector<Vec2>& points,
                       std::vector<std::size_t>& order, int max_rounds) {
  WRSN_OBS_SCOPE("tsp/two-opt");
  WRSN_REQUIRE(order.size() <= points.size(), "order must index into points");
  if (order.size() < 3) return;
  auto at = [&](std::size_t k) -> Vec2 {
    return k == 0 ? start : points[order[k - 1]];
  };
  const std::size_t n = order.size();
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    // Edges are (k, k+1) over the sequence [start, order...]; reversing
    // order[i..j] replaces edges (i, i+1) and (j+1, j+2).
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const Vec2 a = at(i);
        const Vec2 b = at(i + 1);
        const Vec2 c = at(j + 1);
        // Open tour: the edge after the last node does not exist.
        const bool has_next = j + 1 < n;
        const Vec2 d = has_next ? at(j + 2) : Vec2{};
        const double before = distance(a, b) + (has_next ? distance(c, d) : 0.0);
        const double after = distance(a, c) + (has_next ? distance(b, d) : 0.0);
        if (after + 1e-12 < before) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j + 1));
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
}

// Grid-pruned first-improvement 2-opt replaying the reference's exact move
// sequence. For edge (a, b) = (at(i), at(i+1)), a reversal of order[i..j]
// is improving only if d(a, c) < d(a, b) or d(b, d) < d(c, d) — otherwise
// both replacement edges grew and the summed test cannot pass. Candidate
// j's are therefore generated losslessly from the two clauses (around `a`
// with radius d(a, b) for the first; around `b`, per-candidate radius
// elen[j+1], for the second), sorted ascending, and submitted to the
// reference's own floating-point acceptance test in reference order. The
// tail move (j = n - 1, no next edge) needs d(a, c) < d(a, b) outright, so
// the first query covers it.
//
// The second clause has a per-candidate radius, so it is split by edge
// length: edges no longer than a few mean edge lengths are all covered by
// one small fixed-radius query, while the few long edges (nearest-neighbour
// tours always carry some field-crossing jumps that would blow a single
// query up to the whole grid) are kept in a sorted position list and tested
// explicitly.
void two_opt(Vec2 start, const std::vector<Vec2>& points,
             std::vector<std::size_t>& order, int max_rounds) {
  if (planners_use_reference() || order.size() < kSmallTour) {
    two_opt_reference(start, points, order, max_rounds);
    return;
  }
  WRSN_OBS_SCOPE("tsp/two-opt");
  WRSN_REQUIRE(order.size() <= points.size(), "order must index into points");
  const std::size_t n = order.size();
  auto at = [&](std::size_t k) -> Vec2 {
    return k == 0 ? start : points[order[k - 1]];
  };

  const double extent = tour_extent(start, points);
  SpatialGrid grid(extent, cell_size_for(extent, n));
  grid.build(points);

  // Position of each point id in the tour (at(pos_of[id]) == points[id]);
  // kBadIndex for points outside `order`.
  std::vector<std::size_t> pos_of(points.size(), kBadIndex);
  for (std::size_t k = 0; k < n; ++k) pos_of[order[k]] = k + 1;

  // Cached edge lengths: elen[p] = distance(at(p), at(p+1)), p in [0, n).
  // distance() is bit-symmetric, so reversals permute the inner entries
  // without changing their values.
  std::vector<double> elen(n);
  for (std::size_t p = 0; p < n; ++p) elen[p] = distance(at(p), at(p + 1));

  std::vector<std::size_t> cand;
  cand.reserve(64);
  std::vector<std::uint8_t> accept;  // per-candidate acceptance flags
  std::vector<std::size_t> long_pos;  // sorted edge positions with elen > r_short

  // Round-scoped skip bound: all i beyond the last reversal of a round were
  // scanned against the final tour of that round and found clean, so the
  // next round may stop there — unless it changed the tour first.
  std::size_t scan_end = n;  // exclusive bound on i + 1 (i ranges [0, n-1))

  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    std::size_t last_reversal_i = 0;
    bool any_reversal = false;

    // Short/long threshold for this round. Edge values move around during
    // the round but the list is maintained against this fixed cut.
    double mean_elen = 0.0;
    for (std::size_t p = 1; p < n; ++p) mean_elen += elen[p];
    mean_elen /= static_cast<double>(n - 1);
    const double r_short = 4.0 * mean_elen;
    long_pos.clear();
    for (std::size_t p = 1; p < n; ++p) {
      if (elen[p] > r_short) long_pos.push_back(p);
    }

    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (!any_reversal && i + 1 >= scan_end) break;
      const Vec2 a = at(i);
      std::size_t jmin = i + 1;
      for (;;) {
        const Vec2 b = at(i + 1);
        const double ab = elen[i];
        cand.clear();
        // First clause: c = at(j+1) with d(a, c) < d(a, b).
        const double r1 = ab * (1.0 + kRelSlack) + kAbsSlack;
        grid.for_each_in_radius(a, r1, [&](std::size_t id) {
          const std::size_t p = pos_of[id];
          if (p == kBadIndex) return;
          if (p >= jmin + 1 && p >= i + 2) cand.push_back(p - 1);
        });
        // Second clause: d = at(j+2) with d(b, d) < d(c, d) = elen[j+1].
        // Short edges (elen[j+1] <= r_short) all fit inside one query...
        const double r2 = r_short * (1.0 + kRelSlack) + kAbsSlack;
        grid.for_each_in_radius(b, r2, [&](std::size_t id) {
          const std::size_t p = pos_of[id];
          if (p == kBadIndex || p < jmin + 2 || p < i + 3 || p > n) return;
          const std::size_t j = p - 2;
          if (elen[j + 1] > r_short) return;  // covered by the long list
          const double lim = elen[j + 1] * (1.0 + kRelSlack) + kAbsSlack;
          if (squared_distance(b, points[id]) <= lim * lim) cand.push_back(j);
        });
        // ...and the long edges are enumerated outright.
        {
          const std::size_t qlo = std::max(jmin + 1, i + 2);
          for (auto it =
                   std::lower_bound(long_pos.begin(), long_pos.end(), qlo);
               it != long_pos.end(); ++it) {
            const std::size_t q = *it;  // edge (at(q), at(q+1)), q in [1, n)
            const double lim = elen[q] * (1.0 + kRelSlack) + kAbsSlack;
            if (squared_distance(b, at(q + 1)) <= lim * lim) {
              cand.push_back(q - 1);
            }
          }
        }
        std::sort(cand.begin(), cand.end());
        cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

        // Ordered first-improvement selection. The acceptance test is pure
        // in the current tour, so when an executor is installed and the
        // candidate list clears its threshold the tests shard into disjoint
        // flag slots and the serial scan then takes the FIRST accepted j in
        // candidate order — exactly the move the serial early-exit scan
        // takes (it merely skips evaluating candidates past the first hit,
        // which cannot change which one is first). The reversal itself is
        // applied serially either way.
        auto accepts = [&](std::size_t j) {
          const Vec2 c = at(j + 1);
          const bool has_next = j + 1 < n;
          const Vec2 d = has_next ? at(j + 2) : Vec2{};
          // elen entries are bit-equal to fresh distance() calls, so this
          // is the reference's exact acceptance expression.
          const double before = elen[i] + (has_next ? elen[j + 1] : 0.0);
          const double after = distance(a, c) + (has_next ? distance(b, d) : 0.0);
          return after + 1e-12 < before;
        };
        std::size_t chosen = kBadIndex;
        ParallelExec* exec = current_parallel();
        if (exec != nullptr && exec->should_shard(cand.size())) {
          accept.assign(cand.size(), 0);
          exec->for_shards(cand.size(), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t ci = lo; ci < hi; ++ci) {
              if (accepts(cand[ci])) accept[ci] = 1;
            }
          });
          for (std::size_t ci = 0; ci < cand.size(); ++ci) {
            if (accept[ci] != 0) {
              chosen = cand[ci];
              break;
            }
          }
        } else {
          for (const std::size_t j : cand) {
            if (accepts(j)) {
              chosen = j;
              break;
            }
          }
        }
        if (chosen == kBadIndex) break;
        {
          const std::size_t j = chosen;
          const Vec2 c = at(j + 1);
          const bool has_next = j + 1 < n;
          const Vec2 d = has_next ? at(j + 2) : Vec2{};
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j + 1));
          for (std::size_t k = i; k <= j; ++k) pos_of[order[k]] = k + 1;
          std::reverse(elen.begin() + static_cast<std::ptrdiff_t>(i + 1),
                       elen.begin() + static_cast<std::ptrdiff_t>(j + 1));
          elen[i] = distance(a, c);
          if (has_next) elen[j + 1] = distance(b, d);
          // Remap long-edge positions through the reversal (values in
          // [i+1, j] move to i+1+j-q, staying in-window, so reversing the
          // affected slice restores sorted order), then account for the
          // two boundary edges whose lengths actually changed.
          {
            const auto lo = std::lower_bound(long_pos.begin(),
                                             long_pos.end(), i + 1);
            const auto hi = std::upper_bound(lo, long_pos.end(), j);
            for (auto it = lo; it != hi; ++it) *it = i + 1 + j - *it;
            std::reverse(lo, hi);
            auto set_long = [&](std::size_t q) {
              const bool is_long = elen[q] > r_short;
              const auto it = std::lower_bound(long_pos.begin(),
                                               long_pos.end(), q);
              const bool present = it != long_pos.end() && *it == q;
              if (is_long && !present) {
                long_pos.insert(it, q);
              } else if (!is_long && present) {
                long_pos.erase(it);
              }
            };
            if (i >= 1) set_long(i);
            if (has_next) set_long(j + 1);
          }
          improved = true;
          any_reversal = true;
          last_reversal_i = i;
          // The reference continues its inner loop at j + 1 against the
          // new at(i+1); regenerate candidates from there.
          jmin = j + 1;
        }
      }
    }
    scan_end = any_reversal ? last_reversal_i + 2 : 0;
    if (!improved) break;
  }
}

double open_tour_length(Vec2 start, const std::vector<Vec2>& points,
                        const std::vector<std::size_t>& order) {
  double len = 0.0;
  Vec2 cur = start;
  for (std::size_t idx : order) {
    WRSN_REQUIRE(idx < points.size(), "tour index out of range");
    len += distance(cur, points[idx]);
    cur = points[idx];
  }
  return len;
}

}  // namespace wrsn
