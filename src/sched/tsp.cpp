#include "sched/tsp.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "obs/telemetry.hpp"

namespace wrsn {

namespace {
constexpr std::size_t kBadIndex = std::numeric_limits<std::size_t>::max();
}  // namespace

std::vector<std::size_t> nearest_neighbor_tour(Vec2 start,
                                               const std::vector<Vec2>& points) {
  WRSN_OBS_SCOPE("tsp/nearest-neighbor");
  const std::size_t n = points.size();
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  Vec2 cur = start;
  for (std::size_t step = 0; step < n; ++step) {
    double best_d2 = std::numeric_limits<double>::infinity();
    std::size_t best = kBadIndex;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double d2 = squared_distance(cur, points[i]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    WRSN_ASSERT(best != kBadIndex, "nearest neighbour found no candidate");
    used[best] = true;
    order.push_back(best);
    cur = points[best];
  }
  return order;
}

void two_opt(Vec2 start, const std::vector<Vec2>& points,
             std::vector<std::size_t>& order, int max_rounds) {
  WRSN_OBS_SCOPE("tsp/two-opt");
  WRSN_REQUIRE(order.size() == points.size() ||
                   order.size() <= points.size(),
               "order must index into points");
  if (order.size() < 3) return;
  auto at = [&](std::size_t k) -> Vec2 {
    return k == 0 ? start : points[order[k - 1]];
  };
  const std::size_t n = order.size();
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    // Edges are (k, k+1) over the sequence [start, order...]; reversing
    // order[i..j] replaces edges (i, i+1) and (j+1, j+2).
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const Vec2 a = at(i);
        const Vec2 b = at(i + 1);
        const Vec2 c = at(j + 1);
        // Open tour: the edge after the last node does not exist.
        const bool has_next = j + 1 < n;
        const Vec2 d = has_next ? at(j + 2) : Vec2{};
        const double before = distance(a, b) + (has_next ? distance(c, d) : 0.0);
        const double after = distance(a, c) + (has_next ? distance(b, d) : 0.0);
        if (after + 1e-12 < before) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j + 1));
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
}

double open_tour_length(Vec2 start, const std::vector<Vec2>& points,
                        const std::vector<std::size_t>& order) {
  double len = 0.0;
  Vec2 cur = start;
  for (std::size_t idx : order) {
    WRSN_REQUIRE(idx < points.size(), "tour index out of range");
    len += distance(cur, points[idx]);
    cur = points[idx];
  }
  return len;
}

}  // namespace wrsn
