#include "sched/exact.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "obs/telemetry.hpp"

namespace wrsn {

namespace {

struct SearchState {
  const std::vector<RechargeItem>* items;
  const PlannerParams* params;
  Joule budget;
  bool include_return;

  std::vector<std::size_t> current;
  std::vector<bool> used;
  Joule spent{0.0};       // traction (excl. return) + delivered so far
  Joule profit{0.0};      // objective of `current`
  Vec2 pos;

  ExactSolution best;
};

void dfs(SearchState& st) {
  ++st.best.nodes_explored;
  if (st.profit > st.best.profit) {
    st.best.profit = st.profit;
    st.best.sequence = st.current;
  }
  // Upper bound: add every remaining affordable demand for free (zero
  // travel). Admissible because travel only subtracts from the objective.
  Joule bound = st.profit;
  for (std::size_t i = 0; i < st.items->size(); ++i) {
    if (!st.used[i]) bound += (*st.items)[i].demand;
  }
  if (bound <= st.best.profit) return;

  for (std::size_t i = 0; i < st.items->size(); ++i) {
    if (st.used[i]) continue;
    const RechargeItem& item = (*st.items)[i];
    const Meter leg{distance(st.pos, item.pos)};
    const Meter back{distance(item.pos, st.params->base)};
    const Joule extra = st.params->em * leg + item.demand;
    const Joule needed =
        st.include_return ? extra + st.params->em * back : extra;
    if (st.spent + needed > st.budget) continue;

    const Vec2 prev_pos = st.pos;
    st.used[i] = true;
    st.current.push_back(i);
    st.spent += extra;
    st.profit += item.demand - st.params->em * leg;
    st.pos = item.pos;

    dfs(st);

    st.pos = prev_pos;
    st.profit -= item.demand - st.params->em * leg;
    st.spent -= extra;
    st.current.pop_back();
    st.used[i] = false;
  }
}

}  // namespace

ExactSolution exact_single_rv(const RvPlanState& rv,
                              const std::vector<RechargeItem>& items,
                              const PlannerParams& params,
                              bool include_return_in_budget) {
  WRSN_OBS_SCOPE("exact/branch-and-bound");
  WRSN_REQUIRE(items.size() <= 14,
               "exact solver is exponential; refuse instances above 14 items");
  SearchState st;
  st.items = &items;
  st.params = &params;
  st.budget = rv.available;
  st.include_return = include_return_in_budget;
  st.used.assign(items.size(), false);
  st.pos = rv.pos;
  st.best.profit = Joule{0.0};  // empty tour is always feasible
  dfs(st);
  return st.best;
}

}  // namespace wrsn
