#include "sched/request.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace wrsn {

std::size_t RechargeNodeList::slot_of(SensorId sensor) const {
  return sensor < slot_.size() ? slot_[sensor] : 0;
}

void RechargeNodeList::add(RechargeRequest request) {
  WRSN_REQUIRE(request.sensor != kInvalidId, "request needs a sensor id");
  WRSN_REQUIRE(request.demand.value() >= 0.0, "demand must be non-negative");
  WRSN_REQUIRE(!contains(request.sensor), "sensor already has a pending request");
  if (request.sensor >= slot_.size()) slot_.resize(request.sensor + 1, 0);
  slot_[request.sensor] = requests_.size() + 1;
  requests_.push_back(std::move(request));
}

bool RechargeNodeList::remove(SensorId sensor) {
  const std::size_t slot = slot_of(sensor);
  if (slot == 0) return false;
  requests_.erase(requests_.begin() + static_cast<std::ptrdiff_t>(slot - 1));
  slot_[sensor] = 0;
  for (std::size_t i = slot - 1; i < requests_.size(); ++i) {
    slot_[requests_[i].sensor] = i + 1;
  }
  return true;
}

void RechargeNodeList::clear() {
  requests_.clear();
  std::fill(slot_.begin(), slot_.end(), 0);
}

bool RechargeNodeList::contains(SensorId sensor) const {
  return slot_of(sensor) != 0;
}

bool RechargeNodeList::consistent() const {
  std::size_t indexed = 0;
  for (SensorId s = 0; s < slot_.size(); ++s) {
    const std::size_t slot = slot_[s];
    if (slot == 0) continue;
    if (slot > requests_.size()) return false;
    if (requests_[slot - 1].sensor != s) return false;
    ++indexed;
  }
  return indexed == requests_.size();
}

void RechargeNodeList::update(SensorId sensor, Joule demand, bool critical,
                              double fraction) {
  const std::size_t slot = slot_of(sensor);
  WRSN_REQUIRE(slot != 0, "no pending request for sensor");
  RechargeRequest& r = requests_[slot - 1];
  r.demand = demand;
  r.critical = critical;
  r.fraction = fraction;
}

std::vector<RechargeItem> aggregate_requests(
    const std::vector<RechargeRequest>& requests) {
  std::map<ClusterId, RechargeItem> clusters;  // ordered -> deterministic output
  std::vector<RechargeItem> singles;

  for (const RechargeRequest& r : requests) {
    if (r.cluster == kInvalidId) {
      RechargeItem item;
      item.pos = r.pos;
      item.demand = r.demand;
      item.critical = r.critical;
      item.min_fraction = r.fraction;
      item.sensors = {r.sensor};
      singles.push_back(std::move(item));
      continue;
    }
    RechargeItem& item = clusters[r.cluster];
    if (item.sensors.empty()) {
      item.cluster = r.cluster;
      item.pos = {0.0, 0.0};
    }
    item.pos += r.pos;  // centroid accumulated, divided below
    item.demand += r.demand;
    item.critical = item.critical || r.critical;
    item.min_fraction = std::min(item.min_fraction, r.fraction);
    item.sensors.push_back(r.sensor);
  }

  std::vector<RechargeItem> items;
  items.reserve(clusters.size() + singles.size());
  for (auto& [cid, item] : clusters) {
    item.pos = item.pos / static_cast<double>(item.sensors.size());
    items.push_back(std::move(item));
  }
  std::sort(singles.begin(), singles.end(),
            [](const RechargeItem& a, const RechargeItem& b) {
              return a.sensors.front() < b.sensors.front();
            });
  for (auto& s : singles) items.push_back(std::move(s));
  return items;
}

}  // namespace wrsn
