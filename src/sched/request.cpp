#include "sched/request.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace wrsn {

void RechargeNodeList::add(RechargeRequest request) {
  WRSN_REQUIRE(request.sensor != kInvalidId, "request needs a sensor id");
  WRSN_REQUIRE(request.demand.value() >= 0.0, "demand must be non-negative");
  WRSN_REQUIRE(!contains(request.sensor), "sensor already has a pending request");
  requests_.push_back(std::move(request));
}

bool RechargeNodeList::remove(SensorId sensor) {
  const auto it = std::find_if(requests_.begin(), requests_.end(),
                               [&](const RechargeRequest& r) { return r.sensor == sensor; });
  if (it == requests_.end()) return false;
  requests_.erase(it);
  return true;
}

bool RechargeNodeList::contains(SensorId sensor) const {
  return std::any_of(requests_.begin(), requests_.end(),
                     [&](const RechargeRequest& r) { return r.sensor == sensor; });
}

void RechargeNodeList::update(SensorId sensor, Joule demand, bool critical,
                              double fraction) {
  const auto it = std::find_if(requests_.begin(), requests_.end(),
                               [&](const RechargeRequest& r) { return r.sensor == sensor; });
  WRSN_REQUIRE(it != requests_.end(), "no pending request for sensor");
  it->demand = demand;
  it->critical = critical;
  it->fraction = fraction;
}

std::vector<RechargeItem> aggregate_requests(
    const std::vector<RechargeRequest>& requests) {
  std::map<ClusterId, RechargeItem> clusters;  // ordered -> deterministic output
  std::vector<RechargeItem> singles;

  for (const RechargeRequest& r : requests) {
    if (r.cluster == kInvalidId) {
      RechargeItem item;
      item.pos = r.pos;
      item.demand = r.demand;
      item.critical = r.critical;
      item.min_fraction = r.fraction;
      item.sensors = {r.sensor};
      singles.push_back(std::move(item));
      continue;
    }
    RechargeItem& item = clusters[r.cluster];
    if (item.sensors.empty()) {
      item.cluster = r.cluster;
      item.pos = {0.0, 0.0};
    }
    item.pos += r.pos;  // centroid accumulated, divided below
    item.demand += r.demand;
    item.critical = item.critical || r.critical;
    item.min_fraction = std::min(item.min_fraction, r.fraction);
    item.sensors.push_back(r.sensor);
  }

  std::vector<RechargeItem> items;
  items.reserve(clusters.size() + singles.size());
  for (auto& [cid, item] : clusters) {
    item.pos = item.pos / static_cast<double>(item.sensors.size());
    items.push_back(std::move(item));
  }
  std::sort(singles.begin(), singles.end(),
            [](const RechargeItem& a, const RechargeItem& b) {
              return a.sensors.front() < b.sensors.front();
            });
  for (auto& s : singles) items.push_back(std::move(s));
  return items;
}

}  // namespace wrsn
