#include "sched/policy.hpp"

#include <sstream>

#include "core/error.hpp"
#include "sched/policies/builtin.hpp"

namespace wrsn {

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << (i ? ", " : "") << names[i];
  }
  return os.str();
}

}  // namespace

std::vector<RechargeItem> DispatchContext::singles(
    const std::vector<RechargeItem>& from, SinglesCritical mode) const {
  std::vector<RechargeItem> out;
  for (const RechargeItem& item : from) {
    for (SensorId s : item.sensors) {
      const SensorView v = view_(s);
      RechargeItem one;
      one.pos = v.pos;
      one.demand = v.demand;
      one.critical =
          mode == SinglesCritical::kFresh ? v.critical : item.critical;
      one.sensors = {s};
      out.push_back(std::move(one));
    }
  }
  return out;
}

DispatchDecision fallback_single_node(const DispatchContext& ctx) {
  // Aggregated batches may exceed what this RV can afford in one tour;
  // fall back to the single most profitable raw request.
  std::vector<RechargeItem> singles =
      ctx.singles(ctx.items(), DispatchContext::SinglesCritical::kInherit);
  std::vector<bool> taken(singles.size(), false);
  if (const auto next = greedy_next(ctx.rv(), singles, taken, ctx.params())) {
    return DispatchDecision::plan(std::move(singles), {*next});
  }
  // Nothing affordable: top up at base, or come home.
  return DispatchDecision::self_charge();
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    // Paper schemes first, then the library's ablation baselines — the
    // order names() reports and the docs table uses.
    register_greedy_policy(*r);
    register_partition_policy(*r);
    register_combined_policy(*r);
    register_nearest_first_policy(*r);
    register_fcfs_policy(*r);
    register_edf_policy(*r);
    return r;
  }();
  return *registry;
}

void SchedulerRegistry::add(std::string name, std::string summary,
                            Factory factory) {
  WRSN_REQUIRE(!name.empty(), "scheduler name must be non-empty");
  WRSN_REQUIRE(factory != nullptr,
               "scheduler '" + name + "' needs a factory");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    WRSN_REQUIRE(e.name != name,
                 "scheduler '" + name + "' is already registered");
  }
  entries_.push_back({std::move(name), std::move(summary), factory});
}

bool SchedulerRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

std::unique_ptr<SchedulerPolicy> SchedulerRegistry::create(
    const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& e : entries_) {
      if (e.name == name) return e.factory();
    }
  }
  throw InvalidArgument("unknown scheduler '" + name +
                        "' (valid: " + join_names(names()) + ")");
}

std::vector<std::string> SchedulerRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::string SchedulerRegistry::summary(const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& e : entries_) {
      if (e.name == name) return e.summary;
    }
  }
  throw InvalidArgument("unknown scheduler '" + name +
                        "' (valid: " + join_names(names()) + ")");
}

std::vector<std::string> scheduler_names() {
  return SchedulerRegistry::instance().names();
}

}  // namespace wrsn
