#pragma once
// The recharge node list R (Section II-A) and its cluster-aggregated view.
//
// Sensors whose cluster's ERP trigger fired are appended here by the base
// station. Before route planning, per-sensor requests belonging to the same
// cluster are folded into one RechargeItem with the aggregated demand
// (Section IV-C: "all energy demands from sensors inside a cluster are
// replaced by an aggregated cluster energy demand"), positioned at the
// cluster centroid. Unclustered sensors become single-node items.

#include <vector>

#include "core/units.hpp"
#include "geom/vec2.hpp"
#include "net/ids.hpp"

namespace wrsn {

struct RechargeRequest {
  SensorId sensor = kInvalidId;
  ClusterId cluster = kInvalidId;  // kInvalidId when unclustered
  Vec2 pos;
  Joule demand;
  // Set when the sensor's level is below the critical fraction; critical
  // clusters are prioritized in destination selection (Section III-C).
  bool critical = false;
  // Battery fraction at the last status refresh (deadline proxy used by the
  // EDF extension scheduler).
  double fraction = 0.0;
};

class RechargeNodeList {
 public:
  void add(RechargeRequest request);
  // Removes the request of `sensor`; returns whether one existed.
  bool remove(SensorId sensor);
  void clear();

  [[nodiscard]] bool empty() const { return requests_.empty(); }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] bool contains(SensorId sensor) const;
  [[nodiscard]] const std::vector<RechargeRequest>& requests() const { return requests_; }

  // Refreshes demand/critical/fraction of an existing request (levels keep
  // dropping while the request waits).
  void update(SensorId sensor, Joule demand, bool critical, double fraction);

  // Structural invariant: every slot_ entry points at the request it indexes
  // and every request has a slot. O(N); meant for WRSN_DEBUG_ASSERT after
  // remove/failover re-injection, not for hot paths.
  [[nodiscard]] bool consistent() const;

 private:
  [[nodiscard]] std::size_t slot_of(SensorId sensor) const;

  std::vector<RechargeRequest> requests_;  // arrival order (planner contract)
  // slot_[s] = position of s's request in requests_ plus one, 0 when absent.
  // The list can hold thousands of waiting requests at large n, so the
  // per-dispatch contains/update lookups must not be linear scans.
  std::vector<std::size_t> slot_;
};

// One unit of work for the route planners: a cluster batch or a lone node.
struct RechargeItem {
  Vec2 pos;                      // cluster centroid or node position
  Joule demand;                  // aggregated energy demand
  bool critical = false;         // any member critical
  double min_fraction = 1.0;     // lowest member battery fraction (EDF key)
  ClusterId cluster = kInvalidId;
  std::vector<SensorId> sensors;  // the underlying requests
};

// Folds the raw request list into planner items. Ordering is deterministic:
// clusters by ascending cluster id, then unclustered nodes by sensor id.
[[nodiscard]] std::vector<RechargeItem> aggregate_requests(
    const std::vector<RechargeRequest>& requests);

}  // namespace wrsn
