#pragma once
// Pluggable scheduler-policy layer: every recharge-scheduling scheme is a
// strategy object behind the SchedulerPolicy interface, selected by name
// through the string-keyed SchedulerRegistry.
//
// A policy sees one idle RV's planning round through the narrow
// DispatchContext facade (aggregated unclaimed items, the RV's plan state,
// planner params, fleet positions, the scheduling RNG and the
// request-arrival order) and answers with a DispatchDecision: a visiting
// sequence over an item list, return-to-base, self-charge, or hold. The
// World owns the shared fallback mechanics (claiming, tour construction,
// the actual return/self-charge transitions); policies never touch World
// internals.
//
// Adding a scheme requires only a new file in src/sched/policies/ plus one
// registration line in register_builtin_policies (sched/policy.cpp) — no
// World, config or CLI edits. External code may also call
// SchedulerRegistry::instance().add(...) before constructing a World.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "sched/arena.hpp"
#include "sched/planner.hpp"
#include "sched/request.hpp"

namespace wrsn {

// Base-station view of one sensor at dispatch time: position, outstanding
// demand and the critical flag, all current as of the latest settlement.
struct SensorView {
  Vec2 pos;
  Joule demand;
  bool critical = false;
};

// Read-only facade over the state a policy may consult for one idle RV.
// All referenced containers must outlive the context (the World builds it
// on the stack per dispatch round; tests build it from plain vectors).
class DispatchContext {
 public:
  using SensorViewFn = std::function<SensorView(SensorId)>;

  DispatchContext(const std::vector<RechargeItem>& items,
                  const RvPlanState& rv, const PlannerParams& params,
                  std::size_t rv_id, const std::vector<Vec2>& fleet_positions,
                  std::size_t num_groups, Xoshiro256& sched_rng,
                  const std::vector<SensorId>& arrival_order,
                  SensorViewFn sensor_view, PlanArena* arena = nullptr)
      : items_(&items),
        rv_(&rv),
        params_(&params),
        rv_id_(rv_id),
        fleet_(&fleet_positions),
        num_groups_(num_groups),
        rng_(&sched_rng),
        arrival_(&arrival_order),
        view_(std::move(sensor_view)),
        arena_(arena) {}

  // Aggregated unclaimed recharge items (cluster batches / lone nodes).
  [[nodiscard]] const std::vector<RechargeItem>& items() const {
    return *items_;
  }
  // The RV being planned for: position and spendable energy budget.
  [[nodiscard]] const RvPlanState& rv() const { return *rv_; }
  [[nodiscard]] const PlannerParams& params() const { return *params_; }
  // Index of this RV within fleet_positions().
  [[nodiscard]] std::size_t rv_id() const { return rv_id_; }
  // Current position of every RV, busy ones included (index == RvId).
  [[nodiscard]] const std::vector<Vec2>& fleet_positions() const {
    return *fleet_;
  }
  // Configured group count for partitioning schemes (the fleet size m).
  [[nodiscard]] std::size_t num_groups() const { return num_groups_; }
  // The World's scheduling RNG stream; state advances across calls, so a
  // policy must draw from it exactly when its scheme needs randomness.
  [[nodiscard]] Xoshiro256& sched_rng() const { return *rng_; }
  // Unclaimed requesting sensors, oldest request first.
  [[nodiscard]] const std::vector<SensorId>& arrival_order() const {
    return *arrival_;
  }
  [[nodiscard]] SensorView sensor(SensorId s) const { return view_(s); }
  // Scratch arena for this round's plan construction (PlanContext tables).
  // Reset by the World between rounds; null when the caller provides none
  // (tests), in which case consumers fall back to the heap.
  [[nodiscard]] PlanArena* arena() const { return arena_; }

  // Expands cluster batches into per-sensor single-node items (fresh
  // position and demand). kFresh re-evaluates each sensor's critical flag;
  // kInherit copies the batch's flag (the historical fallback semantics).
  enum class SinglesCritical { kFresh, kInherit };
  [[nodiscard]] std::vector<RechargeItem> singles(
      const std::vector<RechargeItem>& from, SinglesCritical mode) const;

 private:
  const std::vector<RechargeItem>* items_;
  const RvPlanState* rv_;
  const PlannerParams* params_;
  std::size_t rv_id_;
  const std::vector<Vec2>* fleet_;
  std::size_t num_groups_;
  Xoshiro256* rng_;
  const std::vector<SensorId>* arrival_;
  SensorViewFn view_;
  PlanArena* arena_ = nullptr;
};

// What a policy asks the World to do with the RV this round.
struct DispatchDecision {
  enum class Kind {
    kPlan,          // serve `sequence` over `items`
    kReturnToBase,  // head home if in the field, otherwise hold
    kSelfCharge,    // head home if in the field, else top up at the dock
    kHold,          // do nothing this round
  };

  Kind kind = Kind::kHold;
  // kPlan only: the item list `sequence` indexes into. Policies that plan
  // over a derived list (e.g. per-sensor singles) return that list here.
  std::vector<RechargeItem> items;
  std::vector<std::size_t> sequence;

  [[nodiscard]] static DispatchDecision plan(std::vector<RechargeItem> over,
                                             std::vector<std::size_t> seq) {
    DispatchDecision d;
    d.kind = Kind::kPlan;
    d.items = std::move(over);
    d.sequence = std::move(seq);
    return d;
  }
  [[nodiscard]] static DispatchDecision return_to_base() {
    DispatchDecision d;
    d.kind = Kind::kReturnToBase;
    return d;
  }
  [[nodiscard]] static DispatchDecision self_charge() {
    DispatchDecision d;
    d.kind = Kind::kSelfCharge;
    return d;
  }
  [[nodiscard]] static DispatchDecision hold() { return DispatchDecision{}; }
};

// Strategy interface. Implementations must be deterministic given the
// context (any randomness comes from ctx.sched_rng()) and stateless across
// calls; one instance is created per World.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  [[nodiscard]] virtual DispatchDecision decide(
      const DispatchContext& ctx) const = 0;
};

// Shared tail used by aggregate planners when no full batch fits the
// budget: serve the single most profitable raw request (critical flags
// inherited from the batch), or go refill when nothing is affordable.
[[nodiscard]] DispatchDecision fallback_single_node(const DispatchContext& ctx);

// String-keyed registry of policy factories. Built-in schemes register on
// first access; lookups are thread-safe (Worlds are constructed from the
// replica thread pool).
class SchedulerRegistry {
 public:
  using Factory = std::unique_ptr<SchedulerPolicy> (*)();

  static SchedulerRegistry& instance();

  // Registers a policy. `summary` is a one-line description surfaced by
  // `wrsn_sim --list-schedulers` and the README table. Throws
  // InvalidArgument on a duplicate or empty name.
  void add(std::string name, std::string summary, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  // Instantiates the named policy; throws InvalidArgument listing the
  // registered names when `name` is unknown.
  [[nodiscard]] std::unique_ptr<SchedulerPolicy> create(
      const std::string& name) const;
  // Registered names, in registration order (paper schemes first).
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::string summary(const std::string& name) const;

 private:
  SchedulerRegistry() = default;

  struct Entry {
    std::string name;
    std::string summary;
    Factory factory;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

// Convenience: SchedulerRegistry::instance().names().
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace wrsn
