#include "sched/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "obs/telemetry.hpp"
#include "sched/plan_context.hpp"

namespace wrsn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Bound bookkeeping only pays off once the n*k product is sizeable.
constexpr std::size_t kSmallKMeans = 64;

// Certification margin (in metres) for skipping a point's assignment scan:
// a skip is taken only when the bounds prove the current center strictly
// dominates every other by more than this, so the full argmin — ties to the
// lowest index included — provably returns the current assignment. The
// margin towers over the bound drift accumulated across iterations (a few
// hundred ulps), keeping every skip sound in floating point.
constexpr double kMargin = 1e-7;

std::vector<Vec2> kmeanspp_init(const std::vector<Vec2>& points, std::size_t k,
                                Xoshiro256& rng) {
  std::vector<Vec2> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_int(points.size())]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const Vec2& c : centroids) {
        best = std::min(best, squared_distance(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[rng.uniform_int(points.size())]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

// Same draws, same centroids, O(n*k) instead of O(n*k^2): the reference
// recomputes every point's distance to every centroid each round, but the
// min over centroids 0..m-1 equals min(previous min, distance to the newest
// centroid) exactly — min of doubles is associative, no rounding is involved
// — so maintaining d2 incrementally reproduces the reference's d2 array (and
// therefore its weights, totals and RNG consumption) bit for bit.
std::vector<Vec2> kmeanspp_init_incremental(const std::vector<Vec2>& points,
                                            std::size_t k, Xoshiro256& rng) {
  std::vector<Vec2> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_int(points.size())]);
  std::vector<double> d2(points.size(), kInf);
  while (centroids.size() < k) {
    const Vec2 latest = centroids.back();
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], latest));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one. The
      // duplicate is an exact copy, so folding it into d2 next round leaves
      // every minimum unchanged, matching the reference.
      centroids.push_back(points[rng.uniform_int(points.size())]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

// The update step shared verbatim by the reference and the Elkan path, so
// both evaluate the exact same floating-point expressions. Appends the
// index of every point used to re-seed an empty cluster to `reseeded`.
bool update_centroids(const std::vector<Vec2>& points, std::size_t k,
                      std::vector<std::size_t>& assignment,
                      std::vector<Vec2>& centroids,
                      std::vector<std::size_t>* reseeded) {
  bool changed = false;
  std::vector<Vec2> sums(k, Vec2{});
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    sums[assignment[i]] += points[i];
    ++counts[assignment[i]];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      centroids[c] = sums[c] / static_cast<double>(counts[c]);
    } else {
      // Re-seed an empty cluster on the farthest point from its centroid.
      double far_d = -1.0;
      std::size_t far_i = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const double d = squared_distance(points[i], centroids[assignment[i]]);
        if (d > far_d) {
          far_d = d;
          far_i = i;
        }
      }
      centroids[c] = points[far_i];
      assignment[far_i] = c;
      if (reseeded) reseeded->push_back(far_i);
      changed = true;
    }
  }
  return changed;
}

}  // namespace

double wcss_of(const std::vector<Vec2>& points,
               const std::vector<std::size_t>& assignment,
               const std::vector<Vec2>& centroids) {
  WRSN_REQUIRE(assignment.size() == points.size(), "assignment size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    WRSN_REQUIRE(assignment[i] < centroids.size(), "cluster index out of range");
    total += squared_distance(points[i], centroids[assignment[i]]);
  }
  return total;
}

KMeansResult kmeans_reference(const std::vector<Vec2>& points, std::size_t k,
                              Xoshiro256& rng, std::size_t max_iterations) {
  WRSN_OBS_SCOPE("kmeans/lloyd");
  WRSN_REQUIRE(k > 0, "k must be positive");
  KMeansResult result;
  if (points.empty()) {
    result.converged = true;
    return result;
  }
  if (k >= points.size()) {
    result.assignment.resize(points.size());
    result.centroids = points;
    for (std::size_t i = 0; i < points.size(); ++i) result.assignment[i] = i;
    result.converged = true;
    return result;
  }

  result.centroids = kmeanspp_init(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (result.iterations = 1; result.iterations <= max_iterations;
       ++result.iterations) {
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    // Update step.
    if (update_centroids(points, k, result.assignment, result.centroids,
                         nullptr)) {
      changed = true;
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.wcss = wcss_of(points, result.assignment, result.centroids);
  return result;
}

KMeansResult kmeans(const std::vector<Vec2>& points, std::size_t k,
                    Xoshiro256& rng, std::size_t max_iterations) {
  if (planners_use_reference() || points.size() < kSmallKMeans) {
    return kmeans_reference(points, k, rng, max_iterations);
  }
  WRSN_OBS_SCOPE("kmeans/lloyd");
  WRSN_REQUIRE(k > 0, "k must be positive");
  KMeansResult result;
  // points.size() > kSmallKMeans > 0 here; the k >= n identity case still
  // mirrors the reference for completeness.
  if (k >= points.size()) {
    result.assignment.resize(points.size());
    result.centroids = points;
    for (std::size_t i = 0; i < points.size(); ++i) result.assignment[i] = i;
    result.converged = true;
    return result;
  }

  result.centroids = kmeanspp_init_incremental(points, k, rng);
  result.assignment.assign(points.size(), 0);

  const std::size_t n = points.size();
  // Hamerly-style triangle-inequality bounds — one pair per point, so the
  // per-iteration bookkeeping is O(n + k^2) instead of the reference's
  // O(n*k) scan (or Elkan's O(n*k) bound maintenance, whose memory traffic
  // eats the savings at the k's this simulator uses):
  //   u[i] >= d(point i, its center)
  //   l[i] <= min over c != assignment[i] of d(point i, center c)
  // both maintained within a few hundred ulps (<< kMargin).
  //
  // Bounds are drifted LAZILY: instead of an O(n) pass after every update
  // step adding each center's drift to u and subtracting the largest drift
  // from l (two stores plus a gather per point per iteration — the memory
  // traffic that made this path slower than the plain scan at n ~ 2000), we
  // keep per-center cumulative drifts and a cumulative max drift, stamp each
  // point with the update count at which its bounds were exact, and
  // reconstruct the drifted bounds inside the skip test from the prefix-sum
  // difference. The reconstructed u is identical to the eagerly-maintained
  // sum up to association of additions; any such u remains a sound upper
  // bound, and soundness is all a skip needs — the full argmin is only ever
  // bypassed when the bounds PROVE it would return the current assignment,
  // so the output stays bit-identical to the reference regardless of which
  // points happen to be certified.
  std::vector<double> u(n, kInf);
  std::vector<double> l(n, 0.0);
  std::vector<double> s(k, 0.0);  // half the distance to the closest other center
  std::vector<std::uint32_t> stamp(n, 0);  // update count when u/l were exact
  const std::size_t kStride = max_iterations + 1;
  std::vector<double> cum(k * kStride, 0.0);  // cum[c*kStride+t]: drift of c over t updates
  std::vector<double> cum_max(kStride, 0.0);  // cumulative max-over-centers drift
  std::vector<Vec2> old_centroids(k);
  std::vector<std::size_t> reseeded;

  // Full reference argmin for one point; refreshes its bounds exactly.
  auto assign_full = [&](std::size_t i) -> std::size_t {
    double best = kInf;
    double second = kInf;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = squared_distance(points[i], result.centroids[c]);
      if (d < best) {
        second = best;
        best = d;
        best_c = c;
      } else {
        second = std::min(second, d);
      }
    }
    u[i] = std::sqrt(best);
    l[i] = std::sqrt(second);  // inf stays inf when k == 1
    return best_c;
  };

  // Both assignment passes only write per-point slots (u/l/stamp/assignment)
  // and read state that is frozen for the pass (centroids, s, the drift
  // tables), so they shard across the installed executor (core/parallel.hpp)
  // with no merge step at all: every slot ends up with exactly the value the
  // serial loop would store. The changed flags are ORed per shard in
  // shard-index order (order-independent for a bool, ordered anyway).
  auto run_pass = [&](auto&& pass) -> bool {
    ParallelExec* exec = current_parallel();
    if (exec != nullptr && exec->should_shard(n)) {
      return exec->reduce_shards(
          n, false, pass, [](bool& acc, bool part) { acc = acc || part; });
    }
    return pass(std::size_t{0}, n);
  };

  for (result.iterations = 1; result.iterations <= max_iterations;
       ++result.iterations) {
    // Updates applied so far; index into the cumulative-drift tables.
    const std::uint32_t now = static_cast<std::uint32_t>(result.iterations - 1);
    bool changed = false;
    if (result.iterations == 1) {
      // First pass: full scans, exactly the reference, seeding the bounds.
      changed = run_pass([&](std::size_t begin, std::size_t end) {
        bool any = false;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t best_c = assign_full(i);
          if (result.assignment[i] != best_c) {
            result.assignment[i] = best_c;
            any = true;
          }
        }
        return any;
      });
    } else {
      for (std::size_t c = 0; c < k; ++c) {
        double nearest = kInf;
        for (std::size_t o = 0; o < k; ++o) {
          if (o == c) continue;
          nearest = std::min(nearest,
                             distance(result.centroids[c], result.centroids[o]));
        }
        s[c] = 0.5 * nearest;
      }
      const double cum_max_now = cum_max[now];
      changed = run_pass([&](std::size_t begin, std::size_t end) {
        bool any = false;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t a = result.assignment[i];
          const std::uint32_t ti = stamp[i];
          // Reconstruct the drifted bounds from the prefix sums: u grew by
          // the own center's drift since the stamp, l shrank by the
          // accumulated max drift (l may go negative; max with s keeps the
          // test sound).
          const double u_eff =
              u[i] + (cum[a * kStride + now] - cum[a * kStride + ti]);
          const double l_eff = l[i] - (cum_max_now - cum_max[ti]);
          // Skip when either bound proves strict dominance: any other center
          // c has d(i,c) >= max(2*s[a] - u[i], l[i]) > u[i] >= d(i,a), so the
          // full argmin — ties to the lowest index included — would return
          // the current assignment.
          const double m = std::max(s[a], l_eff);
          if (u_eff + kMargin < m) continue;
          // Tighten u to the exact distance, re-stamp, and retry before
          // paying for the full scan (the cheap test fails mostly because u
          // drifted).
          u[i] = std::sqrt(squared_distance(points[i], result.centroids[a]));
          l[i] = l_eff;
          stamp[i] = now;
          if (u[i] + kMargin < m) continue;
          const std::size_t best_c = assign_full(i);
          if (result.assignment[i] != best_c) {
            result.assignment[i] = best_c;
            any = true;
          }
          stamp[i] = now;
        }
        return any;
      });
    }

    // Update step (verbatim reference expressions).
    old_centroids = result.centroids;
    reseeded.clear();
    if (update_centroids(points, k, result.assignment, result.centroids,
                         &reseeded)) {
      changed = true;
    }

    // Extend the cumulative drift tables by this update's movement. No O(n)
    // pass: points pick the drift up lazily from their stamps.
    double d_max = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = distance(old_centroids[c], result.centroids[c]);
      cum[c * kStride + now + 1] = cum[c * kStride + now] + d;
      d_max = std::max(d_max, d);
    }
    cum_max[now + 1] = cum_max[now] + d_max;
    // A re-seeded point sits exactly on its new center (u = 0 is exact), but
    // its second-best bound is unknown; l = 0 only lets it skip when the
    // s-bound alone proves dominance.
    for (std::size_t i : reseeded) {
      u[i] = 0.0;
      l[i] = 0.0;
      stamp[i] = now + 1;
    }

    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.wcss = wcss_of(points, result.assignment, result.centroids);
  return result;
}

}  // namespace wrsn
