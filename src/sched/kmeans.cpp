#include "sched/kmeans.hpp"

#include <limits>

#include "core/error.hpp"
#include "obs/telemetry.hpp"

namespace wrsn {

namespace {

std::vector<Vec2> kmeanspp_init(const std::vector<Vec2>& points, std::size_t k,
                                Xoshiro256& rng) {
  std::vector<Vec2> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_int(points.size())]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const Vec2& c : centroids) {
        best = std::min(best, squared_distance(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[rng.uniform_int(points.size())]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

double wcss_of(const std::vector<Vec2>& points,
               const std::vector<std::size_t>& assignment,
               const std::vector<Vec2>& centroids) {
  WRSN_REQUIRE(assignment.size() == points.size(), "assignment size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    WRSN_REQUIRE(assignment[i] < centroids.size(), "cluster index out of range");
    total += squared_distance(points[i], centroids[assignment[i]]);
  }
  return total;
}

KMeansResult kmeans(const std::vector<Vec2>& points, std::size_t k,
                    Xoshiro256& rng, std::size_t max_iterations) {
  WRSN_OBS_SCOPE("kmeans/lloyd");
  WRSN_REQUIRE(k > 0, "k must be positive");
  KMeansResult result;
  if (points.empty()) {
    result.converged = true;
    return result;
  }
  if (k >= points.size()) {
    result.assignment.resize(points.size());
    result.centroids = points;
    for (std::size_t i = 0; i < points.size(); ++i) result.assignment[i] = i;
    result.converged = true;
    return result;
  }

  result.centroids = kmeanspp_init(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (result.iterations = 1; result.iterations <= max_iterations;
       ++result.iterations) {
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    // Update step.
    std::vector<Vec2> sums(k, Vec2{});
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.assignment[i]] += points[i];
      ++counts[result.assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = sums[c] / static_cast<double>(counts[c]);
      } else {
        // Re-seed an empty cluster on the farthest point from its centroid.
        double far_d = -1.0;
        std::size_t far_i = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d =
              squared_distance(points[i], result.centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far_i = i;
          }
        }
        result.centroids[c] = points[far_i];
        result.assignment[far_i] = c;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.wcss = wcss_of(points, result.assignment, result.centroids);
  return result;
}

}  // namespace wrsn
