#include "sched/mip.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace wrsn {

Joule JrssamModel::edge_cost(std::size_t i, std::size_t j) const {
  WRSN_REQUIRE(i < num_nodes() && j < num_nodes(), "edge index out of range");
  return move_cost * Meter{distance(node_pos[i], node_pos[j])};
}

Joule JrssamModel::base_cost(std::size_t i) const {
  WRSN_REQUIRE(i < num_nodes(), "node index out of range");
  return move_cost * Meter{distance(base, node_pos[i])};
}

JrssamModel JrssamModel::from_items(const std::vector<RechargeItem>& items,
                                    std::size_t num_rvs, Joule rv_capacity,
                                    const PlannerParams& params) {
  WRSN_REQUIRE(num_rvs > 0, "need at least one RV");
  JrssamModel model;
  model.num_rvs = num_rvs;
  model.rv_capacity = rv_capacity;
  model.move_cost = params.em;
  model.base = params.base;
  model.node_pos.reserve(items.size());
  model.demand.reserve(items.size());
  for (const RechargeItem& item : items) {
    model.node_pos.push_back(item.pos);
    model.demand.push_back(item.demand);
  }
  return model;
}

namespace {

Joule route_cost(const JrssamModel& model, const std::vector<std::size_t>& route) {
  if (route.empty()) return Joule{0.0};
  Joule cost = model.base_cost(route.front());
  for (std::size_t k = 1; k < route.size(); ++k) {
    cost += model.edge_cost(route[k - 1], route[k]);
  }
  cost += model.base_cost(route.back());
  return cost;
}

Joule route_demand(const JrssamModel& model, const std::vector<std::size_t>& route) {
  Joule d{0.0};
  for (std::size_t i : route) d += model.demand[i];
  return d;
}

}  // namespace

std::vector<ConstraintViolation> validate(const JrssamModel& model,
                                          const RouteSolution& sol) {
  std::vector<ConstraintViolation> out;
  auto violate = [&](const std::string& constraint, const std::string& detail) {
    out.push_back({constraint, detail});
  };

  if (sol.routes.size() != model.num_rvs) {
    violate("(3) one tour per RV",
            "solution has " + std::to_string(sol.routes.size()) + " routes for " +
                std::to_string(model.num_rvs) + " RVs");
    return out;
  }

  std::vector<int> served(model.num_nodes(), 0);
  for (std::size_t a = 0; a < sol.routes.size(); ++a) {
    const auto& route = sol.routes[a];
    for (std::size_t i : route) {
      if (i >= model.num_nodes()) {
        violate("(10)-(11) variable domain",
                "RV " + std::to_string(a) + " visits unknown node " +
                    std::to_string(i));
        return out;
      }
      ++served[i];
    }
    // Within-route duplicates also break the degree constraints (4).
    std::vector<std::size_t> sorted = route;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      violate("(4) in/out degree", "RV " + std::to_string(a) +
                                       " visits a node more than once");
    }
    // Capacity (7): delivered energy + traveling cost within C_r.
    const Joule used = route_demand(model, route) + route_cost(model, route);
    if (used > model.rv_capacity + Joule{1e-9}) {
      std::ostringstream os;
      os << "RV " << a << " uses " << used.value() << " J of capacity "
         << model.rv_capacity.value() << " J";
      violate("(7) RV capacity", os.str());
    }
  }

  // (8): every node recharged by at most one RV.
  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    if (served[i] > 1) {
      violate("(8) at most one RV per node",
              "node " + std::to_string(i) + " served " +
                  std::to_string(served[i]) + " times");
    }
  }
  return out;
}

Joule objective(const JrssamModel& model, const RouteSolution& sol) {
  Joule total{0.0};
  for (const auto& route : sol.routes) {
    total += route_demand(model, route) - route_cost(model, route);
  }
  return total;
}

namespace {

struct MultiSearch {
  const JrssamModel* model;
  RouteSolution current;
  std::vector<bool> used;
  std::vector<Joule> route_used;  // per RV: demand + travel incl. return
  std::vector<Vec2> rv_pos;
  Joule profit{0.0};
  ExactMultiResult best;

  void dfs() {
    ++best.nodes_explored;
    if (profit > best.objective) {
      best.objective = profit;
      best.solution = current;
    }
    // Optimistic bound: every unused demand for free.
    Joule bound = profit;
    for (std::size_t i = 0; i < model->num_nodes(); ++i) {
      if (!used[i]) bound += model->demand[i];
    }
    if (bound <= best.objective) return;

    for (std::size_t i = 0; i < model->num_nodes(); ++i) {
      if (used[i]) continue;
      for (std::size_t a = 0; a < model->num_rvs; ++a) {
        // Symmetry breaking: an empty RV a may only start a route if every
        // earlier RV already has one (identical vehicles).
        if (current.routes[a].empty() && a > 0 &&
            current.routes[a - 1].empty()) {
          break;
        }
        const bool first = current.routes[a].empty();
        const Joule leg = model->move_cost *
                          Meter{first ? distance(model->base, model->node_pos[i])
                                      : distance(rv_pos[a], model->node_pos[i])};
        const Joule back = model->base_cost(i);
        const Joule prev_back =
            first ? Joule{0.0} : model->base_cost(current.routes[a].back());
        const Joule new_used =
            route_used[a] - prev_back + leg + model->demand[i] + back;
        if (new_used > model->rv_capacity + Joule{1e-9}) continue;

        // Apply.
        const Joule prev_used = route_used[a];
        const Vec2 prev_pos = rv_pos[a];
        const Joule delta_profit =
            model->demand[i] - leg - back + prev_back;
        current.routes[a].push_back(i);
        used[i] = true;
        route_used[a] = new_used;
        rv_pos[a] = model->node_pos[i];
        profit += delta_profit;

        dfs();

        profit -= delta_profit;
        rv_pos[a] = prev_pos;
        route_used[a] = prev_used;
        used[i] = false;
        current.routes[a].pop_back();
      }
    }
  }
};

}  // namespace

ExactMultiResult exact_multi_rv(const JrssamModel& model) {
  WRSN_REQUIRE(model.num_nodes() <= 10, "exact multi-RV solver limited to 10 nodes");
  WRSN_REQUIRE(model.num_rvs <= 3, "exact multi-RV solver limited to 3 RVs");
  MultiSearch search;
  search.model = &model;
  search.current.routes.assign(model.num_rvs, {});
  search.used.assign(model.num_nodes(), false);
  search.route_used.assign(model.num_rvs, Joule{0.0});
  search.rv_pos.assign(model.num_rvs, model.base);
  search.best.solution.routes.assign(model.num_rvs, {});
  search.best.objective = Joule{0.0};  // all RVs staying home is feasible
  search.dfs();
  return search.best;
}

}  // namespace wrsn
