#pragma once
// Tour construction for intra-cluster recharging (Section IV-C cites the
// canonical nearest-neighbour heuristic, O(n_c^2)) plus a 2-opt improver
// used by tests and the ablation bench to quantify how much tour quality
// matters at cluster scale.

#include <vector>

#include "geom/vec2.hpp"

namespace wrsn {

// Visiting order of `points` starting from `start` (start itself is not a
// point index): greedy nearest-neighbour. Returns indices into `points`.
[[nodiscard]] std::vector<std::size_t> nearest_neighbor_tour(
    Vec2 start, const std::vector<Vec2>& points);

// In-place 2-opt improvement of an open tour that begins at `start`; stops
// when no improving exchange exists or `max_rounds` passes complete.
void two_opt(Vec2 start, const std::vector<Vec2>& points,
             std::vector<std::size_t>& order, int max_rounds = 16);

// Length of the open path start -> points[order[0]] -> ... -> last.
[[nodiscard]] double open_tour_length(Vec2 start, const std::vector<Vec2>& points,
                                      const std::vector<std::size_t>& order);

}  // namespace wrsn
