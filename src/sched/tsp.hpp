#pragma once
// Tour construction for intra-cluster recharging (Section IV-C cites the
// canonical nearest-neighbour heuristic, O(n_c^2)) plus a 2-opt improver
// used by tests and the ablation bench to quantify how much tour quality
// matters at cluster scale.
//
// Both routines come in two flavours: the `_reference` variants are the
// original quadratic scans, kept as the bit-exact oracle; the unsuffixed
// entry points dispatch to grid-accelerated implementations that visit
// spatial-grid cells in expanding rings and prune candidates against the
// incumbent, but apply the exact same floating-point acceptance tests and
// therefore produce identical tours (enforced by the planner-equivalence
// property tests). Set WRSN_REFERENCE_PLANNERS=1 to force the reference
// paths at runtime.

#include <vector>

#include "geom/vec2.hpp"

namespace wrsn {

// Visiting order of `points` starting from `start` (start itself is not a
// point index): greedy nearest-neighbour. Returns indices into `points`.
[[nodiscard]] std::vector<std::size_t> nearest_neighbor_tour(
    Vec2 start, const std::vector<Vec2>& points);

// O(n^2) reference of the above; identical output.
[[nodiscard]] std::vector<std::size_t> nearest_neighbor_tour_reference(
    Vec2 start, const std::vector<Vec2>& points);

// In-place 2-opt improvement of an open tour that begins at `start`; stops
// when no improving exchange exists or `max_rounds` passes complete.
void two_opt(Vec2 start, const std::vector<Vec2>& points,
             std::vector<std::size_t>& order, int max_rounds = 16);

// O(n^2)-per-round reference of the above; identical output.
void two_opt_reference(Vec2 start, const std::vector<Vec2>& points,
                       std::vector<std::size_t>& order, int max_rounds = 16);

// Length of the open path start -> points[order[0]] -> ... -> last.
[[nodiscard]] double open_tour_length(Vec2 start, const std::vector<Vec2>& points,
                                      const std::vector<std::size_t>& order);

}  // namespace wrsn
