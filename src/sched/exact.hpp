#pragma once
// Exact solver for the single-RV special case of the JRSSAM optimization
// (Section IV-A): select a subset of recharge items and a visiting order
// maximizing   sum(d_i) - e_m * path_length   subject to the RV capacity
// (travel + delivered energy within budget). This is TSP-with-Profits, so
// exponential in general — branch-and-bound keeps instances up to ~12 items
// tractable. Used by the test suite to bound the regret of Algorithms 2/3
// and by the ablation bench.

#include <vector>

#include "core/units.hpp"
#include "geom/vec2.hpp"
#include "sched/planner.hpp"
#include "sched/request.hpp"

namespace wrsn {

struct ExactSolution {
  std::vector<std::size_t> sequence;  // visiting order (item indices)
  Joule profit{0.0};                  // objective value of the sequence
  std::size_t nodes_explored = 0;     // search-tree statistics
};

// `include_return_in_budget` accounts the way the heuristics do: the tour
// must retain enough energy to get back to base, but the return leg does not
// count against the profit objective (matching expression (2) as the paper
// evaluates it).
[[nodiscard]] ExactSolution exact_single_rv(const RvPlanState& rv,
                                            const std::vector<RechargeItem>& items,
                                            const PlannerParams& params,
                                            bool include_return_in_budget = true);

}  // namespace wrsn
