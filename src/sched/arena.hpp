#pragma once
// PlanArena — bump allocator for per-dispatch planning scratch.
//
// Every planning round builds a PlanContext (base-distance table, per-cell
// bound tables, the critical-item list) that lives only for one decide()
// call. The arena hands out pointer-bumped blocks from reused chunks and
// reclaims everything in O(1) at reset(), so steady-state dispatching does
// no heap allocation for these tables. ArenaAllocator adapts the arena to
// std::vector; with a null arena it degrades to plain new/delete (contexts
// built outside a dispatch round, e.g. planner unit tests).

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace wrsn {

class PlanArena {
 public:
  explicit PlanArena(std::size_t chunk_bytes = std::size_t{1} << 16)
      : chunk_bytes_(chunk_bytes) {}

  void* allocate(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (chunk_ < chunks_.size()) {
        const Chunk& c = chunks_[chunk_];
        const std::size_t off = (offset_ + align - 1) & ~(align - 1);
        if (off + bytes <= c.size) {
          offset_ = off + bytes;
          return c.data.get() + off;
        }
        ++chunk_;  // the remainder of this chunk is abandoned until reset()
        offset_ = 0;
        continue;
      }
      const std::size_t size = std::max(chunk_bytes_, bytes + align);
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
      offset_ = 0;
    }
  }

  // O(1): every block handed out so far becomes free again; the chunks stay
  // allocated for reuse. Callers must not touch prior allocations afterward.
  void reset() {
    chunk_ = 0;
    offset_ = 0;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;
  std::size_t offset_ = 0;
  std::size_t chunk_bytes_;
};

// std-allocator adapter. Deallocation is a no-op while arena-backed (memory
// comes back at PlanArena::reset()); a default-constructed allocator uses
// the global heap so arena-typed containers still work stand-alone.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(PlanArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  [[nodiscard]] PlanArena* arena() const noexcept { return arena_; }

 private:
  PlanArena* arena_ = nullptr;
};

template <typename T, typename U>
[[nodiscard]] bool operator==(const ArenaAllocator<T>& a,
                              const ArenaAllocator<U>& b) noexcept {
  return a.arena() == b.arena();
}
template <typename T, typename U>
[[nodiscard]] bool operator!=(const ArenaAllocator<T>& a,
                              const ArenaAllocator<U>& b) noexcept {
  return !(a == b);
}

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace wrsn
