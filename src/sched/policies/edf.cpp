// EDF extension baseline: earliest estimated depletion deadline first.
#include <memory>
#include <vector>

#include "sched/policies/builtin.hpp"
#include "sched/policy.hpp"

namespace wrsn {
namespace {

class EdfPolicy final : public SchedulerPolicy {
 public:
  DispatchDecision decide(const DispatchContext& ctx) const override {
    std::vector<bool> taken(ctx.items().size(), false);
    if (const auto next =
            edf_next(ctx.rv(), ctx.items(), taken, ctx.params())) {
      return DispatchDecision::plan(ctx.items(), {*next});
    }
    return fallback_single_node(ctx);
  }
};

}  // namespace

void register_edf_policy(SchedulerRegistry& registry) {
  registry.add("edf",
               "extension baseline: affordable batch whose lowest member "
               "battery fraction is smallest (earliest deadline)",
               []() -> std::unique_ptr<SchedulerPolicy> {
                 return std::make_unique<EdfPolicy>();
               });
}

}  // namespace wrsn
