// Nearest-first extension baseline: always serve the closest batch.
#include <memory>
#include <vector>

#include "sched/plan_context.hpp"
#include "sched/policies/builtin.hpp"
#include "sched/policy.hpp"

namespace wrsn {
namespace {

class NearestFirstPolicy final : public SchedulerPolicy {
 public:
  DispatchDecision decide(const DispatchContext& ctx) const override {
    const PlanContext plan(ctx.items(), ctx.params(), ctx.arena());
    std::vector<bool> taken(ctx.items().size(), false);
    if (const auto next = plan.nearest_next(ctx.rv(), taken)) {
      return DispatchDecision::plan(ctx.items(), {*next});
    }
    return fallback_single_node(ctx);
  }
};

}  // namespace

void register_nearest_first_policy(SchedulerRegistry& registry) {
  registry.add("nearest-first",
               "extension baseline: geographically nearest affordable batch "
               "(critical clusters first), ignoring demand",
               []() -> std::unique_ptr<SchedulerPolicy> {
                 return std::make_unique<NearestFirstPolicy>();
               });
}

}  // namespace wrsn
