// Combined-Scheme (Section IV-D-2): Algorithm 3 over the global item list.
#include <memory>
#include <vector>

#include "sched/plan_context.hpp"
#include "sched/policies/builtin.hpp"
#include "sched/policy.hpp"

namespace wrsn {
namespace {

class CombinedPolicy final : public SchedulerPolicy {
 public:
  DispatchDecision decide(const DispatchContext& ctx) const override {
    // Grid-pruned hot path (bit-identical to the reference scan).
    const PlanContext plan(ctx.items(), ctx.params(), ctx.arena());
    std::vector<bool> taken(ctx.items().size(), false);
    std::vector<std::size_t> seq = plan.insertion_sequence(ctx.rv(), taken);
    if (seq.empty()) return fallback_single_node(ctx);
    return DispatchDecision::plan(ctx.items(), std::move(seq));
  }
};

}  // namespace

void register_combined_policy(SchedulerRegistry& registry) {
  registry.add("combined",
               "Combined-Scheme (Section IV-D-2): Algorithm 3 insertion "
               "sequence over the global recharge list",
               []() -> std::unique_ptr<SchedulerPolicy> {
                 return std::make_unique<CombinedPolicy>();
               });
}

}  // namespace wrsn
