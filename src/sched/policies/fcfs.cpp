// FCFS extension baseline: serve batches in request-arrival order.
#include <algorithm>
#include <memory>
#include <vector>

#include "sched/policies/builtin.hpp"
#include "sched/policy.hpp"

namespace wrsn {
namespace {

class FcfsPolicy final : public SchedulerPolicy {
 public:
  DispatchDecision decide(const DispatchContext& ctx) const override {
    // The oldest unclaimed request decides which batch goes next (the
    // arrival order preserves the recharge node list's FIFO contract). A
    // batch whose tour cost exceeds the RV's budget is skipped in favour of
    // the next-oldest affordable one — an oversized head batch must not
    // starve the rest of the queue.
    const std::vector<RechargeItem>& items = ctx.items();
    std::vector<bool> considered(items.size(), false);
    for (const SensorId oldest : ctx.arrival_order()) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        const auto& sensors = items[i].sensors;
        if (std::find(sensors.begin(), sensors.end(), oldest) ==
            sensors.end()) {
          continue;
        }
        if (!considered[i]) {
          considered[i] = true;
          const Joule need =
              ctx.params().em *
                  Meter{distance(ctx.rv().pos, items[i].pos) +
                        distance(items[i].pos, ctx.params().base)} +
              items[i].demand;
          if (need <= ctx.rv().available) {
            return DispatchDecision::plan(items, {i});
          }
        }
        break;  // batch located (and already weighed); next-oldest request
      }
    }
    return fallback_single_node(ctx);
  }
};

}  // namespace

void register_fcfs_policy(SchedulerRegistry& registry) {
  registry.add("fcfs",
               "extension baseline: oldest affordable batch in "
               "request-arrival order",
               []() -> std::unique_ptr<SchedulerPolicy> {
                 return std::make_unique<FcfsPolicy>();
               });
}

}  // namespace wrsn
