#pragma once
// Registration hooks for the built-in scheduler policies. Each function is
// defined in its policy's translation unit under src/sched/policies/ and
// called once from register_builtin_policies (sched/policy.cpp). Explicit
// calls — rather than static registrar objects — keep registration working
// inside static libraries, where the linker drops object files nothing
// references.

namespace wrsn {

class SchedulerRegistry;

void register_greedy_policy(SchedulerRegistry& registry);
void register_partition_policy(SchedulerRegistry& registry);
void register_combined_policy(SchedulerRegistry& registry);
void register_nearest_first_policy(SchedulerRegistry& registry);
void register_fcfs_policy(SchedulerRegistry& registry);
void register_edf_policy(SchedulerRegistry& registry);

}  // namespace wrsn
