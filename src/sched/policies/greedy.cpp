// Greedy-Scheme (Algorithm 2): the paper's baseline scheduler.
#include <memory>
#include <vector>

#include "sched/policies/builtin.hpp"
#include "sched/policy.hpp"

namespace wrsn {
namespace {

class GreedyPolicy final : public SchedulerPolicy {
 public:
  DispatchDecision decide(const DispatchContext& ctx) const override {
    // The baseline of Algorithm 2 predates the cluster aggregation of
    // Section IV-C: it scores raw nodes and drives to one node at a time,
    // which is exactly the inefficiency the paper calls out.
    std::vector<RechargeItem> singles =
        ctx.singles(ctx.items(), DispatchContext::SinglesCritical::kFresh);
    std::vector<bool> taken(singles.size(), false);
    if (const auto next =
            greedy_next(ctx.rv(), singles, taken, ctx.params())) {
      return DispatchDecision::plan(std::move(singles), {*next});
    }
    return DispatchDecision::self_charge();
  }
};

}  // namespace

void register_greedy_policy(SchedulerRegistry& registry) {
  registry.add("greedy",
               "Algorithm 2 baseline: max recharge profit per step over raw "
               "nodes, one destination at a time",
               []() -> std::unique_ptr<SchedulerPolicy> {
                 return std::make_unique<GreedyPolicy>();
               });
}

}  // namespace wrsn
