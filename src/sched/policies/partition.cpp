// Partition-Scheme (Section IV-D-1): K-means groups matched to RVs,
// Algorithm 3 within this RV's group.
#include <memory>
#include <vector>

#include "sched/plan_context.hpp"
#include "sched/policies/builtin.hpp"
#include "sched/policy.hpp"

namespace wrsn {
namespace {

class PartitionPolicy final : public SchedulerPolicy {
 public:
  DispatchDecision decide(const DispatchContext& ctx) const override {
    // K-means over the full list into m groups (Section IV-D-1). Groups are
    // matched to ALL RVs (busy ones included) so each vehicle keeps a
    // stable geographic responsibility; this RV plans only within the group
    // matched to it.
    const std::vector<RechargeItem>& items = ctx.items();
    const auto groups =
        partition_items(items, ctx.num_groups(), ctx.sched_rng());
    std::vector<Vec2> centroids;
    std::vector<const std::vector<std::size_t>*> live_groups;
    for (const auto& group : groups) {
      if (group.empty()) continue;
      Vec2 centroid{};
      for (std::size_t i : group) centroid += items[i].pos;
      centroids.push_back(centroid / static_cast<double>(group.size()));
      live_groups.push_back(&group);
    }
    const std::vector<std::size_t>* best_group = nullptr;
    if (!live_groups.empty()) {
      const auto rv_of_group =
          match_groups_to_rvs(centroids, ctx.fleet_positions());
      for (std::size_t g = 0; g < live_groups.size(); ++g) {
        if (rv_of_group[g] == ctx.rv_id()) {
          best_group = live_groups[g];
          break;
        }
      }
    }
    if (best_group == nullptr) {
      // No group in this RV's designated area: it stays put rather than
      // poaching another region — the confinement the scheme is about.
      return DispatchDecision::return_to_base();
    }
    std::vector<RechargeItem> group_items;
    group_items.reserve(best_group->size());
    for (std::size_t i : *best_group) group_items.push_back(items[i]);
    std::vector<bool> group_taken(group_items.size(), false);
    const PlanContext group_ctx(group_items, ctx.params(), ctx.arena());
    const auto group_seq = group_ctx.insertion_sequence(ctx.rv(), group_taken);
    if (group_seq.empty()) {
      // Unaffordable as aggregates: serve the best raw node within the
      // group, or refill first.
      std::vector<RechargeItem> singles =
          ctx.singles(group_items, DispatchContext::SinglesCritical::kFresh);
      std::vector<bool> staken(singles.size(), false);
      if (const auto next =
              greedy_next(ctx.rv(), singles, staken, ctx.params())) {
        return DispatchDecision::plan(std::move(singles), {*next});
      }
      return DispatchDecision::self_charge();
    }
    // Map back to the global item indexing.
    std::vector<std::size_t> seq;
    seq.reserve(group_seq.size());
    for (std::size_t gi : group_seq) seq.push_back((*best_group)[gi]);
    return DispatchDecision::plan(items, std::move(seq));
  }
};

}  // namespace

void register_partition_policy(SchedulerRegistry& registry) {
  registry.add("partition",
               "Partition-Scheme (Section IV-D-1): K-means groups matched "
               "to RVs, Algorithm 3 within this RV's group",
               []() -> std::unique_ptr<SchedulerPolicy> {
                 return std::make_unique<PartitionPolicy>();
               });
}

}  // namespace wrsn
