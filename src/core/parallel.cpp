#include "core/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/error.hpp"

namespace wrsn {

std::size_t resolve_threads(std::size_t config_threads) {
  if (config_threads >= 1) return config_threads;
  const char* env = std::getenv("WRSN_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  WRSN_REQUIRE(end != env && *end == '\0',
               "WRSN_THREADS must be a non-negative integer (got '" + std::string(env) + "')");
  if (v == 0) {
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return static_cast<std::size_t>(v);
}

std::vector<ShardRange> shard_plan(std::size_t n, std::size_t grain) {
  WRSN_ASSERT(grain > 0, "shard grain must be positive");
  std::vector<ShardRange> shards;
  if (n == 0) return shards;
  shards.reserve((n + grain - 1) / grain);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    shards.push_back({begin, std::min(begin + grain, n)});
  }
  return shards;
}

ParallelExec::ParallelExec(std::size_t threads, std::size_t threshold)
    : threads_(std::max<std::size_t>(1, threads)), threshold_(std::max<std::size_t>(1, threshold)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

namespace {
thread_local ParallelExec* g_current_parallel = nullptr;
}  // namespace

ParallelExec* current_parallel() noexcept { return g_current_parallel; }

ParallelScope::ParallelScope(ParallelExec* exec) noexcept : previous_(g_current_parallel) {
  g_current_parallel = exec;
}

ParallelScope::~ParallelScope() { g_current_parallel = previous_; }

}  // namespace wrsn
