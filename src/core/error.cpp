#include "core/error.hpp"

#include <sstream>

namespace wrsn::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << expr << "] at " << file << ":" << line;
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& msg) {
  throw InvalidArgument(format("invalid argument", expr, file, line, msg));
}

void throw_logic_error(const char* expr, const char* file, int line,
                       const std::string& msg) {
  throw LogicError(format("invariant violated", expr, file, line, msg));
}

}  // namespace wrsn::detail
