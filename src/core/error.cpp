#include "core/error.hpp"

#include <atomic>
#include <sstream>

namespace wrsn {

namespace {
std::atomic<FailureHook> g_failure_hook{nullptr};
}  // namespace

FailureHook set_failure_hook(FailureHook hook) {
  return g_failure_hook.exchange(hook);
}

}  // namespace wrsn

namespace wrsn::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << expr << "] at " << file << ":" << line;
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& msg) {
  throw InvalidArgument(format("invalid argument", expr, file, line, msg));
}

void throw_logic_error(const char* expr, const char* file, int line,
                       const std::string& msg) {
  const std::string what = format("invariant violated", expr, file, line, msg);
  if (const FailureHook hook = g_failure_hook.load()) hook(what.c_str());
  throw LogicError(what);
}

}  // namespace wrsn::detail
