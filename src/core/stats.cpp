#include "core/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace wrsn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  // Two-sided 95% Student-t critical values for 1..30 degrees of freedom.
  static constexpr std::array<double, 30> kT95 = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t dof = n_ - 1;
  const double t = dof <= kT95.size() ? kT95[dof - 1] : 1.96;
  return t * sem();
}

RunningStats summarize(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats;
}

}  // namespace wrsn
