#pragma once
// Fixed-size thread pool for coarse-grained experiment parallelism.
//
// The experiment harness runs many independent simulation replicas; each
// replica owns all its state, so the only synchronization needed is the task
// queue itself. Following the HPC guidance this repo adopts (explicit,
// coarse-grained parallelism), there is no work stealing and no nested
// submission magic: submit() enqueues, workers drain.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/error.hpp"

namespace wrsn {

class ThreadPool {
 public:
  // 0 threads means "hardware concurrency, at least 1".
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      WRSN_ASSERT(!stopping_, "submit() after ThreadPool destruction began");
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, n) across the pool and blocks until all complete.
  // Exceptions from tasks are rethrown (the first one, by index order).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace wrsn
