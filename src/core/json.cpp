#include "core/json.hpp"

#include <cmath>
#include <iomanip>

#include "core/error.hpp"

namespace wrsn {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prefix() {
  if (stack_.empty()) {
    WRSN_REQUIRE(!started_, "JSON document already complete");
    started_ = true;
    return;
  }
  Scope& top = stack_.back();
  if (top.kind == 'o') {
    WRSN_REQUIRE(top.expecting_value, "JSON object values need a key first");
    top.expecting_value = false;
  } else {
    if (top.has_items) out_ << ',';
    top.has_items = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  out_ << '{';
  stack_.push_back({'o'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  WRSN_REQUIRE(!stack_.empty() && stack_.back().kind == 'o',
               "end_object without matching begin_object");
  WRSN_REQUIRE(!stack_.back().expecting_value, "dangling key in JSON object");
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  out_ << '[';
  stack_.push_back({'a'});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  WRSN_REQUIRE(!stack_.empty() && stack_.back().kind == 'a',
               "end_array without matching begin_array");
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  WRSN_REQUIRE(!stack_.empty() && stack_.back().kind == 'o',
               "keys are only valid inside objects");
  Scope& top = stack_.back();
  WRSN_REQUIRE(!top.expecting_value, "two keys in a row");
  if (top.has_items) out_ << ',';
  top.has_items = true;
  top.expecting_value = true;
  out_ << '"' << escape(name) << "\":";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  prefix();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  prefix();
  if (std::isfinite(v)) {
    out_ << std::setprecision(17) << v;
  } else {
    out_ << "null";  // JSON has no inf/nan
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  WRSN_REQUIRE(complete(), "JSON document has unclosed scopes");
  return out_.str();
}

}  // namespace wrsn
