#include "core/json.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>

#include "core/error.hpp"

namespace wrsn {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prefix() {
  if (stack_.empty()) {
    WRSN_REQUIRE(!started_, "JSON document already complete");
    started_ = true;
    return;
  }
  Scope& top = stack_.back();
  if (top.kind == 'o') {
    WRSN_REQUIRE(top.expecting_value, "JSON object values need a key first");
    top.expecting_value = false;
  } else {
    if (top.has_items) out_ << ',';
    top.has_items = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  out_ << '{';
  stack_.push_back({'o'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  WRSN_REQUIRE(!stack_.empty() && stack_.back().kind == 'o',
               "end_object without matching begin_object");
  WRSN_REQUIRE(!stack_.back().expecting_value, "dangling key in JSON object");
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  out_ << '[';
  stack_.push_back({'a'});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  WRSN_REQUIRE(!stack_.empty() && stack_.back().kind == 'a',
               "end_array without matching begin_array");
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  WRSN_REQUIRE(!stack_.empty() && stack_.back().kind == 'o',
               "keys are only valid inside objects");
  Scope& top = stack_.back();
  WRSN_REQUIRE(!top.expecting_value, "two keys in a row");
  if (top.has_items) out_ << ',';
  top.has_items = true;
  top.expecting_value = true;
  out_ << '"' << escape(name) << "\":";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  prefix();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  prefix();
  if (std::isfinite(v)) {
    out_ << std::setprecision(17) << v;
  } else {
    out_ << "null";  // JSON has no inf/nan
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  WRSN_REQUIRE(complete(), "JSON document has unclosed scopes");
  return out_.str();
}

// ---------------------------------------------------------------------------
// Validating parser
// ---------------------------------------------------------------------------

namespace {

// Recursive-descent over RFC 8259. Tracks only position and an error
// message; values are validated, never materialized.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    bool ok = value();
    if (ok) {
      skip_ws();
      if (pos_ != text_.size()) ok = fail("trailing characters after JSON value");
    }
    if (!ok && error != nullptr) *error = error_;
    return ok;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos_;
    }
  }

  bool fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      if (!string()) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // opening '"'
    while (!at_end()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (at_end()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return fail("invalid \\u escape");
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return fail("invalid escape character");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      return fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digits must follow decimal point");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digits must follow exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  return JsonValidator(text).run(error);
}

}  // namespace wrsn
