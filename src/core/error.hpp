#pragma once
// Precondition / invariant checking.
//
// Public API entry points validate arguments with WRSN_REQUIRE (throws
// wrsn::InvalidArgument, always on). Internal invariants use WRSN_ASSERT,
// which throws wrsn::LogicError and stays enabled in release builds — the
// simulator is cheap enough that we keep our own guard rails on.

#include <stdexcept>
#include <string>

namespace wrsn {

class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Invoked (with the formatted message) just before an invariant failure
// throws LogicError — the flight recorder (obs/flight.hpp) registers itself
// here so the last-N event ring is dumped while the state that tripped the
// assert is still live. Argument-validation failures (WRSN_REQUIRE) do not
// fire the hook: bad user input is not a post-mortem. Returns the previous
// hook; pass nullptr to clear. Not thread-safe against concurrent set calls
// (install once at startup).
using FailureHook = void (*)(const char* message);
FailureHook set_failure_hook(FailureHook hook);

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file, int line,
                                         const std::string& msg);
[[noreturn]] void throw_logic_error(const char* expr, const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace wrsn

#define WRSN_REQUIRE(expr, msg)                                                  \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::wrsn::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                            \
  } while (false)

#define WRSN_ASSERT(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::wrsn::detail::throw_logic_error(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                        \
  } while (false)

// Invariants too hot for release builds (per-event battery/queue checks);
// compiled out under NDEBUG so the release event loop stays branch-free.
#ifdef NDEBUG
#define WRSN_DEBUG_ASSERT(expr, msg) \
  do {                               \
  } while (false)
#else
#define WRSN_DEBUG_ASSERT(expr, msg) WRSN_ASSERT(expr, msg)
#endif
