#pragma once
// Precondition / invariant checking.
//
// Public API entry points validate arguments with WRSN_REQUIRE (throws
// wrsn::InvalidArgument, always on). Internal invariants use WRSN_ASSERT,
// which throws wrsn::LogicError and stays enabled in release builds — the
// simulator is cheap enough that we keep our own guard rails on.

#include <stdexcept>
#include <string>

namespace wrsn {

class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file, int line,
                                         const std::string& msg);
[[noreturn]] void throw_logic_error(const char* expr, const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace wrsn

#define WRSN_REQUIRE(expr, msg)                                                  \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::wrsn::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                            \
  } while (false)

#define WRSN_ASSERT(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::wrsn::detail::throw_logic_error(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                        \
  } while (false)

// Invariants too hot for release builds (per-event battery/queue checks);
// compiled out under NDEBUG so the release event loop stays branch-free.
#ifdef NDEBUG
#define WRSN_DEBUG_ASSERT(expr, msg) \
  do {                               \
  } while (false)
#else
#define WRSN_DEBUG_ASSERT(expr, msg) WRSN_ASSERT(expr, msg)
#endif
