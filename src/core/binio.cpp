#include "core/binio.hpp"

#include "core/error.hpp"

namespace wrsn {

void BinReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw InvalidArgument("binary payload truncated (needed " +
                          std::to_string(n) + " bytes at offset " +
                          std::to_string(pos_) + " of " +
                          std::to_string(bytes_.size()) + ")");
  }
}

void BinReader::u8(std::uint8_t& v) {
  need(1);
  v = static_cast<std::uint8_t>(bytes_[pos_++]);
}

void BinReader::u32(std::uint32_t& v) {
  need(4);
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  v = out;
}

void BinReader::u64(std::uint64_t& v) {
  need(8);
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  v = out;
}

void BinReader::str(std::string& s) {
  std::uint64_t n = 0;
  u64(n);
  need(static_cast<std::size_t>(n));
  s.assign(bytes_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
}

void BinReader::expect_end() const {
  if (pos_ != bytes_.size()) {
    throw InvalidArgument("binary payload has " +
                          std::to_string(bytes_.size() - pos_) +
                          " trailing byte(s)");
  }
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wrsn
