#pragma once
// Crash-atomic file output and fsync'd append-only journals.
//
// write_file_atomic() writes `PATH.tmp`, fsyncs it, then rename(2)s over
// PATH, so a reader (or a resumed sweep) either sees the old file or the
// complete new one — never a truncated tail. AtomicFile is the streaming
// variant: build the file through an ostream, then commit() performs the
// same fsync+rename dance; a destructor without commit() unlinks the temp.
//
// JournalWriter appends single lines to a log with O_APPEND and fsyncs
// after each record, which is the durability contract the sweep journal
// (wrsn_sweep --resume) depends on: a record that made it back to the
// caller is on disk.

#include <fstream>
#include <string>
#include <string_view>

namespace wrsn {

// Atomically replace `path` with `content` (tmp + fsync + rename).
void write_file_atomic(const std::string& path, std::string_view content);

class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  [[nodiscard]] std::ostream& stream() { return out_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Flush, fsync, and rename into place. Throws on I/O failure.
  void commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

class JournalWriter {
 public:
  // Opens (creating if needed) `path` for fsync'd appends.
  explicit JournalWriter(const std::string& path);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Appends `line` (a trailing '\n' is added) and fsyncs before returning.
  void append(std::string_view line);

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace wrsn
