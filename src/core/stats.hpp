#pragma once
// Streaming summary statistics (Welford) and replica-level confidence
// intervals for the experiment harness. The figure benches report means;
// EXPERIMENTS.md quality claims are backed by the CI variants.

#include <cstddef>
#include <vector>

namespace wrsn {

// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  // Standard error of the mean.
  [[nodiscard]] double sem() const;
  // Half-width of the ~95% confidence interval (Student-t for small n,
  // tabulated up to 30 d.o.f., 1.96 beyond).
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Convenience: stats over a vector.
[[nodiscard]] RunningStats summarize(const std::vector<double>& values);

}  // namespace wrsn
