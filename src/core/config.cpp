#include "core/config.hpp"

#include <cmath>

#include "core/error.hpp"

namespace wrsn {

std::string to_string(ActivationPolicy policy) {
  switch (policy) {
    case ActivationPolicy::kFullTime: return "full-time";
    case ActivationPolicy::kRoundRobin: return "round-robin";
  }
  return "unknown";
}

std::string to_string(ChargeProfileKind profile) {
  switch (profile) {
    case ChargeProfileKind::kConstantPower: return "constant-power";
    case ChargeProfileKind::kTaperedCcCv: return "tapered-cc-cv";
  }
  return "unknown";
}

std::string to_string(TargetMotion motion) {
  switch (motion) {
    case TargetMotion::kTeleport: return "teleport";
    case TargetMotion::kRandomWaypoint: return "random-waypoint";
  }
  return "unknown";
}

std::vector<std::string> activation_policy_names() {
  return {to_string(ActivationPolicy::kFullTime),
          to_string(ActivationPolicy::kRoundRobin)};
}

std::vector<std::string> charge_profile_names() {
  return {to_string(ChargeProfileKind::kConstantPower),
          to_string(ChargeProfileKind::kTaperedCcCv)};
}

std::vector<std::string> target_motion_names() {
  return {to_string(TargetMotion::kTeleport),
          to_string(TargetMotion::kRandomWaypoint)};
}

void SimConfig::validate() const {
  // Infinity passes every `> 0` comparison and NaN fails them with a
  // misleading message, so reject non-finite inputs up front. Parsing a
  // config file can produce either (e.g. "inf" / "nan" parse as doubles).
  const double finite_checks[] = {
      field_side.value(), comm_range.value(), sensing_range.value(),
      sim_duration.value(), target_period.value(), data_rate_pkt_per_min,
      target_speed.value(), energy_request_percentage, activation_slot.value(),
      critical_fraction, battery.capacity.value(), battery.threshold_fraction,
      battery.self_discharge_per_day, rv.capacity.value(), rv.move_cost.value(),
      rv.speed.value(), rv.charge_power.value(), rv.base_recharge_power.value(),
      rv.reserve_fraction, rv.self_recharge_fraction, rv.charge_knee_soc,
      rv.charge_trickle_fraction, metrics_sample_period.value(),
      radio.bitrate_bps, radio.listen_duty_cycle, radio.tx_power.value(),
      radio.rx_power.value(), radio.idle_power.value(),
      sensing.active_power.value(), sensing.idle_power.value(),
      fault.request_loss_prob, fault.request_delay_prob,
      fault.request_delay_max.value(), fault.request_retry_timeout.value(),
      fault.request_retry_backoff, fault.rv_mtbf_hours,
      fault.rv_repair_duration.value(), fault.rv_breakdown_at.value(),
      fault.sensor_fault_rate_per_day, fault.sensor_fault_duration.value(),
      fault.battery_noise_per_day, link.loss_floor, link.loss_at_range,
      link.loss_exponent, link.rx_duty_tax};
  for (const double v : finite_checks) {
    WRSN_REQUIRE(std::isfinite(v), "configuration values must be finite");
  }
  // Registry membership is checked where the name is resolved (config_io
  // parsing and World construction); core only rejects the trivially bad.
  WRSN_REQUIRE(!scheduler.empty(), "scheduler name must be non-empty");
  WRSN_REQUIRE(!routing.empty(), "routing policy name must be non-empty");
  WRSN_REQUIRE(event_queue == "auto" || event_queue == "calendar" ||
                   event_queue == "heap",
               "event_queue must be one of: auto, calendar, heap");
  WRSN_REQUIRE(parallel_threshold > 0, "parallel threshold must be positive");
  WRSN_REQUIRE(num_sensors > 0, "need at least one sensor");
  WRSN_REQUIRE(num_rvs > 0, "need at least one RV");
  WRSN_REQUIRE(field_side.value() > 0.0, "field side must be positive");
  WRSN_REQUIRE(comm_range.value() > 0.0, "communication range must be positive");
  WRSN_REQUIRE(sensing_range.value() > 0.0, "sensing range must be positive");
  WRSN_REQUIRE(sim_duration.value() > 0.0, "simulation duration must be positive");
  WRSN_REQUIRE(target_period.value() > 0.0, "target period must be positive");
  WRSN_REQUIRE(data_rate_pkt_per_min >= 0.0, "data rate must be non-negative");
  WRSN_REQUIRE(target_speed.value() > 0.0, "target speed must be positive");
  WRSN_REQUIRE(energy_request_percentage >= 0.0 && energy_request_percentage <= 1.0,
               "ERP must lie in [0,1]");
  WRSN_REQUIRE(activation_slot.value() > 0.0, "activation slot must be positive");
  WRSN_REQUIRE(critical_fraction >= 0.0 && critical_fraction < 1.0,
               "critical fraction must lie in [0,1)");
  WRSN_REQUIRE(battery.capacity.value() > 0.0, "battery capacity must be positive");
  WRSN_REQUIRE(battery.threshold_fraction > 0.0 && battery.threshold_fraction < 1.0,
               "battery threshold fraction must lie in (0,1)");
  WRSN_REQUIRE(battery.self_discharge_per_day >= 0.0 &&
                   battery.self_discharge_per_day < 1.0,
               "self-discharge per day must lie in [0,1)");
  WRSN_REQUIRE(rv.capacity.value() > 0.0, "RV capacity must be positive");
  WRSN_REQUIRE(rv.move_cost.value() >= 0.0, "RV move cost must be non-negative");
  WRSN_REQUIRE(rv.speed.value() > 0.0, "RV speed must be positive");
  WRSN_REQUIRE(rv.charge_power.value() > 0.0, "RV charge power must be positive");
  WRSN_REQUIRE(rv.base_recharge_power.value() > 0.0,
               "base recharge power must be positive");
  WRSN_REQUIRE(rv.reserve_fraction >= 0.0 && rv.reserve_fraction < 1.0,
               "RV reserve fraction must lie in [0,1)");
  WRSN_REQUIRE(rv.charge_knee_soc > 0.0 && rv.charge_knee_soc < 1.0,
               "charge knee SoC must lie in (0,1)");
  WRSN_REQUIRE(rv.charge_trickle_fraction > 0.0 && rv.charge_trickle_fraction <= 1.0,
               "charge trickle fraction must lie in (0,1]");
  WRSN_REQUIRE(rv.self_recharge_fraction >= rv.reserve_fraction &&
                   rv.self_recharge_fraction < 1.0,
               "RV self-recharge fraction must lie in [reserve, 1)");
  WRSN_REQUIRE(metrics_sample_period.value() > 0.0,
               "metrics sample period must be positive");
  WRSN_REQUIRE(radio.bitrate_bps > 0.0, "radio bitrate must be positive");
  WRSN_REQUIRE(radio.listen_duty_cycle >= 0.0 && radio.listen_duty_cycle <= 1.0,
               "listen duty cycle must lie in [0,1]");
  WRSN_REQUIRE(radio.tx_power.value() >= 0.0 && radio.rx_power.value() >= 0.0 &&
                   radio.idle_power.value() >= 0.0,
               "radio powers must be non-negative");
  WRSN_REQUIRE(sensing.active_power.value() >= 0.0 &&
                   sensing.idle_power.value() >= 0.0,
               "sensing powers must be non-negative");
  WRSN_REQUIRE(fault.request_loss_prob >= 0.0 && fault.request_loss_prob <= 1.0,
               "fault request loss probability must lie in [0,1]");
  WRSN_REQUIRE(fault.request_delay_prob >= 0.0 && fault.request_delay_prob <= 1.0,
               "fault request delay probability must lie in [0,1]");
  WRSN_REQUIRE(fault.request_delay_max.value() >= 0.0,
               "fault request delay max must be non-negative");
  WRSN_REQUIRE(fault.request_retry_timeout.value() > 0.0,
               "fault request retry timeout must be positive");
  WRSN_REQUIRE(fault.request_retry_backoff >= 1.0,
               "fault request retry backoff must be at least 1");
  WRSN_REQUIRE(fault.rv_mtbf_hours >= 0.0, "RV MTBF must be non-negative");
  WRSN_REQUIRE(fault.rv_repair_duration.value() > 0.0,
               "RV repair duration must be positive");
  WRSN_REQUIRE(fault.sensor_fault_rate_per_day >= 0.0,
               "sensor fault rate must be non-negative");
  WRSN_REQUIRE(fault.sensor_fault_duration.value() > 0.0,
               "sensor fault duration must be positive");
  WRSN_REQUIRE(fault.battery_noise_per_day >= 0.0 &&
                   fault.battery_noise_per_day < 1.0,
               "battery noise per day must lie in [0,1)");
  WRSN_REQUIRE(link.loss_floor >= 0.0 && link.loss_floor <= 1.0,
               "link loss floor must lie in [0,1]");
  WRSN_REQUIRE(link.loss_at_range >= 0.0 && link.loss_at_range <= 1.0,
               "link loss at range must lie in [0,1]");
  WRSN_REQUIRE(link.loss_exponent > 0.0, "link loss exponent must be positive");
  WRSN_REQUIRE(link.max_retx >= 1, "link max retransmissions must be at least 1");
  WRSN_REQUIRE(link.rx_duty_tax >= 0.0 && link.rx_duty_tax <= 1.0,
               "link rx duty tax must lie in [0,1]");
}

}  // namespace wrsn
