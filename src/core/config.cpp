#include "core/config.hpp"

#include "core/error.hpp"

namespace wrsn {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kGreedy: return "greedy";
    case SchedulerKind::kPartition: return "partition";
    case SchedulerKind::kCombined: return "combined";
    case SchedulerKind::kNearestFirst: return "nearest-first";
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kEdf: return "edf";
  }
  return "unknown";
}

std::string to_string(ActivationPolicy policy) {
  switch (policy) {
    case ActivationPolicy::kFullTime: return "full-time";
    case ActivationPolicy::kRoundRobin: return "round-robin";
  }
  return "unknown";
}

std::string to_string(ChargeProfileKind profile) {
  switch (profile) {
    case ChargeProfileKind::kConstantPower: return "constant-power";
    case ChargeProfileKind::kTaperedCcCv: return "tapered-cc-cv";
  }
  return "unknown";
}

std::string to_string(TargetMotion motion) {
  switch (motion) {
    case TargetMotion::kTeleport: return "teleport";
    case TargetMotion::kRandomWaypoint: return "random-waypoint";
  }
  return "unknown";
}

void SimConfig::validate() const {
  WRSN_REQUIRE(num_sensors > 0, "need at least one sensor");
  WRSN_REQUIRE(num_rvs > 0, "need at least one RV");
  WRSN_REQUIRE(field_side.value() > 0.0, "field side must be positive");
  WRSN_REQUIRE(comm_range.value() > 0.0, "communication range must be positive");
  WRSN_REQUIRE(sensing_range.value() > 0.0, "sensing range must be positive");
  WRSN_REQUIRE(sim_duration.value() > 0.0, "simulation duration must be positive");
  WRSN_REQUIRE(target_period.value() > 0.0, "target period must be positive");
  WRSN_REQUIRE(data_rate_pkt_per_min >= 0.0, "data rate must be non-negative");
  WRSN_REQUIRE(target_speed.value() > 0.0, "target speed must be positive");
  WRSN_REQUIRE(energy_request_percentage >= 0.0 && energy_request_percentage <= 1.0,
               "ERP must lie in [0,1]");
  WRSN_REQUIRE(activation_slot.value() > 0.0, "activation slot must be positive");
  WRSN_REQUIRE(critical_fraction >= 0.0 && critical_fraction < 1.0,
               "critical fraction must lie in [0,1)");
  WRSN_REQUIRE(battery.capacity.value() > 0.0, "battery capacity must be positive");
  WRSN_REQUIRE(battery.threshold_fraction > 0.0 && battery.threshold_fraction < 1.0,
               "battery threshold fraction must lie in (0,1)");
  WRSN_REQUIRE(battery.self_discharge_per_day >= 0.0 &&
                   battery.self_discharge_per_day < 1.0,
               "self-discharge per day must lie in [0,1)");
  WRSN_REQUIRE(rv.capacity.value() > 0.0, "RV capacity must be positive");
  WRSN_REQUIRE(rv.move_cost.value() >= 0.0, "RV move cost must be non-negative");
  WRSN_REQUIRE(rv.speed.value() > 0.0, "RV speed must be positive");
  WRSN_REQUIRE(rv.charge_power.value() > 0.0, "RV charge power must be positive");
  WRSN_REQUIRE(rv.base_recharge_power.value() > 0.0,
               "base recharge power must be positive");
  WRSN_REQUIRE(rv.reserve_fraction >= 0.0 && rv.reserve_fraction < 1.0,
               "RV reserve fraction must lie in [0,1)");
  WRSN_REQUIRE(rv.charge_knee_soc > 0.0 && rv.charge_knee_soc < 1.0,
               "charge knee SoC must lie in (0,1)");
  WRSN_REQUIRE(rv.charge_trickle_fraction > 0.0 && rv.charge_trickle_fraction <= 1.0,
               "charge trickle fraction must lie in (0,1]");
  WRSN_REQUIRE(rv.self_recharge_fraction >= rv.reserve_fraction &&
                   rv.self_recharge_fraction < 1.0,
               "RV self-recharge fraction must lie in [reserve, 1)");
  WRSN_REQUIRE(metrics_sample_period.value() > 0.0,
               "metrics sample period must be positive");
  WRSN_REQUIRE(radio.bitrate_bps > 0.0, "radio bitrate must be positive");
}

}  // namespace wrsn
