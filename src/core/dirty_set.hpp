#pragma once
// DirtySet — deduplicating dirty-mark collector over a dense id space.
//
// add() is O(1) and drops duplicates via a per-id membership flag, so hot
// paths can mark the same id many times (the traffic model touches every
// relay on every route change) without the flush having to sort+unique a
// flood of repeats. ids() returns marks in insertion order; call sort_ids()
// first when the consumer needs ascending-id determinism.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace wrsn {

class DirtySet {
 public:
  DirtySet() = default;
  explicit DirtySet(std::size_t n) { reset(n); }

  // Drops all marks and resizes the id space to [0, n).
  void reset(std::size_t n) {
    member_.assign(n, 0);
    ids_.clear();
  }

  void add(std::size_t id) {
    if (member_[id] != 0) return;
    member_[id] = 1;
    ids_.push_back(id);
  }

  [[nodiscard]] bool contains(std::size_t id) const { return member_[id] != 0; }
  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& ids() const { return ids_; }

  void sort_ids() { std::sort(ids_.begin(), ids_.end()); }

  // Un-marks everything; O(marks), not O(id space).
  void clear() {
    for (const std::size_t id : ids_) member_[id] = 0;
    ids_.clear();
  }

 private:
  std::vector<std::uint8_t> member_;
  std::vector<std::size_t> ids_;
};

}  // namespace wrsn
