#include "core/config_io.hpp"

#include <charconv>
#include <fstream>
#include <functional>
#include <sstream>

#include "core/error.hpp"
#include "net/routing.hpp"
#include "sched/policy.hpp"

namespace wrsn {

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

struct KeyHandler {
  std::string name;
  std::function<std::string(const SimConfig&)> get;
  std::function<void(SimConfig&, const std::string&)> set;
};

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

double parse_double(const std::string& key, const std::string& value) {
  const std::string v = trim(value);
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgument("config key '" + key + "': cannot parse number '" + v + "'");
  }
  WRSN_REQUIRE(consumed == v.size(),
               "config key '" + key + "': trailing junk in '" + v + "'");
  return out;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  const double d = parse_double(key, value);
  WRSN_REQUIRE(d >= 0.0 && d == static_cast<double>(static_cast<std::uint64_t>(d)),
               "config key '" + key + "' requires a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

bool parse_bool(const std::string& key, const std::string& value) {
  const std::string v = trim(value);
  if (v == "true" || v == "1" || v == "on" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "off" || v == "no") return false;
  throw InvalidArgument("config key '" + key + "': expected a boolean, got '" + v +
                        "'");
}

// Shortest round-trip formatting: the printed text parses back to the same
// double, bit for bit. Snapshot restore embeds the config as text, so any
// lossy formatting here would silently perturb a resumed run.
std::string fmt(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  WRSN_REQUIRE(ec == std::errc{}, "double formatting failed");
  return std::string(buf, ptr);
}

std::string parse_scheduler(const std::string& v) {
  if (!SchedulerRegistry::instance().contains(v)) {
    throw InvalidArgument("unknown scheduler '" + v +
                          "' (valid: " + join_names(scheduler_names()) + ")");
  }
  return v;
}

std::string parse_routing(const std::string& v) {
  if (!RoutingRegistry::instance().contains(v)) {
    throw InvalidArgument("unknown routing policy '" + v +
                          "' (valid: " + join_names(routing_names()) + ")");
  }
  return v;
}

ActivationPolicy parse_activation(const std::string& v) {
  for (auto p : {ActivationPolicy::kFullTime, ActivationPolicy::kRoundRobin}) {
    if (to_string(p) == v) return p;
  }
  throw InvalidArgument("unknown activation policy '" + v + "' (valid: " +
                        join_names(activation_policy_names()) + ")");
}

const std::vector<KeyHandler>& handlers() {
  static const std::vector<KeyHandler> kHandlers = {
      {"num_sensors",
       [](const SimConfig& c) { return std::to_string(c.num_sensors); },
       [](SimConfig& c, const std::string& v) {
         c.num_sensors = parse_u64("num_sensors", v);
       }},
      {"num_targets",
       [](const SimConfig& c) { return std::to_string(c.num_targets); },
       [](SimConfig& c, const std::string& v) {
         c.num_targets = parse_u64("num_targets", v);
       }},
      {"num_rvs", [](const SimConfig& c) { return std::to_string(c.num_rvs); },
       [](SimConfig& c, const std::string& v) { c.num_rvs = parse_u64("num_rvs", v); }},
      {"field_side_m",
       [](const SimConfig& c) { return fmt(c.field_side.value()); },
       [](SimConfig& c, const std::string& v) {
         c.field_side = meters(parse_double("field_side_m", v));
       }},
      {"comm_range_m",
       [](const SimConfig& c) { return fmt(c.comm_range.value()); },
       [](SimConfig& c, const std::string& v) {
         c.comm_range = meters(parse_double("comm_range_m", v));
       }},
      {"sensing_range_m",
       [](const SimConfig& c) { return fmt(c.sensing_range.value()); },
       [](SimConfig& c, const std::string& v) {
         c.sensing_range = meters(parse_double("sensing_range_m", v));
       }},
      {"sim_days",
       [](const SimConfig& c) { return fmt(c.sim_duration.value() / 86400.0); },
       [](SimConfig& c, const std::string& v) {
         c.sim_duration = days(parse_double("sim_days", v));
       }},
      {"target_period_h",
       [](const SimConfig& c) { return fmt(c.target_period.value() / 3600.0); },
       [](SimConfig& c, const std::string& v) {
         c.target_period = hours(parse_double("target_period_h", v));
       }},
      {"data_rate_pkt_per_min",
       [](const SimConfig& c) { return fmt(c.data_rate_pkt_per_min); },
       [](SimConfig& c, const std::string& v) {
         c.data_rate_pkt_per_min = parse_double("data_rate_pkt_per_min", v);
       }},
      {"target_motion",
       [](const SimConfig& c) { return to_string(c.target_motion); },
       [](SimConfig& c, const std::string& v) {
         const std::string t = trim(v);
         if (t == to_string(TargetMotion::kTeleport)) {
           c.target_motion = TargetMotion::kTeleport;
         } else if (t == to_string(TargetMotion::kRandomWaypoint)) {
           c.target_motion = TargetMotion::kRandomWaypoint;
         } else {
           throw InvalidArgument("unknown target motion '" + t + "' (valid: " +
                                 join_names(target_motion_names()) + ")");
         }
       }},
      {"target_speed_m_per_s",
       [](const SimConfig& c) { return fmt(c.target_speed.value()); },
       [](SimConfig& c, const std::string& v) {
         c.target_speed = MeterPerSecond{parse_double("target_speed_m_per_s", v)};
       }},
      {"scheduler", [](const SimConfig& c) { return c.scheduler; },
       [](SimConfig& c, const std::string& v) { c.scheduler = parse_scheduler(trim(v)); }},
      {"routing", [](const SimConfig& c) { return c.routing; },
       [](SimConfig& c, const std::string& v) { c.routing = parse_routing(trim(v)); }},
      {"event_queue", [](const SimConfig& c) { return c.event_queue; },
       [](SimConfig& c, const std::string& v) {
         const std::string name = trim(v);
         if (name != "auto" && name != "calendar" && name != "heap") {
           throw InvalidArgument("unknown event_queue '" + name +
                                 "' (valid: auto, calendar, heap)");
         }
         c.event_queue = name;
       }},
      {"threads", [](const SimConfig& c) { return std::to_string(c.threads); },
       [](SimConfig& c, const std::string& v) { c.threads = parse_u64("threads", v); }},
      {"parallel_threshold",
       [](const SimConfig& c) { return std::to_string(c.parallel_threshold); },
       [](SimConfig& c, const std::string& v) {
         c.parallel_threshold = parse_u64("parallel_threshold", v);
       }},
      {"activation", [](const SimConfig& c) { return to_string(c.activation); },
       [](SimConfig& c, const std::string& v) {
         c.activation = parse_activation(trim(v));
       }},
      {"two_opt_tours",
       [](const SimConfig& c) { return c.two_opt_tours ? "true" : "false"; },
       [](SimConfig& c, const std::string& v) {
         c.two_opt_tours = parse_bool("two_opt_tours", v);
       }},
      {"energy_request_control",
       [](const SimConfig& c) { return c.energy_request_control ? "true" : "false"; },
       [](SimConfig& c, const std::string& v) {
         c.energy_request_control = parse_bool("energy_request_control", v);
       }},
      {"energy_request_percentage",
       [](const SimConfig& c) { return fmt(c.energy_request_percentage); },
       [](SimConfig& c, const std::string& v) {
         c.energy_request_percentage = parse_double("energy_request_percentage", v);
       }},
      {"activation_slot_min",
       [](const SimConfig& c) { return fmt(c.activation_slot.value() / 60.0); },
       [](SimConfig& c, const std::string& v) {
         c.activation_slot = minutes(parse_double("activation_slot_min", v));
       }},
      {"critical_fraction",
       [](const SimConfig& c) { return fmt(c.critical_fraction); },
       [](SimConfig& c, const std::string& v) {
         c.critical_fraction = parse_double("critical_fraction", v);
       }},
      {"radio.listen_duty_cycle",
       [](const SimConfig& c) { return fmt(c.radio.listen_duty_cycle); },
       [](SimConfig& c, const std::string& v) {
         c.radio.listen_duty_cycle = parse_double("radio.listen_duty_cycle", v);
       }},
      {"battery.capacity_j",
       [](const SimConfig& c) { return fmt(c.battery.capacity.value()); },
       [](SimConfig& c, const std::string& v) {
         c.battery.capacity = joules(parse_double("battery.capacity_j", v));
       }},
      {"battery.self_discharge_per_day",
       [](const SimConfig& c) { return fmt(c.battery.self_discharge_per_day); },
       [](SimConfig& c, const std::string& v) {
         c.battery.self_discharge_per_day =
             parse_double("battery.self_discharge_per_day", v);
       }},
      {"battery.threshold_fraction",
       [](const SimConfig& c) { return fmt(c.battery.threshold_fraction); },
       [](SimConfig& c, const std::string& v) {
         c.battery.threshold_fraction = parse_double("battery.threshold_fraction", v);
       }},
      {"rv.capacity_j",
       [](const SimConfig& c) { return fmt(c.rv.capacity.value()); },
       [](SimConfig& c, const std::string& v) {
         c.rv.capacity = joules(parse_double("rv.capacity_j", v));
       }},
      {"rv.move_cost_j_per_m",
       [](const SimConfig& c) { return fmt(c.rv.move_cost.value()); },
       [](SimConfig& c, const std::string& v) {
         c.rv.move_cost = JoulePerMeter{parse_double("rv.move_cost_j_per_m", v)};
       }},
      {"rv.speed_m_per_s",
       [](const SimConfig& c) { return fmt(c.rv.speed.value()); },
       [](SimConfig& c, const std::string& v) {
         c.rv.speed = MeterPerSecond{parse_double("rv.speed_m_per_s", v)};
       }},
      {"rv.charge_power_w",
       [](const SimConfig& c) { return fmt(c.rv.charge_power.value()); },
       [](SimConfig& c, const std::string& v) {
         c.rv.charge_power = watts(parse_double("rv.charge_power_w", v));
       }},
      {"rv.charge_profile",
       [](const SimConfig& c) { return to_string(c.rv.charge_profile); },
       [](SimConfig& c, const std::string& v) {
         const std::string t = trim(v);
         if (t == to_string(ChargeProfileKind::kConstantPower)) {
           c.rv.charge_profile = ChargeProfileKind::kConstantPower;
         } else if (t == to_string(ChargeProfileKind::kTaperedCcCv)) {
           c.rv.charge_profile = ChargeProfileKind::kTaperedCcCv;
         } else {
           throw InvalidArgument("unknown charge profile '" + t + "' (valid: " +
                                 join_names(charge_profile_names()) + ")");
         }
       }},
      {"rv.charge_knee_soc",
       [](const SimConfig& c) { return fmt(c.rv.charge_knee_soc); },
       [](SimConfig& c, const std::string& v) {
         c.rv.charge_knee_soc = parse_double("rv.charge_knee_soc", v);
       }},
      {"rv.charge_trickle_fraction",
       [](const SimConfig& c) { return fmt(c.rv.charge_trickle_fraction); },
       [](SimConfig& c, const std::string& v) {
         c.rv.charge_trickle_fraction =
             parse_double("rv.charge_trickle_fraction", v);
       }},
      {"rv.base_recharge_power_w",
       [](const SimConfig& c) { return fmt(c.rv.base_recharge_power.value()); },
       [](SimConfig& c, const std::string& v) {
         c.rv.base_recharge_power =
             watts(parse_double("rv.base_recharge_power_w", v));
       }},
      {"rv.reserve_fraction",
       [](const SimConfig& c) { return fmt(c.rv.reserve_fraction); },
       [](SimConfig& c, const std::string& v) {
         c.rv.reserve_fraction = parse_double("rv.reserve_fraction", v);
       }},
      {"rv.self_recharge_fraction",
       [](const SimConfig& c) { return fmt(c.rv.self_recharge_fraction); },
       [](SimConfig& c, const std::string& v) {
         c.rv.self_recharge_fraction =
             parse_double("rv.self_recharge_fraction", v);
       }},
      {"metrics_sample_min",
       [](const SimConfig& c) { return fmt(c.metrics_sample_period.value() / 60.0); },
       [](SimConfig& c, const std::string& v) {
         c.metrics_sample_period = minutes(parse_double("metrics_sample_min", v));
       }},
      {"fault.enabled",
       [](const SimConfig& c) { return c.fault.enabled ? "true" : "false"; },
       [](SimConfig& c, const std::string& v) {
         c.fault.enabled = parse_bool("fault.enabled", v);
       }},
      {"fault.request_loss_prob",
       [](const SimConfig& c) { return fmt(c.fault.request_loss_prob); },
       [](SimConfig& c, const std::string& v) {
         c.fault.request_loss_prob = parse_double("fault.request_loss_prob", v);
       }},
      {"fault.request_delay_prob",
       [](const SimConfig& c) { return fmt(c.fault.request_delay_prob); },
       [](SimConfig& c, const std::string& v) {
         c.fault.request_delay_prob = parse_double("fault.request_delay_prob", v);
       }},
      {"fault.request_delay_max_min",
       [](const SimConfig& c) { return fmt(c.fault.request_delay_max.value() / 60.0); },
       [](SimConfig& c, const std::string& v) {
         c.fault.request_delay_max =
             minutes(parse_double("fault.request_delay_max_min", v));
       }},
      {"fault.request_retry_timeout_min",
       [](const SimConfig& c) {
         return fmt(c.fault.request_retry_timeout.value() / 60.0);
       },
       [](SimConfig& c, const std::string& v) {
         c.fault.request_retry_timeout =
             minutes(parse_double("fault.request_retry_timeout_min", v));
       }},
      {"fault.request_retry_backoff",
       [](const SimConfig& c) { return fmt(c.fault.request_retry_backoff); },
       [](SimConfig& c, const std::string& v) {
         c.fault.request_retry_backoff =
             parse_double("fault.request_retry_backoff", v);
       }},
      {"fault.request_max_retries",
       [](const SimConfig& c) { return std::to_string(c.fault.request_max_retries); },
       [](SimConfig& c, const std::string& v) {
         c.fault.request_max_retries = parse_u64("fault.request_max_retries", v);
       }},
      {"fault.rv_mtbf_hours",
       [](const SimConfig& c) { return fmt(c.fault.rv_mtbf_hours); },
       [](SimConfig& c, const std::string& v) {
         c.fault.rv_mtbf_hours = parse_double("fault.rv_mtbf_hours", v);
       }},
      {"fault.rv_repair_duration_h",
       [](const SimConfig& c) { return fmt(c.fault.rv_repair_duration.value() / 3600.0); },
       [](SimConfig& c, const std::string& v) {
         c.fault.rv_repair_duration =
             hours(parse_double("fault.rv_repair_duration_h", v));
       }},
      {"fault.rv_breakdown_at_h",
       [](const SimConfig& c) { return fmt(c.fault.rv_breakdown_at.value() / 3600.0); },
       [](SimConfig& c, const std::string& v) {
         c.fault.rv_breakdown_at = hours(parse_double("fault.rv_breakdown_at_h", v));
       }},
      {"fault.rv_failover",
       [](const SimConfig& c) { return c.fault.rv_failover ? "true" : "false"; },
       [](SimConfig& c, const std::string& v) {
         c.fault.rv_failover = parse_bool("fault.rv_failover", v);
       }},
      {"fault.sensor_fault_rate_per_day",
       [](const SimConfig& c) { return fmt(c.fault.sensor_fault_rate_per_day); },
       [](SimConfig& c, const std::string& v) {
         c.fault.sensor_fault_rate_per_day =
             parse_double("fault.sensor_fault_rate_per_day", v);
       }},
      {"fault.sensor_fault_duration_h",
       [](const SimConfig& c) {
         return fmt(c.fault.sensor_fault_duration.value() / 3600.0);
       },
       [](SimConfig& c, const std::string& v) {
         c.fault.sensor_fault_duration =
             hours(parse_double("fault.sensor_fault_duration_h", v));
       }},
      {"fault.battery_noise_per_day",
       [](const SimConfig& c) { return fmt(c.fault.battery_noise_per_day); },
       [](SimConfig& c, const std::string& v) {
         c.fault.battery_noise_per_day =
             parse_double("fault.battery_noise_per_day", v);
       }},
      {"link.enabled",
       [](const SimConfig& c) { return c.link.enabled ? "true" : "false"; },
       [](SimConfig& c, const std::string& v) {
         c.link.enabled = parse_bool("link.enabled", v);
       }},
      {"link.loss_floor",
       [](const SimConfig& c) { return fmt(c.link.loss_floor); },
       [](SimConfig& c, const std::string& v) {
         c.link.loss_floor = parse_double("link.loss_floor", v);
       }},
      {"link.loss_at_range",
       [](const SimConfig& c) { return fmt(c.link.loss_at_range); },
       [](SimConfig& c, const std::string& v) {
         c.link.loss_at_range = parse_double("link.loss_at_range", v);
       }},
      {"link.loss_exponent",
       [](const SimConfig& c) { return fmt(c.link.loss_exponent); },
       [](SimConfig& c, const std::string& v) {
         c.link.loss_exponent = parse_double("link.loss_exponent", v);
       }},
      {"link.max_retx",
       [](const SimConfig& c) { return std::to_string(c.link.max_retx); },
       [](SimConfig& c, const std::string& v) {
         c.link.max_retx = parse_u64("link.max_retx", v);
       }},
      {"link.rx_duty_tax",
       [](const SimConfig& c) { return fmt(c.link.rx_duty_tax); },
       [](SimConfig& c, const std::string& v) {
         c.link.rx_duty_tax = parse_double("link.rx_duty_tax", v);
       }},
      {"seed", [](const SimConfig& c) { return std::to_string(c.seed); },
       [](SimConfig& c, const std::string& v) { c.seed = parse_u64("seed", v); }},
  };
  return kHandlers;
}

const KeyHandler& find_handler(const std::string& key) {
  for (const KeyHandler& h : handlers()) {
    if (h.name == key) return h;
  }
  throw InvalidArgument("unknown config key '" + key + "'");
}

}  // namespace

std::vector<std::string> config_keys() {
  std::vector<std::string> keys;
  keys.reserve(handlers().size());
  for (const KeyHandler& h : handlers()) keys.push_back(h.name);
  return keys;
}

std::string config_get(const SimConfig& config, const std::string& key) {
  return find_handler(key).get(config);
}

void config_set(SimConfig& config, const std::string& key, const std::string& value) {
  find_handler(key).set(config, value);
}

std::string config_to_text(const SimConfig& config) {
  std::ostringstream os;
  os << "# wrsn simulation configuration (Table II defaults unless noted)\n";
  for (const KeyHandler& h : handlers()) {
    os << h.name << " = " << h.get(config) << '\n';
  }
  return os.str();
}

SimConfig config_from_text(const std::string& text, const SimConfig& base) {
  SimConfig config = base;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    WRSN_REQUIRE(eq != std::string::npos,
                 "config line " + std::to_string(line_no) + " has no '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    config_set(config, key, value);
  }
  return config;
}

void save_config(const std::string& path, const SimConfig& config) {
  std::ofstream os(path);
  WRSN_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  os << config_to_text(config);
}

SimConfig load_config(const std::string& path, const SimConfig& base) {
  std::ifstream is(path);
  WRSN_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return config_from_text(buffer.str(), base);
}

void apply_fault_arg(SimConfig& config, const std::string& arg) {
  const std::string spec = trim(arg);
  WRSN_REQUIRE(!spec.empty(), "--faults needs a file path or key=value spec");
  if (spec.find('=') == std::string::npos) {
    config = load_config(spec, config);
  } else {
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      const std::size_t comma = std::min(spec.find(',', pos), spec.size());
      const std::string item = trim(spec.substr(pos, comma - pos));
      pos = comma + 1;
      if (item.empty()) continue;
      const std::size_t eq = item.find('=');
      WRSN_REQUIRE(eq != std::string::npos,
                   "--faults item '" + item + "' has no '='");
      std::string key = trim(item.substr(0, eq));
      const std::string value = trim(item.substr(eq + 1));
      if (key.rfind("fault.", 0) != 0) key = "fault." + key;
      config_set(config, key, value);
    }
  }
  config.fault.enabled = true;
}

}  // namespace wrsn
