#pragma once
// Little-endian binary codec for checkpoint/snapshot payloads.
//
// Doubles are encoded as their IEEE-754 bit pattern (u64), so a value read
// back is the *same object*, bit for bit — the property the deterministic
// WorldSnapshot (sim/snapshot.hpp) is built on. The reader bounds-checks
// every access and throws InvalidArgument on truncation or trailing bytes,
// so a half-written snapshot file is rejected instead of silently restoring
// garbage. An FNV-1a 64 checksum helper covers whole payloads.
//
// The writer/reader pair is deliberately symmetric: serialization code is
// written once as a template over the archive (see SnapshotAccess in
// sim/snapshot.cpp), so the save and load field lists can never drift apart.

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wrsn {

class BinWriter {
 public:
  void u8(const std::uint8_t& v) { buf_.push_back(static_cast<char>(v)); }
  void u32(const std::uint32_t& v) { put_bits(v, 4); }
  void u64(const std::uint64_t& v) { put_bits(v, 8); }
  void f64(const double& v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(const bool& v) { u8(v ? 1 : 0); }
  void size(const std::size_t& v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }

  template <typename T>
  void vec(const std::vector<T>& v);

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  void put_bits(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

class BinReader {
 public:
  explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

  void u8(std::uint8_t& v);
  void u32(std::uint32_t& v);
  void u64(std::uint64_t& v);
  void f64(double& v) {
    std::uint64_t bits = 0;
    u64(bits);
    v = std::bit_cast<double>(bits);
  }
  void boolean(bool& v) {
    std::uint8_t b = 0;
    u8(b);
    v = b != 0;
  }
  void size(std::size_t& v) {
    std::uint64_t w = 0;
    u64(w);
    v = static_cast<std::size_t>(w);
  }
  void str(std::string& s);

  template <typename T>
  void vec(std::vector<T>& v);

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  // Throws unless every byte has been consumed (a codec/schema mismatch
  // shows up as a hard error, not a silently ignored tail).
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// Element codecs for the vec() helpers. Each element type the snapshot uses
// gets one overload pair; vectors of anything else fail to compile.
inline void bin_io(BinWriter& ar, const double& v) { ar.f64(v); }
inline void bin_io(BinReader& ar, double& v) { ar.f64(v); }
inline void bin_io(BinWriter& ar, const std::uint64_t& v) { ar.u64(v); }
inline void bin_io(BinReader& ar, std::uint64_t& v) { ar.u64(v); }
inline void bin_io(BinWriter& ar, const std::uint8_t& v) { ar.u8(v); }
inline void bin_io(BinReader& ar, std::uint8_t& v) { ar.u8(v); }

template <typename T>
void BinWriter::vec(const std::vector<T>& v) {
  u64(v.size());
  for (const T& e : v) bin_io(*this, e);
}

template <typename T>
void BinReader::vec(std::vector<T>& v) {
  std::uint64_t n = 0;
  u64(n);
  v.clear();
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T e{};
    bin_io(*this, e);
    v.push_back(e);
  }
}

// FNV-1a 64-bit over `bytes`; the snapshot file format stores this as a
// trailer so bit rot / truncation is caught before deserialization.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace wrsn
