#pragma once
// Minimal streaming JSON writer (objects, arrays, scalars, escaping) for
// machine-readable experiment output. Deliberately tiny: no DOM, no parsing
// — results flow out of the simulator, never back in.

#include <sstream>
#include <string>
#include <vector>

namespace wrsn {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key for the next value (objects only).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  // Finished document; valid once all scopes are closed.
  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool complete() const { return stack_.empty() && started_; }

 private:
  void prefix();  // emits separators/indentation before a value or key
  static std::string escape(const std::string& s);

  std::ostringstream out_;
  // Scope stack: 'o' = object, 'a' = array; tracks whether the scope already
  // has at least one element (for comma placement).
  struct Scope {
    char kind;
    bool has_items = false;
    bool expecting_value = false;  // a key was just written
  };
  std::vector<Scope> stack_;
  bool started_ = false;
};

}  // namespace wrsn
