#pragma once
// Minimal streaming JSON writer (objects, arrays, scalars, escaping) for
// machine-readable experiment output, plus a validating parser used to
// smoke-check the simulator's own emissions (telemetry documents, JSONL
// trace lines). Deliberately tiny: no DOM — results flow out of the
// simulator; the parser only answers "is this well-formed JSON?".

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace wrsn {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key for the next value (objects only).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  // Finished document; valid once all scopes are closed.
  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool complete() const { return stack_.empty() && started_; }

 private:
  void prefix();  // emits separators/indentation before a value or key
  static std::string escape(const std::string& s);

  std::ostringstream out_;
  // Scope stack: 'o' = object, 'a' = array; tracks whether the scope already
  // has at least one element (for comma placement).
  struct Scope {
    char kind;
    bool has_items = false;
    bool expecting_value = false;  // a key was just written
  };
  std::vector<Scope> stack_;
  bool started_ = false;
};

// Validates that `text` is exactly one well-formed JSON value (RFC 8259
// grammar: objects, arrays, strings with escapes, numbers, true/false/null),
// surrounded by optional whitespace. Returns true when valid; otherwise
// false, with a human-readable reason in *error when non-null.
[[nodiscard]] bool json_validate(std::string_view text,
                                 std::string* error = nullptr);

}  // namespace wrsn
