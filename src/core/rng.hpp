#pragma once
// Deterministic random number generation.
//
// All stochastic inputs of a simulation replica (deployment, target motion,
// tie-breaking) are derived from one master seed through named sub-streams,
// so a replica is exactly reproducible regardless of evaluation order and
// independent replicas never share a stream. xoshiro256** is used instead of
// std::mt19937_64 because its state is 4 words (cheap to fork per stream)
// and, unlike libstdc++'s distributions, our uniform helpers are
// bit-reproducible across standard library implementations.

#include <array>
#include <cstdint>
#include <string_view>

#include "core/error.hpp"

namespace wrsn {

// SplitMix64: used to expand seeds into xoshiro state and to hash stream
// names. Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna, public domain reference code).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);
  explicit Xoshiro256(const std::array<std::uint64_t, 4>& state);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  // Equivalent to 2^128 calls of next(); used to fork non-overlapping
  // streams from one generator.
  void long_jump();

  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return s_; }

  // --- distributions (bit-reproducible, unlike <random> adaptors) -------

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Uses Lemire's unbiased bounded method.
  std::uint64_t uniform_int(std::uint64_t n);
  // Standard normal via Box-Muller (no cached spare: stateless wrt calls).
  double normal(double mean = 0.0, double stddev = 1.0);
  // Exponential with the given rate (1/mean).
  double exponential(double rate);
  // Bernoulli trial.
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
};

// Derives named, statistically independent sub-streams from a master seed:
//   RngStreams streams(seed);
//   Xoshiro256 deploy = streams.stream("deployment");
// The stream name is hashed (FNV-1a) into the seed expansion so adding a new
// stream never perturbs existing ones.
class RngStreams {
 public:
  explicit RngStreams(std::uint64_t master_seed) : master_seed_(master_seed) {}

  [[nodiscard]] Xoshiro256 stream(std::string_view name) const;
  // Convenience for per-entity streams, e.g. one per target.
  [[nodiscard]] Xoshiro256 stream(std::string_view name, std::uint64_t index) const;

  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace wrsn
