#pragma once
// Simulation configuration: Table II of the paper plus the device constants
// quoted in Section V (CC2480 radio, PIR detector, 2xAAA Ni-MH battery) and
// the few values the paper leaves implicit (RV battery capacity, charger
// power), which are documented in DESIGN.md as substitutions.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace wrsn {

// Which recharge-route scheduler drives the RVs is an open, string-keyed
// choice: SimConfig::scheduler names a policy registered with the
// SchedulerRegistry (sched/policy.hpp). Built-ins cover the paper's three
// schemes (greedy, partition, combined) plus the library's ablation
// baselines (nearest-first, fcfs, edf); wrsn::scheduler_names() enumerates
// whatever is registered. Names are validated when parsed (core/config_io)
// and again when the World instantiates the policy.

// How sensors inside a cluster are activated (Section III-C).
enum class ActivationPolicy {
  kFullTime,    // every cluster member monitors all the time (prior work)
  kRoundRobin,  // one member per time slot, rotating
};

// How targets move (Section II-A models events that "appear randomly at any
// location... before appearing again at new locations"; random-waypoint is a
// library extension for physically moving targets such as animals).
enum class TargetMotion {
  kTeleport,        // jump to a fresh uniform location every target period
  kRandomWaypoint,  // walk to a uniform waypoint at target_speed, then dwell
};

// Wireless charging time model (ref. [15], see energy/charge_profile.hpp).
enum class ChargeProfileKind {
  kConstantPower,  // dwell = demand / P (the schedulers' implicit model)
  kTaperedCcCv,    // Ni-MH CC then linearly tapering acceptance power
};

[[nodiscard]] std::string to_string(ActivationPolicy policy);
[[nodiscard]] std::string to_string(ChargeProfileKind profile);
[[nodiscard]] std::string to_string(TargetMotion motion);

// Every accepted name for the closed enum knobs, in declaration order.
// Parse errors quote these; `wrsn_sim --list` prints them (the open-ended
// scheduler list comes from wrsn::scheduler_names() instead).
[[nodiscard]] std::vector<std::string> activation_policy_names();
[[nodiscard]] std::vector<std::string> charge_profile_names();
[[nodiscard]] std::vector<std::string> target_motion_names();

struct RadioModel {
  // CC2480 (TI datasheet [25]): 27 mA @ 3 V while transmitting or receiving,
  // < 5 uA in low-power idle. 250 kbit/s air rate.
  Watt tx_power = power_draw(3.0, 27.0);
  Watt rx_power = power_draw(3.0, 27.0);
  Watt idle_power = power_draw(3.0, 0.005);
  // Fraction of time the receiver is kept on for idle listening (low-power
  // MAC duty cycling). The radio only drops to the <5uA idle floor between
  // listen windows; while listening it draws the full rx current. This is
  // the dominant radio consumer and calibrates total network demand to the
  // paper's regime (see DESIGN.md).
  double listen_duty_cycle = 0.03;
  double bitrate_bps = 250e3;
  // 20-byte payload (Table II) + PHY/MAC overhead (SFD, length, FCS, MAC hdr).
  std::size_t packet_payload_bytes = 20;
  std::size_t packet_overhead_bytes = 13;

  [[nodiscard]] Second packet_airtime() const {
    const double bits =
        8.0 * static_cast<double>(packet_payload_bytes + packet_overhead_bytes);
    return Second{bits / bitrate_bps};
  }
  [[nodiscard]] Joule tx_energy_per_packet() const { return tx_power * packet_airtime(); }
  [[nodiscard]] Joule rx_energy_per_packet() const { return rx_power * packet_airtime(); }
};

struct SensingModel {
  // PIR motion detector (ON Semi [26]): 10 mA active / 170 uA idle @ 3 V.
  Watt active_power = power_draw(3.0, 10.0);
  Watt idle_power = power_draw(3.0, 0.170);
};

struct BatteryModel {
  // Two AAA Panasonic Ni-MH cells at the 3 V operating point ([15]);
  // 750 mAh per cell at 1.2 V nominal.
  Joule capacity = battery_energy(1.2, 750.0) * 2.0;
  // Recharge threshold E_th as a fraction of capacity (Table II: 50 %).
  double threshold_fraction = 0.5;
  // Ni-MH self-discharge, fraction of capacity lost per day (handbook [15]
  // quotes up to ~1 %/day at room temperature). Modeled as a constant power
  // so the DES stays closed-form; 0 (default) disables it.
  double self_discharge_per_day = 0.0;

  [[nodiscard]] Joule threshold() const { return capacity * threshold_fraction; }
};

struct RvModel {
  JoulePerMeter move_cost = JoulePerMeter{5.6};  // e_m (Table II)
  MeterPerSecond speed = MeterPerSecond{1.0};    // v_r (Table II)
  // Battery capacity C_r. Not given numerically in the paper; sized so a
  // tour serves a handful of cluster batches plus travel (see DESIGN.md).
  Joule capacity = kilojoules(50.0);
  // The RV keeps this reserve so it can always make it back to base.
  double reserve_fraction = 0.05;
  // Below this battery fraction an idle RV returns to base and refills
  // itself before accepting new work (Algorithms 2/3: "if its battery is
  // low, it returns to the base station").
  double self_recharge_fraction = 0.2;
  // Wireless charger output power (recharge-time model per [15]: Ni-MH
  // cells charge slowly, ~0.1C): a sensor with demand d occupies the RV for
  // d / charge_power seconds.
  Watt charge_power = watts(1.2);
  // Shape of the charge-acceptance curve and its taper parameters (only
  // used by kTaperedCcCv).
  ChargeProfileKind charge_profile = ChargeProfileKind::kConstantPower;
  double charge_knee_soc = 0.8;
  double charge_trickle_fraction = 0.1;
  // Power of the base-station dock recharging the RV itself.
  Watt base_recharge_power = watts(500.0);
};

// Deterministic fault model (src/fault/). Every fault decision is derived
// from named RNG sub-streams of the master seed, so a given (seed, config)
// pair always yields the same fault plan regardless of engine or event
// interleaving. With `enabled == false` the World never consults the fault
// layer and output is bit-identical to a build without it.
struct FaultConfig {
  bool enabled = false;

  // (a) Request-uplink loss/delay: each attempt to deliver an ERP-triggered
  // request to the base station is independently dropped or deferred.
  double request_loss_prob = 0.0;         // P(attempt dropped) in [0,1]
  double request_delay_prob = 0.0;        // P(attempt deferred) in [0,1]
  Second request_delay_max = minutes(20.0);   // deferred uplink lands U(0,max] later
  // Retry/TTL state machine: a dropped request is re-emitted after
  // timeout * backoff^attempt, up to max_retries attempts, then expires
  // (the cluster may re-fire at the next ERP evaluation).
  Second request_retry_timeout = minutes(15.0);
  double request_retry_backoff = 2.0;     // >= 1
  std::size_t request_max_retries = 8;

  // (b) RV breakdowns: exponential inter-failure times with the given MTBF
  // (0 disables), plus an optional pinned breakdown of RV 0 at a fixed time
  // (for reproducible demos/tests; <= 0 disables). A broken RV is out of
  // service for repair_duration, then is towed back to base and refilled.
  double rv_mtbf_hours = 0.0;
  Second rv_repair_duration = hours(8.0);
  Second rv_breakdown_at = Second{0.0};
  // Failover: on breakdown the stranded service queue is re-injected into
  // the recharge list and replanned across surviving RVs. Disable to get
  // the no-failover control for ablation.
  bool rv_failover = true;

  // (c) Transient sensor hardware faults: a live sensor stops monitoring
  // (sensing hardware down, radio still relaying) for fault_duration.
  // Poisson arrivals per sensor at the given daily rate (0 disables).
  double sensor_fault_rate_per_day = 0.0;
  Second sensor_fault_duration = hours(2.0);

  // (d) Battery self-discharge noise: per-sensor extra constant drain drawn
  // uniformly in [0, battery_noise_per_day * capacity / day] (0 disables).
  double battery_noise_per_day = 0.0;
};

// Link-quality layer (net/traffic.hpp). The paper treats every routing hop
// as lossless; with `enabled == true` each hop drops packets with a
// distance-dependent probability and senders retransmit up to `max_retx`
// times, which multiplies transmit energy by the expected transmission
// count (ETX) and attenuates the delivered rate hop by hop. With
// `enabled == false` (default) traffic accounting is bit-identical to the
// lossless model.
struct LinkConfig {
  bool enabled = false;
  // Per-hop loss probability: clamp(loss_floor + loss_at_range *
  // (hop_length / comm_range)^loss_exponent, <= 1). The floor models
  // interference-type loss independent of distance; the range term models
  // fading that grows towards the edge of the communication disk.
  double loss_floor = 0.0;
  double loss_at_range = 0.3;
  double loss_exponent = 2.0;
  // Transmission attempts per packet per hop (1 = no retransmissions).
  std::size_t max_retx = 3;
  // Extra receiver duty fraction paid by nodes that are actively receiving
  // (rx_rate > 0): relays keep the radio on longer to catch retransmitted
  // frames. Adds rx_duty_tax * rx_power to their radio draw; 0 disables.
  double rx_duty_tax = 0.0;
};

struct SimConfig {
  // --- Table II -----------------------------------------------------------
  std::size_t num_sensors = 500;        // N
  std::size_t num_targets = 15;         // M
  std::size_t num_rvs = 3;              // m
  Meter field_side = meters(200.0);     // L
  Meter comm_range = meters(12.0);      // d_c
  Meter sensing_range = meters(8.0);    // d_s
  Second sim_duration = days(120.0);
  Second target_period = hours(3.0);
  double data_rate_pkt_per_min = 15.0;  // lambda
  TargetMotion target_motion = TargetMotion::kTeleport;
  // Walking speed for kRandomWaypoint; the motion is discretized into
  // segments of at most `target_period` so clusters stay current.
  MeterPerSecond target_speed = MeterPerSecond{0.3};

  // --- framework knobs ------------------------------------------------------
  // Name of a registered SchedulerPolicy (see sched/policy.hpp). Validated
  // against the registry at parse time and at World construction.
  std::string scheduler = "combined";
  // Name of a registered RoutingPolicy (see net/routing.hpp). The default is
  // the paper's Dijkstra tree; wrsn::routing_names() enumerates whatever is
  // registered. Validated at parse time and at World construction.
  std::string routing = "shortest_path";
  // Event-queue implementation: "auto" (WRSN_EVENT_QUEUE env, defaulting to
  // the calendar queue), "calendar" or "heap". Both produce identical event
  // order — the heap is the O(log n) reference, the calendar queue the O(1)
  // amortized default (see sim/events.hpp).
  std::string event_queue = "auto";
  // Intra-simulation thread budget (core/parallel.hpp). 0 = "auto": the
  // WRSN_THREADS env var if set (its value 0 meaning hardware concurrency),
  // else 1. Any value yields byte-identical output; >1 shards the bulk
  // per-sensor phases and planner kernels across a ThreadPool.
  std::size_t threads = 0;
  // Minimum item count before a bulk phase dispatches shards to the pool;
  // below it the single-thread fast path runs so task overhead cannot
  // regress small simulations (n=500 stays serial by default).
  std::size_t parallel_threshold = 4096;
  ActivationPolicy activation = ActivationPolicy::kRoundRobin;
  // Post-optimize each RV's flattened visiting order with 2-opt before
  // departure (library extension; off by default to match the paper's
  // algorithms exactly).
  bool two_opt_tours = false;
  bool energy_request_control = true;  // ERC on/off (Fig. 4)
  double energy_request_percentage = 0.6;  // ERP / K in [0,1]
  Second activation_slot = minutes(10.0);  // round-robin time slot length
  // A cluster member below this fraction of capacity marks its cluster
  // critical; critical clusters are prioritized in destination selection
  // (Section III-C, "clusters with low energy will be prioritized").
  double critical_fraction = 0.10;

  // --- device models --------------------------------------------------------
  RadioModel radio;
  SensingModel sensing;
  BatteryModel battery;
  RvModel rv;
  FaultConfig fault;
  LinkConfig link;

  // --- bookkeeping -----------------------------------------------------------
  std::uint64_t seed = 0x5eed0001ULL;
  Second metrics_sample_period = minutes(30.0);

  // Throws wrsn::InvalidArgument when a parameter is out of range.
  void validate() const;

  // Table II defaults (the constructor already applies them; this reads
  // better at call sites in benches/tests).
  [[nodiscard]] static SimConfig paper_defaults() { return SimConfig{}; }
};

}  // namespace wrsn
