#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace wrsn {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::Xoshiro256(const std::array<std::uint64_t, 4>& state) : s_(state) {
  WRSN_REQUIRE(state[0] | state[1] | state[2] | state[3],
               "xoshiro256 state must not be all-zero");
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
      0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
}

double Xoshiro256::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  WRSN_REQUIRE(lo <= hi, "uniform(lo,hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) {
  WRSN_REQUIRE(n > 0, "uniform_int(n) requires n > 0");
  // Lemire's nearly-divisionless unbiased method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal(double mean, double stddev) {
  // Box-Muller; draws two uniforms, returns one variate (keeps the generator
  // call count deterministic per invocation).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::exponential(double rate) {
  WRSN_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Xoshiro256::bernoulli(double p) {
  WRSN_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  return uniform() < p;
}

Xoshiro256 RngStreams::stream(std::string_view name) const {
  return Xoshiro256(master_seed_ ^ fnv1a(name));
}

Xoshiro256 RngStreams::stream(std::string_view name, std::uint64_t index) const {
  SplitMix64 sm(master_seed_ ^ fnv1a(name));
  const std::uint64_t base = sm.next();
  SplitMix64 mix(base + 0x9e3779b97f4a7c15ULL * (index + 1));
  return Xoshiro256(mix.next());
}

}  // namespace wrsn
