#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace wrsn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  WRSN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  WRSN_REQUIRE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::set_precision(int digits) {
  WRSN_REQUIRE(digits >= 0 && digits <= 17, "precision out of range");
  precision_ = digits;
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  auto print_line = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 == cells.size() ? " |" : " | ");
    }
    os << '\n';
  };

  print_line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : formatted) print_line(row);
}

void Table::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << escape(headers_[c]) << (c + 1 == headers_.size() ? '\n' : ',');
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << escape(format_cell(row[c])) << (c + 1 == row.size() ? '\n' : ',');
    }
  }
}

}  // namespace wrsn
