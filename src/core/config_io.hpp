#pragma once
// Textual (de)serialization of SimConfig: a flat `key = value` format with
// `#` comments, used by the wrsn_sim CLI (`--config file`, `--set k=v`) and
// by experiment scripts. Unknown keys are an error — silent typos in
// experiment configs are how wrong papers get written.

#include <string>
#include <vector>

#include "core/config.hpp"

namespace wrsn {

// All recognized keys, in serialization order.
[[nodiscard]] std::vector<std::string> config_keys();

// Current value of one key, formatted as it would be serialized.
[[nodiscard]] std::string config_get(const SimConfig& config, const std::string& key);

// Sets one key from its textual value. Throws InvalidArgument on unknown
// keys or unparsable values.
void config_set(SimConfig& config, const std::string& key, const std::string& value);

// Full round-trippable dump (every key, one per line, with a header).
[[nodiscard]] std::string config_to_text(const SimConfig& config);

// Applies `key = value` lines on top of `base`. Blank lines and lines
// starting with '#' are ignored; inline `# ...` comments are stripped.
[[nodiscard]] SimConfig config_from_text(const std::string& text,
                                         const SimConfig& base = SimConfig{});

// File variants.
void save_config(const std::string& path, const SimConfig& config);
[[nodiscard]] SimConfig load_config(const std::string& path,
                                    const SimConfig& base = SimConfig{});

// Applies a `--faults FILE|spec` CLI argument (shared by wrsn_sim,
// wrsn_sweep and wrsn_trace) and force-enables fault injection. A spec is a
// comma-separated `key=value` list using the fault.* config keys, with the
// `fault.` prefix optional:
//   --faults request_loss_prob=0.2,rv_breakdown_at_h=6
// An argument without '=' is treated as a config-file path whose keys
// overlay `config` (typically a file of fault.* lines, but any key works).
void apply_fault_arg(SimConfig& config, const std::string& arg);

}  // namespace wrsn
