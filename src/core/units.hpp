#pragma once
// Strong-typed physical quantities for the WRSN energy accounting.
//
// The simulator mixes joules, watts, metres and seconds in closed-form
// expressions (battery crossing times, traction energy, charge dwell).
// Tagged doubles make unit mistakes a compile error while compiling down to
// plain doubles. Only the unit algebra the codebase actually needs is
// defined (W*s=J, J/W=s, m/(m/s)=s, ...), on purpose: an unexpected
// combination should fail to compile and prompt a new explicit rule.

#include <compare>
#include <ostream>

namespace wrsn {

template <typename Tag>
struct Quantity {
  double v{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : v(value) {}

  [[nodiscard]] constexpr double value() const { return v; }

  constexpr Quantity& operator+=(Quantity o) { v += o.v; return *this; }
  constexpr Quantity& operator-=(Quantity o) { v -= o.v; return *this; }
  constexpr Quantity& operator*=(double s) { v *= s; return *this; }
  constexpr Quantity& operator/=(double s) { v /= s; return *this; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.v + b.v}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.v - b.v}; }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.v}; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.v * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{a.v * s}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.v / s}; }
  friend constexpr double operator/(Quantity a, Quantity b) { return a.v / b.v; }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) { return os << q.v; }
};

struct JouleTag {};
struct WattTag {};
struct MeterTag {};
struct SecondTag {};
struct SpeedTag {};         // m/s
struct EnergyPerMeterTag {};  // J/m (RV traction)

using Joule = Quantity<JouleTag>;
using Watt = Quantity<WattTag>;
using Meter = Quantity<MeterTag>;
using Second = Quantity<SecondTag>;
using MeterPerSecond = Quantity<SpeedTag>;
using JoulePerMeter = Quantity<EnergyPerMeterTag>;

// --- cross-unit algebra ------------------------------------------------
constexpr Joule operator*(Watt p, Second t) { return Joule{p.v * t.v}; }
constexpr Joule operator*(Second t, Watt p) { return p * t; }
constexpr Second operator/(Joule e, Watt p) { return Second{e.v / p.v}; }
constexpr Watt operator/(Joule e, Second t) { return Watt{e.v / t.v}; }
constexpr Second operator/(Meter d, MeterPerSecond s) { return Second{d.v / s.v}; }
constexpr Meter operator*(MeterPerSecond s, Second t) { return Meter{s.v * t.v}; }
constexpr Joule operator*(JoulePerMeter em, Meter d) { return Joule{em.v * d.v}; }
constexpr Joule operator*(Meter d, JoulePerMeter em) { return em * d; }
constexpr Watt operator*(JoulePerMeter em, MeterPerSecond s) { return Watt{em.v * s.v}; }

// --- literal-style helpers ---------------------------------------------
constexpr Joule joules(double v) { return Joule{v}; }
constexpr Joule kilojoules(double v) { return Joule{v * 1e3}; }
constexpr Joule megajoules(double v) { return Joule{v * 1e6}; }
constexpr Watt watts(double v) { return Watt{v}; }
constexpr Watt milliwatts(double v) { return Watt{v * 1e-3}; }
constexpr Watt microwatts(double v) { return Watt{v * 1e-6}; }
constexpr Meter meters(double v) { return Meter{v}; }
constexpr Second seconds(double v) { return Second{v}; }
constexpr Second minutes(double v) { return Second{v * 60.0}; }
constexpr Second hours(double v) { return Second{v * 3600.0}; }
constexpr Second days(double v) { return Second{v * 86400.0}; }

// Energy of a battery given voltage (V) and charge (mAh).
constexpr Joule battery_energy(double volts, double milliamp_hours) {
  return Joule{volts * milliamp_hours * 1e-3 * 3600.0};
}

// Power drawn at `volts` volts and `milliamps` mA.
constexpr Watt power_draw(double volts, double milliamps) {
  return Watt{volts * milliamps * 1e-3};
}

}  // namespace wrsn
