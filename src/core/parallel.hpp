#pragma once
// Deterministic intra-simulation parallelism.
//
// The incremental World engine (and the planner kernels under sched/) have a
// handful of bulk per-item phases — batch settlement, drain refresh, crossing
// re-prediction, rebalance candidate scans, k-means assignment, 2-opt
// candidate evaluation — whose per-item work is pure: each item's result
// depends only on state that is frozen for the duration of the phase. This
// header provides the machinery to run those phases across the existing
// ThreadPool while keeping the output byte-identical to the single-thread
// run at any thread count:
//
//   * Work is partitioned into fixed contiguous shards whose boundaries
//     depend only on (n, grain) — never on the thread count — so any
//     per-shard partial is the same set of items no matter how many workers
//     exist or in what order tasks finish.
//   * `for_shards` runs a closure over each shard; callers write results
//     into disjoint preallocated slots (one per item), so there is no shared
//     mutation and nothing to merge.
//   * `reduce_shards` folds per-shard partials strictly in shard-index
//     order after all tasks complete. Because shard boundaries are
//     thread-count independent and the fold order is fixed, even
//     non-associative reductions (floating-point sums) are bit-stable.
//   * Phases that must interleave mutation with floating-point accumulation
//     or event pushes (settlement, drain apply) use the compute-then-apply
//     split: the parallel phase computes the expensive pure values into
//     per-item slots, then a serial ascending-index apply performs every
//     mutation exactly as the original serial loop would — identical fp
//     accumulation order, identical (time, seq) event-push order.
//
// A ParallelExec with threads == 1 (the default) never touches the pool and
// degrades to plain serial loops, so single-thread behaviour and performance
// are unchanged. Phases also fall back to the serial loop when n is below
// the configured threshold (SimConfig::parallel_threshold) so task-dispatch
// overhead cannot regress small runs.

#include <cstddef>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"

namespace wrsn {

// Resolves the effective thread budget from the `threads` config knob:
//   config_threads >= 1  -> that many threads (explicit).
//   config_threads == 0  -> "auto": WRSN_THREADS env if set (where the env
//                           value 0 means hardware concurrency), else 1.
// The result is always >= 1.
[[nodiscard]] std::size_t resolve_threads(std::size_t config_threads);

// Fixed shard plan: contiguous [begin, end) ranges covering [0, n), each of
// size `grain` except possibly the last. Boundaries depend only on (n, grain).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

[[nodiscard]] std::vector<ShardRange> shard_plan(std::size_t n, std::size_t grain);

class ParallelExec {
 public:
  // Serial executor (threads == 1, no pool).
  ParallelExec() = default;

  // threads > 1 spins up a pool of that many workers; threshold is the
  // minimum n for which sharded dispatch is worth the task overhead.
  explicit ParallelExec(std::size_t threads, std::size_t threshold = kDefaultThreshold);

  static constexpr std::size_t kDefaultThreshold = 4096;
  // Default shard grain for per-item phases. Small enough to load-balance
  // across 8+ workers at n=100k, large enough that a shard amortizes the
  // task-dispatch cost. Thread-count independent by construction.
  static constexpr std::size_t kDefaultGrain = 4096;

  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] std::size_t threshold() const { return threshold_; }
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

  // True when a phase over n items should dispatch shards instead of
  // running the plain serial loop.
  [[nodiscard]] bool should_shard(std::size_t n) const {
    return pool_ != nullptr && n >= threshold_;
  }

  // Runs body(begin, end) over fixed contiguous shards of [0, n). The body
  // must only write per-item slots inside its own range (or thread-safe
  // const queries); with that contract the result is identical to the
  // serial loop body(0, n) regardless of thread count or completion order.
  // Falls back to body(0, n) inline when not sharding.
  template <typename Body>
  void for_shards(std::size_t n, const Body& body, std::size_t grain = kDefaultGrain) {
    if (!should_shard(n)) {
      if (n > 0) body(std::size_t{0}, n);
      return;
    }
    const std::vector<ShardRange> shards = shard_plan(n, grain);
    run_shards_(shards, [&body](const ShardRange& r) { body(r.begin, r.end); });
  }

  // Deterministic reduction: partial = map(begin, end) per shard, folded as
  // combine(acc, partial) strictly in shard-index order once every task has
  // completed. Shard boundaries are thread-count independent, so the fold
  // sequence — and therefore the result, even for floating-point sums — is
  // byte-identical to the same fold run serially.
  template <typename Acc, typename Map, typename Combine>
  [[nodiscard]] Acc reduce_shards(std::size_t n, Acc init, const Map& map,
                                  const Combine& combine, std::size_t grain = kDefaultGrain) {
    if (!should_shard(n)) {
      if (n == 0) return init;
      Acc acc = std::move(init);
      combine(acc, map(std::size_t{0}, n));
      return acc;
    }
    const std::vector<ShardRange> shards = shard_plan(n, grain);
    // Slot wrapper keeps one full object per shard even when the partial
    // type is bool (vector<bool> bit-packs, which would both fail to bind
    // and race across adjacent shards).
    struct Slot {
      decltype(map(std::size_t{0}, std::size_t{0})) value{};
    };
    std::vector<Slot> partials(shards.size());
    run_shards_(shards, [&map, &partials, &shards](const ShardRange& r) {
      partials[static_cast<std::size_t>(&r - shards.data())].value = map(r.begin, r.end);
    });
    Acc acc = std::move(init);
    for (Slot& p : partials) combine(acc, std::move(p.value));
    return acc;
  }

 private:
  template <typename ShardFn>
  void run_shards_(const std::vector<ShardRange>& shards, const ShardFn& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(shards.size());
    for (const ShardRange& r : shards) {
      futures.push_back(pool_->submit([&fn, &r] { fn(r); }));
    }
    // get() (not wait()) so the first task exception, by shard order,
    // propagates to the caller exactly like ThreadPool::parallel_for.
    for (auto& f : futures) f.get();
  }

  std::size_t threads_ = 1;
  std::size_t threshold_ = kDefaultThreshold;
  std::unique_ptr<ThreadPool> pool_;
};

// Thread-local installation of the active executor, mirroring
// obs::TelemetryScope: the World installs its executor around run_until()
// and dispatch, and the planner kernels (kmeans, tsp, plan_context) pick it
// up via current_parallel() without threading a pool through every policy
// signature. Returns nullptr when nothing is installed (serial).
[[nodiscard]] ParallelExec* current_parallel() noexcept;

class ParallelScope {
 public:
  explicit ParallelScope(ParallelExec* exec) noexcept;
  ~ParallelScope();

  ParallelScope(const ParallelScope&) = delete;
  ParallelScope& operator=(const ParallelScope&) = delete;

 private:
  ParallelExec* previous_ = nullptr;
};

}  // namespace wrsn
