#pragma once
// Small tabular report writer used by the figure/table benchmark harnesses.
// Prints an aligned fixed-width table to a stream and can also emit CSV so
// results are easy to plot externally.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace wrsn {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> headers);

  // Number of cells must equal the number of headers.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return headers_.size(); }

  // Digits after the decimal point for double cells (default 3).
  void set_precision(int digits);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace wrsn
