#include "core/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/error.hpp"

namespace wrsn {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw InvalidArgument(what + " '" + path + "': " + std::strerror(errno));
}

// fsync by path; used for both the temp file contents and (best-effort)
// the containing directory so the rename itself is durable.
void fsync_path(const std::string& path, bool required) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (required) throw_errno("cannot open for fsync", path);
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && required) throw_errno("fsync failed for", path);
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void rename_into_place(const std::string& tmp, const std::string& path) {
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename to", path);
  }
  fsync_path(parent_dir(path), /*required=*/false);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw_errno("cannot open", tmp);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) throw_errno("write failed for", tmp);
  }
  fsync_path(tmp, /*required=*/true);
  rename_into_place(tmp, path);
}

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) throw_errno("cannot open", tmp_path_);
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFile::commit() {
  out_.flush();
  if (!out_) throw_errno("write failed for", tmp_path_);
  out_.close();
  fsync_path(tmp_path_, /*required=*/true);
  rename_into_place(tmp_path_, path_);
  committed_ = true;
}

JournalWriter::JournalWriter(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("cannot open journal", path);
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(std::string_view line) {
  std::string rec(line);
  rec.push_back('\n');
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("append failed for journal", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync failed for journal", path_);
}

}  // namespace wrsn
