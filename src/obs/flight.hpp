#pragma once
// Bounded in-memory flight recorder: a ring buffer of the last N
// TraceRecords plus an optional caller-supplied context snapshot (typically
// serialized metrics), dumped on demand — and automatically on invariant
// failure (via the core failure hook), graceful-failure exits in the CLI
// catch blocks, or SIGINT. Turns a fault-matrix crash into a post-mortem:
// the dump shows what the event loop was doing right before the assert,
// without re-running under a full trace.
//
// Recording is allocation-free after construction (fixed ring, static kind
// strings), so a recorder can stay attached to hot runs. Heisenberg rule
// applies: recording never changes simulated physics (pinned by
// tests/test_spans.cpp).
//
// Every live recorder self-registers in a process-wide registry so the
// static dump paths (dump_all / failure hook / signal handler) can reach
// recorders owned deep inside a run without plumbing. The signal handler is
// best-effort, not strictly async-signal-safe (it takes a mutex and writes
// through iostreams); acceptable for a Ctrl-C post-mortem, documented here
// so nobody mistakes it for hardened signal code.

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace wrsn::obs {

class FlightRecorder : public TraceSink {
 public:
  // `capacity` = number of most-recent records retained (>= 1).
  explicit FlightRecorder(std::size_t capacity);
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // TraceSink interface, so a recorder can sit anywhere a trace sink can.
  void on_event(const TraceRecord& rec) override { record(rec); }

  void record(const TraceRecord& rec);

  // Called at dump time (guarded by try/catch) to append a state snapshot —
  // e.g. the current MetricsReport as JSON. Keep it cheap and exception-safe.
  void set_context_provider(std::function<std::string()> provider);

  // Human-readable label prefixed to this recorder's dump section.
  void set_label(std::string label);

  // Writes the ring (oldest first) + context snapshot to `out`.
  void dump(std::ostream& out, const char* reason) const;

  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }
  [[nodiscard]] std::uint64_t events_seen() const { return seen_; }

  // --- process-wide dump plumbing -----------------------------------------

  // Dumps every live recorder to the configured destination (stderr by
  // default, or the file named via set_dump_path). Safe to call with no
  // recorders alive (no-op).
  static void dump_all(const char* reason);

  // Redirect dump_all output to a file (appended); empty = back to stderr.
  static void set_dump_path(const std::string& path);

  // Installs wrsn::set_failure_hook so WRSN_ASSERT / WRSN_DEBUG_ASSERT
  // failures dump every live recorder before the exception propagates.
  static void arm_failure_hook();

  // Installs SIGINT/SIGTERM handlers that dump every live recorder, restore
  // the default disposition, and re-raise so the exit status stays
  // canonical. Tools that checkpoint on signal install their own handler
  // instead (and dump recorders at the checkpoint boundary).
  static void arm_signal_handlers();

 private:
  std::vector<TraceRecord> ring_;  // size() grows to capacity, then wraps
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;     // ring slot for the next record
  std::uint64_t seen_ = 0;   // total records observed (>= ring size)
  std::function<std::string()> context_;
  std::string label_;
};

}  // namespace wrsn::obs
