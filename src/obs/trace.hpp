#pragma once
// Structured event-trace sinks. The simulator reports one TraceRecord per
// processed discrete event; sinks serialize the stream for offline analysis.
//
// The JSONL sink is the canonical machine-readable format: line 1 is a meta
// record naming the schema and its version, every following line is one
// event record. The field list is frozen per schema version — tests pin it
// (tests/test_telemetry.cpp), so extending the schema means bumping
// kTraceSchemaVersion deliberately.
//
// This layer deliberately knows nothing about sim/ types: the event kind
// arrives as a string, so obs/ sits next to core/ in the dependency order
// and sched/, sim/, tools/ and bench/ can all use it.

#include <cstdint>
#include <ostream>

namespace wrsn::obs {

inline constexpr int kTraceSchemaVersion = 1;

// One processed discrete event, as the simulator saw it.
struct TraceRecord {
  double t = 0.0;              // simulated seconds since t=0
  const char* kind = "";       // stable event-kind name (e.g. "rv-arrival")
  std::uint64_t subject = 0;   // sensor/target/RV id, kind-dependent
  std::uint64_t epoch = 0;     // subject epoch carried by the event
  std::uint64_t queue_size = 0;  // pending events right after this pop
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceRecord& rec) = 0;
  // Called once after the last event; flushes buffered output.
  virtual void finish() {}
};

// JSON-lines sink. Emits the meta record on construction:
//   {"record":"meta","schema":"wrsn.trace","version":1,"fields":[...]}
// then one event record per on_event:
//   {"record":"event","t_s":...,"kind":"...","subject":N,"epoch":N,"queue":N}
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out);
  void on_event(const TraceRecord& rec) override;
  void finish() override;

  [[nodiscard]] std::uint64_t events_written() const { return events_; }

 private:
  std::ostream& out_;
  std::uint64_t events_ = 0;
};

// CSV sink with the same field set (header row on construction):
//   t_seconds,t_hours,event,subject,epoch,queue_size
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& out);
  void on_event(const TraceRecord& rec) override;
  void finish() override;

  [[nodiscard]] std::uint64_t events_written() const { return events_; }

 private:
  std::ostream& out_;
  std::uint64_t events_ = 0;
};

}  // namespace wrsn::obs
