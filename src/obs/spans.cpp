#include "obs/spans.hpp"

#include <string>

#include "core/error.hpp"
#include "core/json.hpp"

namespace wrsn::obs {

namespace {

// One span record as a JSONL line. Field order is part of the frozen
// wrsn.spans v2 schema — keep in sync with the meta record below and the
// table in docs/ARCHITECTURE.md.
std::string span_line(const SpanRecord& rec) {
  JsonWriter w;
  w.begin_object()
      .field("record", "span")
      .field("id", rec.id)
      .field("parent", rec.parent)
      .field("root", rec.root)
      .field("track", rec.track)
      .field("subject", rec.subject)
      .field("name", rec.name)
      .field("t0_s", rec.t0)
      .field("t1_s", rec.t1)
      .field("outcome", rec.outcome)
      .field("value", rec.value)
      .field("mark", rec.mark)
      .end_object();
  return w.str();
}

}  // namespace

JsonlSpanSink::JsonlSpanSink(std::ostream& out) : out_(out) {
  JsonWriter w;
  w.begin_object()
      .field("record", "meta")
      .field("schema", "wrsn.spans")
      .field("version", std::int64_t{kSpanSchemaVersion});
  w.key("fields").begin_array();
  for (const char* f : {"id", "parent", "root", "track", "subject", "name",
                        "t0_s", "t1_s", "outcome", "value", "mark"}) {
    w.value(f);
  }
  w.end_array().end_object();
  out_ << w.str() << '\n';
}

void JsonlSpanSink::on_span(const SpanRecord& rec) {
  out_ << span_line(rec) << '\n';
  ++spans_;
}

void JsonlSpanSink::finish() { out_.flush(); }

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(out) {
  out_ << "{\"traceEvents\":[";
}

void ChromeTraceSink::emit(const std::string& json) {
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << json;
}

void ChromeTraceSink::ensure_thread(std::uint64_t tid, const std::string& name) {
  for (std::uint64_t seen : named_tids_) {
    if (seen == tid) return;
  }
  named_tids_.push_back(tid);
  JsonWriter w;
  w.begin_object()
      .field("ph", "M")
      .field("name", "thread_name")
      .field("pid", std::int64_t{1})
      .field("tid", tid);
  w.key("args").begin_object().field("name", name).end_object();
  w.end_object();
  emit(w.str());
}

void ChromeTraceSink::on_span(const SpanRecord& rec) {
  WRSN_ASSERT(!finished_, "span after ChromeTraceSink::finish");
  // Simulated seconds -> trace microseconds.
  const double ts = rec.t0 * 1e6;
  const double dur = (rec.t1 - rec.t0) * 1e6;
  const std::string track(rec.track);
  if (track == "rv") {
    // One thread per vehicle so legs stack as nested complete events.
    const std::uint64_t tid = 10 + rec.subject;
    ensure_thread(tid, "RV " + std::to_string(rec.subject));
    JsonWriter w;
    w.begin_object()
        .field("ph", rec.mark ? "i" : "X")
        .field("name", rec.name)
        .field("cat", "rv")
        .field("pid", std::int64_t{1})
        .field("tid", tid)
        .field("ts", ts);
    if (rec.mark) {
      w.field("s", "t");  // thread-scoped instant
    } else {
      w.field("dur", dur);
    }
    w.key("args")
        .begin_object()
        .field("outcome", rec.outcome)
        .field("value", rec.value)
        .field("span_id", rec.id)
        .end_object();
    w.end_object();
    emit(w.str());
    return;
  }
  // Requests render as async events keyed by lifecycle root: the root span
  // opens/closes the row, nested phases and marks add "n" instants inside
  // it. Spans arrive complete (at end time), so the root's b/e pair is
  // emitted together; viewers order by ts.
  const std::string id = std::to_string(rec.root);
  const bool is_root = rec.id == rec.root && !rec.mark;
  if (is_root) {
    for (const char* ph : {"b", "e"}) {
      JsonWriter w;
      w.begin_object()
          .field("ph", ph)
          .field("name", rec.name)
          .field("cat", "request")
          .field("id", id)
          .field("pid", std::int64_t{1})
          .field("tid", std::int64_t{1})
          .field("ts", ph[0] == 'b' ? ts : rec.t1 * 1e6);
      w.key("args").begin_object();
      if (ph[0] == 'e') {
        w.field("outcome", rec.outcome).field("value", rec.value);
      }
      w.field("subject", rec.subject).end_object();
      w.end_object();
      emit(w.str());
    }
    return;
  }
  JsonWriter w;
  w.begin_object()
      .field("ph", "n")
      .field("name", rec.name)
      .field("cat", "request")
      .field("id", id)
      .field("pid", std::int64_t{1})
      .field("tid", std::int64_t{1})
      .field("ts", rec.mark ? ts : rec.t1 * 1e6);
  w.key("args")
      .begin_object()
      .field("outcome", rec.outcome)
      .field("value", rec.value)
      .field("subject", rec.subject)
      .end_object();
  w.end_object();
  emit(w.str());
}

void ChromeTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  out_ << "]}\n";
  out_.flush();
}

std::uint64_t SpanLog::begin(const char* track, std::uint64_t subject,
                             const char* name, double t, std::uint64_t parent) {
  const std::uint64_t id = next_id_++;
  OpenSpan span;
  span.parent = parent;
  span.track = track;
  span.subject = subject;
  span.name = name;
  span.t0 = t;
  if (parent == 0) {
    span.root = id;
  } else {
    const auto it = open_.find(parent);
    // A child of an already-closed parent still gets a self-root rather than
    // a dangling link.
    span.root = it != open_.end() ? it->second.root : id;
  }
  open_.emplace(id, span);
  return id;
}

void SpanLog::end(std::uint64_t id, double t, const char* outcome,
                  double value) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  const OpenSpan& span = it->second;
  SpanRecord rec;
  rec.id = id;
  rec.parent = span.parent;
  rec.root = span.root;
  rec.track = span.track;
  rec.subject = span.subject;
  rec.name = span.name;
  rec.t0 = span.t0;
  rec.t1 = t >= span.t0 ? t : span.t0;
  rec.outcome = outcome;
  rec.value = value;
  rec.mark = false;
  open_.erase(it);
  emit(rec);
}

void SpanLog::mark(std::uint64_t parent, const char* name, double t,
                   const char* outcome, double value) {
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.root = rec.id;
  rec.name = name;
  rec.t0 = t;
  rec.t1 = t;
  rec.outcome = outcome;
  rec.value = value;
  rec.mark = true;
  if (parent != 0) {
    const auto it = open_.find(parent);
    if (it != open_.end()) {
      rec.root = it->second.root;
      rec.track = it->second.track;
      rec.subject = it->second.subject;
    }
  }
  emit(rec);
}

void SpanLog::finish(double t, const char* outcome) {
  // Reverse begin order closes children before their parents (a child is
  // always begun after its parent), keeping nesting well-formed.
  while (!open_.empty()) {
    const std::uint64_t id = open_.rbegin()->first;
    end(id, t, outcome);
  }
  if (sink_ != nullptr) sink_->finish();
  if (second_ != nullptr) second_->finish();
}

void SpanLog::serialize(BinWriter& w) const {
  w.u64(next_id_);
  w.u64(emitted_);
  w.size(open_.size());
  for (const auto& [id, span] : open_) {
    w.u64(id);
    w.u64(span.parent);
    w.u64(span.root);
    w.str(std::string(span.track));
    w.u64(span.subject);
    w.str(std::string(span.name));
    w.f64(span.t0);
  }
}

void SpanLog::deserialize(BinReader& r) {
  r.u64(next_id_);
  r.u64(emitted_);
  std::size_t n = 0;
  r.size(n);
  open_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t id = 0;
    OpenSpan span;
    r.u64(id);
    r.u64(span.parent);
    r.u64(span.root);
    std::string track;
    r.str(track);
    span.track = interned_.emplace_back(std::move(track)).c_str();
    r.u64(span.subject);
    std::string name;
    r.str(name);
    span.name = interned_.emplace_back(std::move(name)).c_str();
    r.f64(span.t0);
    open_.emplace(id, span);
  }
}

void SpanLog::emit(const SpanRecord& rec) {
  WRSN_DEBUG_ASSERT(rec.t1 >= rec.t0, "span ends before it starts");
  ++emitted_;
  if (sink_ != nullptr) sink_->on_span(rec);
  if (second_ != nullptr) second_->on_span(rec);
}

}  // namespace wrsn::obs
