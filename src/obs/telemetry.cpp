#include "obs/telemetry.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "core/atomic_file.hpp"
#include "core/error.hpp"
#include "core/json.hpp"

namespace wrsn::obs {

namespace {

void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

thread_local TelemetryRegistry* t_registry = nullptr;

// Epoch of the current thread-local registry installation. Bumped on every
// TelemetryScope construction AND destruction, so an unchanged epoch proves
// t_registry has not been swapped since — which is what makes the timer
// handle cache below safe: a cached Histogram* is only trusted while the
// installation that created it is still the active one (the scope holder
// keeps that registry alive).
thread_local std::uint64_t t_epoch = 0;

// Per-thread (epoch, name-literal, handle) cache so ScopedTimer::record is
// lock-free on the hot path instead of paying the registry mutex + map
// lookup on every scope exit. Keyed by the name's *address*: WRSN_OBS_SCOPE
// passes string literals, so each call-site has a stable key. Fixed slots +
// round-robin eviction keep it allocation-free; a miss just falls back to
// the locked lookup.
struct TimerCacheEntry {
  std::uint64_t epoch = 0;
  const char* name = nullptr;
  Histogram* hist = nullptr;
};
constexpr std::size_t kTimerCacheSlots = 16;
thread_local TimerCacheEntry t_timer_cache[kTimerCacheSlots];
thread_local std::size_t t_timer_cache_next = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  WRSN_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be sorted ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::min() const noexcept {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const noexcept {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

void Histogram::merge_from(const Histogram& other) {
  WRSN_REQUIRE(bounds_ == other.bounds_,
               "cannot merge histograms with different bucket bounds");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  const std::uint64_t n = other.count();
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  atomic_min(min_, other.min());
  atomic_max(max_, other.max());
}

std::vector<double> Histogram::timer_bounds_seconds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    for (double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  }
  bounds.push_back(10.0);
  return bounds;
}

// ---------------------------------------------------------------------------
// TelemetryRegistry
// ---------------------------------------------------------------------------

Counter& TelemetryRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& TelemetryRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& TelemetryRegistry::histogram(const std::string& name,
                                        std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Histogram& TelemetryRegistry::timer(const std::string& name) {
  return histogram(name, Histogram::timer_bounds_seconds());
}

bool TelemetryRegistry::empty() const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) {
    if (c->value() != 0) return false;
  }
  for (const auto& [name, g] : gauges_) {
    if (g->value() != 0.0) return false;
  }
  for (const auto& [name, h] : histograms_) {
    if (h->count() != 0) return false;
  }
  return true;
}

void TelemetryRegistry::merge_from(const TelemetryRegistry& other) {
  // `other` is quiescent; only this registry's maps need the lock (taken by
  // the accessors below).
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).record_max(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h->bounds()).merge_from(*h);
  }
}

std::string TelemetryRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  JsonWriter w;
  w.begin_object()
      .field("schema", "wrsn.telemetry")
      .field("version", std::int64_t{kTelemetrySchemaVersion});
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.field("count", h->count())
        .field("sum", h->sum())
        .field("min", h->min())
        .field("max", h->max());
    w.key("bounds").begin_array();
    for (double b : h->bounds()) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (std::uint64_t c : h->bucket_counts()) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "wrsn_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    out += ok ? c : (c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : '_');
  }
  return out;
}

}  // namespace

std::string TelemetryRegistry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  auto line = [&](const std::string& s) { out += s + "\n"; };
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(name) + "_total";
    line("# TYPE " + n + " counter");
    line(n + " " + std::to_string(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prom_name(name);
    line("# TYPE " + n + " gauge");
    line(n + " " + std::to_string(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name) + "_seconds";
    line("# TYPE " + n + " histogram");
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += counts[i];
      line(n + "_bucket{le=\"" + std::to_string(h->bounds()[i]) + "\"} " +
           std::to_string(cumulative));
    }
    line(n + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()));
    line(n + "_sum " + std::to_string(h->sum()));
    line(n + "_count " + std::to_string(h->count()));
  }
  return out;
}

void write_registry_file(const std::string& path,
                         const TelemetryRegistry& registry) {
  // Atomic temp+rename: a crash mid-write never leaves a truncated
  // telemetry file under the final name.
  AtomicFile file(path);
  const bool prom = path.size() >= 5 && path.rfind(".prom") == path.size() - 5;
  if (prom) {
    file.stream() << registry.to_prometheus();
  } else {
    file.stream() << registry.to_json() << '\n';
  }
  file.commit();
}

void require_writable(const std::string& path) {
  std::ofstream probe(path, std::ios::app);
  WRSN_REQUIRE(probe.good(), "cannot open '" + path + "' for writing");
}

// ---------------------------------------------------------------------------
// Thread-local installation
// ---------------------------------------------------------------------------

TelemetryRegistry* current_registry() noexcept { return t_registry; }

TelemetryScope::TelemetryScope(TelemetryRegistry* registry) noexcept
    : prev_(t_registry) {
  t_registry = registry;
  ++t_epoch;
}

TelemetryScope::~TelemetryScope() {
  t_registry = prev_;
  ++t_epoch;
}

void ScopedTimer::record(double seconds) {
  // A current-epoch hit means no TelemetryScope ran since the entry was
  // cached, so registry_ is still the installed registry and the handle is
  // alive. (ScopedTimer only calls record when registry_ != nullptr, and an
  // epoch bump between its ctor and dtor turns every entry into a miss.)
  for (TimerCacheEntry& e : t_timer_cache) {
    if (e.epoch == t_epoch && e.name == name_) {
      e.hist->observe(seconds);
      return;
    }
  }
  Histogram& h = registry_->timer(name_);
  // Only cache when the captured registry is still the installed one — a
  // timer whose scope outlived a nested TelemetryScope must not publish its
  // (different-registry) handle under the current epoch.
  if (registry_ == t_registry) {
    t_timer_cache[t_timer_cache_next] = TimerCacheEntry{t_epoch, name_, &h};
    t_timer_cache_next = (t_timer_cache_next + 1) % kTimerCacheSlots;
  }
  h.observe(seconds);
}

}  // namespace wrsn::obs
