#pragma once
// Telemetry registry: named counters, gauges and fixed-bucket histograms
// for instrumenting the simulator's hot paths, plus scoped wall-clock
// timers (WRSN_OBS_SCOPE).
//
// Design constraints, in order:
//   1. Heisenberg: telemetry must never influence simulated physics. The
//      registry only ever *observes* — nothing in the simulator branches on
//      its contents.
//   2. Near-zero cost when disabled. Instrumentation sites resolve a
//      thread-local registry pointer; when no registry is installed the
//      whole site is a load + branch (no clock read, no allocation).
//   3. Thread-safe when enabled. Replica sweeps run on core/thread_pool
//      with one registry per replica, but tests (and future shared-registry
//      users) hammer a single registry from many workers, so every mutation
//      is atomic and metric creation is mutex-guarded.
//
// Metric objects are owned by the registry and have stable addresses for
// its lifetime: call-sites may cache Counter*/Histogram* handles and update
// them lock-free.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wrsn::obs {

// Monotonically increasing event count (events popped, cache hits, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written double with an atomic "keep the maximum" update for
// high-water marks.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void record_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations v <= bounds[i]; one
// implicit overflow bucket counts the rest. Bounds are frozen at creation
// (Prometheus classic-histogram semantics), so concurrent observers only
// touch atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;  // 0 when empty
  [[nodiscard]] double max() const noexcept;  // 0 when empty

  // Folds `other` (same bounds, quiescent) into this histogram exactly:
  // bucket counts, totals, sum and min/max all add/extend.
  void merge_from(const Histogram& other);

  // Default bounds for wall-clock timers: a 1-2-5 series from 1us to 10s.
  [[nodiscard]] static std::vector<double> timer_bounds_seconds();

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Named metric store. Lookup/creation takes a mutex; the returned references
// stay valid for the registry's lifetime and are updated lock-free.
class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Creates with the given bounds on first use; later calls ignore `bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  // Histogram with the default timer bounds (seconds).
  Histogram& timer(const std::string& name);

  [[nodiscard]] bool empty() const;

  // Folds `other` into this registry: counters and histogram buckets add,
  // gauges keep the maximum (the only gauges we emit are high-water marks).
  // `other` must be quiescent (no concurrent writers).
  void merge_from(const TelemetryRegistry& other);

  // Machine-readable exports. Schema documented in docs/ARCHITECTURE.md
  // ("Observability"); kTelemetrySchemaVersion guards field changes.
  [[nodiscard]] std::string to_json() const;
  // Prometheus text exposition (counters/gauges/histograms; names are
  // sanitized to [a-z0-9_] and prefixed with "wrsn_").
  [[nodiscard]] std::string to_prometheus() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline constexpr int kTelemetrySchemaVersion = 1;

// Writes the registry to `path`: Prometheus text exposition when the path
// ends in ".prom", the JSON document otherwise. Throws on I/O failure.
void write_registry_file(const std::string& path,
                         const TelemetryRegistry& registry);

// Throws unless `path` can be opened for writing. Telemetry files are only
// written when a run *ends*; CLIs call this up front so a typo'd path fails
// before hours of simulation, not after. Creates the file if missing and
// leaves existing contents untouched.
void require_writable(const std::string& path);

// --- thread-local enablement ----------------------------------------------
//
// Instrumentation sites (WRSN_OBS_SCOPE and friends) report to the registry
// installed on *their* thread, so concurrent replicas never share state by
// accident and a site in a pure function (the planners) needs no plumbing.

// Registry installed on the current thread, or nullptr (telemetry off).
[[nodiscard]] TelemetryRegistry* current_registry() noexcept;

// RAII: installs `registry` (may be nullptr) for the current thread and
// restores the previous installation on destruction.
class TelemetryScope {
 public:
  explicit TelemetryScope(TelemetryRegistry* registry) noexcept;
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  TelemetryRegistry* prev_;
};

// Scoped wall-clock timer; records elapsed seconds into the timer histogram
// `name` of the thread's registry. A no-op (one load + branch, no clock
// read) when no registry is installed.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept
      : registry_(current_registry()), name_(name) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    record(std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void record(double seconds);

  TelemetryRegistry* registry_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

#define WRSN_OBS_CONCAT_INNER(a, b) a##b
#define WRSN_OBS_CONCAT(a, b) WRSN_OBS_CONCAT_INNER(a, b)
// Times the rest of the enclosing scope under `name` (a string literal like
// "planner/insertion"). Nesting is fine: each scope records independently,
// so an outer scope's time includes its children.
#define WRSN_OBS_SCOPE(name) \
  ::wrsn::obs::ScopedTimer WRSN_OBS_CONCAT(wrsn_obs_scope_, __LINE__)(name)

}  // namespace wrsn::obs
