#include "obs/trace.hpp"

#include "core/json.hpp"

namespace wrsn::obs {

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(out) {
  JsonWriter w;
  w.begin_object()
      .field("record", "meta")
      .field("schema", "wrsn.trace")
      .field("version", std::int64_t{kTraceSchemaVersion});
  w.key("fields").begin_array();
  for (const char* f : {"t_s", "kind", "subject", "epoch", "queue"}) w.value(f);
  w.end_array().end_object();
  out_ << w.str() << '\n';
}

void JsonlTraceSink::on_event(const TraceRecord& rec) {
  JsonWriter w;
  w.begin_object()
      .field("record", "event")
      .field("t_s", rec.t)
      .field("kind", rec.kind)
      .field("subject", rec.subject)
      .field("epoch", rec.epoch)
      .field("queue", rec.queue_size)
      .end_object();
  out_ << w.str() << '\n';
  ++events_;
}

void JsonlTraceSink::finish() { out_.flush(); }

CsvTraceSink::CsvTraceSink(std::ostream& out) : out_(out) {
  out_ << "t_seconds,t_hours,event,subject,epoch,queue_size\n";
}

void CsvTraceSink::on_event(const TraceRecord& rec) {
  out_ << rec.t << ',' << rec.t / 3600.0 << ',' << rec.kind << ',' << rec.subject
       << ',' << rec.epoch << ',' << rec.queue_size << '\n';
  ++events_;
}

void CsvTraceSink::finish() { out_.flush(); }

}  // namespace wrsn::obs
