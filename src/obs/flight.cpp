#include "obs/flight.hpp"

#include <csignal>
#include <fstream>
#include <iostream>
#include <mutex>

#include "core/error.hpp"

namespace wrsn::obs {

namespace {

// Registry of live recorders. The mutex guards both the vector and the dump
// path; dump_all holds it across the whole dump so a recorder cannot be
// destroyed mid-dump.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<FlightRecorder*>& registry() {
  static std::vector<FlightRecorder*> recorders;
  return recorders;
}

std::string& dump_path() {
  static std::string path;
  return path;
}

void locked_dump_all(const char* reason) {
  if (registry().empty()) return;
  std::ofstream file;
  if (!dump_path().empty()) {
    file.open(dump_path(), std::ios::app);
  }
  std::ostream& out = file.is_open() ? static_cast<std::ostream&>(file)
                                     : std::cerr;
  for (const FlightRecorder* rec : registry()) {
    rec->dump(out, reason);
  }
  out.flush();
}

extern "C" void flight_signal_handler(int sig) {
  // Best-effort post-mortem (see header): mutex + iostreams are not
  // async-signal-safe, but a Ctrl-C or kill during an interactive run is
  // single threaded in practice and a garbled dump beats none.
  FlightRecorder::dump_all(sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void flight_failure_hook(const char* message) {
  std::lock_guard lock(registry_mutex());
  if (registry().empty()) return;
  std::ofstream file;
  if (!dump_path().empty()) file.open(dump_path(), std::ios::app);
  std::ostream& out = file.is_open() ? static_cast<std::ostream&>(file)
                                     : std::cerr;
  out << "flight-recorder: invariant failure imminent: " << message << '\n';
  for (const FlightRecorder* rec : registry()) {
    rec->dump(out, "assert-failure");
  }
  out.flush();
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  WRSN_REQUIRE(capacity > 0, "flight recorder capacity must be positive");
  ring_.reserve(capacity);
  std::lock_guard lock(registry_mutex());
  registry().push_back(this);
}

FlightRecorder::~FlightRecorder() {
  std::lock_guard lock(registry_mutex());
  auto& recorders = registry();
  for (auto it = recorders.begin(); it != recorders.end(); ++it) {
    if (*it == this) {
      recorders.erase(it);
      break;
    }
  }
}

void FlightRecorder::record(const TraceRecord& rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[next_] = rec;
  }
  next_ = (next_ + 1) % capacity_;
  ++seen_;
}

void FlightRecorder::set_context_provider(std::function<std::string()> provider) {
  context_ = std::move(provider);
}

void FlightRecorder::set_label(std::string label) { label_ = std::move(label); }

void FlightRecorder::dump(std::ostream& out, const char* reason) const {
  out << "=== flight recorder dump";
  if (!label_.empty()) out << " [" << label_ << ']';
  out << " (reason: " << reason << ", last " << ring_.size() << " of " << seen_
      << " events) ===\n";
  // Oldest first: once the ring has wrapped, next_ points at the oldest slot.
  const std::size_t n = ring_.size();
  const std::size_t start = n < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& rec = ring_[(start + i) % n];
    out << "  t=" << rec.t << "s " << rec.kind << " subject=" << rec.subject
        << " epoch=" << rec.epoch << " queue=" << rec.queue_size << '\n';
  }
  if (context_) {
    try {
      out << "--- context snapshot ---\n" << context_() << '\n';
    } catch (...) {
      out << "--- context snapshot unavailable (provider threw) ---\n";
    }
  }
  out << "=== end flight recorder dump ===\n";
}

void FlightRecorder::dump_all(const char* reason) {
  std::lock_guard lock(registry_mutex());
  locked_dump_all(reason);
}

void FlightRecorder::set_dump_path(const std::string& path) {
  std::lock_guard lock(registry_mutex());
  dump_path() = path;
}

void FlightRecorder::arm_failure_hook() { set_failure_hook(&flight_failure_hook); }

void FlightRecorder::arm_signal_handlers() {
  std::signal(SIGINT, &flight_signal_handler);
  std::signal(SIGTERM, &flight_signal_handler);
}

}  // namespace wrsn::obs
