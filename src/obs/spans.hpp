#pragma once
// Causally-linked lifecycle spans. Where trace.hpp reports the raw
// discrete-event stream (one record per pop), spans tell the *story* of a
// subject: one span per phase of a recharge request's life (born, queued,
// traveling, charging, served/expired) and per RV tour segment (travel,
// charge, return, breakdown), linked parent -> child so a trace viewer can
// nest them.
//
// Spans are emitted as COMPLETE records at end time: a SpanRecord carries
// both endpoints plus its causal links, so sinks never have to pair begins
// with ends and per-record validation (t1 >= t0) is local. Zero-length
// annotations ("uplink-drop", "stranded", ...) are the same record with
// mark = true.
//
// The JSONL sink is the canonical machine-readable format ("wrsn.spans",
// version 2 — version 1 is the flat event trace of trace.hpp): line 1 is a
// meta record naming the schema, every following line one span record. The
// field list is frozen per version and pinned by tests/test_spans.cpp.
// ChromeTraceSink renders the same stream as a Chrome trace-event JSON
// document loadable in Perfetto / chrome://tracing: RV spans become one
// track (thread) per vehicle, request spans become async event rows.
//
// Like trace.hpp this layer knows nothing about sim/ types — names and
// tracks arrive as strings, so obs/ stays next to core/ in the dependency
// order. Attaching spans never changes simulated physics; the Heisenberg
// suite (tests/test_spans.cpp) pins that.

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/binio.hpp"

namespace wrsn::obs {

inline constexpr int kSpanSchemaVersion = 2;

// One completed span (or zero-length mark) of a subject's lifecycle.
struct SpanRecord {
  std::uint64_t id = 0;       // unique within one SpanLog, 1-based
  std::uint64_t parent = 0;   // enclosing span id; 0 = lifecycle root
  std::uint64_t root = 0;     // id of the lifecycle root (== id for roots)
  const char* track = "";     // "request" | "rv" (viewer row grouping)
  std::uint64_t subject = 0;  // sensor id / RV id, track-dependent
  const char* name = "";      // phase name ("request", "travel", "charge", ...)
  double t0 = 0.0;            // simulated seconds, span begin
  double t1 = 0.0;            // simulated seconds, span end (>= t0)
  const char* outcome = "";   // terminal state / annotation ("" when none)
  double value = 0.0;         // name-dependent payload (joules, metres, ...)
  bool mark = false;          // zero-length annotation (t1 == t0)
};

class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const SpanRecord& rec) = 0;
  // Called once after the last span; flushes buffered output.
  virtual void finish() {}
};

// JSON-lines sink. Emits the meta record on construction:
//   {"record":"meta","schema":"wrsn.spans","version":2,"fields":[...]}
// then one span record per on_span.
class JsonlSpanSink final : public SpanSink {
 public:
  explicit JsonlSpanSink(std::ostream& out);
  void on_span(const SpanRecord& rec) override;
  void finish() override;

  [[nodiscard]] std::uint64_t spans_written() const { return spans_; }

 private:
  std::ostream& out_;
  std::uint64_t spans_ = 0;
};

// Chrome trace-event JSON exporter ({"traceEvents":[...]}, timestamps in
// microseconds). RV spans map to per-vehicle threads as "X" complete events;
// request spans map to async "b"/"e" pairs keyed by their lifecycle root, so
// each request renders as one collapsible row. Marks become instant events.
// Load the file in https://ui.perfetto.dev or chrome://tracing.
class ChromeTraceSink final : public SpanSink {
 public:
  explicit ChromeTraceSink(std::ostream& out);
  void on_span(const SpanRecord& rec) override;
  void finish() override;  // closes the traceEvents array; call exactly once

 private:
  void emit(const std::string& json);
  void ensure_thread(std::uint64_t tid, const std::string& name);

  std::ostream& out_;
  bool first_ = true;
  bool finished_ = false;
  std::vector<std::uint64_t> named_tids_;
};

// Span bookkeeping: allocates ids, tracks open spans (so children can link
// to their lifecycle root), and emits completed SpanRecords to one or two
// sinks (JSONL + Chrome, typically). Times are simulated seconds supplied by
// the caller — the log never consults a clock.
class SpanLog {
 public:
  explicit SpanLog(SpanSink* sink, SpanSink* second = nullptr)
      : sink_(sink), second_(second) {}

  // Opens a span; returns its id (never 0). `parent` of 0 starts a new
  // lifecycle root; otherwise the child inherits the parent's root.
  std::uint64_t begin(const char* track, std::uint64_t subject, const char* name,
                      double t, std::uint64_t parent = 0);

  // Closes an open span, emitting its record. Unknown ids (0 included) are
  // ignored so callers can hold "no span" as 0 without branching.
  void end(std::uint64_t id, double t, const char* outcome = "",
           double value = 0.0);

  // Emits a zero-length annotation attached to `parent` (0 = free-standing;
  // the mark then forms its own root). Track/subject are inherited from the
  // parent when attached.
  void mark(std::uint64_t parent, const char* name, double t,
            const char* outcome = "", double value = 0.0);

  // Closes every still-open span (deepest first, in reverse begin order) with
  // the given outcome, then flushes the sinks. Idempotent.
  void finish(double t, const char* outcome = "open");

  [[nodiscard]] std::uint64_t spans_emitted() const { return emitted_; }
  [[nodiscard]] std::size_t open_spans() const { return open_.size(); }

  // Checkpoint codec for the bookkeeping state (open spans, id counter,
  // emitted count) — NOT the sink back-references; a restored log is wired
  // to fresh sinks by the caller. Track/name are string-literal pointers on
  // the live path; deserialize re-interns their contents into this log (a
  // deque, so pointers stay stable as more spans restore).
  void serialize(BinWriter& w) const;
  void deserialize(BinReader& r);

 private:
  struct OpenSpan {
    std::uint64_t parent = 0;
    std::uint64_t root = 0;
    const char* track = "";
    std::uint64_t subject = 0;
    const char* name = "";
    double t0 = 0.0;
  };

  void emit(const SpanRecord& rec);

  SpanSink* sink_;
  SpanSink* second_;
  // Ordered by id (== begin order) so finish() closes spans in a
  // deterministic order and output files are byte-stable across runs.
  std::map<std::uint64_t, OpenSpan> open_;
  std::uint64_t next_id_ = 1;
  std::uint64_t emitted_ = 0;
  std::deque<std::string> interned_;  // backing storage for restored strings
};

}  // namespace wrsn::obs
