#pragma once
// Balanced Clustering (Algorithm 1, Section III-A).
//
// Sensors that can detect at least one target are assigned to exactly one
// target each, so every target ends up with a cluster of near-equal size.
// Assignment order is ascending sensor load (number of detectable targets:
// fewer choices first), and each sensor joins the currently smallest
// eligible cluster.

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"
#include "net/ids.hpp"

namespace wrsn {

struct ClusterSet {
  // members[t] = sensors assigned to target t, in assignment order.
  std::vector<std::vector<SensorId>> members;
  // assignment[s] = target of sensor s, kInvalidId when unassigned.
  std::vector<TargetId> assignment;
  // loads[s] = number of targets sensor s can detect (candidate count).
  std::vector<std::size_t> loads;

  [[nodiscard]] std::size_t num_clusters() const { return members.size(); }
  [[nodiscard]] std::size_t cluster_size(TargetId t) const { return members[t].size(); }
  // Max minus min size over non-empty-candidate clusters; the balance
  // quality metric used by tests.
  [[nodiscard]] std::size_t imbalance() const;
};

// `eligible[s]` (when non-empty) masks which sensors may be clustered — the
// simulator passes the alive mask. Runs in O(M*N + |A|*M log M), matching
// the paper's analysis.
[[nodiscard]] ClusterSet balanced_clustering(const std::vector<Vec2>& sensor_pos,
                                             const std::vector<Vec2>& target_pos,
                                             double sensing_range,
                                             const std::vector<bool>& eligible = {});

// Baseline used in tests/ablation: first-come (unbalanced) clustering, i.e.
// every sensor simply joins the first target it detects. Exposes how much
// Algorithm 1's balancing actually buys.
[[nodiscard]] ClusterSet naive_clustering(const std::vector<Vec2>& sensor_pos,
                                          const std::vector<Vec2>& target_pos,
                                          double sensing_range,
                                          const std::vector<bool>& eligible = {});

}  // namespace wrsn
