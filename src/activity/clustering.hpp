#pragma once
// Balanced Clustering (Algorithm 1, Section III-A).
//
// Sensors that can detect at least one target are assigned to exactly one
// target each, so every target ends up with a cluster of near-equal size.
// Assignment order is ascending sensor load (number of detectable targets:
// fewer choices first), and each sensor joins the currently smallest
// eligible cluster.

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"
#include "net/ids.hpp"

namespace wrsn {

struct ClusterSet {
  // members[t] = sensors assigned to target t, in assignment order.
  std::vector<std::vector<SensorId>> members;
  // assignment[s] = target of sensor s, kInvalidId when unassigned.
  std::vector<TargetId> assignment;
  // loads[s] = number of targets sensor s can detect (candidate count).
  std::vector<std::size_t> loads;

  [[nodiscard]] std::size_t num_clusters() const { return members.size(); }
  [[nodiscard]] std::size_t cluster_size(TargetId t) const { return members[t].size(); }
  // Max minus min size over non-empty-candidate clusters; the balance
  // quality metric used by tests.
  [[nodiscard]] std::size_t imbalance() const;
};

// `eligible[s]` (when non-empty) masks which sensors may be clustered — the
// simulator passes the alive mask. Runs in O(M*N + |A|*M log M), matching
// the paper's analysis.
[[nodiscard]] ClusterSet balanced_clustering(const std::vector<Vec2>& sensor_pos,
                                             const std::vector<Vec2>& target_pos,
                                             double sensing_range,
                                             const std::vector<bool>& eligible = {});

// Outcome of a scoped (dirty-region) rebalance: which clusters changed and
// which sensors switched clusters, so the caller can splice rotors, monitor
// activation and coverage counters without touching the rest of the network.
struct RebalanceResult {
  struct Move {
    SensorId sensor = kInvalidId;
    TargetId from = kInvalidId;  // kInvalidId: was unassigned
    TargetId to = kInvalidId;    // kInvalidId: no candidate cluster remains
  };
  std::vector<Move> moves;          // sensors whose assignment changed
  std::vector<TargetId> affected;   // clusters whose member set changed (sorted)
};

// Non-owning position callback for rebalance_dirty: two raw pointers, no
// allocation or type-erasure bookkeeping (a std::function here showed up in
// event-loop profiles — rebalance runs on every target waypoint step). The
// referenced callable must outlive the rebalance_dirty call, which is always
// the case for a call-site lambda.
class SensorPosFn {
 public:
  template <typename F>
  // NOLINTNEXTLINE(google-explicit-constructor): intentionally implicit
  SensorPosFn(const F& f)
      : obj_(&f), call_([](const void* o, SensorId s) -> Vec2 {
          return (*static_cast<const F*>(o))(s);
        }) {}

  Vec2 operator()(SensorId s) const { return call_(obj_, s); }

 private:
  const void* obj_;
  Vec2 (*call_)(const void*, SensorId);
};

// Re-runs Algorithm 1's assignment rule for `dirty` only (sorted ascending,
// no duplicates, eligible sensors): refreshes their candidate sets/loads
// against the current target positions, detaches them, and re-admits them
// fewest-choices-first into the smallest candidate cluster (ties by target
// id). All other memberships are left untouched; cluster sizes seen during
// re-admission include them. `sensor_pos` maps a sensor id to its position
// so callers need not materialize an O(N) position vector per call.
[[nodiscard]] RebalanceResult rebalance_dirty(ClusterSet& clusters,
                                              SensorPosFn sensor_pos,
                                              const std::vector<Vec2>& target_pos,
                                              double sensing_range,
                                              const std::vector<SensorId>& dirty);

// Core of the scoped rebalance with caller-supplied candidate sets:
// `cand[i]` lists the targets within sensing range of `dirty[i]`, ascending
// by target id (the admission tie-break), and must contain exactly the
// targets the O(M) distance scan would find. Lets the simulator answer the
// candidate queries from a spatial index over the targets instead of
// scanning every target per dirty sensor — the scan dominated the event
// loop at large n, where a waypoint step dirties a handful of sensors but
// the field holds a thousand targets.
[[nodiscard]] RebalanceResult rebalance_dirty(
    ClusterSet& clusters, const std::vector<std::vector<TargetId>>& cand,
    const std::vector<SensorId>& dirty);

// Baseline used in tests/ablation: first-come (unbalanced) clustering, i.e.
// every sensor simply joins the first target it detects. Exposes how much
// Algorithm 1's balancing actually buys.
[[nodiscard]] ClusterSet naive_clustering(const std::vector<Vec2>& sensor_pos,
                                          const std::vector<Vec2>& target_pos,
                                          double sensing_range,
                                          const std::vector<bool>& eligible = {});

}  // namespace wrsn
