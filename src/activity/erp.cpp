#include "activity/erp.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace wrsn {

std::size_t erp_trigger_count(std::size_t cluster_size, double erp) {
  WRSN_REQUIRE(erp >= 0.0 && erp <= 1.0, "ERP must lie in [0,1]");
  if (cluster_size == 0) return 1;
  const auto triggered =
      static_cast<std::size_t>(std::ceil(static_cast<double>(cluster_size) * erp));
  return std::clamp<std::size_t>(triggered, 1, cluster_size);
}

Joule travel_energy_without_erc(std::size_t cluster_size, Meter dist,
                                JoulePerMeter em) {
  return 2.0 * static_cast<double>(cluster_size) * (em * dist);
}

Joule travel_energy_with_erc(std::size_t cluster_size, double erp, Meter dist,
                             JoulePerMeter em) {
  WRSN_REQUIRE(erp >= 0.0 && erp <= 1.0, "ERP must lie in [0,1]");
  const double nc = static_cast<double>(cluster_size);
  const double batch = std::max(nc * erp, 1.0);
  return 2.0 * nc / batch * (em * dist);
}

}  // namespace wrsn
