#pragma once
// Round-robin sensor activation (Section III-C).
//
// Inside a cluster exactly one member monitors the target per time slot.
// Rotation starts from the lowest sensor ID and passes a virtual
// "notification packet" to the next member each slot; a member that fails to
// acknowledge (depleted battery) is skipped. When every member is dead the
// rotor reports kInvalidId and the target goes unmonitored until a recharge.

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "net/ids.hpp"

namespace wrsn {

class ClusterRotor {
 public:
  ClusterRotor() = default;
  explicit ClusterRotor(std::vector<SensorId> members) : members_(std::move(members)) {
    std::sort(members_.begin(), members_.end());
  }

  [[nodiscard]] const std::vector<SensorId>& members() const { return members_; }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] SensorId current() const {
    return cursor_ < members_.size() ? members_[cursor_] : kInvalidId;
  }

  // Picks the first alive member in ID order (the paper's "lowest ID first")
  // and makes it current. Returns kInvalidId when none is alive.
  template <typename AlivePred>
  SensorId select_first(AlivePred&& alive) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (alive(members_[i])) {
        cursor_ = i;
        return members_[i];
      }
    }
    cursor_ = members_.size();
    return kInvalidId;
  }

  // Incremental membership edits for scoped re-clustering. Both preserve the
  // rotation state: the cursor keeps pointing at the same sensor whenever
  // that sensor survives the edit, so unaffected clusters do not lose their
  // rotation position when a neighbouring cluster changes.
  void add_member(SensorId s) {
    const std::size_t old_size = members_.size();
    const auto it = std::lower_bound(members_.begin(), members_.end(), s);
    if (it != members_.end() && *it == s) return;
    const auto pos = static_cast<std::size_t>(it - members_.begin());
    members_.insert(it, s);
    if (cursor_ >= old_size) {
      cursor_ = members_.size();  // "no current member" stays that way
    } else if (pos <= cursor_) {
      ++cursor_;
    }
  }
  void remove_member(SensorId s) {
    const auto it = std::lower_bound(members_.begin(), members_.end(), s);
    if (it == members_.end() || *it != s) return;
    const auto pos = static_cast<std::size_t>(it - members_.begin());
    const bool was_valid = cursor_ < members_.size();
    members_.erase(it);
    if (!was_valid) {
      cursor_ = members_.size();
    } else if (pos < cursor_) {
      --cursor_;
    } else if (pos == cursor_ && cursor_ >= members_.size()) {
      cursor_ = 0;  // current removed at the tail: wrap to the cyclic next
    }
  }

  // Moves to the next alive member after the current one (cyclically),
  // emulating the notification/ack handover. If only the current member is
  // alive it stays current. Returns the new current id or kInvalidId.
  template <typename AlivePred>
  SensorId advance(AlivePred&& alive) {
    if (members_.empty()) return kInvalidId;
    const std::size_t n = members_.size();
    const std::size_t start = cursor_ < n ? cursor_ : n - 1;
    for (std::size_t step = 1; step <= n; ++step) {
      const std::size_t i = (start + step) % n;
      if (alive(members_[i])) {
        cursor_ = i;
        return members_[i];
      }
    }
    cursor_ = n;
    return kInvalidId;
  }

  // Checkpoint support: the rotation position is state (it decides which
  // member takes the next slot), so restore must reinstate it verbatim.
  [[nodiscard]] std::size_t cursor() const { return cursor_; }
  void restore(std::vector<SensorId> members, std::size_t cursor) {
    WRSN_REQUIRE(std::is_sorted(members.begin(), members.end()),
                 "rotor members must be sorted");
    WRSN_REQUIRE(cursor <= members.size(), "rotor cursor out of range");
    members_ = std::move(members);
    cursor_ = cursor;
  }

 private:
  std::vector<SensorId> members_;
  std::size_t cursor_ = 0;
};

}  // namespace wrsn
