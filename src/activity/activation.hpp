#pragma once
// Round-robin sensor activation (Section III-C).
//
// Inside a cluster exactly one member monitors the target per time slot.
// Rotation starts from the lowest sensor ID and passes a virtual
// "notification packet" to the next member each slot; a member that fails to
// acknowledge (depleted battery) is skipped. When every member is dead the
// rotor reports kInvalidId and the target goes unmonitored until a recharge.

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "net/ids.hpp"

namespace wrsn {

class ClusterRotor {
 public:
  ClusterRotor() = default;
  explicit ClusterRotor(std::vector<SensorId> members) : members_(std::move(members)) {
    std::sort(members_.begin(), members_.end());
  }

  [[nodiscard]] const std::vector<SensorId>& members() const { return members_; }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] SensorId current() const {
    return cursor_ < members_.size() ? members_[cursor_] : kInvalidId;
  }

  // Picks the first alive member in ID order (the paper's "lowest ID first")
  // and makes it current. Returns kInvalidId when none is alive.
  template <typename AlivePred>
  SensorId select_first(AlivePred&& alive) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (alive(members_[i])) {
        cursor_ = i;
        return members_[i];
      }
    }
    cursor_ = members_.size();
    return kInvalidId;
  }

  // Moves to the next alive member after the current one (cyclically),
  // emulating the notification/ack handover. If only the current member is
  // alive it stays current. Returns the new current id or kInvalidId.
  template <typename AlivePred>
  SensorId advance(AlivePred&& alive) {
    if (members_.empty()) return kInvalidId;
    const std::size_t n = members_.size();
    const std::size_t start = cursor_ < n ? cursor_ : n - 1;
    for (std::size_t step = 1; step <= n; ++step) {
      const std::size_t i = (start + step) % n;
      if (alive(members_[i])) {
        cursor_ = i;
        return members_[i];
      }
    }
    cursor_ = n;
    return kInvalidId;
  }

 private:
  std::vector<SensorId> members_;
  std::size_t cursor_ = 0;
};

}  // namespace wrsn
