#include "activity/redundancy.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "net/deployment.hpp"

namespace wrsn {

RedundancyReport analyze_redundancy(const Network& net, const ClusterSet& clusters,
                                    std::size_t max_k, std::size_t field_samples,
                                    Xoshiro256& rng) {
  WRSN_REQUIRE(max_k >= 1, "max_k must be at least 1");
  RedundancyReport report;

  // Per-target degrees.
  report.degree_per_target.reserve(net.num_targets());
  double degree_sum = 0.0;
  for (const Target& t : net.targets()) {
    const std::size_t degree = net.count_covering(t.pos);
    report.degree_per_target.push_back(degree);
    degree_sum += static_cast<double>(degree);
    if (degree == 0) ++report.uncovered_targets;
  }
  if (!report.degree_per_target.empty()) {
    report.min_degree = *std::min_element(report.degree_per_target.begin(),
                                          report.degree_per_target.end());
    report.max_degree = *std::max_element(report.degree_per_target.begin(),
                                          report.degree_per_target.end());
    report.mean_degree =
        degree_sum / static_cast<double>(report.degree_per_target.size());
  }

  // Field k-coverage by sampling.
  report.k_coverage.assign(max_k + 1, 0.0);
  report.k_coverage[0] = 1.0;
  if (field_samples > 0) {
    std::vector<std::size_t> at_least(max_k + 1, 0);
    at_least[0] = field_samples;
    const double side = net.config().field_side.value();
    for (std::size_t i = 0; i < field_samples; ++i) {
      const Vec2 p = random_location(side, rng);
      const std::size_t covering = net.count_covering(p);
      for (std::size_t k = 1; k <= std::min(covering, max_k); ++k) {
        ++at_least[k];
      }
    }
    for (std::size_t k = 1; k <= max_k; ++k) {
      report.k_coverage[k] =
          static_cast<double>(at_least[k]) / static_cast<double>(field_samples);
    }
  }

  // Round-robin sleep capacity.
  std::size_t members = 0, sleepers = 0;
  for (const auto& cluster : clusters.members) {
    if (cluster.empty()) continue;
    members += cluster.size();
    sleepers += cluster.size() - 1;
  }
  report.rr_sleep_fraction =
      members > 0 ? static_cast<double>(sleepers) / static_cast<double>(members)
                  : 0.0;
  return report;
}

}  // namespace wrsn
