#include "activity/clustering.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace wrsn {

namespace {

bool is_eligible(const std::vector<bool>& eligible, SensorId s) {
  return eligible.empty() || eligible[s];
}

// Phase 1 of Algorithm 1: candidate sets P(t) per target, loads per sensor,
// and the candidate pool A.
struct Candidates {
  std::vector<std::vector<SensorId>> per_target;  // P
  std::vector<std::size_t> loads;
  std::vector<SensorId> pool;  // A
};

Candidates build_candidates(const std::vector<Vec2>& sensor_pos,
                            const std::vector<Vec2>& target_pos,
                            double sensing_range,
                            const std::vector<bool>& eligible) {
  WRSN_REQUIRE(sensing_range > 0.0, "sensing range must be positive");
  WRSN_REQUIRE(eligible.empty() || eligible.size() == sensor_pos.size(),
               "eligible mask size mismatch");
  Candidates c;
  c.per_target.resize(target_pos.size());
  c.loads.assign(sensor_pos.size(), 0);
  const double r2 = sensing_range * sensing_range;
  for (TargetId t = 0; t < target_pos.size(); ++t) {
    for (SensorId s = 0; s < sensor_pos.size(); ++s) {
      if (!is_eligible(eligible, s)) continue;
      if (squared_distance(sensor_pos[s], target_pos[t]) <= r2) {
        c.per_target[t].push_back(s);
        ++c.loads[s];
      }
    }
  }
  for (SensorId s = 0; s < sensor_pos.size(); ++s) {
    if (c.loads[s] > 0) c.pool.push_back(s);
  }
  return c;
}

}  // namespace

std::size_t ClusterSet::imbalance() const {
  std::size_t lo = std::numeric_limits<std::size_t>::max();
  std::size_t hi = 0;
  bool any = false;
  for (const auto& cluster : members) {
    // Clusters that could never receive a sensor (no candidates) do not
    // count against balance quality.
    if (cluster.empty()) continue;
    any = true;
    lo = std::min(lo, cluster.size());
    hi = std::max(hi, cluster.size());
  }
  return any ? hi - lo : 0;
}

ClusterSet balanced_clustering(const std::vector<Vec2>& sensor_pos,
                               const std::vector<Vec2>& target_pos,
                               double sensing_range,
                               const std::vector<bool>& eligible) {
  Candidates cand = build_candidates(sensor_pos, target_pos, sensing_range, eligible);

  ClusterSet out;
  out.members.resize(target_pos.size());
  out.assignment.assign(sensor_pos.size(), kInvalidId);
  out.loads = cand.loads;

  // A sorted ascending by load; ties broken by id for determinism.
  std::stable_sort(cand.pool.begin(), cand.pool.end(), [&](SensorId a, SensorId b) {
    return cand.loads[a] < cand.loads[b];
  });

  // Membership lookup: covered[t] answers "is s in P(t)" in O(1).
  std::vector<std::vector<bool>> covered(target_pos.size(),
                                         std::vector<bool>(sensor_pos.size(), false));
  for (TargetId t = 0; t < target_pos.size(); ++t) {
    for (SensorId s : cand.per_target[t]) covered[t][s] = true;
  }

  // Phase 2: each sensor joins the smallest cluster (U ascending, ties by
  // target id via stable sort) that can use it.
  std::vector<std::size_t> sizes(target_pos.size(), 0);  // U
  std::vector<TargetId> order(target_pos.size());
  for (TargetId t = 0; t < target_pos.size(); ++t) order[t] = t;

  for (SensorId s : cand.pool) {
    std::stable_sort(order.begin(), order.end(),
                     [&](TargetId a, TargetId b) { return sizes[a] < sizes[b]; });
    for (TargetId t : order) {
      if (covered[t][s]) {
        out.members[t].push_back(s);
        out.assignment[s] = t;
        ++sizes[t];
        break;
      }
    }
  }
  return out;
}

RebalanceResult rebalance_dirty(ClusterSet& clusters, SensorPosFn sensor_pos,
                                const std::vector<Vec2>& target_pos,
                                double sensing_range,
                                const std::vector<SensorId>& dirty) {
  WRSN_REQUIRE(sensing_range > 0.0, "sensing range must be positive");
  if (dirty.empty()) return {};
  const double r2 = sensing_range * sensing_range;

  // Fresh candidate sets for the dirty sensors only, by full target scan.
  std::vector<std::vector<TargetId>> cand(dirty.size());
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const Vec2 p = sensor_pos(dirty[i]);
    for (TargetId t = 0; t < target_pos.size(); ++t) {
      if (squared_distance(p, target_pos[t]) <= r2) cand[i].push_back(t);
    }
  }
  return rebalance_dirty(clusters, cand, dirty);
}

RebalanceResult rebalance_dirty(ClusterSet& clusters,
                                const std::vector<std::vector<TargetId>>& cand,
                                const std::vector<SensorId>& dirty) {
  WRSN_REQUIRE(cand.size() == dirty.size(),
               "one candidate set per dirty sensor required");
  RebalanceResult out;
  if (dirty.empty()) return out;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    clusters.loads[dirty[i]] = cand[i].size();
  }

  // Detach everything first so cluster sizes reflect the removals before any
  // dirty sensor re-joins.
  std::vector<TargetId> old_target(dirty.size());
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const SensorId s = dirty[i];
    old_target[i] = clusters.assignment[s];
    if (old_target[i] == kInvalidId) continue;
    auto& members = clusters.members[old_target[i]];
    members.erase(std::find(members.begin(), members.end(), s));
    clusters.assignment[s] = kInvalidId;
  }

  // Re-admit fewest-choices-first (dirty is ascending by id, so the stable
  // sort breaks load ties by id), each into its smallest candidate cluster
  // with ties broken by target id.
  std::vector<std::size_t> order(dirty.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return clusters.loads[dirty[a]] < clusters.loads[dirty[b]];
  });

  for (const std::size_t i : order) {
    const SensorId s = dirty[i];
    TargetId best = kInvalidId;
    std::size_t best_size = 0;
    for (const TargetId t : cand[i]) {
      const std::size_t size = clusters.members[t].size();
      if (best == kInvalidId || size < best_size) {
        best = t;
        best_size = size;
      }
    }
    if (best != kInvalidId) {
      clusters.members[best].push_back(s);
      clusters.assignment[s] = best;
    }
    if (best != old_target[i]) {
      out.moves.push_back({s, old_target[i], best});
      if (old_target[i] != kInvalidId) out.affected.push_back(old_target[i]);
      if (best != kInvalidId) out.affected.push_back(best);
    }
  }
  std::sort(out.affected.begin(), out.affected.end());
  out.affected.erase(std::unique(out.affected.begin(), out.affected.end()),
                     out.affected.end());
  return out;
}

ClusterSet naive_clustering(const std::vector<Vec2>& sensor_pos,
                            const std::vector<Vec2>& target_pos,
                            double sensing_range,
                            const std::vector<bool>& eligible) {
  Candidates cand = build_candidates(sensor_pos, target_pos, sensing_range, eligible);

  ClusterSet out;
  out.members.resize(target_pos.size());
  out.assignment.assign(sensor_pos.size(), kInvalidId);
  out.loads = cand.loads;

  for (TargetId t = 0; t < target_pos.size(); ++t) {
    for (SensorId s : cand.per_target[t]) {
      if (out.assignment[s] == kInvalidId) {
        out.members[t].push_back(s);
        out.assignment[s] = t;
      }
    }
  }
  return out;
}

}  // namespace wrsn
