#pragma once
// Energy Request Control via the Energy Request Percentage (ERP / K,
// Section III-B).
//
// A cluster of size n_c holds individual recharge requests back until the
// number of members below the recharge threshold reaches
//   max(ceil(n_c * K), 1)
// and then releases them together, so a single RV visit serves the whole
// batch. K = 0 degenerates to the per-sensor behaviour of prior work.

#include <cstddef>

#include "core/units.hpp"

namespace wrsn {

// Number of below-threshold members that triggers the cluster's request.
[[nodiscard]] std::size_t erp_trigger_count(std::size_t cluster_size, double erp);

// Closed-form RV traveling-energy model of Section III-B: worst-case energy
// to serve a cluster of n_c sensors at distance `dist` from the base.
//   without ERC:  2 * n_c * dist * e_m
//   with ERC:     2 * n_c / max(n_c*K, 1) * dist * e_m
[[nodiscard]] Joule travel_energy_without_erc(std::size_t cluster_size, Meter dist,
                                              JoulePerMeter em);
[[nodiscard]] Joule travel_energy_with_erc(std::size_t cluster_size, double erp,
                                           Meter dist, JoulePerMeter em);

}  // namespace wrsn
