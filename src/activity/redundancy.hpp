#pragma once
// Coverage-redundancy analysis (the quantity Section III converts into
// lifetime): how many sensors cover each target, the field's k-coverage
// distribution, and the fraction of sensing capacity round-robin can put to
// sleep.

#include <cstddef>
#include <vector>

#include "activity/clustering.hpp"
#include "core/rng.hpp"
#include "net/network.hpp"

namespace wrsn {

struct RedundancyReport {
  // Sensors within sensing range of each current target.
  std::vector<std::size_t> degree_per_target;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  std::size_t uncovered_targets = 0;

  // Monte-Carlo field k-coverage: k_coverage[k] = fraction of field points
  // covered by at least k sensors (k_coverage[0] == 1 by definition).
  std::vector<double> k_coverage;

  // Fraction of clustered sensors idle at any instant under round-robin:
  // sum(n_c - 1) / sum(n_c) over non-empty clusters. This is the sensing
  // capacity Algorithm 1 + RR converts into lifetime.
  double rr_sleep_fraction = 0.0;
};

// `field_samples` Monte-Carlo points estimate the k-coverage curve up to
// k = max_k.
[[nodiscard]] RedundancyReport analyze_redundancy(const Network& net,
                                                  const ClusterSet& clusters,
                                                  std::size_t max_k,
                                                  std::size_t field_samples,
                                                  Xoshiro256& rng);

}  // namespace wrsn
