#include "sim/world.hpp"

#include <algorithm>

#include "activity/erp.hpp"
#include "core/error.hpp"
#include "net/deployment.hpp"

namespace wrsn {

namespace {
// Scheduled crossings overshoot by this much so the crossing condition is
// strictly satisfied at the handler despite floating-point residue.
constexpr double kTimeEps = 1e-6;
}  // namespace

World::World(const SimConfig& config)
    : config_(config),
      streams_(config.seed),
      target_rng_(streams_.stream("targets")),
      sched_rng_(streams_.stream("scheduler")),
      net_([&] {
        config.validate();
        Xoshiro256 deploy = streams_.stream("deployment");
        Xoshiro256 placement = streams_.stream("target-placement");
        return Network(config, deploy, placement);
      }()),
      traffic_(config.num_sensors) {
  end_ = config_.sim_duration.value();

  request_time_.assign(config_.num_sensors, -1.0);
  drain_.assign(config_.num_sensors, 0.0);
  sensor_epoch_.assign(config_.num_sensors, 0);

  target_waypoint_.resize(config_.num_targets);
  target_dwelling_.assign(config_.num_targets, true);
  for (TargetId t = 0; t < config_.num_targets; ++t) {
    target_waypoint_[t] = net_.target(t).pos;  // first event picks a waypoint
  }

  rvs_.resize(config_.num_rvs);
  for (RvId r = 0; r < config_.num_rvs; ++r) {
    rvs_[r].id = r;
    rvs_[r].pos = net_.base_station();
    rvs_[r].battery = Battery(config_.rv.capacity);
  }

  recluster();

  // Round-robin handover ticks (only meaningful under the RR policy).
  if (config_.activation == ActivationPolicy::kRoundRobin) {
    queue_.push(config_.activation_slot.value(), EventKind::kSlotRotation);
  }
  // Stagger target relocations: each target's first move is uniform in
  // (0, period], then periodic.
  for (TargetId t = 0; t < config_.num_targets; ++t) {
    const double first = target_rng_.uniform(0.0, config_.target_period.value());
    queue_.push(first, EventKind::kTargetMove, t);
  }
  queue_.push(config_.metrics_sample_period.value(), EventKind::kMetricsSample);
}

MetricsReport World::run() {
  run_until(Second{end_});
  return report();
}

void World::set_telemetry(obs::TelemetryRegistry* registry) {
  telemetry_ = registry;
  if (registry == nullptr) {
    pop_counters_.fill(nullptr);
    stale_counter_ = nullptr;
    queue_hwm_gauge_ = nullptr;
    return;
  }
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    pop_counters_[k] = &registry->counter(
        std::string("events/popped/") + kind_name(static_cast<EventKind>(k)));
  }
  stale_counter_ = &registry->counter("events/stale-discarded");
  queue_hwm_gauge_ = &registry->gauge("events/queue-high-water");
  queue_hwm_gauge_->record_max(static_cast<double>(queue_hwm_));
  // Pre-register the scheduler timing scopes so an export always carries
  // them, even for schedulers that never enter a given path.
  for (const char* scope :
       {"planner/greedy", "planner/insertion", "kmeans/lloyd",
        "tsp/nearest-neighbor", "tsp/two-opt"}) {
    registry->timer(scope);
  }
}

void World::run_until(Second t_in) {
  // Install this world's registry (possibly null) on the running thread so
  // WRSN_OBS_SCOPE sites in the schedulers report here — and so a replica
  // without telemetry never leaks into a pool worker's previous installation.
  const obs::TelemetryScope obs_scope(telemetry_);
  const double t = std::min(t_in.value(), end_);
  if (t <= now_) return;  // past or current horizon: nothing to do
  while (!queue_.empty() && queue_.top().time <= t) {
    const Event ev = queue_.pop();
    queue_hwm_ = std::max(queue_hwm_, queue_.size() + 1);
    // Lazy invalidation: predicted events must match their subject's epoch.
    if (ev.kind == EventKind::kSensorCrossing &&
        ev.epoch != sensor_epoch_[ev.subject]) {
      if (stale_counter_ != nullptr) stale_counter_->add();
      continue;
    }
    if ((ev.kind == EventKind::kRvArrival || ev.kind == EventKind::kRvChargeDone ||
         ev.kind == EventKind::kRvBaseChargeDone) &&
        ev.epoch != rvs_[ev.subject].epoch) {
      if (stale_counter_ != nullptr) stale_counter_->add();
      continue;
    }
    advance_to(ev.time);
    handle(ev);
    if (pop_counters_[static_cast<std::size_t>(ev.kind)] != nullptr) {
      pop_counters_[static_cast<std::size_t>(ev.kind)]->add();
    }
    if (tracer_) tracer_({ev.time, ev.kind, ev.subject, ev.epoch, queue_.size()});
    if (trace_sink_ != nullptr) {
      obs::TraceRecord rec;
      rec.t = ev.time;
      rec.kind = kind_name(ev.kind);
      rec.subject = ev.subject;
      rec.epoch = ev.epoch;
      rec.queue_size = queue_.size();
      trace_sink_->on_event(rec);
    }
  }
  if (queue_hwm_gauge_ != nullptr) {
    queue_hwm_gauge_->record_max(static_cast<double>(queue_hwm_));
  }
  advance_to(t);
  if (t >= end_) finished_ = true;
}

void World::inject_sensor_failure(SensorId s) {
  const obs::TelemetryScope obs_scope(telemetry_);  // dispatch() runs planners
  WRSN_REQUIRE(s < net_.num_sensors(), "sensor id out of range");
  Sensor& sensor = net_.sensor(s);
  if (!sensor.alive()) return;  // already down
  sensor.battery.drain(sensor.battery.level());
  ++sensor_epoch_[s];
  handle_death(s);
  dispatch();
}

MetricsReport World::report() const { return metrics_.finalize(Second{now_}); }

void World::handle(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kSlotRotation: on_slot_rotation(); break;
    case EventKind::kTargetMove: on_target_move(ev.subject); break;
    case EventKind::kSensorCrossing: on_sensor_crossing(ev.subject); break;
    case EventKind::kRvArrival: on_rv_arrival(ev.subject); break;
    case EventKind::kRvChargeDone: on_rv_charge_done(ev.subject); break;
    case EventKind::kRvBaseChargeDone: on_rv_base_charge_done(ev.subject); break;
    case EventKind::kMetricsSample:
      record_sample();
      queue_.push(now_ + config_.metrics_sample_period.value(),
                  EventKind::kMetricsSample);
      break;
    case EventKind::kSimEnd: break;
  }
}

// ---------------------------------------------------------------------------
// Continuous state
// ---------------------------------------------------------------------------

void World::advance_to(double t) {
  WRSN_ASSERT(t + 1e-9 >= now_, "time went backwards");
  if (t <= now_) return;
  const double dt = t - now_;
  metrics_.advance(Second{dt}, snapshot());
  for (SensorId s = 0; s < drain_.size(); ++s) {
    if (drain_[s] > 0.0) {
      // drain() clamps at empty; account only what actually left the cell.
      sensor_energy_consumed_ +=
          net_.sensor(s).battery.drain(Joule{drain_[s] * dt}).value();
    }
  }
  now_ = t;
}

StateSnapshot World::snapshot() const {
  StateSnapshot snap;
  snap.total_sensors = net_.num_sensors();
  snap.alive_sensors = net_.alive_count();
  snap.delivery_rate_pps = traffic_.delivery_rate();
  snap.avg_delivery_hops = traffic_.average_delivery_hops();
  for (TargetId t = 0; t < net_.num_targets(); ++t) {
    if (!coverable_[t]) continue;
    ++snap.coverable_targets;
    bool covered = false;
    if (config_.activation == ActivationPolicy::kRoundRobin) {
      const SensorId m = active_monitor_[t];
      covered = m != kInvalidId && net_.sensor(m).alive();
    } else {
      for (SensorId s : clusters_.members[t]) {
        if (net_.sensor(s).alive()) {
          covered = true;
          break;
        }
      }
    }
    if (covered) ++snap.covered_targets;
  }
  return snap;
}

Watt World::sensor_drain(SensorId s) const {
  const Sensor& sensor = net_.sensor(s);
  if (!sensor.alive()) return Watt{0.0};
  const Watt sensing = sensor.monitoring ? config_.sensing.active_power
                                         : config_.sensing.idle_power;
  const Watt self_discharge{config_.battery.self_discharge_per_day *
                            config_.battery.capacity.value() / 86400.0};
  return sensing + self_discharge + traffic_.radio_power(s, config_.radio);
}

void World::refresh_drains() {
  for (SensorId s = 0; s < drain_.size(); ++s) {
    const double d = sensor_drain(s).value();
    if (d != drain_[s]) {
      drain_[s] = d;
      ++sensor_epoch_[s];
      schedule_crossing(s);
    }
  }
}

void World::schedule_crossing(SensorId s) {
  const Sensor& sensor = net_.sensor(s);
  if (!sensor.alive() || drain_[s] <= 0.0) return;
  const double level = sensor.battery.level().value();
  const double threshold = config_.battery.threshold().value();
  const double target = level > threshold ? threshold : 0.0;
  const double dt = (level - target) / drain_[s] + kTimeEps;
  queue_.push(now_ + dt, EventKind::kSensorCrossing, s, sensor_epoch_[s]);
}

// ---------------------------------------------------------------------------
// Activity management
// ---------------------------------------------------------------------------

double World::effective_erp() const {
  return config_.energy_request_control ? config_.energy_request_percentage : 0.0;
}

bool World::sensor_critical(SensorId s) const {
  const Sensor& sensor = net_.sensor(s);
  return !sensor.alive() || sensor.battery.fraction() < config_.critical_fraction;
}

void World::recluster() {
  // Tear down the previous activation state.
  traffic_.clear_sources();
  for (Sensor& s : net_.sensors()) s.monitoring = false;

  std::vector<Vec2> sensor_pos;
  sensor_pos.reserve(net_.num_sensors());
  std::vector<bool> alive(net_.num_sensors());
  for (SensorId s = 0; s < net_.num_sensors(); ++s) {
    sensor_pos.push_back(net_.sensor(s).pos);
    alive[s] = net_.sensor(s).alive();
  }
  std::vector<Vec2> target_pos;
  target_pos.reserve(net_.num_targets());
  for (const Target& t : net_.targets()) target_pos.push_back(t.pos);

  clusters_ = balanced_clustering(sensor_pos, target_pos,
                                  config_.sensing_range.value(), alive);
  for (SensorId s = 0; s < net_.num_sensors(); ++s) {
    net_.sensor(s).assigned_target = clusters_.assignment[s];
  }

  rotors_.assign(net_.num_targets(), ClusterRotor{});
  active_monitor_.assign(net_.num_targets(), kInvalidId);
  coverable_.assign(net_.num_targets(), false);

  net_.rebuild_routing();

  const double rate_pps = config_.data_rate_pkt_per_min / 60.0;
  for (TargetId t = 0; t < net_.num_targets(); ++t) {
    coverable_[t] = net_.any_covering(net_.target(t).pos);
    rotors_[t] = ClusterRotor(clusters_.members[t]);
    if (config_.activation == ActivationPolicy::kRoundRobin) {
      const SensorId first =
          rotors_[t].select_first([&](SensorId s) { return net_.sensor(s).alive(); });
      if (first != kInvalidId) {
        net_.sensor(first).monitoring = true;
        active_monitor_[t] = first;
        traffic_.add_source(net_.routing(), first, rate_pps);
      }
    } else {
      apply_full_time_activation(t);
    }
  }

  refresh_drains();
  for (ClusterId c = 0; c < net_.num_targets(); ++c) evaluate_cluster_requests(c);
  dispatch();
}

void World::apply_full_time_activation(TargetId t) {
  const double rate_pps = config_.data_rate_pkt_per_min / 60.0;
  for (SensorId s : clusters_.members[t]) {
    if (!net_.sensor(s).alive()) continue;
    net_.sensor(s).monitoring = true;
    traffic_.add_source(net_.routing(), s, rate_pps);
  }
}

void World::set_monitor(TargetId t, SensorId s) {
  const SensorId old = active_monitor_[t];
  if (old == s) return;
  if (old != kInvalidId) {
    net_.sensor(old).monitoring = false;
    if (traffic_.has_source(old)) traffic_.remove_source(old);
  }
  active_monitor_[t] = s;
  if (s != kInvalidId) {
    net_.sensor(s).monitoring = true;
    traffic_.add_source(net_.routing(), s, config_.data_rate_pkt_per_min / 60.0);
  }
}

void World::on_slot_rotation() {
  for (TargetId t = 0; t < net_.num_targets(); ++t) {
    if (rotors_[t].empty()) continue;
    const SensorId next =
        rotors_[t].advance([&](SensorId s) { return net_.sensor(s).alive(); });
    set_monitor(t, next);
  }
  refresh_drains();
  queue_.push(now_ + config_.activation_slot.value(), EventKind::kSlotRotation);
}

void World::on_target_move(TargetId t) {
  if (config_.target_motion == TargetMotion::kTeleport) {
    net_.relocate_target(t, target_rng_);
    recluster();
    queue_.push(now_ + config_.target_period.value(), EventKind::kTargetMove, t);
    return;
  }

  // Random waypoint: walk in straight segments of at most one target period
  // (clusters are refreshed per segment), dwell one period on arrival, then
  // pick the next waypoint.
  const Vec2 pos = net_.target(t).pos;
  const double dist = distance(pos, target_waypoint_[t]);
  if (dist < 1e-9) {
    if (!target_dwelling_[t]) {
      target_dwelling_[t] = true;  // arrived: rest for one period
      queue_.push(now_ + config_.target_period.value(), EventKind::kTargetMove, t);
      return;
    }
    target_dwelling_[t] = false;
    target_waypoint_[t] =
        random_location(config_.field_side.value(), target_rng_);
  }
  const Vec2 goal = target_waypoint_[t];
  const double leg = distance(pos, goal);
  const double speed = config_.target_speed.value();
  const double step_time = std::min(config_.target_period.value(), leg / speed);
  const Vec2 next =
      leg <= speed * step_time ? goal : lerp(pos, goal, speed * step_time / leg);
  net_.set_target_position(t, next);
  recluster();
  queue_.push(now_ + step_time, EventKind::kTargetMove, t);
}

void World::evaluate_cluster_requests(ClusterId c) {
  const auto& members = clusters_.members[c];
  if (members.empty()) return;
  std::size_t below = 0;
  for (SensorId s : members) {
    const Sensor& sensor = net_.sensor(s);
    if (!sensor.alive() || sensor.below_threshold(config_.battery.threshold_fraction)) {
      ++below;
    }
  }
  if (below < erp_trigger_count(members.size(), effective_erp())) return;
  for (SensorId s : members) {
    const Sensor& sensor = net_.sensor(s);
    if (!sensor.alive() || sensor.below_threshold(config_.battery.threshold_fraction)) {
      add_request(s);
    }
  }
}

void World::add_request(SensorId s) {
  Sensor& sensor = net_.sensor(s);
  if (sensor.recharge_requested) return;
  sensor.recharge_requested = true;
  RechargeRequest request;
  request.sensor = s;
  request.cluster = sensor.assigned_target;
  request.pos = sensor.pos;
  request.demand = sensor.battery.demand();
  request.critical = sensor_critical(s);
  request.fraction = sensor.battery.fraction();
  requests_.add(std::move(request));
  request_time_[s] = now_;
  metrics_.on_request();
}

void World::on_sensor_crossing(SensorId s) {
  Sensor& sensor = net_.sensor(s);
  if (!sensor.alive()) {
    handle_death(s);
    dispatch();
    return;
  }
  if (sensor.below_threshold(config_.battery.threshold_fraction)) {
    if (sensor.assigned_target == kInvalidId) {
      // Unclustered sensors follow the prior-work rule: request immediately.
      add_request(s);
    } else {
      evaluate_cluster_requests(sensor.assigned_target);
    }
    // Next stop: depletion.
    ++sensor_epoch_[s];
    schedule_crossing(s);
    dispatch();
  } else {
    // Drain shifted under us and the level is still above threshold;
    // re-predict.
    ++sensor_epoch_[s];
    schedule_crossing(s);
  }
}

void World::handle_death(SensorId s) {
  Sensor& sensor = net_.sensor(s);
  metrics_.on_sensor_death();
  ++sensor_epoch_[s];

  if (sensor.monitoring) {
    sensor.monitoring = false;
    if (traffic_.has_source(s)) traffic_.remove_source(s);
  }
  const TargetId t = sensor.assigned_target;
  if (t != kInvalidId && active_monitor_[t] == s) {
    const SensorId next =
        rotors_[t].advance([&](SensorId id) { return net_.sensor(id).alive(); });
    active_monitor_[t] = kInvalidId;  // force set_monitor to register anew
    set_monitor(t, next);
  }

  // A dead relay changes the topology for everyone.
  if (net_.rebuild_routing()) traffic_.reroute(net_.routing());

  if (t == kInvalidId) {
    add_request(s);
  } else {
    evaluate_cluster_requests(t);
  }
  refresh_drains();
}

void World::record_sample() {
  if (!record_series_) return;
  const StateSnapshot snap = snapshot();
  TimeSeriesPoint p;
  p.t = now_;
  p.alive = snap.alive_sensors;
  p.covered = snap.covered_targets;
  p.coverable = snap.coverable_targets;
  p.pending_requests = requests_.size();
  p.rv_travel_distance = report().rv_travel_distance.value();
  series_.push_back(p);
}

}  // namespace wrsn
