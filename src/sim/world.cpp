#include "sim/world.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "activity/erp.hpp"
#include "core/error.hpp"
#include "net/deployment.hpp"

namespace wrsn {

namespace {
// Scheduled crossings overshoot by this much so the crossing condition is
// strictly satisfied at the handler despite floating-point residue.
constexpr double kTimeEps = 1e-6;

// "events/popped/<kind>" for every kind, assembled once per process so
// set_telemetry (called once per replica in sweeps) does no string work.
const std::array<std::string, kNumEventKinds>& popped_counter_names() {
  static const std::array<std::string, kNumEventKinds> names = [] {
    std::array<std::string, kNumEventKinds> out;
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
      out[k] = std::string("events/popped/") + kind_name(static_cast<EventKind>(k));
    }
    return out;
  }();
  return names;
}
}  // namespace

WorldEngine world_default_engine() {
  const char* env = std::getenv("WRSN_REFERENCE_WORLD");
  const bool reference =
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  return reference ? WorldEngine::kReference : WorldEngine::kIncremental;
}

World::World(const SimConfig& config) : World(config, world_default_engine()) {}

World::World(const SimConfig& config, WorldEngine engine)
    : config_(config),
      engine_(engine),
      streams_(config.seed),
      target_rng_(streams_.stream("targets")),
      sched_rng_(streams_.stream("scheduler")),
      net_([&] {
        config.validate();
        Xoshiro256 deploy = streams_.stream("deployment");
        Xoshiro256 placement = streams_.stream("target-placement");
        return Network(config, deploy, placement);
      }()),
      traffic_(config.num_sensors) {
  end_ = config_.sim_duration.value();
  // Thread budget for the sharded bulk phases (core/parallel.hpp); serial
  // (no pool) unless the config/env grants more than one thread. Output is
  // byte-identical either way — the equivalence and determinism suites hold
  // this to account.
  exec_ = ParallelExec(resolve_threads(config_.threads), config_.parallel_threshold);
  // Re-seat the queue on the configured implementation (the default member
  // construction already consulted WRSN_EVENT_QUEUE; an explicit config key
  // overrides it). Nothing has been pushed yet, so this is a plain swap.
  queue_ = EventQueue(event_queue_impl_from_name(config_.event_queue));

  if (config_.fault.enabled) fault_ = std::make_unique<FaultInjector>(config_);
  uplink_epoch_.assign(config_.num_sensors, 0);
  uplink_attempt_.assign(config_.num_sensors, 0);
  uplink_pending_.assign(config_.num_sensors, UplinkPending::kNone);
  stranded_since_.assign(config_.num_sensors, -1.0);
  rv_breakdown_idx_.assign(config_.num_rvs, 0);
  breakdown_began_.assign(config_.num_rvs, -1.0);

  request_time_.assign(config_.num_sensors, -1.0);
  request_span_.assign(config_.num_sensors, 0);
  req_travel_accum_.assign(config_.num_sensors, 0.0);
  rv_tour_span_.assign(config_.num_rvs, 0);
  rv_leg_span_.assign(config_.num_rvs, 0);
  rv_breakdown_span_.assign(config_.num_rvs, 0);
  leg_began_.assign(config_.num_rvs, 0.0);
  charge_began_.assign(config_.num_rvs, 0.0);
  soa_.init(net_);
  covered_.assign(config_.num_targets, false);
  alive_members_.assign(config_.num_targets, 0);
  // Both engines collect dirty marks (cleared by either refresh flavour) so
  // switching engines never changes the traffic model's behaviour.
  drain_marks_.reset(config_.num_sensors);
  traffic_.set_touch_log(&drain_marks_);
  // Install the link-quality model before any source registration (the
  // initial recluster below captures per-hop loss with each flow).
  traffic_.set_link_model(config_.link, config_.comm_range.value());

  target_waypoint_.resize(config_.num_targets);
  target_dwelling_.assign(config_.num_targets, true);
  for (TargetId t = 0; t < config_.num_targets; ++t) {
    target_waypoint_[t] = net_.target(t).pos;  // first event picks a waypoint
  }

  rvs_.resize(config_.num_rvs);
  for (RvId r = 0; r < config_.num_rvs; ++r) {
    rvs_[r].id = r;
    rvs_[r].pos = net_.base_station();
    rvs_[r].battery = Battery(config_.rv.capacity);
  }
  // Throws with the registered names when config_.scheduler is unknown.
  policy_ = SchedulerRegistry::instance().create(config_.scheduler);

  // Cell size = sensing range, so candidate queries stay in a 3x3 block.
  target_index_.init(config_.field_side.value(), config_.sensing_range.value(),
                     current_target_positions());

  // Construction reclusters and dispatches, so the planner kernels must
  // already see this world's executor on the running thread.
  const ParallelScope par_scope(&exec_);
  recluster();

  // Round-robin handover ticks (only meaningful under the RR policy).
  if (config_.activation == ActivationPolicy::kRoundRobin) {
    queue_.push(config_.activation_slot.value(), EventKind::kSlotRotation);
  }
  // Stagger target relocations: each target's first move is uniform in
  // (0, period], then periodic.
  for (TargetId t = 0; t < config_.num_targets; ++t) {
    const double first = target_rng_.uniform(0.0, config_.target_period.value());
    queue_.push(first, EventKind::kTargetMove, t);
  }
  queue_.push(config_.metrics_sample_period.value(), EventKind::kMetricsSample);

  // Fault schedule: the plan's windows are fixed at construction, so the
  // events are pushed up front (unguarded; handlers check current state).
  // kRvRepaired is pushed by the breakdown handler instead, carrying the
  // post-breakdown epoch.
  if (fault_ != nullptr) {
    const FaultPlan& plan = fault_->plan();
    for (RvId r = 0; r < config_.num_rvs; ++r) {
      for (const FaultWindow& w : plan.rv_breakdowns(r)) {
        queue_.push(w.start, EventKind::kRvBreakdown, r);
      }
    }
    for (SensorId s = 0; s < config_.num_sensors; ++s) {
      for (const FaultWindow& w : plan.sensor_faults(s)) {
        queue_.push(w.start, EventKind::kSensorFaultStart, s);
        queue_.push(w.end, EventKind::kSensorFaultEnd, s);
      }
    }
  }
}

MetricsReport World::run() {
  run_until(Second{end_});
  return report();
}

void World::set_telemetry(obs::TelemetryRegistry* registry) {
  telemetry_ = registry;
  if (registry == nullptr) {
    pop_counters_.fill(nullptr);
    stale_counter_ = nullptr;
    settle_counter_ = nullptr;
    drain_update_counter_ = nullptr;
    fault_lost_counter_ = nullptr;
    fault_retried_counter_ = nullptr;
    fault_expired_counter_ = nullptr;
    fault_breakdown_counter_ = nullptr;
    fault_failover_counter_ = nullptr;
    fault_hw_fault_counter_ = nullptr;
    queue_hwm_gauge_ = nullptr;
    return;
  }
  const auto& names = popped_counter_names();
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    pop_counters_[k] = &registry->counter(names[k]);
  }
  stale_counter_ = &registry->counter("events/stale-discarded");
  settle_counter_ = &registry->counter("world/battery-settlements");
  drain_update_counter_ = &registry->counter("world/drain-updates");
  fault_lost_counter_ = &registry->counter("fault/requests-lost");
  fault_retried_counter_ = &registry->counter("fault/requests-retried");
  fault_expired_counter_ = &registry->counter("fault/requests-expired");
  fault_breakdown_counter_ = &registry->counter("fault/rv-breakdowns");
  fault_failover_counter_ = &registry->counter("fault/failover-reinjected");
  fault_hw_fault_counter_ = &registry->counter("fault/sensor-hw-faults");
  queue_hwm_gauge_ = &registry->gauge("events/queue-high-water");
  queue_hwm_gauge_->record_max(static_cast<double>(queue_hwm_));
  // Pre-register the scheduler timing scopes so an export always carries
  // them, even for schedulers that never enter a given path.
  for (const char* scope :
       {"planner/greedy", "planner/insertion", "kmeans/lloyd",
        "tsp/nearest-neighbor", "tsp/two-opt"}) {
    registry->timer(scope);
  }
}

void World::run_until(Second t_in) {
  // Install this world's registry (possibly null) on the running thread so
  // WRSN_OBS_SCOPE sites in the schedulers report here — and so a replica
  // without telemetry never leaks into a pool worker's previous installation.
  const obs::TelemetryScope obs_scope(telemetry_);
  // ... and the executor, so world phases and planner kernels shard across
  // this world's pool (serial pass-through when threads == 1).
  const ParallelScope par_scope(&exec_);
  const double t = std::min(t_in.value(), end_);
  if (t <= now_) return;  // past or current horizon: nothing to do
  while (!queue_.empty() && queue_.top().time <= t) {
    const Event ev = queue_.pop();
    queue_hwm_ = std::max(queue_hwm_, queue_.size() + 1);
    // Lazy invalidation: predicted events must match their subject's epoch.
    if (ev.kind == EventKind::kSensorCrossing &&
        ev.epoch != soa_.epoch[ev.subject]) {
      if (stale_counter_ != nullptr) stale_counter_->add();
      continue;
    }
    if ((ev.kind == EventKind::kRvArrival || ev.kind == EventKind::kRvChargeDone ||
         ev.kind == EventKind::kRvBaseChargeDone ||
         ev.kind == EventKind::kRvRepaired) &&
        ev.epoch != rvs_[ev.subject].epoch) {
      if (stale_counter_ != nullptr) stale_counter_->add();
      continue;
    }
    if (ev.kind == EventKind::kRequestUplink &&
        ev.epoch != uplink_epoch_[ev.subject]) {
      if (stale_counter_ != nullptr) stale_counter_->add();
      continue;
    }
    WRSN_DEBUG_ASSERT(ev.time + 1e-9 >= now_, "popped event older than now");
    advance_to(ev.time);
    handle(ev);
    ++events_processed_;
    if (pop_counters_[static_cast<std::size_t>(ev.kind)] != nullptr) {
      pop_counters_[static_cast<std::size_t>(ev.kind)]->add();
    }
    if (tracer_) tracer_({ev.time, ev.kind, ev.subject, ev.epoch, queue_.size()});
    if (trace_sink_ != nullptr || flight_ != nullptr) {
      obs::TraceRecord rec;
      rec.t = ev.time;
      rec.kind = kind_name(ev.kind);
      rec.subject = ev.subject;
      rec.epoch = ev.epoch;
      rec.queue_size = queue_.size();
      if (trace_sink_ != nullptr) trace_sink_->on_event(rec);
      if (flight_ != nullptr) flight_->record(rec);
    }
    // Checkpoint hook: the event is fully handled and now_ == ev.time, so
    // the world is at a quiescent instant. A true return stops the run
    // *before* the horizon settle/advance below — resuming with another
    // run_until (here or in a restored process) replays the remaining
    // events byte-identically, because no state beyond the processed prefix
    // has been touched.
    if (checkpoint_hook_ && checkpoint_hook_(*this)) return;
  }
  if (queue_hwm_gauge_ != nullptr) {
    queue_hwm_gauge_->record_max(static_cast<double>(queue_hwm_));
  }
  advance_to(t);
  // Public horizon: realize every battery at t so levels, alive counts and
  // the energy-conservation invariant are current for callers.
  settle_all_sensors();
  if (t >= end_) {
    finished_ = true;
    if (spans_ != nullptr && !spans_closed_) close_spans();
  }
}

void World::close_spans() {
  spans_closed_ = true;
  // Deterministic close order (sensors ascending, then per-RV leg/breakdown/
  // tour) keeps span files byte-stable across runs.
  for (SensorId s = 0; s < request_span_.size(); ++s) {
    if (request_span_[s] == 0) continue;
    const char* outcome = net_.sensor(s).alive() ? "unserved" : "died-waiting";
    spans_->end(request_span_[s], now_, outcome);
    request_span_[s] = 0;
  }
  for (RvId r = 0; r < rvs_.size(); ++r) {
    if (rv_leg_span_[r] != 0) {
      spans_->end(rv_leg_span_[r], now_, "sim-end");
      rv_leg_span_[r] = 0;
    }
    if (rv_breakdown_span_[r] != 0) {
      spans_->end(rv_breakdown_span_[r], now_, "sim-end");
      rv_breakdown_span_[r] = 0;
    }
    if (rv_tour_span_[r] != 0) {
      spans_->end(rv_tour_span_[r], now_, "sim-end");
      rv_tour_span_[r] = 0;
    }
  }
}

void World::inject_sensor_failure(SensorId s) {
  const obs::TelemetryScope obs_scope(telemetry_);  // dispatch() runs planners
  const ParallelScope par_scope(&exec_);
  WRSN_REQUIRE(s < net_.num_sensors(), "sensor id out of range");
  settle_sensor(s);
  if (!soa_.alive(s)) return;  // already down (or death pending its event)
  sensor_energy_consumed_ += soa_.level[s];
  soa_.level[s] = 0.0;
  net_.sensor(s).battery.set_level(Joule{0.0});
  on_sensor_alive_changed(s, false);
  invalidate_crossing(s);
  handle_death(s);
  dispatch();
}

MetricsReport World::report() const { return metrics_.finalize(Second{now_}); }

void World::handle(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kSlotRotation: on_slot_rotation(); break;
    case EventKind::kTargetMove: on_target_move(ev.subject); break;
    case EventKind::kSensorCrossing: on_sensor_crossing(ev.subject); break;
    case EventKind::kRvArrival: on_rv_arrival(ev.subject); break;
    case EventKind::kRvChargeDone: on_rv_charge_done(ev.subject); break;
    case EventKind::kRvBaseChargeDone: on_rv_base_charge_done(ev.subject); break;
    case EventKind::kMetricsSample:
      record_sample();
      queue_.push(now_ + config_.metrics_sample_period.value(),
                  EventKind::kMetricsSample);
      break;
    case EventKind::kRequestUplink: on_request_uplink(ev.subject); break;
    case EventKind::kRvBreakdown: on_rv_breakdown(ev.subject); break;
    case EventKind::kRvRepaired: on_rv_repaired(ev.subject); break;
    case EventKind::kSensorFaultStart: on_sensor_fault_start(ev.subject); break;
    case EventKind::kSensorFaultEnd: on_sensor_fault_end(ev.subject); break;
    case EventKind::kSimEnd: break;
  }
}

// ---------------------------------------------------------------------------
// Continuous state
// ---------------------------------------------------------------------------

void World::advance_to(double t) {
  WRSN_ASSERT(t + 1e-9 >= now_, "time went backwards");
  if (t <= now_) return;
  const double dt = t - now_;
  metrics_.advance(Second{dt}, engine_ == WorldEngine::kReference
                                   ? snapshot_scan()
                                   : snapshot_counters());
  now_ = t;
}

void World::settle_sensor(SensorId s) {
  double& last = soa_.last_settle[s];
  if (now_ <= last) return;
  const double dt = now_ - last;
  last = now_;
  if (soa_.drain[s] <= 0.0) return;
  // Bit-exact replica of Battery::drain's clamp, run over the packed arrays.
  apply_settlement(s, std::min(soa_.drain[s] * dt, soa_.level[s]));
}

bool World::apply_settlement(SensorId s, double drawn) {
  // The resulting level is mirrored back into the Network battery so every
  // external reader (planners, metrics, tests) stays current.
  const double level = soa_.level[s];
  const bool was_alive = level > 0.0;
  soa_.level[s] = level - drawn;
  sensor_energy_consumed_ += drawn;
  net_.sensor(s).battery.set_level(Joule{soa_.level[s]});
  WRSN_DEBUG_ASSERT(soa_.level[s] >= 0.0 && soa_.level[s] <= soa_.capacity[s],
                    "battery level escaped [0, capacity]");
  if (settle_counter_ != nullptr) settle_counter_->add();
  const bool died = was_alive && soa_.level[s] <= 0.0;
  if (died) on_sensor_alive_changed(s, false);
  return died;
}

void World::settle_all_sensors() {
  const std::size_t n = soa_.last_settle.size();
  if (!exec_.should_shard(n)) {
    for (SensorId s = 0; s < n; ++s) settle_sensor(s);
    return;
  }
  // Compute-then-apply: the pure half (elapsed time, drain clamp) runs over
  // fixed shards into disjoint slots; the serial ascending apply then
  // performs every mutation — the fp energy accumulation, the net_ mirror,
  // alive transitions — in exactly the serial loop's order, so the result is
  // byte-identical at any thread count. A death mid-apply can rewire later
  // sensors' drains (monitor handover, traffic rerouting), which would make
  // their precomputed draws stale; from the first alive transition on, the
  // tail falls back to plain settle_sensor, which recomputes from live state
  // just as the serial loop would.
  constexpr double kNotDue = -1.0;     // now_ <= last_settle: untouched
  constexpr double kStampOnly = -2.0;  // due but drain <= 0: stamp, no draw
  settle_scratch_.assign(n, kNotDue);
  exec_.for_shards(n, [this](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const double last = soa_.last_settle[s];
      if (now_ <= last) continue;
      settle_scratch_[s] =
          soa_.drain[s] <= 0.0
              ? kStampOnly
              : std::min(soa_.drain[s] * (now_ - last), soa_.level[s]);
    }
  });
  bool rewired = false;
  for (SensorId s = 0; s < n; ++s) {
    if (rewired) {
      settle_sensor(s);
      continue;
    }
    const double drawn = settle_scratch_[s];
    if (drawn == kNotDue) continue;
    soa_.last_settle[s] = now_;
    if (drawn == kStampOnly) continue;
    rewired = apply_settlement(s, drawn);
  }
}

StateSnapshot World::snapshot() const {
  return engine_ == WorldEngine::kReference ? snapshot_scan()
                                            : snapshot_counters();
}

StateSnapshot World::snapshot_scan() const {
  StateSnapshot snap;
  snap.total_sensors = net_.num_sensors();
  snap.alive_sensors = net_.alive_count();
  snap.delivery_rate_pps = traffic_.delivery_rate();
  snap.offered_rate_pps = traffic_.offered_rate();
  snap.avg_delivery_hops = traffic_.average_delivery_hops();
  for (TargetId t = 0; t < net_.num_targets(); ++t) {
    if (!coverable_[t]) continue;
    ++snap.coverable_targets;
    bool covered = false;
    if (config_.activation == ActivationPolicy::kRoundRobin) {
      const SensorId m = active_monitor_[t];
      covered = m != kInvalidId && operational(m);
    } else {
      for (SensorId s : clusters_.members[t]) {
        if (operational(s)) {
          covered = true;
          break;
        }
      }
    }
    if (covered) ++snap.covered_targets;
  }
  return snap;
}

StateSnapshot World::snapshot_counters() const {
  StateSnapshot snap;
  snap.total_sensors = net_.num_sensors();
  snap.alive_sensors = alive_count_;
  snap.coverable_targets = coverable_count_;
  snap.covered_targets = covered_count_;
  snap.delivery_rate_pps = traffic_.delivery_rate();
  snap.offered_rate_pps = traffic_.offered_rate();
  snap.avg_delivery_hops = traffic_.average_delivery_hops();
  return snap;
}

Watt World::sensor_drain(SensorId s) const {
  const Sensor& sensor = net_.sensor(s);
  if (!sensor.alive()) return Watt{0.0};
  const Watt sensing = sensor.monitoring ? config_.sensing.active_power
                                         : config_.sensing.idle_power;
  const Watt self_discharge{config_.battery.self_discharge_per_day *
                            config_.battery.capacity.value() / 86400.0};
  Watt total = sensing + self_discharge + traffic_.radio_power(s, config_.radio);
  if (fault_ != nullptr) total += Watt{fault_->plan().extra_drain_w(s)};
  return total;
}

bool World::drain_refresh_blocked(SensorId s) const {
  if (soa_.death_processed[s] != 0) return false;
  // A depleted — or depleting-within-this-instant — sensor whose death
  // crossing has not fired yet keeps its drain and epoch, so the pending
  // crossing stays valid and handle_death runs exactly once.
  if (!soa_.alive(s)) return true;
  return soa_.drain[s] > 0.0 &&
         soa_.drain[s] * (now_ - soa_.last_settle[s]) >= soa_.level[s];
}

bool World::update_drain(SensorId s) {
  if (drain_refresh_blocked(s)) return false;
  return apply_drain(s, sensor_drain(s).value());
}

bool World::apply_drain(SensorId s, double d) {
  if (d == soa_.drain[s]) return false;
  settle_sensor(s);  // integrate the old drain up to now before switching
  soa_.drain[s] = d;
  // Speculative crossings: replace the pending prediction only when the new
  // one is EARLIER. A prediction that moved later keeps its queued event,
  // which fires early, finds the level still above its target and simply
  // re-predicts (on_sensor_crossing's re-predict branch) — far cheaper at
  // scale than pushing a replacement on every drain change and popping the
  // stale majority later.
  const double when = crossing_prediction(s);
  if (when < soa_.crossing_time[s]) {
    ++soa_.epoch[s];
    soa_.crossing_time[s] = when;
    soa_.crossing_to_death[s] =
        soa_.level[s] <= config_.battery.threshold().value() ? 1 : 0;
    queue_.push(when, EventKind::kSensorCrossing, s, soa_.epoch[s]);
  }
  if (drain_update_counter_ != nullptr) drain_update_counter_->add();
  return true;
}

void World::refresh_drains() {
  const std::size_t n = soa_.drain.size();
  if (!exec_.should_shard(n)) {
    for (SensorId s = 0; s < n; ++s) update_drain(s);
    drain_marks_.clear();
    return;
  }
  // Compute-then-apply: sensor_drain is pure in state this loop holds
  // frozen — drain_refresh_blocked's guard means no settlement here can
  // deplete a battery, so no alive transition, monitor handover or traffic
  // rewiring happens mid-loop and no apply changes another sensor's drain
  // inputs. The expensive drain evaluations therefore shard freely into
  // disjoint slots; the serial ascending apply settles, swaps drains and
  // pushes crossing events in exactly the serial order — identical fp
  // accumulation, identical (time, seq) assignment.
  drain_scratch_.resize(n);
  exec_.for_shards(n, [this](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      if (drain_refresh_blocked(s)) continue;
      drain_scratch_[s] = sensor_drain(s).value();
    }
  });
  for (SensorId s = 0; s < n; ++s) {
    if (drain_refresh_blocked(s)) continue;
    apply_drain(s, drain_scratch_[s]);
  }
  drain_marks_.clear();
}

void World::flush_drain_marks() {
  // Ascending-id order matches the reference full scan, so equal-time
  // crossings enqueue with identical tie-break sequence numbers. The set is
  // already duplicate-free (DirtySet dedupes at insert), so a plain sort of
  // the marked ids suffices.
  drain_marks_.sort_ids();
  const auto& ids = drain_marks_.ids();
  const std::size_t count = ids.size();
  if (!exec_.should_shard(count)) {
    for (const SensorId s : ids) update_drain(s);
    drain_marks_.clear();
    return;
  }
  // Same compute-then-apply split as refresh_drains, indexed by mark
  // position instead of sensor id.
  drain_scratch_.resize(count);
  exec_.for_shards(count, [this, &ids](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const SensorId s = ids[i];
      if (drain_refresh_blocked(s)) continue;
      drain_scratch_[i] = sensor_drain(s).value();
    }
  });
  for (std::size_t i = 0; i < count; ++i) {
    const SensorId s = ids[i];
    if (drain_refresh_blocked(s)) continue;
    apply_drain(s, drain_scratch_[i]);
  }
  drain_marks_.clear();
}

void World::request_drain_refresh() {
  if (engine_ == WorldEngine::kReference) {
    refresh_drains();
  } else {
    flush_drain_marks();
  }
}

double World::crossing_prediction(SensorId s) const {
  const double level = soa_.level[s];
  if (level <= 0.0 || soa_.drain[s] <= 0.0) return kNoCrossing;
  const double threshold = config_.battery.threshold().value();
  const double target = level > threshold ? threshold : 0.0;
  const double dt = (level - target) / soa_.drain[s] + kTimeEps;
  const double when = now_ + dt;
  // Crossings past the simulation end are never popped (run_until clamps its
  // horizon to end_), so keeping them out of the queue trims both the push
  // cost and the cost of every later queue operation.
  return when > end_ ? kNoCrossing : when;
}

void World::schedule_crossing(SensorId s) {
  const double when = crossing_prediction(s);
  soa_.crossing_time[s] = when;
  if (when == kNoCrossing) return;
  soa_.crossing_to_death[s] =
      soa_.level[s] <= config_.battery.threshold().value() ? 1 : 0;
  queue_.push(when, EventKind::kSensorCrossing, s, soa_.epoch[s]);
}

// ---------------------------------------------------------------------------
// Derived-state accounting
// ---------------------------------------------------------------------------

void World::on_sensor_alive_changed(SensorId s, bool alive_now) {
  if (alive_now) {
    ++alive_count_;
  } else {
    --alive_count_;
  }
  const TargetId t = net_.sensor(s).assigned_target;
  if (t == kInvalidId) return;
  // alive_members_ counts operational members; a sensor inside a hardware
  // fault window was already removed at fault start and re-added at fault
  // end, so its death/revival must not adjust the count again.
  if (soa_.hw_fault[s] == 0) {
    if (alive_now) {
      ++alive_members_[t];
    } else {
      --alive_members_[t];
    }
  }
  recompute_covered(t);
}

void World::set_covered(TargetId t, bool v) {
  if (covered_[t] == v) return;
  covered_[t] = v;
  if (!coverable_[t]) return;
  if (v) {
    ++covered_count_;
  } else {
    --covered_count_;
  }
}

void World::set_coverable(TargetId t, bool v) {
  if (coverable_[t] == v) return;
  coverable_[t] = v;
  if (v) {
    ++coverable_count_;
    if (covered_[t]) ++covered_count_;
  } else {
    --coverable_count_;
    if (covered_[t]) --covered_count_;
  }
}

void World::recompute_covered(TargetId t) {
  bool cov = false;
  if (config_.activation == ActivationPolicy::kRoundRobin) {
    const SensorId m = active_monitor_[t];
    cov = m != kInvalidId && operational(m);
  } else {
    cov = alive_members_[t] > 0;
  }
  set_covered(t, cov);
}

void World::rebuild_counters() {
  // Integer shard partials folded in shard-index order (order-independent
  // for a count, but the ordered merge is the house rule).
  alive_count_ = exec_.reduce_shards(
      net_.num_sensors(), std::size_t{0},
      [this](std::size_t begin, std::size_t end) {
        std::size_t alive = 0;
        for (SensorId s = begin; s < end; ++s) {
          if (soa_.alive(s)) ++alive;
        }
        return alive;
      },
      [](std::size_t& acc, std::size_t part) { acc += part; });
  alive_members_.assign(net_.num_targets(), 0);
  for (SensorId s = 0; s < net_.num_sensors(); ++s) {
    const TargetId t = clusters_.assignment[s];
    if (t != kInvalidId && operational(s)) ++alive_members_[t];
  }
  coverable_count_ = 0;
  covered_count_ = 0;
  for (TargetId t = 0; t < net_.num_targets(); ++t) {
    if (coverable_[t]) ++coverable_count_;
    if (config_.activation == ActivationPolicy::kRoundRobin) {
      const SensorId m = active_monitor_[t];
      covered_[t] = m != kInvalidId && operational(m);
    } else {
      covered_[t] = alive_members_[t] > 0;
    }
    if (coverable_[t] && covered_[t]) ++covered_count_;
  }
}

// ---------------------------------------------------------------------------
// Activity management
// ---------------------------------------------------------------------------

double World::effective_erp() const {
  return config_.energy_request_control ? config_.energy_request_percentage : 0.0;
}

bool World::sensor_critical(SensorId s) const {
  const Sensor& sensor = net_.sensor(s);
  return !sensor.alive() || sensor.battery.fraction() < config_.critical_fraction;
}

std::vector<Vec2> World::current_target_positions() const {
  std::vector<Vec2> target_pos;
  target_pos.reserve(net_.num_targets());
  for (const Target& t : net_.targets()) target_pos.push_back(t.pos);
  return target_pos;
}

void World::recluster() {
  // Tear down the previous activation state.
  traffic_.clear_sources();
  for (Sensor& s : net_.sensors()) s.monitoring = false;

  std::vector<bool> alive(net_.num_sensors());
  for (SensorId s = 0; s < net_.num_sensors(); ++s) alive[s] = soa_.alive(s);
  const std::vector<Vec2> target_pos = current_target_positions();

  // Sensor positions are static for the whole run, so the SoA block doubles
  // as the clustering input without a per-recluster copy.
  clusters_ = balanced_clustering(soa_.pos, target_pos,
                                  config_.sensing_range.value(), alive);
  for (SensorId s = 0; s < net_.num_sensors(); ++s) {
    net_.sensor(s).assigned_target = clusters_.assignment[s];
  }

  rotors_.assign(net_.num_targets(), ClusterRotor{});
  active_monitor_.assign(net_.num_targets(), kInvalidId);
  coverable_.assign(net_.num_targets(), false);

  net_.rebuild_routing();

  const double rate_pps = config_.data_rate_pkt_per_min / 60.0;
  // The coverable queries are pure grid/scan lookups, so they shard into
  // disjoint byte slots (vector<bool> packs bits, hence the scratch); the
  // rotor/activation/traffic mutations below stay serial.
  coverable_scratch_.assign(net_.num_targets(), 0);
  exec_.for_shards(net_.num_targets(), [this](std::size_t begin, std::size_t end) {
    for (TargetId t = begin; t < end; ++t) {
      coverable_scratch_[t] = (engine_ == WorldEngine::kReference
                                   ? net_.any_covering_scan(net_.target(t).pos)
                                   : net_.any_covering(net_.target(t).pos))
                                  ? 1
                                  : 0;
    }
  });
  for (TargetId t = 0; t < net_.num_targets(); ++t) {
    coverable_[t] = coverable_scratch_[t] != 0;
    rotors_[t] = ClusterRotor(clusters_.members[t]);
    if (config_.activation == ActivationPolicy::kRoundRobin) {
      const SensorId first =
          rotors_[t].select_first([&](SensorId s) { return operational(s); });
      if (first != kInvalidId) {
        net_.sensor(first).monitoring = true;
        active_monitor_[t] = first;
        traffic_.add_source(net_.routing(), first, rate_pps);
      }
    } else {
      apply_full_time_activation(t);
    }
  }

  rebuild_counters();
  refresh_drains();  // full scan in both engines; clears pending marks
  for (ClusterId c = 0; c < net_.num_targets(); ++c) evaluate_cluster_requests(c);
  dispatch();
}

void World::recluster_moved_target(TargetId t, Vec2 old_pos) {
  const Vec2 new_pos = net_.target(t).pos;
  // Mirror the step into the target grid (maintained under both engines so
  // the index is always current; only the incremental engine queries it).
  target_index_.move(t, new_pos);

  // Dirty region: alive sensors within sensing range of either endpoint of
  // the step. Only their candidate sets can change — and only target t's
  // coverable bit, since sensor positions are static.
  std::vector<SensorId> dirty;
  if (engine_ == WorldEngine::kReference) {
    const double range = config_.sensing_range.value();
    const double r2 = range * range;
    // Per-shard hit lists concatenated in shard-index order reproduce the
    // serial ascending push_back sequence exactly (the scan is pure).
    dirty = exec_.reduce_shards(
        net_.num_sensors(), std::move(dirty),
        [&](std::size_t begin, std::size_t end) {
          std::vector<SensorId> hits;
          for (SensorId s = begin; s < end; ++s) {
            if (!soa_.alive(s)) continue;
            if (squared_distance(soa_.pos[s], old_pos) <= r2 ||
                squared_distance(soa_.pos[s], new_pos) <= r2) {
              hits.push_back(s);
            }
          }
          return hits;
        },
        [](std::vector<SensorId>& acc, std::vector<SensorId>&& hits) {
          acc.insert(acc.end(), hits.begin(), hits.end());
        });
  } else {
    net_.for_each_covering(old_pos, [&](SensorId s) {
      if (soa_.alive(s)) dirty.push_back(s);
    });
    net_.for_each_covering(new_pos, [&](SensorId s) {
      if (soa_.alive(s)) dirty.push_back(s);
    });
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  }

  set_coverable(t, engine_ == WorldEngine::kReference
                       ? net_.any_covering_scan(new_pos)
                       : net_.any_covering(new_pos));

  // Reference engine: candidate sets by full target scan (the original
  // code path, kept as the oracle). Incremental engine: same sets from the
  // target grid — the equivalence suite checks the runs stay byte-identical.
  RebalanceResult res;
  if (engine_ == WorldEngine::kReference) {
    const std::vector<Vec2> target_pos = current_target_positions();
    res = rebalance_dirty(
        clusters_, [this](SensorId s) { return soa_.pos[s]; }, target_pos,
        config_.sensing_range.value(), dirty);
  } else {
    cand_scratch_.resize(dirty.size());
    // Disjoint output slots + const grid queries: the candidate scans shard
    // freely and the result is position-for-position what the serial loop
    // produces (candidates() sorts each slot ascending itself).
    exec_.for_shards(dirty.size(), [this, &dirty](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        target_index_.candidates(soa_.pos[dirty[i]],
                                 config_.sensing_range.value(), cand_scratch_[i]);
      }
    });
    res = rebalance_dirty(clusters_, cand_scratch_, dirty);
  }
  for (const RebalanceResult::Move& mv : res.moves) {
    net_.sensor(mv.sensor).assigned_target = mv.to;
  }
  apply_rebalance(res, res.affected);
  request_drain_refresh();
  dispatch();
}

void World::apply_rebalance(const RebalanceResult& res,
                            std::vector<TargetId> affected) {
  const double rate_pps = config_.data_rate_pkt_per_min / 60.0;
  for (const RebalanceResult::Move& mv : res.moves) {
    Sensor& sensor = net_.sensor(mv.sensor);
    if (mv.from != kInvalidId) {
      rotors_[mv.from].remove_member(mv.sensor);
      if (operational(mv.sensor)) --alive_members_[mv.from];
    }
    if (mv.to != kInvalidId) {
      rotors_[mv.to].add_member(mv.sensor);
      if (operational(mv.sensor)) ++alive_members_[mv.to];
    }
    if (config_.activation == ActivationPolicy::kFullTime &&
        operational(mv.sensor)) {
      const bool want = mv.to != kInvalidId;
      if (sensor.monitoring != want) {
        sensor.monitoring = want;
        if (want) {
          traffic_.add_source(net_.routing(), mv.sensor, rate_pps);
        } else if (traffic_.has_source(mv.sensor)) {
          traffic_.remove_source(mv.sensor);
        }
        mark_drain_dirty(mv.sensor);
      }
    }
  }

  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  if (config_.activation == ActivationPolicy::kRoundRobin) {
    // First clear every monitor that is no longer an alive member of its
    // cluster — before reselecting, so a monitor that migrated clusters is
    // never cleared after its new cluster adopted it.
    for (const TargetId a : affected) {
      const SensorId m = active_monitor_[a];
      if (m == kInvalidId) continue;
      if (net_.sensor(m).assigned_target == a && operational(m)) continue;
      if (net_.sensor(m).monitoring) {
        net_.sensor(m).monitoring = false;
        if (traffic_.has_source(m)) traffic_.remove_source(m);
        mark_drain_dirty(m);
      }
      active_monitor_[a] = kInvalidId;
      recompute_covered(a);
    }
    for (const TargetId a : affected) {
      if (active_monitor_[a] != kInvalidId) continue;
      const SensorId next = rotors_[a].select_first(
          [&](SensorId id) { return operational(id); });
      if (next != kInvalidId) {
        set_monitor(a, next);
      } else {
        recompute_covered(a);
      }
    }
  } else {
    for (const TargetId a : affected) recompute_covered(a);
  }

  for (const TargetId a : affected) evaluate_cluster_requests(a);
}

void World::revive_membership(SensorId s) {
  RebalanceResult res;
  if (engine_ == WorldEngine::kReference) {
    const std::vector<Vec2> target_pos = current_target_positions();
    res = rebalance_dirty(
        clusters_, [this](SensorId id) { return soa_.pos[id]; }, target_pos,
        config_.sensing_range.value(), {s});
  } else {
    cand_scratch_.resize(1);
    target_index_.candidates(soa_.pos[s], config_.sensing_range.value(),
                             cand_scratch_[0]);
    res = rebalance_dirty(clusters_, cand_scratch_, {s});
  }
  for (const RebalanceResult::Move& mv : res.moves) {
    net_.sensor(mv.sensor).assigned_target = mv.to;
  }
  std::vector<TargetId> affected = res.affected;
  if (net_.sensor(s).assigned_target != kInvalidId) {
    affected.push_back(net_.sensor(s).assigned_target);
  }
  apply_rebalance(res, std::move(affected));
  // Full-time policy: a revived sensor that stayed in its old cluster was
  // deactivated at death; put it back on duty.
  Sensor& sensor = net_.sensor(s);
  if (config_.activation == ActivationPolicy::kFullTime &&
      sensor.assigned_target != kInvalidId && !sensor.monitoring &&
      soa_.hw_fault[s] == 0) {
    sensor.monitoring = true;
    traffic_.add_source(net_.routing(), s, config_.data_rate_pkt_per_min / 60.0);
    mark_drain_dirty(s);
    recompute_covered(sensor.assigned_target);
  }
}

void World::apply_full_time_activation(TargetId t) {
  const double rate_pps = config_.data_rate_pkt_per_min / 60.0;
  for (SensorId s : clusters_.members[t]) {
    if (!operational(s)) continue;
    net_.sensor(s).monitoring = true;
    traffic_.add_source(net_.routing(), s, rate_pps);
  }
}

void World::set_monitor(TargetId t, SensorId s) {
  const SensorId old = active_monitor_[t];
  if (old == s) return;
  if (old != kInvalidId) {
    net_.sensor(old).monitoring = false;
    if (traffic_.has_source(old)) traffic_.remove_source(old);
    mark_drain_dirty(old);
  }
  active_monitor_[t] = s;
  if (s != kInvalidId) {
    net_.sensor(s).monitoring = true;
    traffic_.add_source(net_.routing(), s, config_.data_rate_pkt_per_min / 60.0);
    mark_drain_dirty(s);
  }
  recompute_covered(t);
}

void World::on_slot_rotation() {
  for (TargetId t = 0; t < net_.num_targets(); ++t) {
    if (rotors_[t].empty()) continue;
    const SensorId next =
        rotors_[t].advance([&](SensorId s) { return operational(s); });
    set_monitor(t, next);
  }
  request_drain_refresh();
  queue_.push(now_ + config_.activation_slot.value(), EventKind::kSlotRotation);
}

void World::on_target_move(TargetId t) {
  if (config_.target_motion == TargetMotion::kTeleport) {
    net_.relocate_target(t, target_rng_);
    // recluster() rebuilds clusters from scratch, but the target grid still
    // needs the jump mirrored for later scoped queries (revive_membership).
    target_index_.move(t, net_.target(t).pos);
    recluster();
    queue_.push(now_ + config_.target_period.value(), EventKind::kTargetMove, t);
    return;
  }

  // Random waypoint: walk in straight segments of at most one target period
  // (clusters are refreshed per segment), dwell one period on arrival, then
  // pick the next waypoint.
  const Vec2 pos = net_.target(t).pos;
  const double dist = distance(pos, target_waypoint_[t]);
  if (dist < 1e-9) {
    if (!target_dwelling_[t]) {
      target_dwelling_[t] = true;  // arrived: rest for one period
      queue_.push(now_ + config_.target_period.value(), EventKind::kTargetMove, t);
      return;
    }
    target_dwelling_[t] = false;
    target_waypoint_[t] =
        random_location(config_.field_side.value(), target_rng_);
  }
  const Vec2 goal = target_waypoint_[t];
  const double leg = distance(pos, goal);
  const double speed = config_.target_speed.value();
  const double step_time = std::min(config_.target_period.value(), leg / speed);
  const Vec2 next =
      leg <= speed * step_time ? goal : lerp(pos, goal, speed * step_time / leg);
  net_.set_target_position(t, next);
  recluster_moved_target(t, pos);
  queue_.push(now_ + step_time, EventKind::kTargetMove, t);
}

void World::evaluate_cluster_requests(ClusterId c) {
  const auto& members = clusters_.members[c];
  if (members.empty()) return;
  std::size_t below = 0;
  for (SensorId s : members) {
    settle_sensor(s);  // decision point: thresholds compare current levels
    const Sensor& sensor = net_.sensor(s);
    if (!sensor.alive() || sensor.below_threshold(config_.battery.threshold_fraction)) {
      ++below;
    }
  }
  if (below < erp_trigger_count(members.size(), effective_erp())) return;
  for (SensorId s : members) {
    const Sensor& sensor = net_.sensor(s);
    if (!sensor.alive() || sensor.below_threshold(config_.battery.threshold_fraction)) {
      add_request(s);
    }
  }
}

void World::add_request(SensorId s) {
  settle_sensor(s);
  Sensor& sensor = net_.sensor(s);
  if (sensor.recharge_requested) return;
  sensor.recharge_requested = true;
  request_time_[s] = now_;
  req_travel_accum_[s] = 0.0;  // fresh lifecycle: restart the breakdown clock
  metrics_.on_request();
  if (spans_ != nullptr) {
    request_span_[s] = spans_->begin("request", s, "request", now_);
  }
  if (fault_ == nullptr) {
    deliver_request(s);
    return;
  }
  // Fresh uplink cycle: invalidate any stale retry event, then roll the
  // first attempt's verdict.
  ++uplink_epoch_[s];
  uplink_attempt_[s] = 0;
  uplink_pending_[s] = UplinkPending::kNone;
  attempt_uplink(s);
}

void World::deliver_request(SensorId s) {
  Sensor& sensor = net_.sensor(s);
  RechargeRequest request;
  request.sensor = s;
  request.cluster = sensor.assigned_target;
  request.pos = sensor.pos;
  request.demand = sensor.battery.demand();
  request.critical = sensor_critical(s);
  request.fraction = sensor.battery.fraction();
  requests_.add(std::move(request));
  if (spans_ != nullptr && request_span_[s] != 0) {
    spans_->mark(request_span_[s], "uplink-delivered", now_);
  }
}

bool World::attempt_uplink(SensorId s) {
  const FaultPlan& plan = fault_->plan();
  const std::uint64_t attempt = uplink_attempt_[s]++;
  const UplinkDecision d = plan.uplink(s, attempt);
  switch (d.outcome) {
    case UplinkOutcome::kDeliver:
      deliver_request(s);
      return true;
    case UplinkOutcome::kDelay:
      // The packet is in flight; it lands (and is delivered unconditionally)
      // when the event fires.
      metrics_.on_request_delayed();
      if (spans_ != nullptr && request_span_[s] != 0) {
        spans_->mark(request_span_[s], "uplink-delay", now_, "", d.delay_s);
      }
      uplink_pending_[s] = UplinkPending::kDeliver;
      queue_.push(now_ + d.delay_s, EventKind::kRequestUplink, s,
                  uplink_epoch_[s]);
      return false;
    case UplinkOutcome::kDrop:
      metrics_.on_request_lost();
      if (fault_lost_counter_ != nullptr) fault_lost_counter_->add();
      if (spans_ != nullptr && request_span_[s] != 0) {
        spans_->mark(request_span_[s], "uplink-drop", now_);
      }
      if (attempt >= plan.max_retries()) {
        expire_request(s);
        return false;
      }
      // TTL/backoff: the sensor notices the missing acknowledgement after
      // the timeout and re-sends; each drop doubles (by default) the wait.
      uplink_pending_[s] = UplinkPending::kRetry;
      queue_.push(now_ + plan.retry_delay_s(attempt), EventKind::kRequestUplink,
                  s, uplink_epoch_[s]);
      return false;
  }
  return false;
}

void World::expire_request(SensorId s) {
  Sensor& sensor = net_.sensor(s);
  WRSN_ASSERT(sensor.recharge_requested, "expiring a sensor with no request");
  WRSN_ASSERT(!requests_.contains(s), "expiring a delivered request");
  sensor.recharge_requested = false;
  request_time_[s] = -1.0;
  ++uplink_epoch_[s];
  uplink_pending_[s] = UplinkPending::kNone;
  metrics_.on_request_expired();
  if (fault_expired_counter_ != nullptr) fault_expired_counter_->add();
  if (spans_ != nullptr && request_span_[s] != 0) {
    spans_->end(request_span_[s], now_, "expired");
    request_span_[s] = 0;
  }
  // The cluster may re-fire a fresh request at the next ERP evaluation.
}

void World::on_request_uplink(SensorId s) {
  // The epoch guard in run_until discarded events from superseded cycles;
  // the remaining hazards (request satisfied, delivered) are re-checked
  // defensively because charge-done bumps the epoch only when fault_ is set.
  Sensor& sensor = net_.sensor(s);
  const UplinkPending pending = uplink_pending_[s];
  uplink_pending_[s] = UplinkPending::kNone;
  if (!sensor.recharge_requested || requests_.contains(s)) return;
  if (pending == UplinkPending::kDeliver) {
    deliver_request(s);
    dispatch();
    return;
  }
  if (pending == UplinkPending::kNone) return;  // stale safety net
  metrics_.on_request_retried();
  if (fault_retried_counter_ != nullptr) fault_retried_counter_->add();
  if (spans_ != nullptr && request_span_[s] != 0) {
    spans_->mark(request_span_[s], "uplink-retry", now_);
  }
  if (attempt_uplink(s)) dispatch();
}

void World::on_sensor_fault_start(SensorId s) {
  if (soa_.hw_fault[s] != 0) return;  // overlapping windows filtered in plan
  settle_sensor(s);
  soa_.hw_fault[s] = 1;
  metrics_.on_sensor_hw_fault();
  if (fault_hw_fault_counter_ != nullptr) fault_hw_fault_counter_->add();
  Sensor& sensor = net_.sensor(s);
  if (!sensor.alive()) return;  // fault on a dead node only matters on revive

  const TargetId t = sensor.assigned_target;
  if (t != kInvalidId) --alive_members_[t];
  if (sensor.monitoring) {
    sensor.monitoring = false;
    if (traffic_.has_source(s)) traffic_.remove_source(s);
    mark_drain_dirty(s);
  }
  if (t != kInvalidId && active_monitor_[t] == s) {
    // Mirror the death path: hand the slot to the next operational member.
    const SensorId next =
        rotors_[t].advance([&](SensorId id) { return operational(id); });
    active_monitor_[t] = kInvalidId;
    if (next != kInvalidId) {
      set_monitor(t, next);  // recomputes covered
    } else {
      // Cluster went dark; set_monitor(kInvalid -> kInvalid) would no-op, so
      // the coverage flag must be refreshed here (no alive transition fires
      // for a hardware fault, unlike the death path).
      recompute_covered(t);
    }
  } else if (t != kInvalidId) {
    recompute_covered(t);
  }
  request_drain_refresh();
}

void World::on_sensor_fault_end(SensorId s) {
  if (soa_.hw_fault[s] == 0) return;
  settle_sensor(s);
  soa_.hw_fault[s] = 0;
  Sensor& sensor = net_.sensor(s);
  if (!sensor.alive()) return;

  const TargetId t = sensor.assigned_target;
  if (t != kInvalidId) ++alive_members_[t];
  if (t != kInvalidId && config_.activation == ActivationPolicy::kFullTime &&
      !sensor.monitoring) {
    sensor.monitoring = true;
    traffic_.add_source(net_.routing(), s, config_.data_rate_pkt_per_min / 60.0);
    mark_drain_dirty(s);
  }
  if (t != kInvalidId && config_.activation == ActivationPolicy::kRoundRobin &&
      active_monitor_[t] == kInvalidId) {
    // The cluster went dark while this sensor was down; put it on duty now
    // instead of waiting for the next rotation tick.
    const SensorId next =
        rotors_[t].select_first([&](SensorId id) { return operational(id); });
    if (next != kInvalidId) set_monitor(t, next);
  }
  if (t != kInvalidId) recompute_covered(t);
  request_drain_refresh();
}

void World::on_sensor_crossing(SensorId s) {
  soa_.crossing_time[s] = kNoCrossing;  // the pending crossing just fired
  settle_sensor(s);
  Sensor& sensor = net_.sensor(s);
  if (!soa_.alive(s)) {
    handle_death(s);
    dispatch();
    return;
  }
  if (soa_.crossing_to_death[s] == 0 &&
      sensor.below_threshold(config_.battery.threshold_fraction)) {
    if (sensor.assigned_target == kInvalidId) {
      // Unclustered sensors follow the prior-work rule: request immediately.
      add_request(s);
    } else {
      evaluate_cluster_requests(sensor.assigned_target);
    }
    // Next stop: depletion.
    invalidate_crossing(s);
    schedule_crossing(s);
    dispatch();
  } else {
    // Speculative fire: the prediction moved later after this event was
    // queued (level still above threshold, or a death-targeted crossing
    // whose depletion receded). Re-predict without evaluating requests —
    // the threshold evaluation already ran at the genuine crossing.
    invalidate_crossing(s);
    schedule_crossing(s);
  }
}

void World::handle_death(SensorId s) {
  if (soa_.death_processed[s] != 0) return;
  soa_.death_processed[s] = 1;
  Sensor& sensor = net_.sensor(s);
  metrics_.on_sensor_death();
  invalidate_crossing(s);
  mark_drain_dirty(s);
  // Annotation, not a terminal end: an RV can still revive the node, in
  // which case the span ends "served"; if it never does, close_spans turns
  // the open span into the "died-waiting" terminal.
  if (spans_ != nullptr && request_span_[s] != 0) {
    spans_->mark(request_span_[s], "sensor-died", now_);
  }

  if (sensor.monitoring) {
    sensor.monitoring = false;
    if (traffic_.has_source(s)) traffic_.remove_source(s);
  }
  const TargetId t = sensor.assigned_target;
  if (t != kInvalidId && active_monitor_[t] == s) {
    const SensorId next =
        rotors_[t].advance([&](SensorId id) { return operational(id); });
    active_monitor_[t] = kInvalidId;  // force set_monitor to register anew
    set_monitor(t, next);
  } else if (t != kInvalidId) {
    recompute_covered(t);
  }

  // A dead relay changes the topology for everyone.
  if (net_.rebuild_routing()) traffic_.reroute(net_.routing());

  if (t == kInvalidId) {
    add_request(s);
  } else {
    evaluate_cluster_requests(t);
  }
  request_drain_refresh();
}

void World::record_sample() {
  if (!record_series_) return;
  const StateSnapshot snap = snapshot();
  TimeSeriesPoint p;
  p.t = now_;
  p.alive = snap.alive_sensors;
  p.covered = snap.covered_targets;
  p.coverable = snap.coverable_targets;
  p.pending_requests = requests_.size();
  p.rv_travel_distance = metrics_.rv_travel_distance().value();
  series_.push_back(p);
}

}  // namespace wrsn
