#include "sim/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <type_traits>
#include <vector>

#include "core/atomic_file.hpp"
#include "core/binio.hpp"
#include "core/config_io.hpp"
#include "core/error.hpp"
#include "core/json.hpp"

namespace wrsn {

namespace {

constexpr std::string_view kMagic{"WRSNSNAP"};

template <typename Ar>
inline constexpr bool kLoading = std::is_same_v<Ar, BinReader>;

// --- field helpers -------------------------------------------------------
// Each helper is one symmetric save/load pair behind `if constexpr`, so a
// field listed once in SnapshotAccess::io is encoded and decoded by the same
// statement — the two directions cannot drift apart.

template <typename Ar, typename Rng>
void io_rng(Ar& ar, Rng& rng) {
  if constexpr (kLoading<Ar>) {
    std::array<std::uint64_t, 4> s{};
    for (auto& v : s) ar.u64(v);
    rng = Xoshiro256(s);
  } else {
    for (const std::uint64_t v : rng.state()) ar.u64(v);
  }
}

// Index scalar (SensorId / TargetId / std::size_t) through u64, so the
// encoding never depends on the platform's size_t flavour.
template <typename Ar, typename T>
void io_index(Ar& ar, T& v) {
  if constexpr (kLoading<Ar>) {
    std::uint64_t e = 0;
    ar.u64(e);
    v = static_cast<std::decay_t<T>>(e);
  } else {
    ar.u64(static_cast<std::uint64_t>(v));
  }
}

template <typename Ar, typename V>
void io_index_vec(Ar& ar, V& v) {
  if constexpr (kLoading<Ar>) {
    std::uint64_t n = 0;
    ar.u64(n);
    v.clear();
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t e = 0;
      ar.u64(e);
      v.push_back(static_cast<typename V::value_type>(e));
    }
  } else {
    ar.u64(v.size());
    for (const auto e : v) ar.u64(static_cast<std::uint64_t>(e));
  }
}

template <typename Ar, typename V>
void io_bool_vec(Ar& ar, V& v) {
  if constexpr (kLoading<Ar>) {
    std::uint64_t n = 0;
    ar.u64(n);
    v.assign(static_cast<std::size_t>(n), false);
    for (std::uint64_t i = 0; i < n; ++i) {
      bool b = false;
      ar.boolean(b);
      v[static_cast<std::size_t>(i)] = b;
    }
  } else {
    ar.u64(v.size());
    for (const bool b : v) ar.boolean(b);
  }
}

template <typename Ar, typename E>
void io_enum8(Ar& ar, E& v) {
  if constexpr (kLoading<Ar>) {
    std::uint8_t b = 0;
    ar.u8(b);
    v = static_cast<std::decay_t<E>>(b);
  } else {
    ar.u8(static_cast<std::uint8_t>(v));
  }
}

template <typename Ar, typename V>
void io_enum8_vec(Ar& ar, V& v) {
  if constexpr (kLoading<Ar>) {
    std::uint64_t n = 0;
    ar.u64(n);
    v.assign(static_cast<std::size_t>(n), typename V::value_type{});
    for (auto& e : v) {
      std::uint8_t b = 0;
      ar.u8(b);
      e = static_cast<typename V::value_type>(b);
    }
  } else {
    ar.u64(v.size());
    for (const auto e : v) ar.u8(static_cast<std::uint8_t>(e));
  }
}

template <typename Ar, typename V>
void io_vec2_vec(Ar& ar, V& v) {
  if constexpr (kLoading<Ar>) {
    std::uint64_t n = 0;
    ar.u64(n);
    v.assign(static_cast<std::size_t>(n), Vec2{});
  } else {
    ar.u64(v.size());
  }
  for (auto& p : v) {
    ar.f64(p.x);
    ar.f64(p.y);
  }
}

template <typename Ar, typename B>
void io_battery_level(Ar& ar, B& battery) {
  if constexpr (kLoading<Ar>) {
    double level = 0.0;
    ar.f64(level);
    battery.set_level(Joule{level});
  } else {
    ar.f64(battery.level().value());
  }
}

// One queued event; shared by the save loop (on a by-value copy) and the
// load loop (on a default-constructed Event).
template <typename Ar>
void io_event(Ar& ar, Event& e) {
  ar.f64(e.time);
  ar.u64(e.seq);
  io_enum8(ar, e.kind);
  io_index(ar, e.subject);
  ar.u64(e.epoch);
}

template <typename Ar, typename P>
void io_series_point(Ar& ar, P& p) {
  ar.f64(p.t);
  ar.size(p.alive);
  ar.size(p.covered);
  ar.size(p.coverable);
  ar.size(p.pending_requests);
  ar.f64(p.rv_travel_distance);
}

}  // namespace

// The one place that walks World's mutable members. Instantiated twice:
// (const World&, BinWriter&) to save, (World&, BinReader&) to load. Members
// rebuilt deterministically by the World(config, engine) constructor — the
// deployment, comm graph, sensing grid, SoA capacity/positions, fault plan,
// scheduler policy, executor, scratch buffers — are deliberately absent;
// the target bucket grid is re-initialized from the restored target
// positions at the end (its query results are order-insensitive).
struct SnapshotAccess {
  template <typename W, typename Ar>
  static void io(W& w, Ar& ar) {
    constexpr bool kLoad = kLoading<Ar>;
    const std::size_t num_sensors = w.config_.num_sensors;
    const std::size_t num_targets = w.config_.num_targets;

    // --- clock, counters, RNG positions ---------------------------------
    ar.f64(w.now_);
    ar.f64(w.end_);
    ar.boolean(w.finished_);
    ar.u64(w.events_processed_);
    ar.size(w.queue_hwm_);
    ar.f64(w.sensor_energy_consumed_);
    io_rng(ar, w.target_rng_);
    io_rng(ar, w.sched_rng_);

    // --- sensor hot state (SoA) + battery mirrors ------------------------
    ar.vec(w.soa_.level);
    ar.vec(w.soa_.drain);
    ar.vec(w.soa_.last_settle);
    ar.vec(w.soa_.epoch);
    ar.vec(w.soa_.crossing_time);
    ar.vec(w.soa_.crossing_to_death);
    ar.vec(w.soa_.death_processed);
    ar.vec(w.soa_.hw_fault);
    if constexpr (kLoad) {
      WRSN_REQUIRE(w.soa_.level.size() == num_sensors,
                   "snapshot sensor count does not match its config");
      for (SensorId s = 0; s < num_sensors; ++s) {
        w.net_.sensor(s).battery.set_level(Joule{w.soa_.level[s]});
      }
    }

    // --- network mirrors & routing ---------------------------------------
    for (std::size_t s = 0; s < num_sensors; ++s) {
      auto& sensor = w.net_.sensor(s);
      io_index(ar, sensor.assigned_target);
      ar.boolean(sensor.monitoring);
      ar.boolean(sensor.recharge_requested);
    }
    for (TargetId t = 0; t < num_targets; ++t) {
      if constexpr (kLoad) {
        Vec2 p;
        ar.f64(p.x);
        ar.f64(p.y);
        w.net_.set_target_position(t, p);
      } else {
        Vec2 p = w.net_.target(t).pos;
        ar.f64(p.x);
        ar.f64(p.y);
      }
    }
    {
      // The mask the routing tree was built from can lag the alive flags (a
      // death crossing may still be queued), so routing is restored from the
      // serialized mask — never recomputed from the restored sensors.
      std::vector<bool> mask;
      if constexpr (!kLoad) mask = w.net_.last_alive_mask();
      io_bool_vec(ar, mask);
      if constexpr (kLoad) w.net_.restore_routing(mask);
    }
    if constexpr (kLoad) {
      w.traffic_.deserialize(ar);
    } else {
      w.traffic_.serialize(ar);
    }

    // --- clustering & activation -----------------------------------------
    if constexpr (kLoad) {
      std::uint64_t n = 0;
      ar.u64(n);
      w.clusters_.members.assign(static_cast<std::size_t>(n),
                                 std::vector<SensorId>{});
    } else {
      ar.u64(w.clusters_.members.size());
    }
    for (auto& members : w.clusters_.members) io_index_vec(ar, members);
    io_index_vec(ar, w.clusters_.assignment);
    io_index_vec(ar, w.clusters_.loads);
    if constexpr (kLoad) {
      std::uint64_t n = 0;
      ar.u64(n);
      w.rotors_.assign(static_cast<std::size_t>(n), ClusterRotor{});
      for (auto& rotor : w.rotors_) {
        std::vector<SensorId> members;
        io_index_vec(ar, members);
        std::size_t cursor = 0;
        ar.size(cursor);
        rotor.restore(std::move(members), cursor);
      }
    } else {
      ar.u64(w.rotors_.size());
      for (const auto& rotor : w.rotors_) {
        io_index_vec(ar, rotor.members());
        ar.size(rotor.cursor());
      }
    }
    io_index_vec(ar, w.active_monitor_);
    io_bool_vec(ar, w.coverable_);
    io_bool_vec(ar, w.covered_);
    io_index_vec(ar, w.alive_members_);
    ar.size(w.alive_count_);
    ar.size(w.coverable_count_);
    ar.size(w.covered_count_);

    // --- recharge requests & claims --------------------------------------
    if constexpr (kLoad) {
      w.requests_.clear();
      std::uint64_t n = 0;
      ar.u64(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        RechargeRequest req;
        io_index(ar, req.sensor);
        io_index(ar, req.cluster);
        ar.f64(req.pos.x);
        ar.f64(req.pos.y);
        double demand = 0.0;
        ar.f64(demand);
        req.demand = Joule{demand};
        ar.boolean(req.critical);
        ar.f64(req.fraction);
        w.requests_.add(req);  // arrival order rebuilds the slot index
      }
    } else {
      const auto& reqs = w.requests_.requests();
      ar.u64(reqs.size());
      for (const RechargeRequest& req : reqs) {
        io_index(ar, req.sensor);
        io_index(ar, req.cluster);
        ar.f64(req.pos.x);
        ar.f64(req.pos.y);
        ar.f64(req.demand.value());
        ar.boolean(req.critical);
        ar.f64(req.fraction);
      }
    }
    ar.vec(w.request_time_);
    {
      // claimed_ is an unordered_set; sorted for canonical snapshot bytes.
      std::vector<SensorId> claimed;
      if constexpr (!kLoad) {
        claimed.assign(w.claimed_.begin(), w.claimed_.end());
        std::sort(claimed.begin(), claimed.end());
      }
      io_index_vec(ar, claimed);
      if constexpr (kLoad) {
        w.claimed_.clear();
        w.claimed_.insert(claimed.begin(), claimed.end());
      }
    }

    // --- RV fleet ---------------------------------------------------------
    if constexpr (kLoad) {
      std::uint64_t n = 0;
      ar.u64(n);
      WRSN_REQUIRE(n == w.rvs_.size(),
                   "snapshot RV count does not match its config");
    } else {
      ar.u64(w.rvs_.size());
    }
    for (auto& rv : w.rvs_) {
      io_index(ar, rv.id);
      ar.f64(rv.pos.x);
      ar.f64(rv.pos.y);
      io_battery_level(ar, rv.battery);
      io_enum8(ar, rv.state);
      ar.boolean(rv.in_field);
      {
        std::vector<SensorId> queue;
        if constexpr (!kLoad) queue.assign(rv.service_queue.begin(),
                                           rv.service_queue.end());
        io_index_vec(ar, queue);
        if constexpr (kLoad) rv.service_queue.assign(queue.begin(), queue.end());
      }
      ar.u64(rv.epoch);
      ar.f64(rv.distance_traveled);
      ar.f64(rv.energy_delivered);
      ar.size(rv.nodes_served);
    }

    // --- fault-injection cursors & uplink state machine -------------------
    ar.vec(w.uplink_epoch_);
    ar.vec(w.uplink_attempt_);
    io_enum8_vec(ar, w.uplink_pending_);
    ar.vec(w.stranded_since_);
    io_index_vec(ar, w.rv_breakdown_idx_);
    ar.vec(w.breakdown_began_);

    // --- target motion ----------------------------------------------------
    io_vec2_vec(ar, w.target_waypoint_);
    io_bool_vec(ar, w.target_dwelling_);

    // --- event queue (canonical (time, seq) order) ------------------------
    if constexpr (kLoad) {
      std::uint64_t next_seq = 0;
      ar.u64(next_seq);
      std::uint64_t n = 0;
      ar.u64(n);
      std::vector<Event> events;
      events.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        Event e;
        io_event(ar, e);
        events.push_back(e);
      }
      w.queue_.restore(events, next_seq);
    } else {
      ar.u64(w.queue_.next_seq());
      const std::vector<Event> events = w.queue_.sorted_events();
      ar.u64(events.size());
      for (Event e : events) io_event(ar, e);
    }

    // --- pending drain marks (insertion order) ----------------------------
    if constexpr (kLoad) {
      std::vector<std::size_t> marks;
      io_index_vec(ar, marks);
      w.drain_marks_.reset(num_sensors);
      for (const std::size_t id : marks) w.drain_marks_.add(id);
    } else {
      io_index_vec(ar, w.drain_marks_.ids());
    }

    // --- metrics accumulators & time series -------------------------------
    if constexpr (kLoad) {
      w.metrics_.deserialize(ar);
    } else {
      w.metrics_.serialize(ar);
    }
    ar.boolean(w.record_series_);
    if constexpr (kLoad) {
      std::uint64_t n = 0;
      ar.u64(n);
      w.series_.assign(static_cast<std::size_t>(n), TimeSeriesPoint{});
    } else {
      ar.u64(w.series_.size());
    }
    for (auto& point : w.series_) io_series_point(ar, point);

    // --- span bookkeeping & latency stamps --------------------------------
    ar.boolean(w.spans_closed_);
    ar.vec(w.request_span_);
    ar.vec(w.rv_tour_span_);
    ar.vec(w.rv_leg_span_);
    ar.vec(w.rv_breakdown_span_);
    ar.vec(w.req_travel_accum_);
    ar.vec(w.leg_began_);
    ar.vec(w.charge_began_);

    // --- post-load fixups -------------------------------------------------
    if constexpr (kLoad) {
      // Rebuilt, not serialized: candidates() sorts its output, so the
      // grid's internal cell order is unobservable.
      w.target_index_.init(w.config_.field_side.value(),
                           w.config_.sensing_range.value(),
                           w.current_target_positions());
    }
  }
};

WorldSnapshot World::checkpoint() const {
  WorldSnapshot snap;
  snap.version = kSnapshotSchemaVersion;
  snap.config_text = config_to_text(config_);
  snap.engine = static_cast<std::uint8_t>(engine_);
  snap.now = now_;
  snap.events_processed = events_processed_;
  BinWriter w;
  SnapshotAccess::io(*this, w);
  snap.state = w.take();
  if (spans_ != nullptr) {
    BinWriter spans;
    spans_->serialize(spans);
    snap.span_state = spans.take();
  }
  return snap;
}

World::World(const WorldSnapshot& snap)
    : World(config_from_text(snap.config_text),
            static_cast<WorldEngine>(snap.engine)) {
  load_state(snap);
}

void World::load_state(const WorldSnapshot& snap) {
  WRSN_REQUIRE(snap.version == kSnapshotSchemaVersion,
               "unsupported snapshot schema version");
  BinReader r(snap.state);
  SnapshotAccess::io(*this, r);
  r.expect_end();
}

std::string serialize_snapshot(const WorldSnapshot& snap) {
  BinWriter w;
  w.u32(snap.version);
  w.str(snap.config_text);
  w.u8(snap.engine);
  w.f64(snap.now);
  w.u64(snap.events_processed);
  w.str(snap.span_state);
  w.str(snap.state);
  std::string out{kMagic};
  out += w.bytes();
  BinWriter trailer;
  trailer.u64(fnv1a64(out));
  out += trailer.bytes();
  return out;
}

WorldSnapshot deserialize_snapshot(std::string_view bytes) {
  WRSN_REQUIRE(bytes.size() >= kMagic.size() + 8, "snapshot file too short");
  WRSN_REQUIRE(bytes.substr(0, kMagic.size()) == kMagic,
               "not a WRSN snapshot (bad magic)");
  const std::string_view payload = bytes.substr(0, bytes.size() - 8);
  BinReader trailer(bytes.substr(bytes.size() - 8));
  std::uint64_t stored = 0;
  trailer.u64(stored);
  WRSN_REQUIRE(stored == fnv1a64(payload),
               "snapshot checksum mismatch (truncated or corrupt)");
  BinReader r(payload.substr(kMagic.size()));
  WorldSnapshot snap;
  r.u32(snap.version);
  WRSN_REQUIRE(snap.version == kSnapshotSchemaVersion,
               "unsupported snapshot schema version");
  r.str(snap.config_text);
  r.u8(snap.engine);
  r.f64(snap.now);
  r.u64(snap.events_processed);
  r.str(snap.span_state);
  r.str(snap.state);
  r.expect_end();
  return snap;
}

void save_snapshot_file(const std::string& path, const WorldSnapshot& snap) {
  write_file_atomic(path, serialize_snapshot(snap));
}

WorldSnapshot load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WRSN_REQUIRE(in.is_open(), "cannot open snapshot file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_snapshot(buf.str());
}

std::string snapshot_manifest_meta_line() {
  JsonWriter w;
  w.begin_object()
      .field("record", "meta")
      .field("schema", "wrsn.snapshot")
      .field("version", std::int64_t{1});
  w.key("fields").begin_array();
  for (const char* f : {"id", "file", "t_s", "events", "bytes", "terminal"}) {
    w.value(f);
  }
  w.end_array().end_object();
  return w.str();
}

std::string snapshot_manifest_line(const SnapshotManifestRecord& rec) {
  JsonWriter w;
  w.begin_object()
      .field("record", "snapshot")
      .field("id", rec.id)
      .field("file", rec.file)
      .field("t_s", rec.t_s)
      .field("events", rec.events)
      .field("bytes", rec.bytes)
      .field("terminal", rec.terminal)
      .end_object();
  return w.str();
}

CheckpointWriter::CheckpointWriter(std::string prefix)
    : prefix_(std::move(prefix)), manifest_path_(prefix_ + ".manifest.jsonl") {
  // `--checkpoint runs/exp1/ck` should just work: create the parent dirs.
  const auto parent = std::filesystem::path(prefix_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const bool fresh = !static_cast<bool>(std::ifstream(manifest_path_));
  manifest_ = std::make_unique<JournalWriter>(manifest_path_);
  if (fresh) manifest_->append(snapshot_manifest_meta_line());
}

std::string CheckpointWriter::save(const World& world, bool terminal) {
  const WorldSnapshot snap = world.checkpoint();
  const std::string bytes = serialize_snapshot(snap);
  char tag[16];
  std::snprintf(tag, sizeof tag, ".%06llu.snap",
                static_cast<unsigned long long>(next_id_));
  const std::string path = prefix_ + tag;
  write_file_atomic(path, bytes);
  SnapshotManifestRecord rec;
  rec.id = next_id_++;
  rec.file = path;
  rec.t_s = snap.now;
  rec.events = snap.events_processed;
  rec.bytes = bytes.size();
  rec.terminal = terminal;
  manifest_->append(snapshot_manifest_line(rec));
  return path;
}

}  // namespace wrsn
