#pragma once
// Replica supervision: watchdog timeouts, retry with exponential backoff,
// and quarantine-instead-of-abort.
//
// Campaign runs (wrsn_sweep) execute thousands of replicas; one wedged or
// crashing replica must not take the whole sweep down. The supervisor wraps
// each replica attempt in a policy loop:
//
//   attempt -> ok?        -> done
//           -> timeout /  -> retried (exponential backoff) up to the retry
//              error         cap, then QUARANTINED: the supervisor returns a
//                            failure result instead of throwing, and the
//                            campaign records the cell in `failed_points`
//                            and carries on.
//
// The watchdog is cooperative, built on World's checkpoint hook: the hook
// fires after every processed event, so a deadline check there bounds the
// wall-clock budget of a replica without signals or threads — a run stopped
// by the watchdog simply returns with World::finished() == false, which the
// supervisor reports as a timeout. (A replica stuck *inside* one event
// cannot be interrupted this way; the process-level kill in CI covers that.)
//
// Telemetry (all under "supervisor/"): retries, timeouts, errors,
// quarantines. The sleep between retries is injectable so tests can assert
// the backoff sequence without waiting it out.

#include <cstdint>
#include <functional>
#include <string>

#include "core/config.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace wrsn {

struct SupervisorOptions {
  // Wall-clock budget per attempt, seconds; <= 0 disables the watchdog.
  double watchdog_s = 0.0;
  // Retries after the first attempt before quarantining.
  std::size_t max_retries = 2;
  // First retry delay in milliseconds; doubles on every further retry.
  double backoff_ms = 100.0;
  // Injectable sleep (milliseconds). Null = real std::this_thread sleep.
  std::function<void(double)> sleep_ms;
};

// Outcome of one supervised attempt (the test seam: anything that can run
// once and report ok / timeout / error can be supervised).
struct AttemptOutcome {
  enum class Status : std::uint8_t { kOk, kTimeout, kError };
  Status status = Status::kOk;
  MetricsReport report;  // valid when kOk
  std::string error;     // human-readable cause when kError
};

struct ReplicaResult {
  bool ok = false;             // false = quarantined after exhausting retries
  MetricsReport report;        // valid when ok
  std::size_t attempts = 1;    // total attempts (1 = first try succeeded)
  bool timed_out = false;      // any attempt hit the watchdog
  std::string error;           // last failure cause when quarantined
};

class ReplicaSupervisor {
 public:
  explicit ReplicaSupervisor(SupervisorOptions options,
                             obs::TelemetryRegistry* telemetry = nullptr);

  // Runs one replica of `config` (optionally instrumented) under the
  // watchdog + retry policy. Never throws on replica failure: a replica
  // that keeps failing comes back quarantined.
  [[nodiscard]] ReplicaResult run(const SimConfig& config);
  [[nodiscard]] ReplicaResult run(const SimConfig& config,
                                  const ReplicaInstruments& instruments);

  // Policy core: runs `attempt` until it succeeds or the retry cap is hit,
  // sleeping the backoff schedule in between. Exceptions escaping `attempt`
  // count as errors (and are absorbed — supervision exists so one bad
  // replica cannot abort a campaign).
  [[nodiscard]] ReplicaResult supervise(
      const std::function<AttemptOutcome()>& attempt);

  [[nodiscard]] const SupervisorOptions& options() const { return options_; }

 private:
  void count(const char* name);

  SupervisorOptions options_;
  obs::TelemetryRegistry* telemetry_;
};

}  // namespace wrsn
