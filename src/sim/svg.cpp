#include "sim/svg.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace wrsn {

namespace {

// Battery fraction -> green..red ramp.
std::string battery_color(double fraction) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  const int r = static_cast<int>(220.0 * (1.0 - f) + 30.0 * f);
  const int g = static_cast<int>(40.0 * (1.0 - f) + 170.0 * f);
  std::ostringstream os;
  os << "rgb(" << r << ',' << g << ",60)";
  return os.str();
}

}  // namespace

std::string render_svg(const World& world, const SvgOptions& options) {
  WRSN_REQUIRE(options.pixels_per_meter > 0.0, "scale must be positive");
  const Network& net = world.network();
  const double side = net.config().field_side.value();
  const double s = options.pixels_per_meter;
  const double margin = 12.0 * 1.0;
  const double size = side * s + 2 * margin;
  const double legend_height = options.draw_legend ? 58.0 : 0.0;

  std::ostringstream svg;
  svg << std::fixed << std::setprecision(2);
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size
      << "\" height=\"" << size + legend_height << "\" viewBox=\"0 0 " << size
      << ' ' << size + legend_height << "\">\n";
  svg << "<rect x=\"0\" y=\"0\" width=\"" << size << "\" height=\""
      << size + legend_height << "\" fill=\"#fcfcf8\"/>\n";
  svg << "<rect x=\"" << margin << "\" y=\"" << margin << "\" width=\""
      << side * s << "\" height=\"" << side * s
      << "\" fill=\"none\" stroke=\"#333\" stroke-width=\"1\"/>\n";

  auto px = [&](Vec2 p) {
    // SVG y grows downward; flip so the plot reads like the field.
    return Vec2{margin + p.x * s, margin + (side - p.y) * s};
  };

  if (options.draw_comm_edges) {
    svg << "<g stroke=\"#d8d8e8\" stroke-width=\"0.4\">\n";
    const CommGraph& g = net.graph();
    std::vector<Vec2> all;
    for (const Sensor& sensor : net.sensors()) all.push_back(sensor.pos);
    all.push_back(net.base_station());
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
      for (const CommGraph::Edge& e : g.neighbors(u)) {
        if (e.to < u) continue;  // draw each edge once
        const Vec2 a = px(all[u]);
        const Vec2 b = px(all[e.to]);
        svg << "<line x1=\"" << a.x << "\" y1=\"" << a.y << "\" x2=\"" << b.x
            << "\" y2=\"" << b.y << "\"/>\n";
      }
    }
    svg << "</g>\n";
  }

  if (options.draw_cluster_links) {
    svg << "<g stroke=\"#9db4d0\" stroke-width=\"0.7\">\n";
    const ClusterSet& cs = world.clusters();
    for (TargetId t = 0; t < cs.num_clusters(); ++t) {
      const Vec2 tp = px(net.target(t).pos);
      for (SensorId m : cs.members[t]) {
        const Vec2 mp = px(net.sensor(m).pos);
        svg << "<line x1=\"" << mp.x << "\" y1=\"" << mp.y << "\" x2=\"" << tp.x
            << "\" y2=\"" << tp.y << "\"/>\n";
      }
    }
    svg << "</g>\n";
  }

  // Sensors.
  svg << "<g>\n";
  for (const Sensor& sensor : net.sensors()) {
    const Vec2 p = px(sensor.pos);
    if (!sensor.alive()) {
      svg << "<g stroke=\"#b02020\" stroke-width=\"1.1\">"
          << "<line x1=\"" << p.x - 2.4 << "\" y1=\"" << p.y - 2.4 << "\" x2=\""
          << p.x + 2.4 << "\" y2=\"" << p.y + 2.4 << "\"/>"
          << "<line x1=\"" << p.x - 2.4 << "\" y1=\"" << p.y + 2.4 << "\" x2=\""
          << p.x + 2.4 << "\" y2=\"" << p.y - 2.4 << "\"/></g>\n";
      continue;
    }
    const double radius = sensor.monitoring ? 2.6 : 1.6;
    svg << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\"" << radius
        << "\" fill=\"" << battery_color(sensor.battery.fraction()) << '"';
    if (sensor.monitoring) svg << " stroke=\"#1a4f9c\" stroke-width=\"1.2\"";
    svg << "/>\n";
    if (options.draw_sensing_discs && sensor.monitoring) {
      svg << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\""
          << net.config().sensing_range.value() * s
          << "\" fill=\"none\" stroke=\"#1a4f9c\" stroke-width=\"0.5\" "
             "stroke-dasharray=\"3,3\"/>\n";
    }
  }
  svg << "</g>\n";

  // Targets.
  for (const Target& t : net.targets()) {
    const Vec2 p = px(t.pos);
    svg << "<path d=\"M " << p.x << ' ' << p.y - 4.4 << " L " << p.x + 4.0 << ' '
        << p.y + 3.2 << " L " << p.x - 4.0 << ' ' << p.y + 3.2
        << " Z\" fill=\"#e0a020\" stroke=\"#7a5200\" stroke-width=\"0.8\"/>\n";
  }

  // Base station.
  {
    const Vec2 p = px(net.base_station());
    svg << "<rect x=\"" << p.x - 4.0 << "\" y=\"" << p.y - 4.0
        << "\" width=\"8\" height=\"8\" fill=\"#333\"/>\n";
  }

  // RVs.
  for (const Rv& rv : world.rvs()) {
    const Vec2 p = px(rv.pos);
    svg << "<rect x=\"" << p.x - 3.2 << "\" y=\"" << p.y - 3.2
        << "\" width=\"6.4\" height=\"6.4\" rx=\"1.5\" fill=\"#7030a0\" "
           "stroke=\"#3c1060\" stroke-width=\"0.8\"/>\n";
  }

  if (options.draw_legend) {
    const double y0 = size + 8.0;
    svg << "<g font-family=\"sans-serif\" font-size=\"10\" fill=\"#222\">\n"
        << "<circle cx=\"" << margin + 6 << "\" cy=\"" << y0 + 4
        << "\" r=\"2.6\" fill=\"" << battery_color(1.0)
        << "\" stroke=\"#1a4f9c\" stroke-width=\"1.2\"/>"
        << "<text x=\"" << margin + 14 << "\" y=\"" << y0 + 8
        << "\">active monitor (color = battery)</text>\n"
        << "<path d=\"M " << margin + 4 << ' ' << y0 + 16 << " l 4 7.6 l -8 0 Z\""
        << " fill=\"#e0a020\"/><text x=\"" << margin + 14 << "\" y=\"" << y0 + 24
        << "\">target</text>\n"
        << "<rect x=\"" << margin + 2 << "\" y=\"" << y0 + 32
        << "\" width=\"6.4\" height=\"6.4\" rx=\"1.5\" fill=\"#7030a0\"/>"
        << "<text x=\"" << margin + 14 << "\" y=\"" << y0 + 40
        << "\">recharging vehicle</text>\n"
        << "<text x=\"" << margin + 160 << "\" y=\"" << y0 + 8 << "\">t = "
        << world.now().value() / 3600.0 << " h</text>\n"
        << "</g>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

void save_svg(const std::string& path, const World& world,
              const SvgOptions& options) {
  std::ofstream os(path);
  WRSN_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  os << render_svg(world, options);
}

}  // namespace wrsn
