#pragma once
// Deterministic World checkpoints (schema-versioned).
//
// A WorldSnapshot captures every piece of mutable simulation state at a
// quiescent instant — pending events with their (time, seq) order, the SoA
// sensor block, RV/tour state, RNG stream positions, fault cursors, epoch
// counters, metrics accumulators, span bookkeeping — such that restoring it
// and running to the horizon is byte-identical (report JSON, traces, spans,
// battery bit patterns) to never having stopped. The equivalence suite
// (tests/test_snapshot_equivalence.cpp) pins this across both engines, both
// queue implementations and fault injection.
//
// The config rides inside the snapshot as its canonical text dump
// (core/config_io.hpp, shortest-round-trip doubles), so a snapshot file is
// self-contained: restore needs no side-channel.
//
// File format ("WRSNSNAP"):
//   magic[8] | u32 schema version | binio header (config text, engine, now,
//   events processed, span state) | opaque binary body | u64 FNV-1a trailer
// The trailer covers everything before it; load rejects truncated or
// bit-rotten files before any deserialization happens.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/atomic_file.hpp"
#include "sim/world.hpp"

namespace wrsn {

// v2: routing policy knob + link-quality layer (traffic flows carry per-hop
// ETX/success captures, the integrator tracks packets_offered).
inline constexpr std::uint32_t kSnapshotSchemaVersion = 2;

struct WorldSnapshot {
  std::uint32_t version = kSnapshotSchemaVersion;
  std::string config_text;           // full config dump, round-trippable
  std::uint8_t engine = 0;           // WorldEngine at capture time
  double now = 0.0;                  // simulated seconds at capture
  std::uint64_t events_processed = 0;
  std::string state;                 // opaque binary body (SnapshotAccess)
  // SpanLog bookkeeping (obs/spans.hpp) when a span log was attached at
  // capture; empty otherwise. The World does not own its SpanLog, so the
  // restoring tool deserializes this into a fresh log and re-attaches it.
  std::string span_state;
};

// Whole-file codec (magic + version + checksum around the snapshot).
// deserialize throws InvalidArgument on bad magic, unsupported version,
// truncation or checksum mismatch.
[[nodiscard]] std::string serialize_snapshot(const WorldSnapshot& snap);
[[nodiscard]] WorldSnapshot deserialize_snapshot(std::string_view bytes);

// File variants: save writes atomically (temp file + rename) so a crash
// mid-write never leaves a truncated snapshot under the final name.
void save_snapshot_file(const std::string& path, const WorldSnapshot& snap);
[[nodiscard]] WorldSnapshot load_snapshot_file(const std::string& path);

// --- snapshot manifest (JSONL, schema "wrsn.snapshot") -------------------
// Periodic checkpointing appends one record per snapshot written, so a
// supervisor can find the newest valid checkpoint without parsing binaries:
//   {"record":"meta","schema":"wrsn.snapshot","version":1,...}
//   {"record":"snapshot","id":1,"file":"...","t_s":...,"events":...,
//    "bytes":...,"terminal":false}
// `terminal` marks the final snapshot of a run that reached its horizon (or
// was stopped by a signal) — exactly one record may carry it.

struct SnapshotManifestRecord {
  std::uint64_t id = 0;       // 1-based, strictly increasing per manifest
  std::string file;           // snapshot filename (relative to the manifest)
  double t_s = 0.0;           // simulated time of the snapshot
  std::uint64_t events = 0;   // events processed at capture
  std::uint64_t bytes = 0;    // serialized snapshot size
  bool terminal = false;      // last snapshot of the run
};

[[nodiscard]] std::string snapshot_manifest_meta_line();
[[nodiscard]] std::string snapshot_manifest_line(const SnapshotManifestRecord& rec);

// Numbered-checkpoint writer shared by the CLI tools: each save() snapshots
// the world into PREFIX.NNNNNN.snap (atomic temp+rename) and appends one
// manifest record to PREFIX.manifest.jsonl (fsync'd journal; the meta line
// is written only when the manifest is new, so interrupted runs keep
// appending to one journal).
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string prefix);

  // Returns the path of the snapshot file written.
  std::string save(const World& world, bool terminal);

  [[nodiscard]] const std::string& manifest_path() const { return manifest_path_; }

 private:
  std::string prefix_;
  std::string manifest_path_;
  std::unique_ptr<JournalWriter> manifest_;
  std::uint64_t next_id_ = 1;
};

}  // namespace wrsn
