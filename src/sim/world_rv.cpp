// RV dispatch and motion: the scheduling half of the World (Section IV).
#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "energy/charge_profile.hpp"
#include "sched/tsp.hpp"
#include "sim/world.hpp"

namespace wrsn {

Joule World::rv_reserve() const {
  return config_.rv.capacity * config_.rv.reserve_fraction;
}

const std::vector<RechargeItem>& World::unclaimed_items() {
  // Demands drift while requests wait; refresh them so planners see current
  // values (the base station learns levels from status reports). The request
  // and item lists live in reused scratch buffers: rebuilt every call, valid
  // until the next one.
  unclaimed_scratch_.clear();
  for (const RechargeRequest& r : requests_.requests()) {
    if (claimed_.contains(r.sensor)) continue;
    settle_sensor(r.sensor);  // decision point: planners see current levels
    requests_.update(r.sensor, net_.sensor(r.sensor).battery.demand(),
                     sensor_critical(r.sensor),
                     net_.sensor(r.sensor).battery.fraction());
    unclaimed_scratch_.push_back(r);
    unclaimed_scratch_.back().demand = net_.sensor(r.sensor).battery.demand();
    unclaimed_scratch_.back().critical = sensor_critical(r.sensor);
    unclaimed_scratch_.back().fraction = net_.sensor(r.sensor).battery.fraction();
  }
  items_scratch_ = aggregate_requests(unclaimed_scratch_);
  return items_scratch_;
}

void World::dispatch() {
  const PlannerParams params{config_.rv.move_cost, net_.base_station()};

  for (Rv& rv : rvs_) {
    if (!rv.idle()) continue;

    // Low battery: head home and refill before taking new work.
    if (rv.battery.fraction() < config_.rv.self_recharge_fraction) {
      head_home_and_refill(rv);
      continue;
    }

    const std::vector<RechargeItem>& items = unclaimed_items();
    if (items.empty()) {
      if (rv.in_field) return_to_base(rv);
      continue;
    }

    // Assemble the read-only facade the policy plans against. The snapshots
    // are pure reads; building them for every scheme keeps the physics
    // identical across policies. All plan-round allocations come from reused
    // scratch vectors plus the bump arena (reset per round; any PlanContext
    // the policy built is gone by then).
    plan_arena_.reset();
    const RvPlanState state{rv.pos, rv.battery.level() - rv_reserve()};
    fleet_scratch_.clear();
    fleet_scratch_.reserve(rvs_.size());
    for (const Rv& other : rvs_) fleet_scratch_.push_back(other.pos);
    arrival_scratch_.clear();
    arrival_scratch_.reserve(requests_.requests().size());
    for (const RechargeRequest& req : requests_.requests()) {
      if (!claimed_.contains(req.sensor)) arrival_scratch_.push_back(req.sensor);
    }
    const DispatchContext ctx(
        items, state, params, rv.id, fleet_scratch_, config_.num_rvs,
        sched_rng_, arrival_scratch_,
        [this](SensorId s) {
          return SensorView{net_.sensor(s).pos,
                            net_.sensor(s).battery.demand(),
                            sensor_critical(s)};
        },
        &plan_arena_);

    const DispatchDecision decision = policy_->decide(ctx);
    switch (decision.kind) {
      case DispatchDecision::Kind::kPlan:
        assign_plan(rv, decision.items, decision.sequence);
        break;
      case DispatchDecision::Kind::kReturnToBase:
        if (rv.in_field) return_to_base(rv);
        break;
      case DispatchDecision::Kind::kSelfCharge:
        head_home_and_refill(rv);
        break;
      case DispatchDecision::Kind::kHold:
        break;
    }
  }
}

void World::head_home_and_refill(Rv& rv) {
  if (rv.in_field) {
    return_to_base(rv);
  } else if (rv.battery.level() < rv.battery.capacity()) {
    begin_self_charge(rv);
  }
}

void World::assign_plan(Rv& rv, const std::vector<RechargeItem>& items,
                        const std::vector<std::size_t>& seq) {
  WRSN_ASSERT(rv.idle(), "plans can only be assigned to idle RVs");
  WRSN_ASSERT(rv.service_queue.empty(), "plan assigned over a pending queue");
  WRSN_ASSERT(!seq.empty(), "empty plan");
  std::vector<SensorId> visit;
  Vec2 cur = rv.pos;
  for (std::size_t idx : seq) {
    const RechargeItem& item = items[idx];
    // Inside a cluster the visiting order is a nearest-neighbour tour
    // (Section IV-C).
    std::vector<Vec2> positions;
    positions.reserve(item.sensors.size());
    for (SensorId s : item.sensors) positions.push_back(net_.sensor(s).pos);
    const auto order = nearest_neighbor_tour(cur, positions);
    for (std::size_t k : order) visit.push_back(item.sensors[k]);
    if (!order.empty()) cur = positions[order.back()];
  }
  if (config_.two_opt_tours && visit.size() > 2) {
    // Library extension: polish the whole flattened route.
    std::vector<Vec2> positions;
    positions.reserve(visit.size());
    for (SensorId s : visit) positions.push_back(net_.sensor(s).pos);
    std::vector<std::size_t> order(visit.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    two_opt(rv.pos, positions, order);
    std::vector<SensorId> improved;
    improved.reserve(visit.size());
    for (std::size_t i : order) improved.push_back(visit[i]);
    visit = std::move(improved);
  }
  for (SensorId s : visit) {
    WRSN_ASSERT(!claimed_.contains(s), "sensor claimed twice");
    claimed_.insert(s);
    rv.service_queue.push_back(s);
    if (spans_ != nullptr && request_span_[s] != 0) {
      spans_->mark(request_span_[s], "claimed", now_, "",
                   static_cast<double>(rv.id));
    }
  }
  if (!rv.in_field) {
    rv.in_field = true;
    metrics_.on_rv_tour_started();
    if (spans_ != nullptr) {
      rv_tour_span_[rv.id] = spans_->begin("rv", rv.id, "tour", now_);
    }
  }
  start_next_leg(rv);
}

void World::start_next_leg(Rv& rv) {
  WRSN_ASSERT(!rv.service_queue.empty(), "no leg to start");
  const SensorId next = rv.service_queue.front();
  const Vec2 dest = net_.sensor(next).pos;
  const Meter leg{distance(rv.pos, dest)};
  const Meter home{distance(dest, net_.base_station())};
  const Joule need = config_.rv.move_cost * leg + config_.rv.move_cost * home +
                     rv_reserve();
  if (rv.battery.level() < need) {
    abandon_plan(rv);
    return_to_base(rv);
    return;
  }
  rv.state = Rv::State::kTraveling;
  ++rv.epoch;
  rv.battery.drain(config_.rv.move_cost * leg);
  metrics_.on_rv_leg(leg, config_.rv.move_cost * leg);
  rv.distance_traveled += leg.value();
  const double arrive = now_ + (leg / config_.rv.speed).value();
  queue_.push(arrive, EventKind::kRvArrival, rv.id, rv.epoch);
  leg_began_[rv.id] = now_;
  if (spans_ != nullptr) {
    rv_leg_span_[rv.id] =
        spans_->begin("rv", rv.id, "travel", now_, rv_tour_span_[rv.id]);
  }
}

void World::return_to_base(Rv& rv) {
  const Meter leg{distance(rv.pos, net_.base_station())};
  if (leg.value() <= 1e-9) {
    rv.pos = net_.base_station();
    rv.in_field = false;
    if (spans_ != nullptr && rv_tour_span_[rv.id] != 0) {
      spans_->end(rv_tour_span_[rv.id], now_, "completed");
      rv_tour_span_[rv.id] = 0;
    }
    if (rv.battery.level() < rv.battery.capacity()) {
      begin_self_charge(rv);
    } else {
      rv.state = Rv::State::kIdle;
    }
    return;
  }
  rv.state = Rv::State::kReturning;
  ++rv.epoch;
  rv.battery.drain(config_.rv.move_cost * leg);
  metrics_.on_rv_leg(leg, config_.rv.move_cost * leg);
  rv.distance_traveled += leg.value();
  const double arrive = now_ + (leg / config_.rv.speed).value();
  queue_.push(arrive, EventKind::kRvArrival, rv.id, rv.epoch);
  if (spans_ != nullptr) {
    rv_leg_span_[rv.id] =
        spans_->begin("rv", rv.id, "return", now_, rv_tour_span_[rv.id]);
  }
}

void World::begin_self_charge(Rv& rv) {
  rv.state = Rv::State::kSelfCharging;
  ++rv.epoch;
  const Second dwell = rv.battery.demand() / config_.rv.base_recharge_power;
  queue_.push(now_ + dwell.value(), EventKind::kRvBaseChargeDone, rv.id, rv.epoch);
  if (spans_ != nullptr) {
    rv_leg_span_[rv.id] = spans_->begin("rv", rv.id, "self-charge", now_);
  }
}

void World::abandon_plan(Rv& rv) {
  for (SensorId s : rv.service_queue) claimed_.erase(s);
  rv.service_queue.clear();
}

void World::on_rv_arrival(RvId r) {
  Rv& rv = rvs_[r];
  if (rv.state == Rv::State::kReturning) {
    rv.pos = net_.base_station();
    rv.in_field = false;
    if (spans_ != nullptr) {
      if (rv_leg_span_[r] != 0) {
        spans_->end(rv_leg_span_[r], now_, "arrived");
        rv_leg_span_[r] = 0;
      }
      if (rv_tour_span_[r] != 0) {
        spans_->end(rv_tour_span_[r], now_, "completed");
        rv_tour_span_[r] = 0;
      }
    }
    if (rv.battery.level() < rv.battery.capacity()) {
      begin_self_charge(rv);
    } else {
      rv.state = Rv::State::kIdle;
      dispatch();
    }
    return;
  }
  WRSN_ASSERT(rv.state == Rv::State::kTraveling, "arrival in unexpected state");
  WRSN_ASSERT(!rv.service_queue.empty(), "arrived with empty queue");
  const SensorId s = rv.service_queue.front();
  req_travel_accum_[s] += now_ - leg_began_[r];
  charge_began_[r] = now_;
  rv.pos = net_.sensor(s).pos;
  rv.state = Rv::State::kCharging;
  ++rv.epoch;
  if (spans_ != nullptr) {
    if (rv_leg_span_[r] != 0) {
      spans_->end(rv_leg_span_[r], now_, "arrived");
      rv_leg_span_[r] = 0;
    }
    rv_leg_span_[r] = spans_->begin("rv", r, "charge", now_, rv_tour_span_[r]);
  }
  settle_sensor(s);  // dwell is computed from the node's current level
  // Deliver up to the node's demand, bounded by what the RV can spare and
  // still make it home (constraint (7) + the reserve).
  const Joule spare = rv.battery.level() -
                      config_.rv.move_cost *
                          Meter{distance(rv.pos, net_.base_station())} -
                      rv_reserve();
  const Joule planned =
      std::max(Joule{0.0}, std::min(net_.sensor(s).battery.demand(), spare));
  // Dwell follows the configured charge-acceptance model (ref. [15]).
  const ChargeProfile profile{config_.rv.charge_profile, config_.rv.charge_power,
                              config_.rv.charge_knee_soc,
                              config_.rv.charge_trickle_fraction};
  const Second dwell = profile.time_to_reach(
      net_.sensor(s).battery, net_.sensor(s).battery.level() + planned);
  queue_.push(now_ + dwell.value(), EventKind::kRvChargeDone, rv.id, rv.epoch);
}

void World::on_rv_charge_done(RvId r) {
  Rv& rv = rvs_[r];
  WRSN_ASSERT(rv.state == Rv::State::kCharging, "charge-done in unexpected state");
  WRSN_ASSERT(!rv.service_queue.empty(), "charge-done with empty queue");
  const SensorId s = rv.service_queue.front();
  rv.service_queue.pop_front();

  settle_sensor(s);  // realize the drain over the dwell before topping up
  Sensor& sensor = net_.sensor(s);
  const bool was_dead = !soa_.alive(s);
  const Joule spare = rv.battery.level() -
                      config_.rv.move_cost *
                          Meter{distance(rv.pos, net_.base_station())} -
                      rv_reserve();
  const Joule delivered =
      std::max(Joule{0.0}, std::min(sensor.battery.demand(), spare));
  sensor.battery.charge(delivered);
  soa_.level[s] = sensor.battery.level().value();  // mirror into the hot block
  rv.battery.drain(delivered);

  const double requested_at = request_time_[s];
  const Second latency{requested_at >= 0.0 ? now_ - requested_at : 0.0};
  metrics_.on_recharge(s, delivered, latency);
  // Decompose the end-to-end latency: service is this final dwell, travel
  // the accumulated approach legs toward this sensor, wait the remainder
  // (base-station queueing plus time stranded behind breakdowns).
  if (requested_at >= 0.0) {
    const double service = now_ - charge_began_[r];
    const double travel = req_travel_accum_[s];
    const double wait = std::max(0.0, latency.value() - travel - service);
    metrics_.on_recharge_breakdown(Second{wait}, Second{travel}, Second{service});
  } else {
    metrics_.on_recharge_breakdown(Second{0.0}, Second{0.0}, Second{0.0});
  }
  rv.energy_delivered += delivered.value();
  ++rv.nodes_served;
  if (spans_ != nullptr) {
    if (rv_leg_span_[r] != 0) {
      spans_->end(rv_leg_span_[r], now_, "served", delivered.value());
      rv_leg_span_[r] = 0;
    }
    if (request_span_[s] != 0) {
      spans_->end(request_span_[s], now_, "served", delivered.value());
      request_span_[s] = 0;
    }
  }

  sensor.recharge_requested = false;
  requests_.remove(s);
  claimed_.erase(s);
  request_time_[s] = -1.0;
  invalidate_crossing(s);
  WRSN_DEBUG_ASSERT(requests_.consistent(),
                    "recharge list inconsistent after remove");
  if (fault_ != nullptr) {
    ++uplink_epoch_[s];  // cancel any pending retry for the satisfied request
    uplink_pending_[s] = UplinkPending::kNone;
    if (stranded_since_[s] >= 0.0) {
      // Time-to-recovery: breakdown that stranded this sensor -> recharged.
      metrics_.on_failover_recovery(Second{now_ - stranded_since_[s]});
      stranded_since_[s] = -1.0;
    }
  }

  if (was_dead && soa_.alive(s)) {
    // Revived node rejoins the relay fabric and its cluster immediately (it
    // may have been stranded when its cluster's target walked away).
    on_sensor_alive_changed(s, true);
    soa_.death_processed[s] = 0;
    mark_drain_dirty(s);
    if (net_.rebuild_routing()) traffic_.reroute(net_.routing());
    revive_membership(s);
  } else {
    if (!soa_.alive(s) && soa_.death_processed[s] == 0) {
      // The epoch bump above invalidated the pending death crossing (the
      // node was depleted but undeliverable); process the death here so it
      // is never lost.
      handle_death(s);
    }
    mark_drain_dirty(s);
  }
  request_drain_refresh();
  schedule_crossing(s);

  rv.state = Rv::State::kIdle;
  if (!rv.service_queue.empty()) {
    start_next_leg(rv);
  } else {
    dispatch();
  }
}

void World::on_rv_base_charge_done(RvId r) {
  Rv& rv = rvs_[r];
  WRSN_ASSERT(rv.state == Rv::State::kSelfCharging,
              "base-charge-done in unexpected state");
  const Joule drawn = rv.battery.demand();
  rv.battery.refill();
  metrics_.on_rv_base_recharge(drawn);
  if (spans_ != nullptr && rv_leg_span_[r] != 0) {
    spans_->end(rv_leg_span_[r], now_, "refilled", drawn.value());
    rv_leg_span_[r] = 0;
  }
  rv.state = Rv::State::kIdle;
  dispatch();
}

// ---------------------------------------------------------------------------
// Fault model: breakdowns and failover (src/fault/)
// ---------------------------------------------------------------------------

void World::on_rv_breakdown(RvId r) {
  Rv& rv = rvs_[r];
  // Consume this plan window whether or not it takes effect, so the index
  // stays aligned with the construction-time event pushes.
  const FaultWindow& w = fault_->plan().rv_breakdowns(r)[rv_breakdown_idx_[r]++];
  if (rv.state == Rv::State::kBrokenDown) return;  // abutting windows collapse

  // The vehicle halts where it is: any in-flight arrival/charge-done/base-
  // charge event becomes stale. A leg in progress keeps its departure-time
  // position and energy accounting (the RV is towed from there).
  ++rv.epoch;
  rv.state = Rv::State::kBrokenDown;
  breakdown_began_[r] = now_;
  if (spans_ != nullptr) {
    if (rv_leg_span_[r] != 0) {
      spans_->end(rv_leg_span_[r], now_, "interrupted");
      rv_leg_span_[r] = 0;
    }
    rv_breakdown_span_[r] =
        spans_->begin("rv", r, "breakdown", now_, rv_tour_span_[r]);
  }

  std::size_t stranded = 0;
  if (config_.fault.rv_failover) {
    // Health-watchdog failover: un-claim the stranded service queue so the
    // requests (still in the recharge node list) are replanned across the
    // surviving RVs by the next dispatch.
    for (SensorId s : rv.service_queue) {
      claimed_.erase(s);
      if (stranded_since_[s] < 0.0) stranded_since_[s] = now_;
      if (spans_ != nullptr && request_span_[s] != 0) {
        spans_->mark(request_span_[s], "stranded", now_);
      }
      ++stranded;
    }
    rv.service_queue.clear();
    WRSN_DEBUG_ASSERT(requests_.consistent(),
                      "recharge list inconsistent after failover re-injection");
  }
  metrics_.on_rv_breakdown(stranded);
  if (fault_breakdown_counter_ != nullptr) fault_breakdown_counter_->add();
  if (fault_failover_counter_ != nullptr && stranded > 0) {
    fault_failover_counter_->add(stranded);
  }

  queue_.push(w.end, EventKind::kRvRepaired, r, rv.epoch);
  if (stranded > 0) dispatch();
}

void World::on_rv_repaired(RvId r) {
  Rv& rv = rvs_[r];
  WRSN_ASSERT(rv.state == Rv::State::kBrokenDown,
              "repair in unexpected state");
  metrics_.on_rv_repaired(Second{now_ - breakdown_began_[r]});
  breakdown_began_[r] = -1.0;
  ++rv.epoch;
  if (spans_ != nullptr && rv_breakdown_span_[r] != 0) {
    spans_->end(rv_breakdown_span_[r], now_, "repaired");
    rv_breakdown_span_[r] = 0;
  }

  if (config_.fault.rv_failover || rv.service_queue.empty()) {
    // Towed back to base and refilled by the repair crew.
    rv.pos = net_.base_station();
    rv.in_field = false;
    if (spans_ != nullptr && rv_tour_span_[r] != 0) {
      spans_->end(rv_tour_span_[r], now_, "towed");
      rv_tour_span_[r] = 0;
    }
    const Joule drawn = rv.battery.demand();
    if (drawn.value() > 0.0) {
      rv.battery.refill();
      metrics_.on_rv_base_recharge(drawn);
    }
    rv.state = Rv::State::kIdle;
    dispatch();
    return;
  }
  // No-failover control: repaired in the field, resumes the interrupted tour
  // (its claims were never released, so nobody else served them).
  rv.state = Rv::State::kIdle;
  start_next_leg(rv);
}

}  // namespace wrsn
