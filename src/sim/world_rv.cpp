// RV dispatch and motion: the scheduling half of the World (Section IV).
#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "energy/charge_profile.hpp"
#include "sched/plan_context.hpp"
#include "sched/tsp.hpp"
#include "sim/world.hpp"

namespace wrsn {

Joule World::rv_reserve() const {
  return config_.rv.capacity * config_.rv.reserve_fraction;
}

std::vector<RechargeItem> World::unclaimed_items() {
  // Demands drift while requests wait; refresh them so planners see current
  // values (the base station learns levels from status reports).
  std::vector<RechargeRequest> unclaimed;
  for (const RechargeRequest& r : requests_.requests()) {
    if (claimed_.contains(r.sensor)) continue;
    settle_sensor(r.sensor);  // decision point: planners see current levels
    requests_.update(r.sensor, net_.sensor(r.sensor).battery.demand(),
                     sensor_critical(r.sensor),
                     net_.sensor(r.sensor).battery.fraction());
    unclaimed.push_back(r);
    unclaimed.back().demand = net_.sensor(r.sensor).battery.demand();
    unclaimed.back().critical = sensor_critical(r.sensor);
    unclaimed.back().fraction = net_.sensor(r.sensor).battery.fraction();
  }
  return aggregate_requests(unclaimed);
}

void World::dispatch() {
  const PlannerParams params{config_.rv.move_cost, net_.base_station()};

  for (Rv& rv : rvs_) {
    if (!rv.idle()) continue;

    // Low battery: head home and refill before taking new work.
    if (rv.battery.fraction() < config_.rv.self_recharge_fraction) {
      if (rv.in_field) {
        return_to_base(rv);
      } else if (rv.battery.level() < rv.battery.capacity()) {
        begin_self_charge(rv);
      }
      continue;
    }

    std::vector<RechargeItem> items = unclaimed_items();
    if (items.empty()) {
      if (rv.in_field) return_to_base(rv);
      continue;
    }

    const RvPlanState state{rv.pos, rv.battery.level() - rv_reserve()};
    std::vector<std::size_t> seq;
    std::vector<bool> taken(items.size(), false);

    switch (config_.scheduler) {
      case SchedulerKind::kGreedy: {
        // The baseline of Algorithm 2 predates the cluster aggregation of
        // Section IV-C: it scores raw nodes and drives to one node at a
        // time, which is exactly the inefficiency the paper calls out.
        std::vector<RechargeItem> singles;
        for (const RechargeItem& item : items) {
          for (SensorId s : item.sensors) {
            RechargeItem one;
            one.pos = net_.sensor(s).pos;
            one.demand = net_.sensor(s).battery.demand();
            one.critical = sensor_critical(s);
            one.sensors = {s};
            singles.push_back(std::move(one));
          }
        }
        std::vector<bool> staken(singles.size(), false);
        if (const auto next = greedy_next(state, singles, staken, params)) {
          assign_plan(rv, singles, {*next});
        } else if (rv.in_field) {
          return_to_base(rv);
        } else if (rv.battery.level() < rv.battery.capacity()) {
          begin_self_charge(rv);
        }
        continue;
      }
      case SchedulerKind::kCombined: {
        // Grid-pruned hot path (bit-identical to the reference scan).
        const PlanContext ctx(items, params);
        seq = ctx.insertion_sequence(state, taken);
        break;
      }
      case SchedulerKind::kNearestFirst: {
        const PlanContext ctx(items, params);
        if (const auto next = ctx.nearest_next(state, taken)) {
          seq.push_back(*next);
        }
        break;
      }
      case SchedulerKind::kEdf: {
        if (const auto next = edf_next(state, items, taken, params)) {
          seq.push_back(*next);
        }
        break;
      }
      case SchedulerKind::kFcfs: {
        // Oldest unclaimed request decides which batch goes next; the
        // recharge node list preserves arrival order.
        SensorId oldest = kInvalidId;
        for (const RechargeRequest& req : requests_.requests()) {
          if (!claimed_.contains(req.sensor)) {
            oldest = req.sensor;
            break;
          }
        }
        for (std::size_t i = 0; oldest != kInvalidId && i < items.size(); ++i) {
          const auto& sensors = items[i].sensors;
          if (std::find(sensors.begin(), sensors.end(), oldest) == sensors.end()) {
            continue;
          }
          const Joule need =
              params.em * Meter{distance(rv.pos, items[i].pos) +
                                distance(items[i].pos, params.base)} +
              items[i].demand;
          if (need <= state.available) seq.push_back(i);
          break;
        }
        break;
      }
      case SchedulerKind::kPartition: {
        // K-means over the full list into m groups (Section IV-D-1). Groups
        // are matched to ALL RVs (busy ones included) so each vehicle keeps
        // a stable geographic responsibility; this RV plans only within the
        // group matched to it.
        const auto groups = partition_items(items, config_.num_rvs, sched_rng_);
        std::vector<Vec2> centroids;
        std::vector<const std::vector<std::size_t>*> live_groups;
        for (const auto& group : groups) {
          if (group.empty()) continue;
          Vec2 centroid{};
          for (std::size_t i : group) centroid += items[i].pos;
          centroids.push_back(centroid / static_cast<double>(group.size()));
          live_groups.push_back(&group);
        }
        const std::vector<std::size_t>* best_group = nullptr;
        if (!live_groups.empty()) {
          std::vector<Vec2> rv_positions;
          rv_positions.reserve(rvs_.size());
          for (const Rv& other : rvs_) rv_positions.push_back(other.pos);
          const auto rv_of_group = match_groups_to_rvs(centroids, rv_positions);
          for (std::size_t g = 0; g < live_groups.size(); ++g) {
            if (rv_of_group[g] == rv.id) {
              best_group = live_groups[g];
              break;
            }
          }
        }
        if (best_group == nullptr) {
          // No group in this RV's designated area: it stays put rather than
          // poaching another region — the confinement the scheme is about.
          if (rv.in_field) return_to_base(rv);
          continue;
        }
        std::vector<RechargeItem> group_items;
        group_items.reserve(best_group->size());
        for (std::size_t i : *best_group) group_items.push_back(items[i]);
        std::vector<bool> group_taken(group_items.size(), false);
        const PlanContext group_ctx(group_items, params);
        const auto group_seq = group_ctx.insertion_sequence(state, group_taken);
        if (group_seq.empty()) {
          // Unaffordable as aggregates: serve the best raw node within the
          // group, or refill first.
          std::vector<RechargeItem> singles;
          for (const RechargeItem& item : group_items) {
            for (SensorId s : item.sensors) {
              RechargeItem one;
              one.pos = net_.sensor(s).pos;
              one.demand = net_.sensor(s).battery.demand();
              one.critical = sensor_critical(s);
              one.sensors = {s};
              singles.push_back(std::move(one));
            }
          }
          std::vector<bool> staken(singles.size(), false);
          if (const auto next = greedy_next(state, singles, staken, params)) {
            assign_plan(rv, singles, {*next});
          } else if (rv.in_field) {
            return_to_base(rv);
          } else if (rv.battery.level() < rv.battery.capacity()) {
            begin_self_charge(rv);
          }
          continue;
        }
        // Map back to the global item indexing.
        seq.reserve(group_seq.size());
        for (std::size_t gi : group_seq) seq.push_back((*best_group)[gi]);
        break;
      }
    }

    if (seq.empty()) {
      // Aggregated items may exceed what this RV can afford in one tour;
      // fall back to the single most profitable raw request.
      std::vector<RechargeItem> singles;
      for (const RechargeItem& item : items) {
        for (SensorId s : item.sensors) {
          RechargeItem one;
          one.pos = net_.sensor(s).pos;
          one.demand = net_.sensor(s).battery.demand();
          one.critical = item.critical;
          one.sensors = {s};
          singles.push_back(std::move(one));
        }
      }
      std::vector<bool> staken(singles.size(), false);
      if (const auto next = greedy_next(state, singles, staken, params)) {
        assign_plan(rv, singles, {*next});
        continue;
      }
      // Nothing affordable: top up at base, or come home.
      if (rv.in_field) {
        return_to_base(rv);
      } else if (rv.battery.level() < rv.battery.capacity()) {
        begin_self_charge(rv);
      }
      continue;
    }

    assign_plan(rv, items, seq);
  }
}

void World::assign_plan(Rv& rv, const std::vector<RechargeItem>& items,
                        const std::vector<std::size_t>& seq) {
  WRSN_ASSERT(rv.idle(), "plans can only be assigned to idle RVs");
  WRSN_ASSERT(rv.service_queue.empty(), "plan assigned over a pending queue");
  WRSN_ASSERT(!seq.empty(), "empty plan");
  std::vector<SensorId> visit;
  Vec2 cur = rv.pos;
  for (std::size_t idx : seq) {
    const RechargeItem& item = items[idx];
    // Inside a cluster the visiting order is a nearest-neighbour tour
    // (Section IV-C).
    std::vector<Vec2> positions;
    positions.reserve(item.sensors.size());
    for (SensorId s : item.sensors) positions.push_back(net_.sensor(s).pos);
    const auto order = nearest_neighbor_tour(cur, positions);
    for (std::size_t k : order) visit.push_back(item.sensors[k]);
    if (!order.empty()) cur = positions[order.back()];
  }
  if (config_.two_opt_tours && visit.size() > 2) {
    // Library extension: polish the whole flattened route.
    std::vector<Vec2> positions;
    positions.reserve(visit.size());
    for (SensorId s : visit) positions.push_back(net_.sensor(s).pos);
    std::vector<std::size_t> order(visit.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    two_opt(rv.pos, positions, order);
    std::vector<SensorId> improved;
    improved.reserve(visit.size());
    for (std::size_t i : order) improved.push_back(visit[i]);
    visit = std::move(improved);
  }
  for (SensorId s : visit) {
    WRSN_ASSERT(!claimed_.contains(s), "sensor claimed twice");
    claimed_.insert(s);
    rv.service_queue.push_back(s);
  }
  if (!rv.in_field) {
    rv.in_field = true;
    metrics_.on_rv_tour_started();
  }
  start_next_leg(rv);
}

void World::start_next_leg(Rv& rv) {
  WRSN_ASSERT(!rv.service_queue.empty(), "no leg to start");
  const SensorId next = rv.service_queue.front();
  const Vec2 dest = net_.sensor(next).pos;
  const Meter leg{distance(rv.pos, dest)};
  const Meter home{distance(dest, net_.base_station())};
  const Joule need = config_.rv.move_cost * leg + config_.rv.move_cost * home +
                     rv_reserve();
  if (rv.battery.level() < need) {
    abandon_plan(rv);
    return_to_base(rv);
    return;
  }
  rv.state = Rv::State::kTraveling;
  ++rv.epoch;
  rv.battery.drain(config_.rv.move_cost * leg);
  metrics_.on_rv_leg(leg, config_.rv.move_cost * leg);
  rv.distance_traveled += leg.value();
  const double arrive = now_ + (leg / config_.rv.speed).value();
  queue_.push(arrive, EventKind::kRvArrival, rv.id, rv.epoch);
}

void World::return_to_base(Rv& rv) {
  const Meter leg{distance(rv.pos, net_.base_station())};
  if (leg.value() <= 1e-9) {
    rv.pos = net_.base_station();
    rv.in_field = false;
    if (rv.battery.level() < rv.battery.capacity()) {
      begin_self_charge(rv);
    } else {
      rv.state = Rv::State::kIdle;
    }
    return;
  }
  rv.state = Rv::State::kReturning;
  ++rv.epoch;
  rv.battery.drain(config_.rv.move_cost * leg);
  metrics_.on_rv_leg(leg, config_.rv.move_cost * leg);
  rv.distance_traveled += leg.value();
  const double arrive = now_ + (leg / config_.rv.speed).value();
  queue_.push(arrive, EventKind::kRvArrival, rv.id, rv.epoch);
}

void World::begin_self_charge(Rv& rv) {
  rv.state = Rv::State::kSelfCharging;
  ++rv.epoch;
  const Second dwell = rv.battery.demand() / config_.rv.base_recharge_power;
  queue_.push(now_ + dwell.value(), EventKind::kRvBaseChargeDone, rv.id, rv.epoch);
}

void World::abandon_plan(Rv& rv) {
  for (SensorId s : rv.service_queue) claimed_.erase(s);
  rv.service_queue.clear();
}

void World::on_rv_arrival(RvId r) {
  Rv& rv = rvs_[r];
  if (rv.state == Rv::State::kReturning) {
    rv.pos = net_.base_station();
    rv.in_field = false;
    if (rv.battery.level() < rv.battery.capacity()) {
      begin_self_charge(rv);
    } else {
      rv.state = Rv::State::kIdle;
      dispatch();
    }
    return;
  }
  WRSN_ASSERT(rv.state == Rv::State::kTraveling, "arrival in unexpected state");
  WRSN_ASSERT(!rv.service_queue.empty(), "arrived with empty queue");
  const SensorId s = rv.service_queue.front();
  rv.pos = net_.sensor(s).pos;
  rv.state = Rv::State::kCharging;
  ++rv.epoch;
  settle_sensor(s);  // dwell is computed from the node's current level
  // Deliver up to the node's demand, bounded by what the RV can spare and
  // still make it home (constraint (7) + the reserve).
  const Joule spare = rv.battery.level() -
                      config_.rv.move_cost *
                          Meter{distance(rv.pos, net_.base_station())} -
                      rv_reserve();
  const Joule planned =
      std::max(Joule{0.0}, std::min(net_.sensor(s).battery.demand(), spare));
  // Dwell follows the configured charge-acceptance model (ref. [15]).
  const ChargeProfile profile{config_.rv.charge_profile, config_.rv.charge_power,
                              config_.rv.charge_knee_soc,
                              config_.rv.charge_trickle_fraction};
  const Second dwell = profile.time_to_reach(
      net_.sensor(s).battery, net_.sensor(s).battery.level() + planned);
  queue_.push(now_ + dwell.value(), EventKind::kRvChargeDone, rv.id, rv.epoch);
}

void World::on_rv_charge_done(RvId r) {
  Rv& rv = rvs_[r];
  WRSN_ASSERT(rv.state == Rv::State::kCharging, "charge-done in unexpected state");
  WRSN_ASSERT(!rv.service_queue.empty(), "charge-done with empty queue");
  const SensorId s = rv.service_queue.front();
  rv.service_queue.pop_front();

  settle_sensor(s);  // realize the drain over the dwell before topping up
  Sensor& sensor = net_.sensor(s);
  const bool was_dead = !sensor.alive();
  const Joule spare = rv.battery.level() -
                      config_.rv.move_cost *
                          Meter{distance(rv.pos, net_.base_station())} -
                      rv_reserve();
  const Joule delivered =
      std::max(Joule{0.0}, std::min(sensor.battery.demand(), spare));
  sensor.battery.charge(delivered);
  rv.battery.drain(delivered);

  const double requested_at = request_time_[s];
  const Second latency{requested_at >= 0.0 ? now_ - requested_at : 0.0};
  metrics_.on_recharge(s, delivered, latency);
  rv.energy_delivered += delivered.value();
  ++rv.nodes_served;

  sensor.recharge_requested = false;
  requests_.remove(s);
  claimed_.erase(s);
  request_time_[s] = -1.0;
  ++sensor_epoch_[s];
  WRSN_DEBUG_ASSERT(requests_.consistent(),
                    "recharge list inconsistent after remove");
  if (fault_ != nullptr) {
    ++uplink_epoch_[s];  // cancel any pending retry for the satisfied request
    uplink_pending_[s] = UplinkPending::kNone;
    if (stranded_since_[s] >= 0.0) {
      // Time-to-recovery: breakdown that stranded this sensor -> recharged.
      metrics_.on_failover_recovery(Second{now_ - stranded_since_[s]});
      stranded_since_[s] = -1.0;
    }
  }

  if (was_dead && sensor.alive()) {
    // Revived node rejoins the relay fabric and its cluster immediately (it
    // may have been stranded when its cluster's target walked away).
    on_sensor_alive_changed(s, true);
    death_processed_[s] = false;
    mark_drain_dirty(s);
    if (net_.rebuild_routing()) traffic_.reroute(net_.routing());
    revive_membership(s);
  } else {
    if (!sensor.alive() && !death_processed_[s]) {
      // The epoch bump above invalidated the pending death crossing (the
      // node was depleted but undeliverable); process the death here so it
      // is never lost.
      handle_death(s);
    }
    mark_drain_dirty(s);
  }
  request_drain_refresh();
  schedule_crossing(s);

  rv.state = Rv::State::kIdle;
  if (!rv.service_queue.empty()) {
    start_next_leg(rv);
  } else {
    dispatch();
  }
}

void World::on_rv_base_charge_done(RvId r) {
  Rv& rv = rvs_[r];
  WRSN_ASSERT(rv.state == Rv::State::kSelfCharging,
              "base-charge-done in unexpected state");
  const Joule drawn = rv.battery.demand();
  rv.battery.refill();
  metrics_.on_rv_base_recharge(drawn);
  rv.state = Rv::State::kIdle;
  dispatch();
}

// ---------------------------------------------------------------------------
// Fault model: breakdowns and failover (src/fault/)
// ---------------------------------------------------------------------------

void World::on_rv_breakdown(RvId r) {
  Rv& rv = rvs_[r];
  // Consume this plan window whether or not it takes effect, so the index
  // stays aligned with the construction-time event pushes.
  const FaultWindow& w = fault_->plan().rv_breakdowns(r)[rv_breakdown_idx_[r]++];
  if (rv.state == Rv::State::kBrokenDown) return;  // abutting windows collapse

  // The vehicle halts where it is: any in-flight arrival/charge-done/base-
  // charge event becomes stale. A leg in progress keeps its departure-time
  // position and energy accounting (the RV is towed from there).
  ++rv.epoch;
  rv.state = Rv::State::kBrokenDown;
  breakdown_began_[r] = now_;

  std::size_t stranded = 0;
  if (config_.fault.rv_failover) {
    // Health-watchdog failover: un-claim the stranded service queue so the
    // requests (still in the recharge node list) are replanned across the
    // surviving RVs by the next dispatch.
    for (SensorId s : rv.service_queue) {
      claimed_.erase(s);
      if (stranded_since_[s] < 0.0) stranded_since_[s] = now_;
      ++stranded;
    }
    rv.service_queue.clear();
    WRSN_DEBUG_ASSERT(requests_.consistent(),
                      "recharge list inconsistent after failover re-injection");
  }
  metrics_.on_rv_breakdown(stranded);
  if (fault_breakdown_counter_ != nullptr) fault_breakdown_counter_->add();
  if (fault_failover_counter_ != nullptr && stranded > 0) {
    fault_failover_counter_->add(stranded);
  }

  queue_.push(w.end, EventKind::kRvRepaired, r, rv.epoch);
  if (stranded > 0) dispatch();
}

void World::on_rv_repaired(RvId r) {
  Rv& rv = rvs_[r];
  WRSN_ASSERT(rv.state == Rv::State::kBrokenDown,
              "repair in unexpected state");
  metrics_.on_rv_repaired(Second{now_ - breakdown_began_[r]});
  breakdown_began_[r] = -1.0;
  ++rv.epoch;

  if (config_.fault.rv_failover || rv.service_queue.empty()) {
    // Towed back to base and refilled by the repair crew.
    rv.pos = net_.base_station();
    rv.in_field = false;
    const Joule drawn = rv.battery.demand();
    if (drawn.value() > 0.0) {
      rv.battery.refill();
      metrics_.on_rv_base_recharge(drawn);
    }
    rv.state = Rv::State::kIdle;
    dispatch();
    return;
  }
  // No-failover control: repaired in the field, resumes the interrupted tour
  // (its claims were never released, so nobody else served them).
  rv.state = Rv::State::kIdle;
  start_next_leg(rv);
}

}  // namespace wrsn
