#pragma once
// Struct-of-arrays sensor hot state.
//
// The event loop's inner loops — lazy settlement, drain refreshes and
// death-crossing prediction — touch a handful of doubles per sensor. Packing
// them into parallel arrays keeps those loops on contiguous memory instead
// of striding through the full Sensor objects in net/.
//
// The SoA block is the arithmetic source of truth for battery levels during
// a run: settlement integrates level[] directly (replicating
// Battery::drain's clamp arithmetic bit-for-bit) and mirrors the result
// into Sensor.battery via Battery::set_level, so every reader outside the
// hot loops — planners, metrics, SVG rendering, tests — keeps seeing
// current levels through the existing accessors.

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/vec2.hpp"
#include "net/network.hpp"

namespace wrsn {

// Sentinel for crossing_time: no pending crossing event.
inline constexpr double kNoCrossing = std::numeric_limits<double>::infinity();

struct SensorSoa {
  std::vector<double> level;         // J; mirrored into Sensor.battery
  std::vector<double> capacity;      // J
  std::vector<double> drain;         // W; piecewise-constant between events
  std::vector<double> last_settle;   // s; time of the last settlement
  std::vector<Vec2> pos;             // static deployment positions
  std::vector<std::uint64_t> epoch;  // guards pending kSensorCrossing events
  // Fire time of the unique pending kSensorCrossing event whose epoch is
  // current, or kNoCrossing when none is queued. Lets update_drain keep a
  // pending prediction that only moved later (the event fires early and
  // re-predicts) instead of pushing a replacement on every drain change —
  // most replacements would go stale before firing, and their push/pop
  // traffic dominated the event queue at large n.
  std::vector<double> crossing_time;
  // 1 when the pending crossing targets depletion (scheduled with the level
  // already at/below threshold), 0 when it targets the threshold. A
  // speculative early fire of a death-targeted crossing must re-predict
  // WITHOUT re-evaluating recharge requests: the threshold evaluation
  // already ran when the threshold was genuinely crossed, and re-running it
  // on a schedule artifact would issue requests at times the event stream
  // never visited before this optimization.
  std::vector<std::uint8_t> crossing_to_death;
  // True once handle_death ran for the current depletion; cleared on
  // revival. Guards double-processing and keeps drain refreshes from
  // invalidating a still-pending death crossing.
  std::vector<std::uint8_t> death_processed;
  std::vector<std::uint8_t> hw_fault;  // transient sensing-hardware fault

  void init(const Network& net) {
    const std::size_t n = net.num_sensors();
    level.resize(n);
    capacity.resize(n);
    pos.resize(n);
    drain.assign(n, 0.0);
    last_settle.assign(n, 0.0);
    crossing_time.assign(n, kNoCrossing);
    crossing_to_death.assign(n, 0);
    epoch.assign(n, 0);
    death_processed.assign(n, 0);
    hw_fault.assign(n, 0);
    for (SensorId s = 0; s < n; ++s) {
      const Sensor& sensor = net.sensor(s);
      level[s] = sensor.battery.level().value();
      capacity[s] = sensor.battery.capacity().value();
      pos[s] = sensor.pos;
    }
  }

  // Same predicate as Sensor::alive() == !Battery::depleted().
  [[nodiscard]] bool alive(SensorId s) const { return level[s] > 0.0; }
  // Alive AND sensing hardware up (the World's operational()).
  [[nodiscard]] bool operational(SensorId s) const {
    return level[s] > 0.0 && hw_fault[s] == 0;
  }
};

}  // namespace wrsn
