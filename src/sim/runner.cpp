#include "sim/runner.hpp"

#include <algorithm>
#include <mutex>

#include "core/error.hpp"
#include "sim/world.hpp"

namespace wrsn {

MetricsReport run_replica(const SimConfig& config,
                          obs::TelemetryRegistry* telemetry) {
  World world(config);
  world.set_telemetry(telemetry);
  return world.run();
}

MetricsReport run_replica(const SimConfig& config,
                          const ReplicaInstruments& instruments) {
  World world(config);
  world.set_telemetry(instruments.telemetry);
  world.set_trace_sink(instruments.trace);
  world.set_span_log(instruments.spans);
  world.set_flight_recorder(instruments.flight);
  return world.run();
}

MetricsReport mean_report(const std::vector<MetricsReport>& reports) {
  WRSN_REQUIRE(!reports.empty(), "cannot average zero reports");
  MetricsReport mean;
  mean.recharge_fairness_jain = 0.0;  // default is 1.0; accumulate from zero
  const double n = static_cast<double>(reports.size());
  double deaths = 0.0, requests = 0.0, recharged = 0.0, tours = 0.0,
         base_recharges = 0.0, latency = 0.0;
  double lost = 0.0, delayed = 0.0, retried = 0.0, expired = 0.0,
         breakdowns = 0.0, repairs = 0.0, reinjected = 0.0, hw_faults = 0.0;
  for (const MetricsReport& r : reports) {
    mean.duration += r.duration / n;
    mean.rv_travel_energy += r.rv_travel_energy / n;
    mean.rv_travel_distance += r.rv_travel_distance / n;
    mean.energy_recharged += r.energy_recharged / n;
    mean.rv_base_energy_drawn += r.rv_base_energy_drawn / n;
    mean.coverage_ratio += r.coverage_ratio / n;
    mean.missing_rate += r.missing_rate / n;
    mean.nonfunctional_pct += r.nonfunctional_pct / n;
    mean.avg_alive_sensors += r.avg_alive_sensors / n;
    mean.avg_coverable_targets += r.avg_coverable_targets / n;
    mean.packets_delivered += r.packets_delivered / n;
    mean.avg_delivery_hops += r.avg_delivery_hops / n;
    deaths += static_cast<double>(r.sensor_deaths) / n;
    requests += static_cast<double>(r.recharge_requests) / n;
    recharged += static_cast<double>(r.sensors_recharged) / n;
    tours += static_cast<double>(r.rv_tours) / n;
    base_recharges += static_cast<double>(r.rv_base_recharges) / n;
    latency += r.avg_request_latency.value() / n;
    mean.p50_request_latency += r.p50_request_latency / n;
    mean.p95_request_latency += r.p95_request_latency / n;
    mean.p99_request_latency += r.p99_request_latency / n;
    mean.max_request_latency =
        std::max(mean.max_request_latency, r.max_request_latency);
    mean.avg_request_wait += r.avg_request_wait / n;
    mean.p50_request_wait += r.p50_request_wait / n;
    mean.p95_request_wait += r.p95_request_wait / n;
    mean.p99_request_wait += r.p99_request_wait / n;
    mean.avg_request_travel += r.avg_request_travel / n;
    mean.p50_request_travel += r.p50_request_travel / n;
    mean.p95_request_travel += r.p95_request_travel / n;
    mean.p99_request_travel += r.p99_request_travel / n;
    mean.avg_request_service += r.avg_request_service / n;
    mean.p50_request_service += r.p50_request_service / n;
    mean.p95_request_service += r.p95_request_service / n;
    mean.p99_request_service += r.p99_request_service / n;
    mean.recharge_fairness_jain += r.recharge_fairness_jain / n;
    lost += static_cast<double>(r.requests_lost) / n;
    delayed += static_cast<double>(r.requests_delayed) / n;
    retried += static_cast<double>(r.requests_retried) / n;
    expired += static_cast<double>(r.requests_expired) / n;
    breakdowns += static_cast<double>(r.rv_breakdowns) / n;
    repairs += static_cast<double>(r.rv_repairs) / n;
    reinjected += static_cast<double>(r.failover_reinjected) / n;
    hw_faults += static_cast<double>(r.sensor_hw_faults) / n;
    mean.rv_downtime += r.rv_downtime / n;
    mean.avg_failover_recovery += r.avg_failover_recovery / n;
  }
  // Tail of the worst case: p99 over the per-replica maxima, using the same
  // nearest-rank convention as the per-replica quantiles in metrics.cpp.
  std::vector<double> maxes;
  maxes.reserve(reports.size());
  for (const MetricsReport& r : reports) maxes.push_back(r.max_request_latency.value());
  std::sort(maxes.begin(), maxes.end());
  const auto idx = static_cast<std::size_t>(
      0.99 * static_cast<double>(maxes.size() - 1) + 0.5);
  mean.p99_max_request_latency = Second{maxes[std::min(idx, maxes.size() - 1)]};
  mean.sensor_deaths = static_cast<std::size_t>(deaths + 0.5);
  mean.recharge_requests = static_cast<std::size_t>(requests + 0.5);
  mean.sensors_recharged = static_cast<std::size_t>(recharged + 0.5);
  mean.rv_tours = static_cast<std::size_t>(tours + 0.5);
  mean.rv_base_recharges = static_cast<std::size_t>(base_recharges + 0.5);
  mean.avg_request_latency = Second{latency};
  mean.requests_lost = static_cast<std::size_t>(lost + 0.5);
  mean.requests_delayed = static_cast<std::size_t>(delayed + 0.5);
  mean.requests_retried = static_cast<std::size_t>(retried + 0.5);
  mean.requests_expired = static_cast<std::size_t>(expired + 0.5);
  mean.rv_breakdowns = static_cast<std::size_t>(breakdowns + 0.5);
  mean.rv_repairs = static_cast<std::size_t>(repairs + 0.5);
  mean.failover_reinjected = static_cast<std::size_t>(reinjected + 0.5);
  mean.sensor_hw_faults = static_cast<std::size_t>(hw_faults + 0.5);
  return mean;
}

std::vector<MetricsReport> run_replicas(const SimConfig& config,
                                        std::size_t num_replicas, ThreadPool* pool,
                                        obs::TelemetryRegistry* telemetry) {
  WRSN_REQUIRE(num_replicas > 0, "need at least one replica");
  std::vector<MetricsReport> reports(num_replicas);
  std::mutex merge_mutex;  // serializes merge_from on the shared registry
  auto run_one = [&](std::size_t i) {
    SimConfig c = config;
    c.seed = config.seed + i;
    if (telemetry == nullptr) {
      reports[i] = run_replica(c);
      return;
    }
    // Each replica records into a private registry so hot-path updates never
    // contend across workers; the merge at the end is the only shared write.
    obs::TelemetryRegistry local;
    reports[i] = run_replica(c, &local);
    const std::lock_guard lock(merge_mutex);
    telemetry->merge_from(local);
  };
  if (pool != nullptr) {
    pool->parallel_for(num_replicas, run_one);
  } else {
    for (std::size_t i = 0; i < num_replicas; ++i) run_one(i);
  }
  return reports;
}

MetricsReport run_mean(const SimConfig& config, std::size_t num_replicas,
                       ThreadPool* pool, obs::TelemetryRegistry* telemetry) {
  return mean_report(run_replicas(config, num_replicas, pool, telemetry));
}

}  // namespace wrsn
