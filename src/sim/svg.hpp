#pragma once
// SVG snapshot rendering of the simulation world: sensors colored by battery
// level (dead ones crossed), targets with their sensing-coverage clusters,
// the base station and the RVs. Used by the `visualize` example; handy for
// debugging schedules and for documentation figures.

#include <string>

#include "sim/world.hpp"

namespace wrsn {

struct SvgOptions {
  double pixels_per_meter = 4.0;
  bool draw_cluster_links = true;   // member -> target lines
  bool draw_sensing_discs = false;  // d_s circle around each active monitor
  bool draw_comm_edges = false;     // communication graph (dense!)
  bool draw_legend = true;
};

// Renders the world's current state (positions, battery levels, activation,
// RV positions/queues) as a standalone SVG document.
[[nodiscard]] std::string render_svg(const World& world, const SvgOptions& options = {});

// Writes render_svg() output to a file; throws on I/O failure.
void save_svg(const std::string& path, const World& world,
              const SvgOptions& options = {});

}  // namespace wrsn
