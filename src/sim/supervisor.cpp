#include "sim/supervisor.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "sim/world.hpp"

namespace wrsn {

ReplicaSupervisor::ReplicaSupervisor(SupervisorOptions options,
                                     obs::TelemetryRegistry* telemetry)
    : options_(std::move(options)), telemetry_(telemetry) {
  if (!options_.sleep_ms) {
    options_.sleep_ms = [](double ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    };
  }
}

void ReplicaSupervisor::count(const char* name) {
  if (telemetry_ != nullptr) telemetry_->counter(name).add();
}

ReplicaResult ReplicaSupervisor::run(const SimConfig& config) {
  return run(config, ReplicaInstruments{});
}

ReplicaResult ReplicaSupervisor::run(const SimConfig& config,
                                     const ReplicaInstruments& instruments) {
  return supervise([&]() {
    AttemptOutcome out;
    World world(config);
    world.set_telemetry(instruments.telemetry);
    world.set_trace_sink(instruments.trace);
    world.set_span_log(instruments.spans);
    world.set_flight_recorder(instruments.flight);
    if (options_.watchdog_s > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.watchdog_s));
      // Throttle the clock read: one syscall per event would dominate small
      // replicas, and a 1024-event overshoot is noise at wall-clock scale.
      std::uint32_t tick = 0;
      world.set_checkpoint_hook([deadline, tick](const World&) mutable {
        if (++tick % 1024 != 0) return false;
        return std::chrono::steady_clock::now() >= deadline;
      });
    }
    world.run_until(config.sim_duration);
    if (!world.finished()) {
      out.status = AttemptOutcome::Status::kTimeout;
      return out;
    }
    out.status = AttemptOutcome::Status::kOk;
    out.report = world.report();
    return out;
  });
}

ReplicaResult ReplicaSupervisor::supervise(
    const std::function<AttemptOutcome()>& attempt) {
  ReplicaResult result;
  double backoff = options_.backoff_ms;
  for (std::size_t tries = 0;; ++tries) {
    result.attempts = tries + 1;
    AttemptOutcome out;
    try {
      out = attempt();
    } catch (const std::exception& e) {
      out.status = AttemptOutcome::Status::kError;
      out.error = e.what();
    } catch (...) {
      out.status = AttemptOutcome::Status::kError;
      out.error = "unknown exception";
    }
    switch (out.status) {
      case AttemptOutcome::Status::kOk:
        result.ok = true;
        result.report = out.report;
        result.error.clear();
        return result;
      case AttemptOutcome::Status::kTimeout:
        result.timed_out = true;
        result.error = "watchdog timeout";
        count("supervisor/timeouts");
        break;
      case AttemptOutcome::Status::kError:
        result.error = out.error;
        count("supervisor/errors");
        break;
    }
    if (tries >= options_.max_retries) {
      result.ok = false;
      count("supervisor/quarantines");
      return result;
    }
    count("supervisor/retries");
    if (backoff > 0.0) options_.sleep_ms(backoff);
    backoff *= 2.0;
  }
}

}  // namespace wrsn
