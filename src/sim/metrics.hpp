#pragma once
// Metrics: exact time-integrals of the piecewise-constant system state plus
// event counters, summarized into the quantities the paper's figures plot.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/binio.hpp"
#include "core/units.hpp"

namespace wrsn {

// Instantaneous state handed to the integrator before each event.
struct StateSnapshot {
  std::size_t coverable_targets = 0;  // targets with >=1 candidate sensor
  std::size_t covered_targets = 0;    // coverable targets with an alive active monitor
  std::size_t alive_sensors = 0;
  std::size_t total_sensors = 0;
  double delivery_rate_pps = 0.0;  // packets/s reaching the base station
  double avg_delivery_hops = 0.0;  // rate-weighted hop count of that traffic
};

// Final report of one simulation replica. Energies in joules, distances in
// metres, rates/ratios in [0,1] unless the name says pct.
struct MetricsReport {
  Second duration{0.0};

  // --- RV side ----------------------------------------------------------
  Joule rv_travel_energy{0.0};
  Meter rv_travel_distance{0.0};
  Joule energy_recharged{0.0};       // delivered into sensor batteries
  Joule rv_base_energy_drawn{0.0};   // energy RVs pulled from the dock
  std::size_t sensors_recharged = 0;
  std::size_t rv_tours = 0;          // base -> field -> base excursions
  std::size_t rv_base_recharges = 0;

  // --- network side -------------------------------------------------------
  double coverage_ratio = 0.0;       // time-avg covered/coverable
  double missing_rate = 0.0;         // 1 - coverage_ratio
  double nonfunctional_pct = 0.0;    // time-avg dead sensors %
  double avg_alive_sensors = 0.0;
  double avg_coverable_targets = 0.0;
  double packets_delivered = 0.0;    // integral of the delivery rate
  double avg_delivery_hops = 0.0;    // delivery-weighted mean route length
  std::size_t sensor_deaths = 0;
  std::size_t recharge_requests = 0;
  Second avg_request_latency{0.0};   // request -> charge-complete
  Second p50_request_latency{0.0};
  Second p95_request_latency{0.0};
  Second p99_request_latency{0.0};
  Second max_request_latency{0.0};
  // p99 of max_request_latency across replicas (tail of the worst case).
  // For a single replica this equals max_request_latency; mean_report
  // replaces it with the cross-replica quantile.
  Second p99_max_request_latency{0.0};
  // Latency breakdown per served request: wait + travel + service == the
  // end-to-end request latency. Service is the final charging dwell, travel
  // the RV's approach legs toward the sensor (summed over legs resumed after
  // breakdowns), wait the remainder — base-station queueing plus time
  // stranded behind breakdowns. All zero when nothing was served.
  Second avg_request_wait{0.0};
  Second p50_request_wait{0.0};
  Second p95_request_wait{0.0};
  Second p99_request_wait{0.0};
  Second avg_request_travel{0.0};
  Second p50_request_travel{0.0};
  Second p95_request_travel{0.0};
  Second p99_request_travel{0.0};
  Second avg_request_service{0.0};
  Second p50_request_service{0.0};
  Second p95_request_service{0.0};
  Second p99_request_service{0.0};
  // Jain fairness index of recharge counts over the sensors that were served
  // at least once: 1 = perfectly even service, ->0 = service concentrated on
  // few nodes. 1 when nothing was served.
  double recharge_fairness_jain = 1.0;

  // --- degraded-mode accounting (src/fault/) ----------------------------
  // All zero when fault injection is disabled.
  std::size_t requests_lost = 0;      // uplink attempts dropped
  std::size_t requests_delayed = 0;   // uplink attempts deferred in flight
  std::size_t requests_retried = 0;   // re-emissions after a dropped attempt
  std::size_t requests_expired = 0;   // requests that exhausted max_retries
  std::size_t rv_breakdowns = 0;
  std::size_t rv_repairs = 0;
  std::size_t failover_reinjected = 0;  // stranded queue entries replanned
  std::size_t sensor_hw_faults = 0;     // transient hardware-fault windows
  Second rv_downtime{0.0};              // total broken-RV time (RV*s)
  // Mean breakdown -> recharge-complete latency over sensors stranded by a
  // failover; 0 when no stranded sensor was recovered.
  Second avg_failover_recovery{0.0};

  // --- derived (Section V metrics) -------------------------------------
  // Objective of expression (2): energy recharged minus traveling energy.
  [[nodiscard]] Joule objective_score() const {
    return energy_recharged - rv_travel_energy;
  }
  // Recharging cost: total RV distance per average operational sensor.
  [[nodiscard]] double recharging_cost_m_per_sensor() const {
    return avg_alive_sensors > 0.0 ? rv_travel_distance.value() / avg_alive_sensors
                                   : 0.0;
  }
};

class MetricsIntegrator {
 public:
  // Integrates the snapshot over [now, now+dt).
  void advance(Second dt, const StateSnapshot& snap);

  // --- event counters, called by the world ------------------------------
  void on_rv_leg(Meter dist, Joule traction);
  void on_recharge(std::size_t sensor, Joule delivered, Second request_latency);
  // Companion to on_recharge: the same served request's latency decomposed
  // into wait/travel/service (one call per on_recharge, zeros when the
  // recharge had no pending request).
  void on_recharge_breakdown(Second wait, Second travel, Second service);
  void on_rv_tour_started() { ++report_.rv_tours; }
  void on_rv_base_recharge(Joule drawn);
  void on_sensor_death() { ++report_.sensor_deaths; }
  void on_request() { ++report_.recharge_requests; }

  // --- fault/degraded-mode hooks ----------------------------------------
  void on_request_lost() { ++report_.requests_lost; }
  void on_request_delayed() { ++report_.requests_delayed; }
  void on_request_retried() { ++report_.requests_retried; }
  void on_request_expired() { ++report_.requests_expired; }
  void on_rv_breakdown(std::size_t stranded) {
    ++report_.rv_breakdowns;
    report_.failover_reinjected += stranded;
  }
  void on_rv_repaired(Second downtime) {
    ++report_.rv_repairs;
    report_.rv_downtime += downtime;
  }
  void on_sensor_hw_fault() { ++report_.sensor_hw_faults; }
  void on_failover_recovery(Second latency) {
    failover_recovery_sum_ += latency.value();
    ++failover_recoveries_;
  }

  // Produces the final report; `duration` is the simulated horizon.
  [[nodiscard]] MetricsReport finalize(Second duration) const;

  // Running RV odometer (sum of all on_rv_leg distances so far). Cheap —
  // unlike finalize(), which sorts the latency list — so per-sample readers
  // (World::record_sample) use this instead of building a full report.
  [[nodiscard]] Meter rv_travel_distance() const {
    return report_.rv_travel_distance;
  }

  // Checkpoint codec: every accumulator the event hooks and advance() touch,
  // dumped verbatim (finalize() is pure, so restoring these restores the
  // eventual report bit for bit). recharge_counts_ is written sorted by
  // sensor id for canonical snapshot bytes; its finalize() sums are over
  // integers, so iteration order never affected the report.
  void serialize(BinWriter& w) const;
  void deserialize(BinReader& r);

 private:
  MetricsReport report_;
  double covered_time_ = 0.0;    // integral of covered targets (target*s)
  double coverable_time_ = 0.0;  // integral of coverable targets
  double alive_time_ = 0.0;      // integral of alive sensors (sensor*s)
  double dead_time_ = 0.0;
  double elapsed_ = 0.0;
  double latency_sum_ = 0.0;
  double hop_packet_integral_ = 0.0;  // packets x hops
  double failover_recovery_sum_ = 0.0;
  std::size_t failover_recoveries_ = 0;
  std::vector<double> latencies_;
  std::vector<double> waits_;
  std::vector<double> travels_;
  std::vector<double> services_;
  std::unordered_map<std::size_t, int> recharge_counts_;
};

// Optional per-sample time series (used by examples for trajectory output).
struct TimeSeriesPoint {
  double t = 0.0;
  std::size_t alive = 0;
  std::size_t covered = 0;
  std::size_t coverable = 0;
  std::size_t pending_requests = 0;
  double rv_travel_distance = 0.0;
};

using TimeSeries = std::vector<TimeSeriesPoint>;

// Machine-readable dump of a report (stable key names; see core/json.hpp).
[[nodiscard]] std::string to_json(const MetricsReport& report);

}  // namespace wrsn
