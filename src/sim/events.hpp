#pragma once
// Discrete-event queue with lazy invalidation.
//
// Events are ordered by (time, insertion sequence) so simultaneous events
// fire in a deterministic order. Predicted events (battery crossings, RV
// arrivals) carry the epoch of their subject at scheduling time; when the
// subject's state changes, its epoch is bumped and stale queue entries are
// discarded on pop instead of being deleted in place.
//
// Two interchangeable implementations back the queue (see
// docs/ARCHITECTURE.md, "Event queue"):
//  - kCalendar (the default): a classic calendar/bucket queue — the time
//    axis is split into fixed-width "days" hashed into a power-of-two ring
//    of "year" buckets, giving O(1) amortized push/pop under the usual
//    hold-model workloads. Bucket count and day width resize on occupancy.
//  - kHeap: the std::priority_queue binary heap, kept as the reference.
// Both produce the exact same pop order — the strict (time, seq) total
// order leaves no room for divergence — which
// tests/test_queue_equivalence.cpp pins with randomized interleavings and
// full-simulation report comparisons.

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

namespace wrsn {

enum class EventKind : std::uint8_t {
  kSlotRotation,    // global round-robin handover tick
  kTargetMove,      // subject = target id
  kSensorCrossing,  // subject = sensor id (threshold or death, epoch-guarded)
  kRvArrival,       // subject = RV id (epoch-guarded)
  kRvChargeDone,    // subject = RV id (epoch-guarded)
  kRvBaseChargeDone,  // subject = RV id (epoch-guarded)
  kMetricsSample,   // time-series sampling tick
  kRequestUplink,     // subject = sensor id (uplink-epoch-guarded retry tick)
  kRvBreakdown,       // subject = RV id (unguarded; handler checks state)
  kRvRepaired,        // subject = RV id (epoch-guarded)
  kSensorFaultStart,  // subject = sensor id (unguarded; handler checks state)
  kSensorFaultEnd,    // subject = sensor id (unguarded; handler checks state)
  kSimEnd,
};

inline constexpr std::size_t kNumEventKinds = 13;

// Stable human/machine-readable name; these strings are part of the trace
// schema (obs/trace.hpp) — renaming one is a schema change.
[[nodiscard]] constexpr const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSlotRotation: return "slot-rotation";
    case EventKind::kTargetMove: return "target-move";
    case EventKind::kSensorCrossing: return "sensor-crossing";
    case EventKind::kRvArrival: return "rv-arrival";
    case EventKind::kRvChargeDone: return "rv-charge-done";
    case EventKind::kRvBaseChargeDone: return "rv-base-charge-done";
    case EventKind::kMetricsSample: return "metrics-sample";
    case EventKind::kRequestUplink: return "request-uplink";
    case EventKind::kRvBreakdown: return "rv-breakdown";
    case EventKind::kRvRepaired: return "rv-repaired";
    case EventKind::kSensorFaultStart: return "sensor-fault-start";
    case EventKind::kSensorFaultEnd: return "sensor-fault-end";
    case EventKind::kSimEnd: return "sim-end";
  }
  return "unknown";
}

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for equal times
  EventKind kind = EventKind::kSimEnd;
  std::size_t subject = 0;
  std::uint64_t epoch = 0;
};

enum class EventQueueImpl : std::uint8_t {
  kCalendar,  // bucketed calendar queue (the default)
  kHeap,      // binary heap (the reference)
};

[[nodiscard]] constexpr const char* impl_name(EventQueueImpl impl) {
  switch (impl) {
    case EventQueueImpl::kCalendar: return "calendar";
    case EventQueueImpl::kHeap: return "heap";
  }
  return "unknown";
}

// Implementation picked by the default EventQueue constructor: kHeap when
// WRSN_EVENT_QUEUE=heap, kCalendar when it is "calendar", unset or empty.
// Any other value throws. Read per call so tests can toggle the environment
// between constructions (the WRSN_REFERENCE_WORLD pattern).
[[nodiscard]] EventQueueImpl event_queue_default_impl();

// Resolves a config-key value: "heap" / "calendar" select an implementation
// directly, "auto" (or "") defers to event_queue_default_impl(). Throws
// InvalidArgument on anything else.
[[nodiscard]] EventQueueImpl event_queue_impl_from_name(const std::string& name);

class EventQueue {
 public:
  EventQueue() : EventQueue(event_queue_default_impl()) {}
  explicit EventQueue(EventQueueImpl impl);

  [[nodiscard]] EventQueueImpl impl() const { return impl_; }

  void push(double time, EventKind kind, std::size_t subject = 0,
            std::uint64_t epoch = 0);

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t size() const {
    return impl_ == EventQueueImpl::kHeap ? heap_.size() : cal_size_;
  }
  // Undefined on an empty queue (like priority_queue::top).
  [[nodiscard]] const Event& top() const;
  Event pop();

  // --- checkpoint support (sim/snapshot.cpp) -----------------------------
  // Pending events in strict (time, seq) pop order. Works on a copy, so the
  // snapshot bytes are canonical regardless of internal bucket layout.
  [[nodiscard]] std::vector<Event> sorted_events() const;
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  // Rebuilds the queue from serialized events, preserving each event's seq
  // (a plain push() would re-number them and break the restored tie-break
  // order against an uninterrupted run).
  void restore(const std::vector<Event>& events, std::uint64_t next_seq);

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // --- calendar internals (see events.cpp) -------------------------------
  void cal_push(const Event& e);
  // Locates the earliest (time, seq) event and caches its bucket/index.
  void cal_find_top() const;
  void cal_resize(std::size_t new_nbuckets);
  [[nodiscard]] std::uint64_t day_of(double time) const;

  EventQueueImpl impl_;
  std::uint64_t next_seq_ = 0;

  // kHeap state.
  std::priority_queue<Event, std::vector<Event>, Later> heap_;

  // kCalendar state. Each bucket chain is a binary min-heap on (time, seq)
  // (std::push_heap/pop_heap with Later), so locating the chain's earliest
  // event is an O(1) front peek and membership of the scanned day is decided
  // from the front alone — real workloads alias thousands of events into one
  // day (equal-time batches, skewed far-future predictions), and a linear
  // chain re-scan per pop degenerates to O(chain^2) per drained day.
  // cur_day_ and the cached top location advance from const top(), hence
  // mutable.
  std::vector<std::vector<Event>> buckets_;
  std::size_t bucket_mask_ = 0;
  double width_ = 1.0;  // seconds per day
  std::size_t cal_size_ = 0;
  mutable std::uint64_t cur_day_ = 0;
  mutable bool top_valid_ = false;
  mutable std::size_t top_bucket_ = 0;
};

}  // namespace wrsn
