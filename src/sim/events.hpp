#pragma once
// Discrete-event queue with lazy invalidation.
//
// Events are ordered by (time, insertion sequence) so simultaneous events
// fire in a deterministic order. Predicted events (battery crossings, RV
// arrivals) carry the epoch of their subject at scheduling time; when the
// subject's state changes, its epoch is bumped and stale queue entries are
// discarded on pop instead of being deleted in place.

#include <cstdint>
#include <queue>
#include <vector>

namespace wrsn {

enum class EventKind : std::uint8_t {
  kSlotRotation,    // global round-robin handover tick
  kTargetMove,      // subject = target id
  kSensorCrossing,  // subject = sensor id (threshold or death, epoch-guarded)
  kRvArrival,       // subject = RV id (epoch-guarded)
  kRvChargeDone,    // subject = RV id (epoch-guarded)
  kRvBaseChargeDone,  // subject = RV id (epoch-guarded)
  kMetricsSample,   // time-series sampling tick
  kRequestUplink,     // subject = sensor id (uplink-epoch-guarded retry tick)
  kRvBreakdown,       // subject = RV id (unguarded; handler checks state)
  kRvRepaired,        // subject = RV id (epoch-guarded)
  kSensorFaultStart,  // subject = sensor id (unguarded; handler checks state)
  kSensorFaultEnd,    // subject = sensor id (unguarded; handler checks state)
  kSimEnd,
};

inline constexpr std::size_t kNumEventKinds = 13;

// Stable human/machine-readable name; these strings are part of the trace
// schema (obs/trace.hpp) — renaming one is a schema change.
[[nodiscard]] constexpr const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSlotRotation: return "slot-rotation";
    case EventKind::kTargetMove: return "target-move";
    case EventKind::kSensorCrossing: return "sensor-crossing";
    case EventKind::kRvArrival: return "rv-arrival";
    case EventKind::kRvChargeDone: return "rv-charge-done";
    case EventKind::kRvBaseChargeDone: return "rv-base-charge-done";
    case EventKind::kMetricsSample: return "metrics-sample";
    case EventKind::kRequestUplink: return "request-uplink";
    case EventKind::kRvBreakdown: return "rv-breakdown";
    case EventKind::kRvRepaired: return "rv-repaired";
    case EventKind::kSensorFaultStart: return "sensor-fault-start";
    case EventKind::kSensorFaultEnd: return "sensor-fault-end";
    case EventKind::kSimEnd: return "sim-end";
  }
  return "unknown";
}

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for equal times
  EventKind kind = EventKind::kSimEnd;
  std::size_t subject = 0;
  std::uint64_t epoch = 0;
};

class EventQueue {
 public:
  void push(double time, EventKind kind, std::size_t subject = 0,
            std::uint64_t epoch = 0) {
    heap_.push(Event{time, next_seq_++, kind, subject, epoch});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wrsn
