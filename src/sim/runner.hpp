#pragma once
// Experiment harness: runs independent replicas (distinct master seeds) of a
// configuration, optionally in parallel, and averages the reports. All
// figure benches are parameter sweeps over this.

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/thread_pool.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"

namespace wrsn {

// One full simulation of `config` (seed taken from the config). When
// `telemetry` is non-null the world records event-loop counters and
// scheduler timings into it (see obs/telemetry.hpp); physics is unaffected.
[[nodiscard]] MetricsReport run_replica(const SimConfig& config,
                                        obs::TelemetryRegistry* telemetry = nullptr);

// Field-wise arithmetic mean of reports (counters become averages too).
[[nodiscard]] MetricsReport mean_report(const std::vector<MetricsReport>& reports);

// Runs `num_replicas` replicas with seeds config.seed, config.seed+1, ...
// When `pool` is non-null the replicas run concurrently on it. When
// `telemetry` is non-null each replica records into a private registry which
// is merged into `telemetry` as the replica finishes (counters/histograms
// sum, gauges keep the maximum), so one registry can aggregate a whole sweep.
[[nodiscard]] std::vector<MetricsReport> run_replicas(
    const SimConfig& config, std::size_t num_replicas, ThreadPool* pool = nullptr,
    obs::TelemetryRegistry* telemetry = nullptr);

// Convenience: mean over replicas.
[[nodiscard]] MetricsReport run_mean(const SimConfig& config,
                                     std::size_t num_replicas,
                                     ThreadPool* pool = nullptr,
                                     obs::TelemetryRegistry* telemetry = nullptr);

}  // namespace wrsn
