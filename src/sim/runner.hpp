#pragma once
// Experiment harness: runs independent replicas (distinct master seeds) of a
// configuration, optionally in parallel, and averages the reports. All
// figure benches are parameter sweeps over this.

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/thread_pool.hpp"
#include "sim/metrics.hpp"

namespace wrsn {

// One full simulation of `config` (seed taken from the config).
[[nodiscard]] MetricsReport run_replica(const SimConfig& config);

// Field-wise arithmetic mean of reports (counters become averages too).
[[nodiscard]] MetricsReport mean_report(const std::vector<MetricsReport>& reports);

// Runs `num_replicas` replicas with seeds config.seed, config.seed+1, ...
// When `pool` is non-null the replicas run concurrently on it.
[[nodiscard]] std::vector<MetricsReport> run_replicas(const SimConfig& config,
                                                      std::size_t num_replicas,
                                                      ThreadPool* pool = nullptr);

// Convenience: mean over replicas.
[[nodiscard]] MetricsReport run_mean(const SimConfig& config,
                                     std::size_t num_replicas,
                                     ThreadPool* pool = nullptr);

}  // namespace wrsn
