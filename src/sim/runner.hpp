#pragma once
// Experiment harness: runs independent replicas (distinct master seeds) of a
// configuration, optionally in parallel, and averages the reports. All
// figure benches are parameter sweeps over this.

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"

namespace wrsn {

// One full simulation of `config` (seed taken from the config). When
// `telemetry` is non-null the world records event-loop counters and
// scheduler timings into it (see obs/telemetry.hpp); physics is unaffected.
[[nodiscard]] MetricsReport run_replica(const SimConfig& config,
                                        obs::TelemetryRegistry* telemetry = nullptr);

// Per-replica observability attachments (each may be null). All are purely
// observational — attaching any of them leaves the replica's physics and
// report byte-identical (tests/test_spans.cpp).
struct ReplicaInstruments {
  obs::TelemetryRegistry* telemetry = nullptr;
  obs::TraceSink* trace = nullptr;     // per-event records (schema v1)
  obs::SpanLog* spans = nullptr;       // lifecycle spans (schema v2); the
                                       // caller owns SpanLog::finish()
  obs::FlightRecorder* flight = nullptr;
};

// run_replica with the full instrument set attached.
[[nodiscard]] MetricsReport run_replica(const SimConfig& config,
                                        const ReplicaInstruments& instruments);

// Field-wise arithmetic mean of reports (counters become averages too).
[[nodiscard]] MetricsReport mean_report(const std::vector<MetricsReport>& reports);

// Runs `num_replicas` replicas with seeds config.seed, config.seed+1, ...
// When `pool` is non-null the replicas run concurrently on it. When
// `telemetry` is non-null each replica records into a private registry which
// is merged into `telemetry` as the replica finishes (counters/histograms
// sum, gauges keep the maximum), so one registry can aggregate a whole sweep.
[[nodiscard]] std::vector<MetricsReport> run_replicas(
    const SimConfig& config, std::size_t num_replicas, ThreadPool* pool = nullptr,
    obs::TelemetryRegistry* telemetry = nullptr);

// Convenience: mean over replicas.
[[nodiscard]] MetricsReport run_mean(const SimConfig& config,
                                     std::size_t num_replicas,
                                     ThreadPool* pool = nullptr,
                                     obs::TelemetryRegistry* telemetry = nullptr);

}  // namespace wrsn
