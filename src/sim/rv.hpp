#pragma once
// Runtime state of one Recharging Vehicle.
//
// The world moves RVs between states; the struct itself only holds data.
// Positions are exact at event boundaries (departure/arrival); travel energy
// is deducted at departure, which is safe because a leg is only started when
// the full leg plus the return reserve fits in the battery.

#include <deque>

#include "energy/battery.hpp"
#include "geom/vec2.hpp"
#include "net/ids.hpp"

namespace wrsn {

struct Rv {
  enum class State {
    kIdle,          // at base (or parked in field), awaiting work
    kTraveling,     // en route to service_queue.front()
    kCharging,      // parked at a sensor, transferring energy
    kReturning,     // en route to base
    kSelfCharging,  // docked, refilling its own battery
    kBrokenDown,    // out of service until the repair window ends (fault/)
  };

  RvId id = kInvalidId;
  Vec2 pos;
  Battery battery;
  State state = State::kIdle;
  bool in_field = false;  // true between tour start and base return

  // Flattened node visiting order for the current plan.
  std::deque<SensorId> service_queue;

  // Epoch guard for this RV's pending arrival/charge-done events.
  std::uint64_t epoch = 0;

  // Per-vehicle odometer and delivery counters (metres / joules / count).
  double distance_traveled = 0.0;
  double energy_delivered = 0.0;
  std::size_t nodes_served = 0;

  [[nodiscard]] bool idle() const { return state == State::kIdle; }
};

}  // namespace wrsn
