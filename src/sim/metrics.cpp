#include "sim/metrics.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/json.hpp"

namespace wrsn {

void MetricsIntegrator::advance(Second dt, const StateSnapshot& snap) {
  WRSN_REQUIRE(dt.value() >= 0.0, "cannot integrate backwards");
  const double s = dt.value();
  if (s == 0.0) return;
  covered_time_ += s * static_cast<double>(snap.covered_targets);
  coverable_time_ += s * static_cast<double>(snap.coverable_targets);
  alive_time_ += s * static_cast<double>(snap.alive_sensors);
  dead_time_ += s * static_cast<double>(snap.total_sensors - snap.alive_sensors);
  report_.packets_delivered += s * snap.delivery_rate_pps;
  report_.packets_offered += s * snap.offered_rate_pps;
  hop_packet_integral_ += s * snap.delivery_rate_pps * snap.avg_delivery_hops;
  elapsed_ += s;
}

void MetricsIntegrator::on_rv_leg(Meter dist, Joule traction) {
  report_.rv_travel_distance += dist;
  report_.rv_travel_energy += traction;
}

void MetricsIntegrator::on_recharge(std::size_t sensor, Joule delivered,
                                    Second request_latency) {
  report_.energy_recharged += delivered;
  ++report_.sensors_recharged;
  latency_sum_ += request_latency.value();
  latencies_.push_back(request_latency.value());
  ++recharge_counts_[sensor];
}

void MetricsIntegrator::on_recharge_breakdown(Second wait, Second travel,
                                              Second service) {
  waits_.push_back(wait.value());
  travels_.push_back(travel.value());
  services_.push_back(service.value());
}

void MetricsIntegrator::on_rv_base_recharge(Joule drawn) {
  report_.rv_base_energy_drawn += drawn;
  ++report_.rv_base_recharges;
}

MetricsReport MetricsIntegrator::finalize(Second duration) const {
  MetricsReport out = report_;
  out.duration = duration;
  const double t = elapsed_ > 0.0 ? elapsed_ : 1.0;
  out.coverage_ratio = coverable_time_ > 0.0 ? covered_time_ / coverable_time_ : 1.0;
  out.missing_rate = 1.0 - out.coverage_ratio;
  out.avg_alive_sensors = alive_time_ / t;
  out.nonfunctional_pct =
      100.0 * dead_time_ / (alive_time_ + dead_time_ > 0.0 ? alive_time_ + dead_time_ : 1.0);
  out.avg_coverable_targets = coverable_time_ / t;
  out.avg_request_latency = Second{
      out.sensors_recharged > 0 ? latency_sum_ / static_cast<double>(out.sensors_recharged)
                                : 0.0};
  out.avg_delivery_hops = out.packets_delivered > 0.0
                              ? hop_packet_integral_ / out.packets_delivered
                              : 0.0;
  if (!latencies_.empty()) {
    std::vector<double> sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    auto quantile = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(idx, sorted.size() - 1)];
    };
    out.p50_request_latency = Second{quantile(0.50)};
    out.p95_request_latency = Second{quantile(0.95)};
    out.p99_request_latency = Second{quantile(0.99)};
    out.max_request_latency = Second{sorted.back()};
    out.p99_max_request_latency = out.max_request_latency;
  }
  // Same nearest-rank convention for the wait/travel/service decomposition.
  auto summarize = [](const std::vector<double>& samples, Second& avg,
                      Second& p50, Second& p95, Second& p99) {
    if (samples.empty()) return;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (const double v : sorted) sum += v;
    avg = Second{sum / static_cast<double>(sorted.size())};
    auto quantile = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(idx, sorted.size() - 1)];
    };
    p50 = Second{quantile(0.50)};
    p95 = Second{quantile(0.95)};
    p99 = Second{quantile(0.99)};
  };
  summarize(waits_, out.avg_request_wait, out.p50_request_wait,
            out.p95_request_wait, out.p99_request_wait);
  summarize(travels_, out.avg_request_travel, out.p50_request_travel,
            out.p95_request_travel, out.p99_request_travel);
  summarize(services_, out.avg_request_service, out.p50_request_service,
            out.p95_request_service, out.p99_request_service);
  if (failover_recoveries_ > 0) {
    out.avg_failover_recovery =
        Second{failover_recovery_sum_ / static_cast<double>(failover_recoveries_)};
  }
  if (!recharge_counts_.empty()) {
    double sum = 0.0, sum_sq = 0.0;
    for (const auto& [sensor, count] : recharge_counts_) {
      sum += count;
      sum_sq += static_cast<double>(count) * count;
    }
    out.recharge_fairness_jain =
        sum * sum / (static_cast<double>(recharge_counts_.size()) * sum_sq);
  }
  return out;
}

void MetricsIntegrator::serialize(BinWriter& w) const {
  w.f64(report_.rv_travel_energy.value());
  w.f64(report_.rv_travel_distance.value());
  w.f64(report_.energy_recharged.value());
  w.f64(report_.rv_base_energy_drawn.value());
  w.size(report_.sensors_recharged);
  w.size(report_.rv_tours);
  w.size(report_.rv_base_recharges);
  w.f64(report_.packets_delivered);
  w.f64(report_.packets_offered);
  w.size(report_.sensor_deaths);
  w.size(report_.recharge_requests);
  w.size(report_.requests_lost);
  w.size(report_.requests_delayed);
  w.size(report_.requests_retried);
  w.size(report_.requests_expired);
  w.size(report_.rv_breakdowns);
  w.size(report_.rv_repairs);
  w.size(report_.failover_reinjected);
  w.size(report_.sensor_hw_faults);
  w.f64(report_.rv_downtime.value());
  w.f64(covered_time_);
  w.f64(coverable_time_);
  w.f64(alive_time_);
  w.f64(dead_time_);
  w.f64(elapsed_);
  w.f64(latency_sum_);
  w.f64(hop_packet_integral_);
  w.f64(failover_recovery_sum_);
  w.size(failover_recoveries_);
  w.vec(latencies_);
  w.vec(waits_);
  w.vec(travels_);
  w.vec(services_);
  std::vector<std::pair<std::size_t, int>> counts(recharge_counts_.begin(),
                                                  recharge_counts_.end());
  std::sort(counts.begin(), counts.end());
  w.size(counts.size());
  for (const auto& [sensor, count] : counts) {
    w.size(sensor);
    w.u64(static_cast<std::uint64_t>(count));
  }
}

void MetricsIntegrator::deserialize(BinReader& r) {
  auto f64 = [&r] {
    double v = 0.0;
    r.f64(v);
    return v;
  };
  report_.rv_travel_energy = Joule{f64()};
  report_.rv_travel_distance = Meter{f64()};
  report_.energy_recharged = Joule{f64()};
  report_.rv_base_energy_drawn = Joule{f64()};
  r.size(report_.sensors_recharged);
  r.size(report_.rv_tours);
  r.size(report_.rv_base_recharges);
  r.f64(report_.packets_delivered);
  r.f64(report_.packets_offered);
  r.size(report_.sensor_deaths);
  r.size(report_.recharge_requests);
  r.size(report_.requests_lost);
  r.size(report_.requests_delayed);
  r.size(report_.requests_retried);
  r.size(report_.requests_expired);
  r.size(report_.rv_breakdowns);
  r.size(report_.rv_repairs);
  r.size(report_.failover_reinjected);
  r.size(report_.sensor_hw_faults);
  report_.rv_downtime = Second{f64()};
  r.f64(covered_time_);
  r.f64(coverable_time_);
  r.f64(alive_time_);
  r.f64(dead_time_);
  r.f64(elapsed_);
  r.f64(latency_sum_);
  r.f64(hop_packet_integral_);
  r.f64(failover_recovery_sum_);
  r.size(failover_recoveries_);
  r.vec(latencies_);
  r.vec(waits_);
  r.vec(travels_);
  r.vec(services_);
  std::size_t n = 0;
  r.size(n);
  recharge_counts_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t sensor = 0;
    std::uint64_t count = 0;
    r.size(sensor);
    r.u64(count);
    recharge_counts_[sensor] = static_cast<int>(count);
  }
}

std::string to_json(const MetricsReport& r) {
  JsonWriter w;
  w.begin_object()
      .field("duration_s", r.duration.value())
      .field("rv_travel_energy_j", r.rv_travel_energy.value())
      .field("rv_travel_distance_m", r.rv_travel_distance.value())
      .field("energy_recharged_j", r.energy_recharged.value())
      .field("rv_base_energy_drawn_j", r.rv_base_energy_drawn.value())
      .field("objective_score_j", r.objective_score().value())
      .field("coverage_ratio", r.coverage_ratio)
      .field("missing_rate", r.missing_rate)
      .field("nonfunctional_pct", r.nonfunctional_pct)
      .field("avg_alive_sensors", r.avg_alive_sensors)
      .field("avg_coverable_targets", r.avg_coverable_targets)
      .field("recharging_cost_m_per_sensor", r.recharging_cost_m_per_sensor())
      .field("packets_delivered", r.packets_delivered)
      .field("avg_delivery_hops", r.avg_delivery_hops)
      .field("sensor_deaths", static_cast<std::uint64_t>(r.sensor_deaths))
      .field("recharge_requests", static_cast<std::uint64_t>(r.recharge_requests))
      .field("sensors_recharged", static_cast<std::uint64_t>(r.sensors_recharged))
      .field("rv_tours", static_cast<std::uint64_t>(r.rv_tours))
      .field("rv_base_recharges", static_cast<std::uint64_t>(r.rv_base_recharges))
      .field("avg_request_latency_s", r.avg_request_latency.value())
      .field("p50_request_latency_s", r.p50_request_latency.value())
      .field("p95_request_latency_s", r.p95_request_latency.value())
      .field("p99_request_latency_s", r.p99_request_latency.value())
      .field("max_request_latency_s", r.max_request_latency.value())
      .field("p99_max_request_latency_s", r.p99_max_request_latency.value())
      .field("avg_request_wait_s", r.avg_request_wait.value())
      .field("p50_request_wait_s", r.p50_request_wait.value())
      .field("p95_request_wait_s", r.p95_request_wait.value())
      .field("p99_request_wait_s", r.p99_request_wait.value())
      .field("avg_request_travel_s", r.avg_request_travel.value())
      .field("p50_request_travel_s", r.p50_request_travel.value())
      .field("p95_request_travel_s", r.p95_request_travel.value())
      .field("p99_request_travel_s", r.p99_request_travel.value())
      .field("avg_request_service_s", r.avg_request_service.value())
      .field("p50_request_service_s", r.p50_request_service.value())
      .field("p95_request_service_s", r.p95_request_service.value())
      .field("p99_request_service_s", r.p99_request_service.value())
      .field("recharge_fairness_jain", r.recharge_fairness_jain)
      .field("requests_lost", static_cast<std::uint64_t>(r.requests_lost))
      .field("requests_delayed", static_cast<std::uint64_t>(r.requests_delayed))
      .field("requests_retried", static_cast<std::uint64_t>(r.requests_retried))
      .field("requests_expired", static_cast<std::uint64_t>(r.requests_expired))
      .field("rv_breakdowns", static_cast<std::uint64_t>(r.rv_breakdowns))
      .field("rv_repairs", static_cast<std::uint64_t>(r.rv_repairs))
      .field("failover_reinjected",
             static_cast<std::uint64_t>(r.failover_reinjected))
      .field("sensor_hw_faults", static_cast<std::uint64_t>(r.sensor_hw_faults))
      .field("rv_downtime_s", r.rv_downtime.value())
      .field("avg_failover_recovery_s", r.avg_failover_recovery.value())
      .end_object();
  return w.str();
}

}  // namespace wrsn
