#pragma once
// Incremental spatial bucket index over the (moving) targets.
//
// rebalance_dirty needs, per dirty sensor, the set of targets within sensing
// range. The reference engine answers that with an O(M) scan per sensor;
// at large fields the scan dominated the event loop (every target waypoint
// step dirties a handful of sensors but visits all M targets for each).
// This index buckets targets into a uniform grid with cell size >= the
// query radius, so a candidate query touches at most the 3x3 cell block
// around the sensor. Targets move one at a time (kTargetMove events), so
// updates are a single erase+push per step — unlike geom::SpatialGrid,
// which is CSR build-only.
//
// candidates() must return EXACTLY the set the linear scan would (same
// predicate: squared_distance <= radius^2, ascending target id) — the
// incremental engine feeds it to the clustering core, and the engine
// equivalence checks compare the resulting simulations byte-for-byte
// against the reference engine's scan.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "core/error.hpp"
#include "geom/vec2.hpp"
#include "net/ids.hpp"

namespace wrsn {

class TargetIndex {
 public:
  // `cell_size` should be >= the largest query radius so queries stay within
  // the 3x3 neighbourhood; positions outside [0, field_side) clamp into the
  // border cells, which only makes candidate supersets per cell (the exact
  // distance filter still applies).
  void init(double field_side, double cell_size, const std::vector<Vec2>& pos) {
    WRSN_REQUIRE(field_side > 0.0 && cell_size > 0.0,
                 "field and cell size must be positive");
    cell_size_ = cell_size;
    per_side_ = std::max<std::ptrdiff_t>(
        1, static_cast<std::ptrdiff_t>(std::ceil(field_side / cell_size)));
    cells_.assign(static_cast<std::size_t>(per_side_ * per_side_), {});
    pos_ = pos;
    for (TargetId t = 0; t < pos_.size(); ++t) {
      cells_[cell_of(pos_[t])].push_back(t);
    }
  }

  void move(TargetId t, Vec2 to) {
    const std::size_t from = cell_of(pos_[t]);
    const std::size_t dest = cell_of(to);
    pos_[t] = to;
    if (from == dest) return;
    std::vector<TargetId>& bucket = cells_[from];
    bucket.erase(std::find(bucket.begin(), bucket.end(), t));
    cells_[dest].push_back(t);
  }

  // Targets within `radius` of `q`, ascending by id, into `out` (cleared
  // first; pass a reusable scratch vector to avoid per-query allocation).
  void candidates(Vec2 q, double radius, std::vector<TargetId>& out) const {
    out.clear();
    const double r2 = radius * radius;
    const std::ptrdiff_t lo_x = coord(q.x - radius);
    const std::ptrdiff_t hi_x = coord(q.x + radius);
    const std::ptrdiff_t lo_y = coord(q.y - radius);
    const std::ptrdiff_t hi_y = coord(q.y + radius);
    for (std::ptrdiff_t cy = lo_y; cy <= hi_y; ++cy) {
      for (std::ptrdiff_t cx = lo_x; cx <= hi_x; ++cx) {
        const std::vector<TargetId>& bucket =
            cells_[static_cast<std::size_t>(cy * per_side_ + cx)];
        for (const TargetId t : bucket) {
          if (squared_distance(pos_[t], q) <= r2) out.push_back(t);
        }
      }
    }
    std::sort(out.begin(), out.end());
  }

  [[nodiscard]] std::size_t size() const { return pos_.size(); }

 private:
  [[nodiscard]] std::ptrdiff_t coord(double v) const {
    const auto c = static_cast<std::ptrdiff_t>(std::floor(v / cell_size_));
    return std::clamp<std::ptrdiff_t>(c, 0, per_side_ - 1);
  }
  [[nodiscard]] std::size_t cell_of(Vec2 p) const {
    return static_cast<std::size_t>(coord(p.y) * per_side_ + coord(p.x));
  }

  double cell_size_ = 1.0;
  std::ptrdiff_t per_side_ = 1;
  std::vector<std::vector<TargetId>> cells_;  // row-major [y][x]
  std::vector<Vec2> pos_;                     // mirrored target positions
};

}  // namespace wrsn
