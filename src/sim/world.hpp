#pragma once
// The simulation world: wires the network substrate, the activity-management
// layer and the recharge schedulers into one discrete-event simulation
// (Sections II-IV, evaluated as in Section V).
//
// Between events every battery drains at a constant, known power, so the
// engine integrates energy and metrics analytically and schedules exact
// threshold/death crossing events — there is no fixed timestep. Battery
// settlement is lazy: each sensor carries (last_settle_time, drain) and is
// integrated only when its drain changes, it is charged/killed, or a
// decision point reads its level; run_until() settles everyone at its
// horizon so public accessors always see current levels.
//
// Two engines share this physics core and differ only in how derived state
// is maintained (see docs/ARCHITECTURE.md, "Event loop"):
//  - kIncremental: alive/coverable/covered counters, drain dirty-marks and
//    grid-backed dirty-region discovery keep per-event cost independent of
//    the network size.
//  - kReference: full O(N) rescans recover the same derived state from
//    first principles each time. Identical operation sequences make the two
//    engines bit-identical, so any divergence in reports, traces or battery
//    vectors pinpoints a stale counter or missed invalidation
//    (tests/test_world_equivalence.cpp).

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "activity/activation.hpp"
#include "activity/clustering.hpp"
#include "core/config.hpp"
#include "core/dirty_set.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sched/arena.hpp"
#include "sched/planner.hpp"
#include "sched/policy.hpp"
#include "sched/request.hpp"
#include "sim/events.hpp"
#include "sim/metrics.hpp"
#include "sim/rv.hpp"
#include "sim/sensor_soa.hpp"
#include "sim/target_index.hpp"

namespace wrsn {

struct WorldSnapshot;   // sim/snapshot.hpp
struct SnapshotAccess;  // sim/snapshot.cpp — the one friend that walks members

enum class WorldEngine {
  kIncremental,  // counters + dirty marks + grid queries (the default)
  kReference,    // full-rescan maintenance of the same state (cross-check)
};

// Engine picked by the default World constructor: kReference when
// WRSN_REFERENCE_WORLD is set to a non-empty value other than "0" (the
// WRSN_REFERENCE_PLANNERS pattern), else kIncremental. Read per call so
// tests can toggle the environment between constructions.
[[nodiscard]] WorldEngine world_default_engine();

class World {
 public:
  explicit World(const SimConfig& config);
  World(const SimConfig& config, WorldEngine engine);
  // Restore: rebuilds the static substrate from the snapshot's embedded
  // config (deployment, comm graph, sensing grid are seed-derived), then
  // overwrites every piece of mutable state so that continuing the run is
  // byte-identical to never having stopped (tests/test_snapshot_equivalence).
  explicit World(const WorldSnapshot& snap);

  // Runs the whole horizon and returns the metrics report.
  MetricsReport run();

  // Processes events up to (and including) time t; callable repeatedly with
  // increasing t. Used by tests and interactive examples. All sensor
  // batteries are settled to t on return.
  void run_until(Second t);
  [[nodiscard]] MetricsReport report() const;

  void enable_time_series(bool on) { record_series_ = on; }
  [[nodiscard]] const TimeSeries& time_series() const { return series_; }

  // Observer hook: called once per processed event (after state update).
  // Set to nullptr to disable. Used for debugging, trace dumps and tests
  // that assert event ordering.
  struct TraceEvent {
    double time = 0.0;
    EventKind kind = EventKind::kSimEnd;
    std::size_t subject = 0;
    std::uint64_t epoch = 0;
    std::size_t queue_size = 0;  // events still pending after this one
  };
  using TraceFn = std::function<void(const TraceEvent&)>;
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }

  // Structured trace sink (obs/trace.hpp): receives every processed event as
  // a TraceRecord. Subsumes set_tracer for serialization use cases; both may
  // be attached at once. Pass nullptr to detach. The sink must outlive the
  // run; finish() is left to the caller.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Span tracing (obs/spans.hpp): the world opens, annotates and closes
  // lifecycle spans on the log — one root span per recharge request (ending
  // in exactly one of served / expired / died-waiting / unserved) and one
  // per RV tour with travel/charge/return legs and breakdown interruptions
  // nested inside. Pass nullptr to detach. The log must outlive the run;
  // spans still open at the horizon are closed when run_until reaches end_,
  // but SpanLog::finish() (sink flush) is left to the owner. Observational
  // only: attaching spans never changes simulated physics
  // (tests/test_spans.cpp).
  void set_span_log(obs::SpanLog* spans) { spans_ = spans; }

  // Flight recorder (obs/flight.hpp): receives the same per-event
  // TraceRecord stream as the trace sink into its bounded ring, for
  // post-mortem dumps on assert failures / SIGINT. Pass nullptr to detach.
  void set_flight_recorder(obs::FlightRecorder* recorder) { flight_ = recorder; }

  // Attaches a telemetry registry (obs/telemetry.hpp): the event loop counts
  // pops per EventKind, stale-epoch discards and the queue high-water mark,
  // and while events are being processed the registry is installed on the
  // running thread so WRSN_OBS_SCOPE timers in the schedulers report to it.
  // Pass nullptr to detach. Telemetry is observational only: attaching it
  // never changes simulated physics (tests/test_observability.cpp).
  void set_telemetry(obs::TelemetryRegistry* registry);

  // --- checkpointing (sim/snapshot.hpp) ---------------------------------
  // Captures the full mutable state at the current instant. Only valid at a
  // quiescent point: between run_until calls, or inside a checkpoint hook
  // (which fires after an event is fully handled). The snapshot embeds the
  // config, so restore needs nothing else.
  [[nodiscard]] WorldSnapshot checkpoint() const;

  // Checkpoint hook: consulted after every fully-processed event. Returning
  // true stops run_until early (before the horizon settle), leaving the
  // world at a quiescent, checkpointable instant; the caller then typically
  // calls checkpoint() and either persists and resumes (periodic
  // checkpoints) or exits (signal-triggered stop, watchdog deadline). Pass
  // nullptr to detach. The hook itself never mutates physics.
  using CheckpointHook = std::function<bool(const World&)>;
  void set_checkpoint_hook(CheckpointHook hook) {
    checkpoint_hook_ = std::move(hook);
  }

  // True once run_until has reached the configured horizon (end of the
  // simulation); a hook-stopped run leaves this false so supervisors can
  // tell "done" from "interrupted".
  [[nodiscard]] bool finished() const { return finished_; }

  // Fault injection: drains the sensor's battery and processes the death
  // immediately (the node behaves like any depleted node afterwards and can
  // be revived by an RV). For chaos/what-if experiments and tests.
  void inject_sensor_failure(SensorId s);

  // Test support: pushes a raw event onto the queue without touching any
  // epoch, so tests can stage epoch-stale events deterministically
  // (tests/test_events.cpp). Never used by the simulation itself.
  void push_event_for_test(double t, EventKind kind, std::size_t subject,
                           std::uint64_t epoch) {
    queue_.push(t, kind, subject, epoch);
  }

  // --- introspection (tests, examples) ----------------------------------
  [[nodiscard]] Second now() const { return Second{now_}; }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] WorldEngine engine() const { return engine_; }
  [[nodiscard]] const Network& network() const { return net_; }
  [[nodiscard]] const ClusterSet& clusters() const { return clusters_; }
  [[nodiscard]] const RechargeNodeList& recharge_list() const { return requests_; }
  [[nodiscard]] const std::vector<Rv>& rvs() const { return rvs_; }
  [[nodiscard]] const TrafficModel& traffic() const { return traffic_; }
  [[nodiscard]] StateSnapshot snapshot() const;
  // Active monitor of target t (kInvalidId when unmonitored; always
  // kInvalidId under the full-time policy, which has no single monitor).
  [[nodiscard]] SensorId active_monitor(TargetId t) const {
    return active_monitor_[t];
  }
  // Events handled so far (stale discards excluded). Benchmarks divide wall
  // time by this for an events/sec figure.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  // Total energy drained from sensor batteries since t=0 (exact integral of
  // the piecewise-constant drains, including fault-injection drains).
  // Together with the recharged total this gives the sensor-side
  // energy-conservation invariant:
  //   initial + recharged == current levels + consumed.
  [[nodiscard]] Joule sensor_energy_consumed() const {
    return Joule{sensor_energy_consumed_};
  }

 private:
  // Snapshot codec (sim/snapshot.cpp). SnapshotAccess::io is one templated
  // member walk shared by save and load, so the two field lists cannot
  // drift; load_state overwrites the mutable state of a freshly-constructed
  // world with the snapshot's.
  friend struct SnapshotAccess;
  void load_state(const WorldSnapshot& snap);

  // --- event handlers ------------------------------------------------------
  void handle(const Event& ev);
  void on_slot_rotation();
  void on_target_move(TargetId t);
  void on_sensor_crossing(SensorId s);
  void on_rv_arrival(RvId r);
  void on_rv_charge_done(RvId r);
  void on_rv_base_charge_done(RvId r);
  void on_rv_breakdown(RvId r);
  void on_rv_repaired(RvId r);
  void on_request_uplink(SensorId s);
  void on_sensor_fault_start(SensorId s);
  void on_sensor_fault_end(SensorId s);

  // --- continuous state --------------------------------------------------
  void advance_to(double t);
  [[nodiscard]] Watt sensor_drain(SensorId s) const;
  // Integrates sensor s's battery from its last settlement to now_ at the
  // current soa_.drain[s]; fires on_sensor_alive_changed when the level
  // clamps to empty. Idempotent within an instant.
  void settle_sensor(SensorId s);
  // Mutation half of a settlement: charges `drawn` joules against the level,
  // mirrors net_, fires the alive transition. Returns whether s just died
  // (the parallel settle falls back to serial from that point on).
  bool apply_settlement(SensorId s, double drawn);
  void settle_all_sensors();
  // Recomputes soa_.drain[s]; on change settles, bumps the epoch and re-predicts
  // the crossing. Sensors whose death event is still pending are left
  // untouched so the crossing fires and handle_death runs exactly once.
  bool update_drain(SensorId s);
  // update_drain split for the compute-then-apply parallel refreshes: the
  // blocked predicate and the mutation half, fed a drain value that the
  // parallel phase precomputed (sensor_drain is pure given frozen state).
  [[nodiscard]] bool drain_refresh_blocked(SensorId s) const;
  bool apply_drain(SensorId s, double d);
  void refresh_drains();       // update_drain over all sensors (full scan)
  void flush_drain_marks();    // update_drain over marked sensors only
  void request_drain_refresh();  // engine dispatch: full scan vs marks
  void mark_drain_dirty(SensorId s) { drain_marks_.add(s); }
  // Predicted threshold/death crossing time under the current level and
  // drain, or kNoCrossing when none will fire inside the horizon.
  [[nodiscard]] double crossing_prediction(SensorId s) const;
  // Makes every queued crossing for s stale and records that none is
  // pending. Every push of a fresh crossing goes through schedule_crossing
  // (or update_drain's earlier-prediction branch), which re-records the
  // pending time, so crossing_time stays exact.
  void invalidate_crossing(SensorId s) {
    ++soa_.epoch[s];
    soa_.crossing_time[s] = kNoCrossing;
  }
  void schedule_crossing(SensorId s);

  // --- derived-state accounting ------------------------------------------
  // Counters are maintained by both engines at every transition; the
  // reference engine simply ignores them and rescans, which is what the
  // equivalence suite exploits to validate them.
  void on_sensor_alive_changed(SensorId s, bool alive_now);
  void set_covered(TargetId t, bool v);
  void set_coverable(TargetId t, bool v);
  void recompute_covered(TargetId t);
  void rebuild_counters();  // O(N+M), after a global recluster
  [[nodiscard]] StateSnapshot snapshot_scan() const;      // full rescan
  [[nodiscard]] StateSnapshot snapshot_counters() const;  // O(1)

  // --- activity management ---------------------------------------------
  void recluster();  // global: construction + teleport motion
  // Scoped re-clustering for a random-waypoint step: only sensors in range
  // of the target's old/new position are re-assigned.
  void recluster_moved_target(TargetId t, Vec2 old_pos);
  // Re-enters a revived sensor into clustering immediately (it may have
  // been stranded when its cluster's target walked away while it was dead).
  void revive_membership(SensorId s);
  // Splices a RebalanceResult into rotors, monitors/activation, coverage
  // counters and ERP evaluation for the affected clusters.
  void apply_rebalance(const RebalanceResult& res, std::vector<TargetId> affected);
  [[nodiscard]] std::vector<Vec2> current_target_positions() const;
  void set_monitor(TargetId t, SensorId s);  // kInvalidId clears
  void apply_full_time_activation(TargetId t);
  void evaluate_cluster_requests(ClusterId c);
  void add_request(SensorId s);
  void handle_death(SensorId s);

  // --- fault model (src/fault/; all no-ops when fault_ is null) ---------
  // A sensor is eligible to monitor when it is alive AND its sensing
  // hardware is not in a transient fault window. With faults disabled
  // hw_fault is all-zero and this degenerates to alive().
  [[nodiscard]] bool operational(SensorId s) const {
    return soa_.operational(s);
  }
  // Appends the sensor's request to the recharge node list (the uplink
  // reached the base station).
  void deliver_request(SensorId s);
  // Rolls the fault plan's verdict for the next uplink attempt: delivers,
  // schedules a delayed delivery, schedules a backoff retry, or expires the
  // request after max_retries. Returns whether the request was delivered.
  bool attempt_uplink(SensorId s);
  void expire_request(SensorId s);

  // --- RV control -----------------------------------------------------------
  void dispatch();
  void assign_plan(Rv& rv, const std::vector<RechargeItem>& items,
                   const std::vector<std::size_t>& seq);
  void start_next_leg(Rv& rv);
  void return_to_base(Rv& rv);
  void begin_self_charge(Rv& rv);
  // The one shared refill fallback: an RV with nothing (affordable) to do
  // heads home, or tops up at the dock if already there. Every policy
  // outcome that ends a round without a plan funnels through here.
  void head_home_and_refill(Rv& rv);
  void abandon_plan(Rv& rv);
  [[nodiscard]] Joule rv_reserve() const;
  [[nodiscard]] const std::vector<RechargeItem>& unclaimed_items();

  // --- misc ------------------------------------------------------------
  // Ends every span still open at the simulation horizon (open requests
  // become "unserved" / "died-waiting", RV segments "sim-end"). Runs once.
  void close_spans();
  [[nodiscard]] double effective_erp() const;
  [[nodiscard]] bool sensor_critical(SensorId s) const;
  void record_sample();

  SimConfig config_;
  WorldEngine engine_;
  RngStreams streams_;
  Xoshiro256 target_rng_;
  Xoshiro256 sched_rng_;

  Network net_;
  TrafficModel traffic_;

  ClusterSet clusters_;
  std::vector<ClusterRotor> rotors_;             // per target
  std::vector<SensorId> active_monitor_;        // per target (RR policy)
  std::vector<bool> coverable_;                  // per target: any sensor in range

  RechargeNodeList requests_;
  std::vector<double> request_time_;             // per sensor, -1 when none
  std::unordered_set<SensorId> claimed_;

  std::vector<Rv> rvs_;
  // The scheduling scheme, instantiated from the registry by name
  // (config_.scheduler) at construction.
  std::unique_ptr<SchedulerPolicy> policy_;

  // --- fault-injection state (null when faults are disabled; the per-sensor
  // hw-fault flags live in soa_.hw_fault) --
  std::unique_ptr<FaultInjector> fault_;
  // Uplink retry/TTL state machine: epoch guards pending kRequestUplink
  // events, attempt counts the uplink tries of the current request, pending
  // records what the in-flight event means (delayed delivery vs retry).
  enum class UplinkPending : std::uint8_t { kNone, kDeliver, kRetry };
  std::vector<std::uint64_t> uplink_epoch_;
  std::vector<std::uint64_t> uplink_attempt_;
  std::vector<UplinkPending> uplink_pending_;
  // Failover bookkeeping: when a breakdown strands a service queue, each
  // stranded sensor is stamped so its eventual recharge yields a
  // time-to-recovery sample. Per RV: index of the next plan window and the
  // start of the current breakdown.
  std::vector<double> stranded_since_;           // per sensor, -1 when none
  std::vector<std::size_t> rv_breakdown_idx_;
  std::vector<double> breakdown_began_;          // per RV, -1 when healthy

  // Random-waypoint motion state (kRandomWaypoint only).
  std::vector<Vec2> target_waypoint_;
  std::vector<bool> target_dwelling_;

  EventQueue queue_;
  double now_ = 0.0;
  double end_ = 0.0;
  bool finished_ = false;

  // Per-sensor hot state (level/capacity/drain/last-settle/position/epoch/
  // death-processed/hw-fault) as packed parallel arrays; the settlement,
  // drain-refresh and crossing-prediction loops run over these. Battery
  // levels are mirrored back into net_ at every mutation so external
  // readers stay current (see sim/sensor_soa.hpp).
  SensorSoa soa_;
  double sensor_energy_consumed_ = 0.0;          // J, cumulative
  DirtySet drain_marks_;                         // pending update_drain targets

  // Deterministic sharded execution of the bulk per-sensor phases
  // (core/parallel.hpp). The executor is serial unless config_.threads (or
  // WRSN_THREADS) grants more than one thread; every parallel phase follows
  // the compute-then-apply split, so output is byte-identical at any thread
  // count. Scratch slots back the parallel compute halves (one disjoint
  // slot per item; no shared mutation).
  ParallelExec exec_;
  std::vector<double> drain_scratch_;            // per sensor: next drain W
  std::vector<double> settle_scratch_;           // per sensor: energy drawn J
  std::vector<std::uint8_t> coverable_scratch_;  // per target: coverable flag

  // Incremental target bucket grid: answers "targets within sensing range
  // of this sensor" for the scoped rebalances without the O(M) scan the
  // reference engine uses (see sim/target_index.hpp). Maintained on every
  // target waypoint step; cand_scratch_ is the reusable query buffer for
  // rebalance_dirty's candidate-set input.
  TargetIndex target_index_;
  std::vector<std::vector<TargetId>> cand_scratch_;

  // Derived-state counters (kIncremental snapshots; validated against the
  // kReference rescans by the equivalence suite).
  std::size_t alive_count_ = 0;
  std::size_t coverable_count_ = 0;
  std::size_t covered_count_ = 0;                // coverable AND covered
  std::vector<bool> covered_;                    // per target
  std::vector<std::size_t> alive_members_;       // per target, alive members

  // Dispatch-round scratch: the arena backs PlanContext's per-round tables,
  // the vectors are reused across rounds to avoid reallocating the item /
  // fleet / arrival lists every dispatch.
  PlanArena plan_arena_;
  std::vector<RechargeRequest> unclaimed_scratch_;
  std::vector<RechargeItem> items_scratch_;
  std::vector<Vec2> fleet_scratch_;
  std::vector<SensorId> arrival_scratch_;

  MetricsIntegrator metrics_;
  CheckpointHook checkpoint_hook_;
  bool record_series_ = false;
  TimeSeries series_;
  TraceFn tracer_;
  obs::TraceSink* trace_sink_ = nullptr;
  std::uint64_t events_processed_ = 0;

  // Span tracing + flight recorder (optional, never physics-relevant).
  // Cached span ids play the role the cached Counter* handles play for
  // telemetry: the hot path updates them without any lookups.
  obs::SpanLog* spans_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  bool spans_closed_ = false;
  std::vector<std::uint64_t> request_span_;       // per sensor, 0 = none
  std::vector<std::uint64_t> rv_tour_span_;       // per RV, 0 = not touring
  std::vector<std::uint64_t> rv_leg_span_;        // per RV: current travel/
                                                  // charge/return/self-charge
  std::vector<std::uint64_t> rv_breakdown_span_;  // per RV, 0 = healthy
  // Latency-breakdown stamps (always on: they feed the wait/travel/service
  // percentiles in MetricsReport, with or without spans attached).
  std::vector<double> req_travel_accum_;  // per sensor: approach-leg seconds
  std::vector<double> leg_began_;         // per RV: departure of current leg
  std::vector<double> charge_began_;      // per RV: start of current dwell

  // Telemetry (optional, never physics-relevant). Counter handles are
  // resolved once in set_telemetry so the hot loops update them without
  // registry lookups.
  obs::TelemetryRegistry* telemetry_ = nullptr;
  std::array<obs::Counter*, kNumEventKinds> pop_counters_{};
  obs::Counter* stale_counter_ = nullptr;
  obs::Counter* settle_counter_ = nullptr;        // battery settlements
  obs::Counter* drain_update_counter_ = nullptr;  // drain changes applied
  obs::Counter* fault_lost_counter_ = nullptr;
  obs::Counter* fault_retried_counter_ = nullptr;
  obs::Counter* fault_expired_counter_ = nullptr;
  obs::Counter* fault_breakdown_counter_ = nullptr;
  obs::Counter* fault_failover_counter_ = nullptr;
  obs::Counter* fault_hw_fault_counter_ = nullptr;
  obs::Gauge* queue_hwm_gauge_ = nullptr;
  std::size_t queue_hwm_ = 0;
};

}  // namespace wrsn
