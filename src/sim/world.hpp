#pragma once
// The simulation world: wires the network substrate, the activity-management
// layer and the recharge schedulers into one discrete-event simulation
// (Sections II-IV, evaluated as in Section V).
//
// Between events every battery drains at a constant, known power, so the
// engine integrates energy and metrics analytically and schedules exact
// threshold/death crossing events — there is no fixed timestep.

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "activity/activation.hpp"
#include "activity/clustering.hpp"
#include "core/config.hpp"
#include "core/rng.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sched/planner.hpp"
#include "sched/request.hpp"
#include "sim/events.hpp"
#include "sim/metrics.hpp"
#include "sim/rv.hpp"

namespace wrsn {

class World {
 public:
  explicit World(const SimConfig& config);

  // Runs the whole horizon and returns the metrics report.
  MetricsReport run();

  // Processes events up to (and including) time t; callable repeatedly with
  // increasing t. Used by tests and interactive examples.
  void run_until(Second t);
  [[nodiscard]] MetricsReport report() const;

  void enable_time_series(bool on) { record_series_ = on; }
  [[nodiscard]] const TimeSeries& time_series() const { return series_; }

  // Observer hook: called once per processed event (after state update).
  // Set to nullptr to disable. Used for debugging, trace dumps and tests
  // that assert event ordering.
  struct TraceEvent {
    double time = 0.0;
    EventKind kind = EventKind::kSimEnd;
    std::size_t subject = 0;
    std::uint64_t epoch = 0;
    std::size_t queue_size = 0;  // events still pending after this one
  };
  using TraceFn = std::function<void(const TraceEvent&)>;
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }

  // Structured trace sink (obs/trace.hpp): receives every processed event as
  // a TraceRecord. Subsumes set_tracer for serialization use cases; both may
  // be attached at once. Pass nullptr to detach. The sink must outlive the
  // run; finish() is left to the caller.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Attaches a telemetry registry (obs/telemetry.hpp): the event loop counts
  // pops per EventKind, stale-epoch discards and the queue high-water mark,
  // and while events are being processed the registry is installed on the
  // running thread so WRSN_OBS_SCOPE timers in the schedulers report to it.
  // Pass nullptr to detach. Telemetry is observational only: attaching it
  // never changes simulated physics (tests/test_observability.cpp).
  void set_telemetry(obs::TelemetryRegistry* registry);

  // Fault injection: drains the sensor's battery and processes the death
  // immediately (the node behaves like any depleted node afterwards and can
  // be revived by an RV). For chaos/what-if experiments and tests.
  void inject_sensor_failure(SensorId s);

  // --- introspection (tests, examples) ----------------------------------
  [[nodiscard]] Second now() const { return Second{now_}; }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const Network& network() const { return net_; }
  [[nodiscard]] const ClusterSet& clusters() const { return clusters_; }
  [[nodiscard]] const RechargeNodeList& recharge_list() const { return requests_; }
  [[nodiscard]] const std::vector<Rv>& rvs() const { return rvs_; }
  [[nodiscard]] const TrafficModel& traffic() const { return traffic_; }
  [[nodiscard]] StateSnapshot snapshot() const;
  // Total energy drained from sensor batteries since t=0 (exact integral of
  // the piecewise-constant drains). Together with the recharged total this
  // gives the sensor-side energy-conservation invariant:
  //   initial + recharged == current levels + consumed.
  [[nodiscard]] Joule sensor_energy_consumed() const {
    return Joule{sensor_energy_consumed_};
  }

 private:
  // --- event handlers ------------------------------------------------------
  void handle(const Event& ev);
  void on_slot_rotation();
  void on_target_move(TargetId t);
  void on_sensor_crossing(SensorId s);
  void on_rv_arrival(RvId r);
  void on_rv_charge_done(RvId r);
  void on_rv_base_charge_done(RvId r);

  // --- continuous state --------------------------------------------------
  void advance_to(double t);
  [[nodiscard]] Watt sensor_drain(SensorId s) const;
  void refresh_drains();                  // recompute all, reschedule changed
  void schedule_crossing(SensorId s);

  // --- activity management ---------------------------------------------
  void recluster();
  void set_monitor(TargetId t, SensorId s);  // kInvalidId clears
  void apply_full_time_activation(TargetId t);
  void evaluate_cluster_requests(ClusterId c);
  void add_request(SensorId s);
  void handle_death(SensorId s);

  // --- RV control -----------------------------------------------------------
  void dispatch();
  void assign_plan(Rv& rv, const std::vector<RechargeItem>& items,
                   const std::vector<std::size_t>& seq);
  void start_next_leg(Rv& rv);
  void return_to_base(Rv& rv);
  void begin_self_charge(Rv& rv);
  void abandon_plan(Rv& rv);
  [[nodiscard]] Joule rv_reserve() const;
  [[nodiscard]] std::vector<RechargeItem> unclaimed_items();

  // --- misc ------------------------------------------------------------
  [[nodiscard]] double effective_erp() const;
  [[nodiscard]] bool sensor_critical(SensorId s) const;
  void record_sample();

  SimConfig config_;
  RngStreams streams_;
  Xoshiro256 target_rng_;
  Xoshiro256 sched_rng_;

  Network net_;
  TrafficModel traffic_;

  ClusterSet clusters_;
  std::vector<ClusterRotor> rotors_;             // per target
  std::vector<SensorId> active_monitor_;        // per target (RR policy)
  std::vector<bool> coverable_;                  // per target: any sensor in range

  RechargeNodeList requests_;
  std::vector<double> request_time_;             // per sensor, -1 when none
  std::unordered_set<SensorId> claimed_;

  std::vector<Rv> rvs_;

  // Random-waypoint motion state (kRandomWaypoint only).
  std::vector<Vec2> target_waypoint_;
  std::vector<bool> target_dwelling_;

  EventQueue queue_;
  double now_ = 0.0;
  double end_ = 0.0;
  bool finished_ = false;

  std::vector<double> drain_;                    // W, per sensor
  double sensor_energy_consumed_ = 0.0;          // J, cumulative
  std::vector<std::uint64_t> sensor_epoch_;

  MetricsIntegrator metrics_;
  bool record_series_ = false;
  TimeSeries series_;
  TraceFn tracer_;
  obs::TraceSink* trace_sink_ = nullptr;

  // Telemetry (optional, never physics-relevant). Counter handles are
  // resolved once in set_telemetry so the event loop updates them lock-free.
  obs::TelemetryRegistry* telemetry_ = nullptr;
  std::array<obs::Counter*, kNumEventKinds> pop_counters_{};
  obs::Counter* stale_counter_ = nullptr;
  obs::Gauge* queue_hwm_gauge_ = nullptr;
  std::size_t queue_hwm_ = 0;
};

}  // namespace wrsn
