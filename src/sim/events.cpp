#include "sim/events.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "core/error.hpp"

namespace wrsn {

namespace {

// Bucket-count bounds: the ring starts tiny and grows with occupancy, but
// never beyond a cap that bounds the memory of the empty bucket headers.
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;

// Day indices stay below 2^53 so (day + 1) * width is exact enough for the
// membership check; times mapping beyond that clamp and are found by the
// direct-search fallback instead.
constexpr double kMaxDay = 9007199254740992.0;  // 2^53

[[nodiscard]] bool earlier(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace

EventQueueImpl event_queue_default_impl() {
  const char* env = std::getenv("WRSN_EVENT_QUEUE");
  if (env == nullptr || env[0] == '\0') return EventQueueImpl::kCalendar;
  const std::string v(env);
  if (v == "calendar") return EventQueueImpl::kCalendar;
  if (v == "heap") return EventQueueImpl::kHeap;
  throw InvalidArgument("WRSN_EVENT_QUEUE must be 'heap' or 'calendar', got '" +
                        v + "'");
}

EventQueueImpl event_queue_impl_from_name(const std::string& name) {
  if (name.empty() || name == "auto") return event_queue_default_impl();
  if (name == "calendar") return EventQueueImpl::kCalendar;
  if (name == "heap") return EventQueueImpl::kHeap;
  throw InvalidArgument(
      "event queue must be 'auto', 'heap' or 'calendar', got '" + name + "'");
}

EventQueue::EventQueue(EventQueueImpl impl) : impl_(impl) {
  if (impl_ == EventQueueImpl::kCalendar) {
    buckets_.resize(kMinBuckets);
    bucket_mask_ = kMinBuckets - 1;
  }
}

void EventQueue::push(double time, EventKind kind, std::size_t subject,
                      std::uint64_t epoch) {
  const Event e{time, next_seq_++, kind, subject, epoch};
  if (impl_ == EventQueueImpl::kHeap) {
    heap_.push(e);
    return;
  }
  cal_push(e);
}

const Event& EventQueue::top() const {
  if (impl_ == EventQueueImpl::kHeap) return heap_.top();
  cal_find_top();
  return buckets_[top_bucket_].front();
}

Event EventQueue::pop() {
  if (impl_ == EventQueueImpl::kHeap) {
    const Event e = heap_.top();
    heap_.pop();
    return e;
  }
  cal_find_top();
  std::vector<Event>& bucket = buckets_[top_bucket_];
  // The bucket is a binary min-heap on (time, seq); the located top is its
  // front. pop_heap keeps the chain ordered in O(log chain) so equal-time
  // batches sharing one day drain in O(B log B), not O(B^2).
  std::pop_heap(bucket.begin(), bucket.end(), Later{});
  const Event e = bucket.back();
  bucket.pop_back();
  --cal_size_;
  top_valid_ = false;
  if (buckets_.size() > kMinBuckets && cal_size_ < buckets_.size() / 2) {
    cal_resize(buckets_.size() / 2);
  }
  return e;
}

std::vector<Event> EventQueue::sorted_events() const {
  EventQueue copy = *this;
  std::vector<Event> out;
  out.reserve(copy.size());
  while (!copy.empty()) out.push_back(copy.pop());
  return out;
}

void EventQueue::restore(const std::vector<Event>& events,
                         std::uint64_t next_seq) {
  *this = EventQueue(impl_);
  for (const Event& e : events) {
    WRSN_REQUIRE(e.seq < next_seq, "event seq beyond restored next_seq");
    if (impl_ == EventQueueImpl::kHeap) {
      heap_.push(e);
    } else {
      cal_push(e);
    }
  }
  next_seq_ = next_seq;
}

std::uint64_t EventQueue::day_of(double time) const {
  if (time <= 0.0) return 0;
  const double d = time / width_;
  if (d >= kMaxDay) return static_cast<std::uint64_t>(kMaxDay);
  return static_cast<std::uint64_t>(d);
}

void EventQueue::cal_push(const Event& e) {
  const std::uint64_t day = day_of(e.time);
  // Re-anchor backward: the scan position must never pass the earliest
  // pending event, or cal_find_top would skip its day.
  if (day < cur_day_) cur_day_ = day;
  if (top_valid_ && e.time < buckets_[top_bucket_].front().time) {
    // The newcomer beats the cached top (an equal time cannot: its seq is
    // strictly larger, so FIFO keeps the incumbent). Checked before the
    // sift-up below so the cached front is still in place.
    top_valid_ = false;
  }
  std::vector<Event>& bucket = buckets_[day & bucket_mask_];
  bucket.push_back(e);
  std::push_heap(bucket.begin(), bucket.end(), Later{});
  ++cal_size_;
  if (cal_size_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    cal_resize(buckets_.size() * 2);
  }
}

void EventQueue::cal_find_top() const {
  if (top_valid_) return;
  WRSN_DEBUG_ASSERT(cal_size_ > 0, "top/pop on an empty event queue");
  const std::size_t nbuckets = buckets_.size();
  // Invariant: every pending event's day >= cur_day_ (pushes re-anchor
  // backward, pops only move the cursor onto a day known to hold the min).
  // Scanning days upward therefore finds the global minimum in the first
  // day with a qualifying event; events from later days sharing the bucket
  // fail the day-end check and wait for their own day.
  std::uint64_t day = cur_day_;
  for (std::size_t hop = 0; hop < nbuckets; ++hop, ++day) {
    const std::vector<Event>& bucket = buckets_[day & bucket_mask_];
    if (!bucket.empty()) {
      // The bucket's heap front is its earliest event overall; events from
      // later days sharing the bucket (day + k*nbuckets) have strictly later
      // times, so if the front fails the day-end check no event of this day
      // is present and the whole chain can be skipped.
      const double day_end = static_cast<double>(day + 1) * width_;
      if (bucket.front().time < day_end) {
        cur_day_ = day;
        top_bucket_ = day & bucket_mask_;
        top_valid_ = true;
        return;
      }
    }
  }
  // A whole year of days is empty (sparse tail, or a time beyond the day
  // clamp): fall back to a direct search over the bucket fronts, each of
  // which is its chain's minimum.
  std::size_t best_bucket = nbuckets;
  for (std::size_t b = 0; b < nbuckets; ++b) {
    const std::vector<Event>& bucket = buckets_[b];
    if (bucket.empty()) continue;
    if (best_bucket == nbuckets ||
        earlier(bucket.front(), buckets_[best_bucket].front())) {
      best_bucket = b;
    }
  }
  cur_day_ = day_of(buckets_[best_bucket].front().time);
  top_bucket_ = best_bucket;
  top_valid_ = true;
}

void EventQueue::cal_resize(std::size_t new_nbuckets) {
  new_nbuckets = std::clamp(new_nbuckets, kMinBuckets, kMaxBuckets);
  std::vector<Event> all;
  all.reserve(cal_size_);
  double tmin = std::numeric_limits<double>::infinity();
  double tmax = -std::numeric_limits<double>::infinity();
  for (std::vector<Event>& bucket : buckets_) {
    for (const Event& e : bucket) {
      tmin = std::min(tmin, e.time);
      tmax = std::max(tmax, e.time);
      all.push_back(e);
    }
    bucket.clear();
  }
  buckets_.resize(new_nbuckets);
  bucket_mask_ = new_nbuckets - 1;
  // Day width from the spread of pending times: ~4 events per day on
  // average, and (with the occupancy thresholds keeping nbuckets within 4x
  // of the event count) a year of nbuckets days always spans the whole
  // pending range, so day/bucket aliasing stays rare. Equal-time batches
  // contribute zero spread; the clamp keeps the width positive, and a fully
  // degenerate all-equal queue simply keeps its previous width.
  if (!all.empty() && tmax > tmin) {
    width_ = std::max((tmax - tmin) * 4.0 / static_cast<double>(all.size()),
                      1e-9);
  }
  cur_day_ = all.empty() ? 0 : day_of(tmin);
  top_valid_ = false;
  for (const Event& e : all) {
    buckets_[day_of(e.time) & bucket_mask_].push_back(e);
  }
  for (std::vector<Event>& bucket : buckets_) {
    std::make_heap(bucket.begin(), bucket.end(), Later{});
  }
}

}  // namespace wrsn
