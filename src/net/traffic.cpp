#include "net/traffic.hpp"

#include "core/error.hpp"

namespace wrsn {

void TrafficModel::reset(std::size_t num_sensors) {
  tx_rate_.assign(num_sensors, 0.0);
  rx_rate_.assign(num_sensors, 0.0);
  delivery_rate_ = 0.0;
  weighted_hops_ = 0.0;
  delivering_rate_ = 0.0;
  delivering_sources_ = 0;
  routes_.clear();
}

void TrafficModel::apply(const SourceFlow& flow, SensorId source, double sign) {
  const double r = sign * flow.rate_pps;
  if (touch_log_ != nullptr) touch_log_->add(source);
  if (flow.relay_path.empty()) {
    // Unreachable source: it still transmits (and wastes energy), nothing is
    // relayed or delivered.
    tx_rate_[source] += r;
    return;
  }
  for (std::size_t i = 0; i < flow.relay_path.size(); ++i) {
    const std::size_t node = flow.relay_path[i];
    tx_rate_[node] += r;
    if (i > 0) rx_rate_[node] += r;  // relays receive before forwarding
    if (touch_log_ != nullptr && i > 0) touch_log_->add(node);
  }
  delivery_rate_ += r;
  if (flow.rate_pps > 0.0) {
    weighted_hops_ += r * static_cast<double>(flow.relay_path.size());
    delivering_rate_ += r;
    if (sign > 0.0) {
      ++delivering_sources_;
    } else {
      --delivering_sources_;
    }
    if (delivering_sources_ == 0) {
      // Exact quiescence: discard any accumulated rounding residue.
      delivery_rate_ = 0.0;
      weighted_hops_ = 0.0;
      delivering_rate_ = 0.0;
    }
  }
}

void TrafficModel::add_source(const RoutingTree& tree, SensorId source,
                              double rate_pps) {
  WRSN_REQUIRE(source < tx_rate_.size(), "source id out of range");
  WRSN_REQUIRE(rate_pps >= 0.0, "packet rate must be non-negative");
  WRSN_REQUIRE(!routes_.contains(source), "source already registered");

  SourceFlow flow{rate_pps, {}};
  if (tree.built() && tree.reachable(source)) {
    flow.relay_path = tree.path_to_base(source);
    flow.relay_path.pop_back();  // drop the BS node
  }
  apply(flow, source, +1.0);
  routes_.emplace(source, std::move(flow));
}

void TrafficModel::remove_source(SensorId source) {
  auto it = routes_.find(source);
  WRSN_REQUIRE(it != routes_.end(), "source not registered");
  apply(it->second, source, -1.0);
  routes_.erase(it);
}

void TrafficModel::clear_sources() {
  for (const auto& [source, flow] : routes_) apply(flow, source, -1.0);
  routes_.clear();
}

void TrafficModel::reroute(const RoutingTree& tree) {
  std::vector<std::pair<SensorId, double>> sources;
  sources.reserve(routes_.size());
  for (const auto& [source, flow] : routes_) sources.emplace_back(source, flow.rate_pps);
  clear_sources();
  for (const auto& [source, rate] : sources) add_source(tree, source, rate);
}

void TrafficModel::serialize(BinWriter& w) const {
  w.vec(tx_rate_);
  w.vec(rx_rate_);
  w.f64(delivery_rate_);
  w.f64(weighted_hops_);
  w.f64(delivering_rate_);
  w.size(delivering_sources_);
  w.size(routes_.size());
  for (const auto& [source, flow] : routes_) {
    w.u64(static_cast<std::uint64_t>(source));
    w.f64(flow.rate_pps);
    std::vector<std::uint64_t> path(flow.relay_path.begin(),
                                    flow.relay_path.end());
    w.vec(path);
  }
}

void TrafficModel::deserialize(BinReader& r) {
  r.vec(tx_rate_);
  r.vec(rx_rate_);
  r.f64(delivery_rate_);
  r.f64(weighted_hops_);
  r.f64(delivering_rate_);
  r.size(delivering_sources_);
  std::size_t n = 0;
  r.size(n);
  routes_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t source = 0;
    r.u64(source);
    SourceFlow flow{0.0, {}};
    r.f64(flow.rate_pps);
    std::vector<std::uint64_t> path;
    r.vec(path);
    flow.relay_path.assign(path.begin(), path.end());
    routes_.emplace(static_cast<SensorId>(source), std::move(flow));
  }
}

Watt TrafficModel::radio_power(SensorId s, const RadioModel& radio) const {
  WRSN_REQUIRE(s < tx_rate_.size(), "sensor id out of range");
  // rate (1/s) x energy-per-packet (J) = power (W); plus the duty-cycled
  // idle-listening floor.
  return radio.idle_power + radio.listen_duty_cycle * radio.rx_power +
         Watt{tx_rate_[s] * radio.tx_energy_per_packet().value()} +
         Watt{rx_rate_[s] * radio.rx_energy_per_packet().value()};
}

}  // namespace wrsn
