#include "net/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace wrsn {

void TrafficModel::reset(std::size_t num_sensors) {
  tx_rate_.assign(num_sensors, 0.0);
  rx_rate_.assign(num_sensors, 0.0);
  delivery_rate_ = 0.0;
  offered_rate_ = 0.0;
  weighted_hops_ = 0.0;
  delivering_rate_ = 0.0;
  delivering_sources_ = 0;
  routes_.clear();
}

void TrafficModel::set_link_model(const LinkConfig& link, double comm_range) {
  WRSN_REQUIRE(comm_range > 0.0, "link model needs a positive comm range");
  WRSN_REQUIRE(link.max_retx >= 1, "link.max_retx must be at least 1");
  link_ = link;
  link_comm_range_ = comm_range;
}

void TrafficModel::capture_link(const RouteView& routes,
                                SourceFlow& flow) const {
  if (!link_.enabled || flow.relay_path.empty()) return;
  const double retx = static_cast<double>(link_.max_retx);
  flow.hop_etx.reserve(flow.relay_path.size());
  flow.hop_success.reserve(flow.relay_path.size());
  for (std::size_t node : flow.relay_path) {
    const double len = routes.hop_length(node);
    double p = link_.loss_floor +
               link_.loss_at_range *
                   std::pow(len / link_comm_range_, link_.loss_exponent);
    p = std::clamp(p, 0.0, 1.0);
    double etx;
    double success;
    if (p <= 0.0) {
      etx = 1.0;
      success = 1.0;
    } else if (p >= 1.0) {
      // Every attempt fails: the sender burns all its retransmissions and
      // nothing crosses the hop.
      etx = retx;
      success = 0.0;
    } else {
      const double all_fail = std::pow(p, retx);
      success = 1.0 - all_fail;
      etx = (1.0 - all_fail) / (1.0 - p);  // truncated geometric mean attempts
    }
    flow.hop_etx.push_back(etx);
    flow.hop_success.push_back(success);
    flow.path_success *= success;
  }
}

void TrafficModel::apply(const SourceFlow& flow, SensorId source, double sign) {
  const double r = sign * flow.rate_pps;
  if (touch_log_ != nullptr) touch_log_->add(source);
  offered_rate_ += r;
  if (flow.relay_path.empty()) {
    // Unreachable source: it still transmits (and wastes energy), nothing is
    // relayed or delivered.
    tx_rate_[source] += r;
    return;
  }
  double delivered = r;
  if (flow.hop_etx.empty()) {
    // Lossless fast path — bit-identical to the pre-link-layer accounting.
    for (std::size_t i = 0; i < flow.relay_path.size(); ++i) {
      const std::size_t node = flow.relay_path[i];
      tx_rate_[node] += r;
      if (i > 0) rx_rate_[node] += r;  // relays receive before forwarding
      if (touch_log_ != nullptr && i > 0) touch_log_->add(node);
    }
    delivery_rate_ += r;
  } else {
    // Lossy links: the surviving rate attenuates hop by hop, and each hop's
    // sender pays for its expected transmission count. All multipliers were
    // captured with the flow, so the -1 application mirrors the +1 exactly.
    double incoming = r;
    for (std::size_t i = 0; i < flow.relay_path.size(); ++i) {
      const std::size_t node = flow.relay_path[i];
      tx_rate_[node] += incoming * flow.hop_etx[i];
      if (i > 0) rx_rate_[node] += incoming;
      if (touch_log_ != nullptr && i > 0) touch_log_->add(node);
      incoming *= flow.hop_success[i];
    }
    delivered = incoming;
    delivery_rate_ += delivered;
  }
  if (flow.rate_pps > 0.0 && flow.path_success > 0.0) {
    weighted_hops_ += delivered * static_cast<double>(flow.relay_path.size());
    delivering_rate_ += delivered;
    if (sign > 0.0) {
      ++delivering_sources_;
    } else {
      --delivering_sources_;
    }
    if (delivering_sources_ == 0) {
      // Exact quiescence: discard any accumulated rounding residue.
      delivery_rate_ = 0.0;
      weighted_hops_ = 0.0;
      delivering_rate_ = 0.0;
    }
  }
}

void TrafficModel::add_source(const RouteView& routes, SensorId source,
                              double rate_pps) {
  WRSN_REQUIRE(source < tx_rate_.size(), "source id out of range");
  WRSN_REQUIRE(rate_pps >= 0.0, "packet rate must be non-negative");
  WRSN_REQUIRE(!routes_.contains(source), "source already registered");

  SourceFlow flow{rate_pps, {}, {}, {}, 1.0};
  if (routes.built() && routes.reachable(source)) {
    flow.relay_path = routes.path_to_base(source);
    flow.relay_path.pop_back();  // drop the BS node
  }
  capture_link(routes, flow);
  apply(flow, source, +1.0);
  routes_.emplace(source, std::move(flow));
}

void TrafficModel::remove_source(SensorId source) {
  auto it = routes_.find(source);
  WRSN_REQUIRE(it != routes_.end(), "source not registered");
  apply(it->second, source, -1.0);
  routes_.erase(it);
  if (routes_.empty()) offered_rate_ = 0.0;  // exact quiescence
}

void TrafficModel::clear_sources() {
  for (const auto& [source, flow] : routes_) apply(flow, source, -1.0);
  routes_.clear();
  offered_rate_ = 0.0;  // exact quiescence
}

void TrafficModel::reroute(const RouteView& routes) {
  std::vector<std::pair<SensorId, double>> sources;
  sources.reserve(routes_.size());
  for (const auto& [source, flow] : routes_) sources.emplace_back(source, flow.rate_pps);
  clear_sources();
  for (const auto& [source, rate] : sources) add_source(routes, source, rate);
}

void TrafficModel::serialize(BinWriter& w) const {
  w.vec(tx_rate_);
  w.vec(rx_rate_);
  w.f64(delivery_rate_);
  w.f64(offered_rate_);
  w.f64(weighted_hops_);
  w.f64(delivering_rate_);
  w.size(delivering_sources_);
  w.size(routes_.size());
  for (const auto& [source, flow] : routes_) {
    w.u64(static_cast<std::uint64_t>(source));
    w.f64(flow.rate_pps);
    std::vector<std::uint64_t> path(flow.relay_path.begin(),
                                    flow.relay_path.end());
    w.vec(path);
    w.vec(flow.hop_etx);
    w.vec(flow.hop_success);
    w.f64(flow.path_success);
  }
}

void TrafficModel::deserialize(BinReader& r) {
  r.vec(tx_rate_);
  r.vec(rx_rate_);
  r.f64(delivery_rate_);
  r.f64(offered_rate_);
  r.f64(weighted_hops_);
  r.f64(delivering_rate_);
  r.size(delivering_sources_);
  std::size_t n = 0;
  r.size(n);
  routes_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t source = 0;
    r.u64(source);
    SourceFlow flow{0.0, {}, {}, {}, 1.0};
    r.f64(flow.rate_pps);
    std::vector<std::uint64_t> path;
    r.vec(path);
    flow.relay_path.assign(path.begin(), path.end());
    r.vec(flow.hop_etx);
    r.vec(flow.hop_success);
    r.f64(flow.path_success);
    routes_.emplace(static_cast<SensorId>(source), std::move(flow));
  }
}

Watt TrafficModel::radio_power(SensorId s, const RadioModel& radio) const {
  WRSN_REQUIRE(s < tx_rate_.size(), "sensor id out of range");
  // rate (1/s) x energy-per-packet (J) = power (W); plus the duty-cycled
  // idle-listening floor.
  Watt power = radio.idle_power + radio.listen_duty_cycle * radio.rx_power +
               Watt{tx_rate_[s] * radio.tx_energy_per_packet().value()} +
               Watt{rx_rate_[s] * radio.rx_energy_per_packet().value()};
  if (link_.enabled && link_.rx_duty_tax > 0.0 && rx_rate_[s] > 0.0) {
    // Actively receiving nodes keep the radio on longer to catch
    // retransmitted frames.
    power += link_.rx_duty_tax * radio.rx_power;
  }
  return power;
}

}  // namespace wrsn
