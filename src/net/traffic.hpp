#pragma once
// Flow-rate traffic accounting.
//
// Active monitors generate lambda pkt/min towards the base station over the
// routing tree. Rather than simulating packets, we keep per-node transmit /
// receive packet *rates* (pkt/s); combined with the per-packet radio
// energies this yields each node's radio power draw, which is exactly what
// the analytic battery model needs. Source routes are captured when a source
// is added so removal subtracts the identical path even if the tree has been
// rebuilt in between.

#include <map>
#include <vector>

#include "core/binio.hpp"
#include "core/config.hpp"
#include "core/dirty_set.hpp"
#include "core/units.hpp"
#include "net/ids.hpp"
#include "net/routing.hpp"

namespace wrsn {

class TrafficModel {
 public:
  TrafficModel() = default;
  explicit TrafficModel(std::size_t num_sensors) { reset(num_sensors); }

  void reset(std::size_t num_sensors);

  [[nodiscard]] std::size_t num_sensors() const { return tx_rate_.size(); }
  [[nodiscard]] std::size_t num_sources() const { return routes_.size(); }
  [[nodiscard]] bool has_source(SensorId s) const { return routes_.contains(s); }

  // Registers `source` emitting `rate_pps` packets/s along its current tree
  // path. A source whose route is unreachable still spends transmit energy
  // on its own packets (it keeps trying) but relays nothing. No-op guard:
  // a source may be added only once.
  void add_source(const RoutingTree& tree, SensorId source, double rate_pps);
  void remove_source(SensorId source);
  // Drops all sources (used before a full re-register on re-clustering).
  void clear_sources();

  // Re-resolves every registered source's route against `tree`, keeping
  // rates. Called after the routing tree is rebuilt on a topology change.
  void reroute(const RoutingTree& tree);

  [[nodiscard]] double tx_rate(SensorId s) const { return tx_rate_[s]; }
  [[nodiscard]] double rx_rate(SensorId s) const { return rx_rate_[s]; }

  // Aggregate packet rate currently reaching the base station.
  [[nodiscard]] double delivery_rate() const { return delivery_rate_; }

  // Rate-weighted mean hop count of delivered traffic (a per-packet latency
  // proxy: end-to-end delay ~ hops x per-hop service time). 0 when nothing
  // is being delivered. O(1): maintained incrementally in apply() rather
  // than re-scanned over sources, so per-event metric snapshots stay cheap.
  [[nodiscard]] double average_delivery_hops() const {
    return delivering_sources_ > 0 ? weighted_hops_ / delivering_rate_ : 0.0;
  }

  // Optional observer: every sensor whose tx/rx rate is touched by an
  // add/remove/reroute is marked in `log` (DirtySet dedupes repeats at
  // insert, so touching a busy relay on every route change stays O(1)). The
  // world uses this to mark drains dirty instead of rescanning all sensors.
  // Pass nullptr to detach; the log must outlive the model while attached.
  void set_touch_log(DirtySet* log) { touch_log_ = log; }

  // Radio power draw of sensor s under `radio` (tx + rx + idle floor).
  [[nodiscard]] Watt radio_power(SensorId s, const RadioModel& radio) const;

  // Checkpoint codec: dumps/restores every accumulator and captured route
  // verbatim (no re-derivation — the rounding residue in the rate sums is
  // part of the state an uninterrupted run would carry).
  void serialize(BinWriter& w) const;
  void deserialize(BinReader& r);

 private:
  struct SourceFlow {
    double rate_pps;
    // Path sensor -> ... -> BS, excluding the BS node itself; empty when the
    // source could not reach the base station at registration time.
    std::vector<std::size_t> relay_path;
  };

  void apply(const SourceFlow& flow, SensorId source, double sign);

  std::vector<double> tx_rate_;
  std::vector<double> rx_rate_;
  double delivery_rate_ = 0.0;
  // Delivery-hop accumulators: weighted_hops_ = sum(rate * path_len) over
  // delivering sources, delivering_rate_ = sum(rate). The integer source
  // count gates the quotient and lets both sums snap back to exactly 0 at
  // quiescence, so floating-point residue cannot leak into the average.
  double weighted_hops_ = 0.0;
  double delivering_rate_ = 0.0;
  std::size_t delivering_sources_ = 0;
  // Ordered map: clear_sources()/reroute() iterate it while accumulating
  // floating-point sums, so the iteration order is part of the numerics a
  // restored run must reproduce.
  std::map<SensorId, SourceFlow> routes_;
  DirtySet* touch_log_ = nullptr;
};

}  // namespace wrsn
