#include "net/network.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "net/deployment.hpp"

namespace wrsn {

Network::Network(const SimConfig& config, Xoshiro256& deploy_rng,
                 Xoshiro256& target_rng)
    : config_(config),
      base_station_{config.field_side.value() / 2.0, config.field_side.value() / 2.0},
      sensing_grid_(config.field_side.value(),
                    std::max(config.sensing_range.value(), 1.0)) {
  config_.validate();

  const double side = config.field_side.value();
  std::vector<Vec2> positions = deploy_uniform(config.num_sensors, side, deploy_rng);
  sensors_.resize(config.num_sensors);
  for (SensorId i = 0; i < config.num_sensors; ++i) {
    sensors_[i].id = i;
    sensors_[i].pos = positions[i];
    sensors_[i].battery = Battery(config.battery.capacity);
  }
  sensing_grid_.build(positions);

  targets_.resize(config.num_targets);
  for (TargetId t = 0; t < config.num_targets; ++t) {
    targets_[t].id = t;
    targets_[t].pos = random_location(side, target_rng);
  }

  graph_ = CommGraph(positions, base_station_, config.comm_range.value());
  node_positions_ = std::move(positions);
  node_positions_.push_back(base_station_);
  router_ = RoutingRegistry::instance().create(config_.routing);
  rebuild_routing();
}

std::vector<SensorId> Network::sensors_covering(Vec2 point) const {
  return sensing_grid_.query_radius(point, config_.sensing_range.value());
}

std::size_t Network::count_covering(Vec2 point) const {
  return sensing_grid_.count_in_radius(point, config_.sensing_range.value());
}

bool Network::any_covering(Vec2 point) const {
  return sensing_grid_.any_in_radius(point, config_.sensing_range.value());
}

bool Network::any_covering_scan(Vec2 point) const {
  const double r2 =
      config_.sensing_range.value() * config_.sensing_range.value();
  for (const Sensor& s : sensors_) {
    if (squared_distance(s.pos, point) <= r2) return true;
  }
  return false;
}

void Network::relocate_target(TargetId id, Xoshiro256& rng) {
  WRSN_REQUIRE(id < targets_.size(), "target id out of range");
  targets_[id].pos = random_location(config_.field_side.value(), rng);
}

void Network::set_target_position(TargetId id, Vec2 pos) {
  WRSN_REQUIRE(id < targets_.size(), "target id out of range");
  const double side = config_.field_side.value();
  WRSN_REQUIRE(pos.x >= 0.0 && pos.x <= side && pos.y >= 0.0 && pos.y <= side,
               "target position outside the field");
  targets_[id].pos = pos;
}

void Network::build_routes(const std::vector<bool>& alive_mask) {
  RoutingBuildInput in;
  in.graph = &graph_;
  in.positions = &node_positions_;
  in.usable = &alive_mask;
  router_->build(in, routing_);
}

bool Network::rebuild_routing() {
  std::vector<bool> alive(sensors_.size());
  for (std::size_t i = 0; i < sensors_.size(); ++i) alive[i] = sensors_[i].alive();
  if (routing_.built() && alive == last_alive_mask_) return false;
  build_routes(alive);
  last_alive_mask_ = std::move(alive);
  return true;
}

void Network::restore_routing(const std::vector<bool>& alive_mask) {
  WRSN_REQUIRE(alive_mask.size() == sensors_.size(),
               "alive mask size mismatch");
  build_routes(alive_mask);
  last_alive_mask_ = alive_mask;
}

std::size_t Network::alive_count() const {
  return static_cast<std::size_t>(
      std::count_if(sensors_.begin(), sensors_.end(),
                    [](const Sensor& s) { return s.alive(); }));
}

}  // namespace wrsn
