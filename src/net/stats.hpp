#pragma once
// Structural statistics of a deployed network: degree distribution,
// BS-connectivity, hop counts, coverage degree — the quantities one checks
// before trusting a deployment (used by examples and the deployment bench).

#include <cstddef>
#include <vector>

#include "net/network.hpp"

namespace wrsn {

struct NetworkStats {
  std::size_t num_sensors = 0;
  std::size_t num_edges = 0;  // sensor-sensor plus sensor-BS links
  double avg_degree = 0.0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  std::size_t isolated_sensors = 0;     // degree zero
  std::size_t reachable_sensors = 0;    // can route to the base station
  double avg_hops_to_base = 0.0;        // over reachable sensors
  std::size_t max_hops_to_base = 0;
  double avg_route_length_m = 0.0;      // over reachable sensors
  double avg_coverage_degree = 0.0;     // sensors covering a random target
  std::size_t uncovered_targets = 0;    // current targets with no sensor in range
  std::size_t connected_components = 0; // over alive sensors + BS
};

[[nodiscard]] NetworkStats compute_stats(const Network& net);

}  // namespace wrsn
