#pragma once
// Pluggable routing layer.
//
// The data plane only ever routes towards the base station, so every routing
// scheme reduces to a BS-rooted next-hop forest over the currently usable
// nodes. A RoutingPolicy is a strategy that builds that forest into a
// RouteTable; consumers (TrafficModel, stats, the World) only see the narrow
// RouteView contract — next-hop, path, reachability and hop distance — so
// swapping the scheme never touches them. Policies are selected by name
// through the string-keyed RoutingRegistry (mirroring SchedulerRegistry):
// the paper's Dijkstra tree is the default `shortest_path` policy, and a new
// scheme is one file in src/net/routers/ plus one registration line.
//
// The table is rebuilt when the set of alive nodes changes (death /
// recharge-revival), which is rare compared with activation rotations.

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "net/graph.hpp"
#include "net/ids.hpp"

namespace wrsn {

// Read-only routing contract the traffic/statistics layers consume. All
// queries address graph node indices ([0, N) sensors, N the base station).
class RouteView {
 public:
  virtual ~RouteView() = default;

  [[nodiscard]] virtual bool built() const = 0;
  [[nodiscard]] virtual std::size_t num_nodes() const = 0;
  // True when the node can reach the base station through usable relays.
  [[nodiscard]] virtual bool reachable(std::size_t node) const = 0;
  // Next hop towards the base station (kInvalidId for the BS itself or
  // unreachable nodes).
  [[nodiscard]] virtual std::size_t next_hop(std::size_t node) const = 0;
  // Route length (metres) to the base station along this policy's forest;
  // infinity if unreachable. For `shortest_path` this is the Dijkstra
  // distance.
  [[nodiscard]] virtual double distance_to_base(std::size_t node) const = 0;
  // Length (metres) of the node -> next_hop(node) link; 0 when there is none.
  // The link-quality layer derives per-hop loss from this.
  [[nodiscard]] virtual double hop_length(std::size_t node) const = 0;

  // Hop count to the base station; nullopt if unreachable.
  [[nodiscard]] std::optional<std::size_t> hops_to_base(std::size_t node) const;
  // Full path node -> ... -> base station (inclusive); empty if unreachable.
  [[nodiscard]] std::vector<std::size_t> path_to_base(std::size_t node) const;
};

// The concrete next-hop forest every built-in policy fills: parent pointers,
// per-node route distance and per-node uplink length.
class RouteTable final : public RouteView {
 public:
  RouteTable() = default;

  // Installs a built forest. `parent[n] == kInvalidId` marks the root (BS)
  // and unreachable nodes; `dist[n]` is the policy's route distance
  // (infinity when unreachable). Hop lengths are derived from `positions`
  // (node order matching the graph, BS last).
  void assign(std::vector<std::size_t> parent, std::vector<double> dist,
              const std::vector<Vec2>& positions);

  [[nodiscard]] bool built() const override { return !parent_.empty(); }
  [[nodiscard]] std::size_t num_nodes() const override { return parent_.size(); }
  [[nodiscard]] bool reachable(std::size_t node) const override;
  [[nodiscard]] std::size_t next_hop(std::size_t node) const override {
    return parent_[node];
  }
  [[nodiscard]] double distance_to_base(std::size_t node) const override {
    return dist_[node];
  }
  [[nodiscard]] double hop_length(std::size_t node) const override {
    return hop_len_[node];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<double> dist_;
  std::vector<double> hop_len_;
};

// Everything a policy may consult while building routes. `usable` covers the
// sensors (the base station is always usable); `positions` lists every graph
// node's location, base station last.
struct RoutingBuildInput {
  const CommGraph* graph = nullptr;
  const std::vector<Vec2>* positions = nullptr;
  const std::vector<bool>* usable = nullptr;
};

// Strategy interface. Implementations must be deterministic pure functions
// of the build input (no RNG, no state across builds): the snapshot codec
// restores routing by re-running build() on the serialized alive mask, so
// any nondeterminism would break byte-identical resume.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  virtual void build(const RoutingBuildInput& in, RouteTable& out) const = 0;
};

// String-keyed registry of routing-policy factories, mirroring
// SchedulerRegistry: built-ins register on first access, lookups are
// thread-safe, unknown names throw listing every registered name.
class RoutingRegistry {
 public:
  using Factory = std::unique_ptr<RoutingPolicy> (*)();

  static RoutingRegistry& instance();

  // Registers a policy. `summary` is the one-line description surfaced by
  // `wrsn_sim --list-routers` and the README table. Throws InvalidArgument
  // on a duplicate or empty name.
  void add(std::string name, std::string summary, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  // Instantiates the named policy; throws InvalidArgument listing the
  // registered names when `name` is unknown.
  [[nodiscard]] std::unique_ptr<RoutingPolicy> create(
      const std::string& name) const;
  // Registered names, in registration order (the paper's default first).
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::string summary(const std::string& name) const;

 private:
  RoutingRegistry() = default;

  struct Entry {
    std::string name;
    std::string summary;
    Factory factory;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

// Convenience: RoutingRegistry::instance().names().
[[nodiscard]] std::vector<std::string> routing_names();

// General single-source Dijkstra over a CommGraph (used by tests to
// cross-check the shortest_path policy and exposed for library users who
// need sensor-to-sensor paths). Returns distances and parents from
// `source`; nodes with usable[n]==false are skipped (source and target of
// an edge both need to be usable).
struct ShortestPaths {
  std::vector<double> dist;
  std::vector<std::size_t> parent;
};

[[nodiscard]] ShortestPaths dijkstra(const CommGraph& graph, std::size_t source,
                                     const std::vector<bool>& usable);

// Shared helpers for routers that build parents first and derive distances
// after the fact (greedy_geo, mst_backbone, cluster_backbone). Distances
// telescope root -> leaf (d(child) = d(parent) + hop length), matching how
// Dijkstra accumulates, and unreachable nodes get infinity.
[[nodiscard]] std::vector<double> tree_distances(
    const std::vector<std::size_t>& parent, const std::vector<Vec2>& positions,
    std::size_t root);

// The usable predicate every built-in router shares: the base station is
// always usable, and indices beyond the mask (the optional BS entry) are
// treated as usable.
[[nodiscard]] bool router_usable(const CommGraph& graph,
                                 const std::vector<bool>& usable,
                                 std::size_t node);

}  // namespace wrsn
