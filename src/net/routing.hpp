#pragma once
// Shortest-path routing (Section V: "The routing path is calculated using
// Dijkstra's shortest path algorithm").
//
// The data plane only ever routes towards the base station, so we maintain a
// single BS-rooted shortest-path tree over the currently alive nodes and
// read any sensor's route as the tree path. The tree is rebuilt when the set
// of alive nodes changes (death / recharge-revival), which is rare compared
// with activation rotations.

#include <optional>
#include <vector>

#include "net/graph.hpp"
#include "net/ids.hpp"

namespace wrsn {

class RoutingTree {
 public:
  RoutingTree() = default;

  // Builds the shortest-path tree rooted at the base station over the nodes
  // for which usable[node] is true (the base station is always usable).
  // `usable` must have size graph.num_nodes() - 1 (sensors only) or
  // graph.num_nodes() (base station entry ignored).
  void build(const CommGraph& graph, const std::vector<bool>& usable);

  [[nodiscard]] bool built() const { return !parent_.empty(); }
  [[nodiscard]] std::size_t num_nodes() const { return parent_.size(); }

  // True when the node can reach the base station through alive relays.
  [[nodiscard]] bool reachable(std::size_t node) const;
  // Next hop towards the base station (kInvalidId for the BS itself or
  // unreachable nodes).
  [[nodiscard]] std::size_t parent(std::size_t node) const { return parent_[node]; }
  // Shortest distance (metres) to the base station; infinity if unreachable.
  [[nodiscard]] double distance_to_base(std::size_t node) const { return dist_[node]; }
  // Hop count to the base station; nullopt if unreachable.
  [[nodiscard]] std::optional<std::size_t> hops_to_base(std::size_t node) const;
  // Full path node -> ... -> base station (inclusive); empty if unreachable.
  [[nodiscard]] std::vector<std::size_t> path_to_base(std::size_t node) const;

 private:
  std::vector<std::size_t> parent_;
  std::vector<double> dist_;
};

// General single-source Dijkstra over a CommGraph (used by tests to
// cross-check the tree and exposed for library users who need sensor-to-
// sensor paths). Returns distances and parents from `source`; nodes with
// usable[n]==false are skipped (source and target of an edge both need to be
// usable).
struct ShortestPaths {
  std::vector<double> dist;
  std::vector<std::size_t> parent;
};

[[nodiscard]] ShortestPaths dijkstra(const CommGraph& graph, std::size_t source,
                                     const std::vector<bool>& usable);

}  // namespace wrsn
