#include <memory>
#include <queue>
#include <tuple>
#include <vector>

#include "core/error.hpp"
#include "net/routers/builtin.hpp"
#include "net/routing.hpp"

namespace wrsn {
namespace {

// Minimum spanning tree backbone, grown from the base station with Prim's
// algorithm over the usable nodes. The MST minimizes the total link length
// of the relay topology rather than each node's own path, which funnels
// traffic onto a few long trunk branches — a deliberately different drain
// profile from shortest_path (trunk nodes relay far more, leaves far less).
// Ties on edge length break on (to, from) index order, keeping the tree a
// deterministic function of the alive set.
class MstBackboneRouter final : public RoutingPolicy {
 public:
  void build(const RoutingBuildInput& in, RouteTable& out) const override {
    WRSN_REQUIRE(in.graph && in.positions && in.usable,
                 "routing build input is incomplete");
    const CommGraph& graph = *in.graph;
    const std::vector<bool>& usable = *in.usable;
    const std::size_t n = graph.num_nodes();
    const std::size_t bs = graph.base_station_index();

    std::vector<std::size_t> parent(n, kInvalidId);
    std::vector<bool> in_tree(n, false);

    using Item = std::tuple<double, std::size_t, std::size_t>;  // (len, to, from)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    auto offer = [&](std::size_t from) {
      for (const CommGraph::Edge& e : graph.neighbors(from)) {
        if (!in_tree[e.to] && router_usable(graph, usable, e.to)) {
          heap.emplace(e.length, e.to, from);
        }
      }
    };

    in_tree[bs] = true;
    offer(bs);
    while (!heap.empty()) {
      const auto [len, to, from] = heap.top();
      heap.pop();
      if (in_tree[to]) continue;  // stale entry
      in_tree[to] = true;
      parent[to] = from;
      offer(to);
    }

    std::vector<double> dist = tree_distances(parent, *in.positions, bs);
    out.assign(std::move(parent), std::move(dist), *in.positions);
  }
};

}  // namespace

void register_mst_backbone_router(RoutingRegistry& registry) {
  registry.add(
      "mst_backbone",
      "minimum spanning tree grown from the base station (Prim)",
      []() -> std::unique_ptr<RoutingPolicy> {
        return std::make_unique<MstBackboneRouter>();
      });
}

}  // namespace wrsn
