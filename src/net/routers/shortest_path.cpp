#include <memory>

#include "core/error.hpp"
#include "net/routers/builtin.hpp"
#include "net/routing.hpp"

namespace wrsn {
namespace {

// The paper's routing model: Dijkstra from the base station over the usable
// nodes, every sensor forwarding along its shortest path. The Dijkstra
// distances are installed directly as the route distances (no re-derivation)
// so results stay bit-identical with the pre-registry RoutingTree.
class ShortestPathRouter final : public RoutingPolicy {
 public:
  void build(const RoutingBuildInput& in, RouteTable& out) const override {
    WRSN_REQUIRE(in.graph && in.positions && in.usable,
                 "routing build input is incomplete");
    ShortestPaths sp =
        dijkstra(*in.graph, in.graph->base_station_index(), *in.usable);
    out.assign(std::move(sp.parent), std::move(sp.dist), *in.positions);
  }
};

}  // namespace

void register_shortest_path_router(RoutingRegistry& registry) {
  registry.add(
      "shortest_path",
      "Dijkstra tree rooted at the base station (paper default)",
      []() -> std::unique_ptr<RoutingPolicy> {
        return std::make_unique<ShortestPathRouter>();
      });
}

}  // namespace wrsn
