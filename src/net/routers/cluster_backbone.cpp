#include <algorithm>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "net/routers/builtin.hpp"
#include "net/routing.hpp"

namespace wrsn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Weight multiplier for hops that terminate at a non-head node. Large enough
// that routes prefer a longer physical detour through the head backbone over
// chaining through ordinary members, small enough that an isolated pocket
// with no head neighbor still connects.
constexpr double kMemberPenalty = 4.0;

// Cluster-head backbone in the spirit of pivot cluster heads: a greedy
// dominating set of heads (chosen closest-to-BS first, so heads tile the
// field outward from the sink) forms the relay backbone, and routes are the
// weighted shortest paths where entering a non-head node costs kMemberPenalty
// times its physical length. Members therefore uplink to a nearby head and
// inter-cluster traffic rides head-to-head, concentrating relay drain on the
// heads — the workload shape cluster-head charging schemes assume. Reported
// route distances are physical metres along the chosen forest.
class ClusterBackboneRouter final : public RoutingPolicy {
 public:
  void build(const RoutingBuildInput& in, RouteTable& out) const override {
    WRSN_REQUIRE(in.graph && in.positions && in.usable,
                 "routing build input is incomplete");
    const CommGraph& graph = *in.graph;
    const std::vector<bool>& usable = *in.usable;
    const std::size_t n = graph.num_nodes();
    const std::size_t bs = graph.base_station_index();

    // Head election: walk nodes in (shortest-path distance, index) order and
    // make every node not yet adjacent to a head a head itself — a greedy
    // dominating set seeded at the BS.
    const ShortestPaths sp = dijkstra(graph, bs, usable);
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t u = 0; u < n; ++u) {
      if (sp.dist[u] < kInf && router_usable(graph, usable, u)) {
        order.push_back(u);
      }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (sp.dist[a] != sp.dist[b]) return sp.dist[a] < sp.dist[b];
      return a < b;
    });

    std::vector<bool> head(n, false);
    std::vector<bool> covered(n, false);
    for (std::size_t u : order) {
      if (covered[u]) continue;
      head[u] = true;
      covered[u] = true;
      for (const CommGraph::Edge& e : graph.neighbors(u)) {
        if (router_usable(graph, usable, e.to)) covered[e.to] = true;
      }
    }

    // Weighted Dijkstra from the BS: hops into non-head nodes are penalized,
    // so the forest keeps relay chains on the head backbone wherever one
    // exists. Same (weight, node) heap discipline as the unweighted builder.
    std::vector<double> weight(n, kInf);
    std::vector<std::size_t> parent(n, kInvalidId);
    using Item = std::pair<double, std::size_t>;  // (weight, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    weight[bs] = 0.0;
    heap.emplace(0.0, bs);
    while (!heap.empty()) {
      const auto [w, u] = heap.top();
      heap.pop();
      if (w > weight[u]) continue;  // stale entry
      for (const CommGraph::Edge& e : graph.neighbors(u)) {
        if (!router_usable(graph, usable, e.to)) continue;
        const double step =
            e.length * (head[e.to] || e.to == bs ? 1.0 : kMemberPenalty);
        const double nw = w + step;
        if (nw < weight[e.to]) {
          weight[e.to] = nw;
          parent[e.to] = u;
          heap.emplace(nw, e.to);
        }
      }
    }

    std::vector<double> dist = tree_distances(parent, *in.positions, bs);
    out.assign(std::move(parent), std::move(dist), *in.positions);
  }
};

}  // namespace

void register_cluster_backbone_router(RoutingRegistry& registry) {
  registry.add(
      "cluster_backbone",
      "greedy dominating-set heads carry traffic; members uplink to heads",
      []() -> std::unique_ptr<RoutingPolicy> {
        return std::make_unique<ClusterBackboneRouter>();
      });
}

}  // namespace wrsn
