#pragma once
// Registration hooks for the built-in routing policies. Each policy lives in
// its own translation unit under src/net/routers/ and exposes one function
// that adds it to the registry. RoutingRegistry::instance() calls these
// explicitly on first use — explicit calls instead of static registrar
// objects because the linker is free to drop unreferenced object files from
// a static library, which would silently lose policies.

namespace wrsn {

class RoutingRegistry;

// Dijkstra shortest-path tree rooted at the base station (the paper's
// routing model and the default).
void register_shortest_path_router(RoutingRegistry& registry);

// Greedy geographic forwarding with a perimeter-style fallback that routes
// around voids by attaching stuck nodes to already-connected neighbors.
void register_greedy_geo_router(RoutingRegistry& registry);

// Minimum spanning tree backbone: minimizes total link length instead of
// per-node path length, concentrating relay load on trunk nodes.
void register_mst_backbone_router(RoutingRegistry& registry);

// Cluster-head backbone in the spirit of pivot cluster heads: a greedy
// dominating set of heads carries inter-cluster traffic; members uplink to
// their head.
void register_cluster_backbone_router(RoutingRegistry& registry);

}  // namespace wrsn
