#include <limits>
#include <memory>
#include <vector>

#include "core/error.hpp"
#include "net/routers/builtin.hpp"
#include "net/routing.hpp"

namespace wrsn {
namespace {

// Greedy geographic forwarding: each node hands packets to the usable
// neighbor geographically closest to the base station, provided that
// neighbor is strictly closer than the node itself. Nodes stuck at a local
// minimum (a routing void) fall back to a perimeter-style repair: in
// deterministic rounds, every stuck node attaches to an already-connected
// usable neighbor (closest-to-BS first, smaller index on ties), growing the
// connected region around the void until nothing changes. Greedy hops
// strictly shrink the distance to the BS, so the greedy phase is cycle-free;
// the repair phase only ever attaches to nodes already proven connected.
class GreedyGeoRouter final : public RoutingPolicy {
 public:
  void build(const RoutingBuildInput& in, RouteTable& out) const override {
    WRSN_REQUIRE(in.graph && in.positions && in.usable,
                 "routing build input is incomplete");
    const CommGraph& graph = *in.graph;
    const std::vector<Vec2>& pos = *in.positions;
    const std::vector<bool>& usable = *in.usable;
    const std::size_t n = graph.num_nodes();
    const std::size_t bs = graph.base_station_index();
    const Vec2 bs_pos = pos[bs];

    std::vector<std::size_t> parent(n, kInvalidId);

    // Greedy pass: pick the usable neighbor closest to the BS, but only if
    // it is strictly closer than we are (otherwise we'd bounce forever).
    for (std::size_t u = 0; u < n; ++u) {
      if (u == bs || !router_usable(graph, usable, u)) continue;
      const double here = distance(pos[u], bs_pos);
      double best = here;
      std::size_t best_to = kInvalidId;
      for (const CommGraph::Edge& e : graph.neighbors(u)) {
        if (!router_usable(graph, usable, e.to)) continue;
        const double there = distance(pos[e.to], bs_pos);
        if (there < best || (best_to != kInvalidId && there == best &&
                             e.to < best_to)) {
          best = there;
          best_to = e.to;
        }
      }
      parent[u] = best_to;
    }

    // Which greedy chains actually terminate at the BS? Memoized walk; the
    // greedy phase is acyclic so plain chain-chasing terminates.
    enum class State : unsigned char { kUnknown, kReached, kStuck };
    std::vector<State> state(n, State::kUnknown);
    state[bs] = State::kReached;
    std::vector<std::size_t> chain;
    for (std::size_t u = 0; u < n; ++u) {
      if (state[u] != State::kUnknown) continue;
      chain.clear();
      std::size_t cur = u;
      while (state[cur] == State::kUnknown && parent[cur] != kInvalidId) {
        chain.push_back(cur);
        cur = parent[cur];
        WRSN_ASSERT(chain.size() <= n, "greedy forwarding produced a cycle");
      }
      const State end =
          state[cur] == State::kReached ? State::kReached : State::kStuck;
      if (state[cur] == State::kUnknown) state[cur] = end;
      for (std::size_t node : chain) state[node] = end;
    }

    // Perimeter repair rounds: stuck nodes attach to a connected neighbor.
    // All attachments of a round are decided against the previous round's
    // connected set, keeping the result independent of scan order.
    bool grew = true;
    while (grew) {
      grew = false;
      std::vector<std::size_t> attached;
      for (std::size_t u = 0; u < n; ++u) {
        if (state[u] != State::kStuck || !router_usable(graph, usable, u)) {
          continue;
        }
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_to = kInvalidId;
        for (const CommGraph::Edge& e : graph.neighbors(u)) {
          if (state[e.to] != State::kReached ||
              !router_usable(graph, usable, e.to)) {
            continue;
          }
          const double there = distance(pos[e.to], bs_pos);
          if (there < best || (there == best && e.to < best_to)) {
            best = there;
            best_to = e.to;
          }
        }
        if (best_to != kInvalidId) {
          parent[u] = best_to;
          attached.push_back(u);
        }
      }
      for (std::size_t u : attached) {
        state[u] = State::kReached;
        grew = true;
      }
    }

    // Anything still stuck is genuinely disconnected from the BS.
    for (std::size_t u = 0; u < n; ++u) {
      if (state[u] != State::kReached) parent[u] = kInvalidId;
    }

    std::vector<double> dist = tree_distances(parent, pos, bs);
    out.assign(std::move(parent), std::move(dist), pos);
  }
};

}  // namespace

void register_greedy_geo_router(RoutingRegistry& registry) {
  registry.add(
      "greedy_geo",
      "greedy geographic forwarding with perimeter fallback around voids",
      []() -> std::unique_ptr<RoutingPolicy> {
        return std::make_unique<GreedyGeoRouter>();
      });
}

}  // namespace wrsn
