#include "net/routing.hpp"

#include <limits>
#include <queue>
#include <sstream>

#include "core/error.hpp"
#include "net/routers/builtin.hpp"

namespace wrsn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

ShortestPaths run_dijkstra(const CommGraph& graph, std::size_t source,
                           const std::vector<bool>& usable_in) {
  const std::size_t n = graph.num_nodes();
  WRSN_REQUIRE(source < n, "dijkstra source out of range");
  WRSN_REQUIRE(usable_in.size() == n || usable_in.size() + 1 == n,
               "usable mask size must cover the sensors (+optional BS entry)");

  auto usable = [&](std::size_t node) {
    if (node == graph.base_station_index()) return true;
    return node < usable_in.size() ? static_cast<bool>(usable_in[node]) : true;
  };

  ShortestPaths out;
  out.dist.assign(n, kInf);
  out.parent.assign(n, kInvalidId);
  if (!usable(source)) return out;

  using Item = std::pair<double, std::size_t>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  out.dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > out.dist[u]) continue;  // stale entry
    for (const CommGraph::Edge& e : graph.neighbors(u)) {
      if (!usable(e.to)) continue;
      const double nd = d + e.length;
      if (nd < out.dist[e.to]) {
        out.dist[e.to] = nd;
        out.parent[e.to] = u;
        heap.emplace(nd, e.to);
      }
    }
  }
  return out;
}

std::string join_names(const std::vector<std::string>& names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << (i ? ", " : "") << names[i];
  }
  return os.str();
}

}  // namespace

ShortestPaths dijkstra(const CommGraph& graph, std::size_t source,
                       const std::vector<bool>& usable) {
  return run_dijkstra(graph, source, usable);
}

bool router_usable(const CommGraph& graph, const std::vector<bool>& usable,
                   std::size_t node) {
  if (node == graph.base_station_index()) return true;
  return node < usable.size() ? static_cast<bool>(usable[node]) : true;
}

std::vector<double> tree_distances(const std::vector<std::size_t>& parent,
                                   const std::vector<Vec2>& positions,
                                   std::size_t root) {
  const std::size_t n = parent.size();
  WRSN_REQUIRE(positions.size() == n,
               "tree_distances needs one position per node");
  std::vector<double> dist(n, kInf);
  dist[root] = 0.0;
  // Resolve each node by chasing parents to a node with a known distance,
  // then unwind so d(child) = d(parent) + hop accumulates root -> leaf —
  // the same association order Dijkstra's relaxations produce.
  std::vector<std::size_t> chain;
  for (std::size_t start = 0; start < n; ++start) {
    if (dist[start] < kInf || parent[start] == kInvalidId) continue;
    chain.clear();
    std::size_t cur = start;
    while (parent[cur] != kInvalidId && dist[cur] == kInf) {
      chain.push_back(cur);
      cur = parent[cur];
      WRSN_ASSERT(chain.size() <= n, "routing forest contains a cycle");
    }
    if (dist[cur] == kInf) continue;  // chain ends at an unreachable node
    for (std::size_t i = chain.size(); i-- > 0;) {
      const std::size_t node = chain[i];
      dist[node] =
          dist[parent[node]] + distance(positions[node], positions[parent[node]]);
    }
  }
  return dist;
}

std::optional<std::size_t> RouteView::hops_to_base(std::size_t node) const {
  if (!reachable(node)) return std::nullopt;
  std::size_t hops = 0;
  for (std::size_t cur = node; next_hop(cur) != kInvalidId;
       cur = next_hop(cur)) {
    ++hops;
    WRSN_ASSERT(hops <= num_nodes(), "routing forest contains a cycle");
  }
  return hops;
}

std::vector<std::size_t> RouteView::path_to_base(std::size_t node) const {
  std::vector<std::size_t> path;
  if (!reachable(node)) return path;
  for (std::size_t cur = node;; cur = next_hop(cur)) {
    path.push_back(cur);
    if (next_hop(cur) == kInvalidId) break;
    WRSN_ASSERT(path.size() <= num_nodes(), "routing forest contains a cycle");
  }
  return path;
}

void RouteTable::assign(std::vector<std::size_t> parent,
                        std::vector<double> dist,
                        const std::vector<Vec2>& positions) {
  WRSN_REQUIRE(parent.size() == dist.size(),
               "route table parent/dist size mismatch");
  WRSN_REQUIRE(positions.size() == parent.size(),
               "route table needs one position per node");
  parent_ = std::move(parent);
  dist_ = std::move(dist);
  hop_len_.assign(parent_.size(), 0.0);
  for (std::size_t n = 0; n < parent_.size(); ++n) {
    if (parent_[n] != kInvalidId) {
      hop_len_[n] = distance(positions[n], positions[parent_[n]]);
    }
  }
}

bool RouteTable::reachable(std::size_t node) const {
  WRSN_ASSERT(node < dist_.size(), "routing query out of range");
  return dist_[node] < kInf;
}

RoutingRegistry& RoutingRegistry::instance() {
  static RoutingRegistry* registry = [] {
    auto* r = new RoutingRegistry();
    // The paper's Dijkstra tree first (the default), then the alternative
    // topologies — the order names() reports and the docs table uses.
    register_shortest_path_router(*r);
    register_greedy_geo_router(*r);
    register_mst_backbone_router(*r);
    register_cluster_backbone_router(*r);
    return r;
  }();
  return *registry;
}

void RoutingRegistry::add(std::string name, std::string summary,
                          Factory factory) {
  WRSN_REQUIRE(!name.empty(), "routing policy name must be non-empty");
  WRSN_REQUIRE(factory != nullptr,
               "routing policy '" + name + "' needs a factory");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    WRSN_REQUIRE(e.name != name,
                 "routing policy '" + name + "' is already registered");
  }
  entries_.push_back({std::move(name), std::move(summary), factory});
}

bool RoutingRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

std::unique_ptr<RoutingPolicy> RoutingRegistry::create(
    const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& e : entries_) {
      if (e.name == name) return e.factory();
    }
  }
  throw InvalidArgument("unknown routing policy '" + name +
                        "' (valid: " + join_names(names()) + ")");
}

std::vector<std::string> RoutingRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::string RoutingRegistry::summary(const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& e : entries_) {
      if (e.name == name) return e.summary;
    }
  }
  throw InvalidArgument("unknown routing policy '" + name +
                        "' (valid: " + join_names(names()) + ")");
}

std::vector<std::string> routing_names() {
  return RoutingRegistry::instance().names();
}

}  // namespace wrsn
