#include "net/routing.hpp"

#include <limits>
#include <queue>

#include "core/error.hpp"

namespace wrsn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

ShortestPaths run_dijkstra(const CommGraph& graph, std::size_t source,
                           const std::vector<bool>& usable_in) {
  const std::size_t n = graph.num_nodes();
  WRSN_REQUIRE(source < n, "dijkstra source out of range");
  WRSN_REQUIRE(usable_in.size() == n || usable_in.size() + 1 == n,
               "usable mask size must cover the sensors (+optional BS entry)");

  auto usable = [&](std::size_t node) {
    if (node == graph.base_station_index()) return true;
    return node < usable_in.size() ? static_cast<bool>(usable_in[node]) : true;
  };

  ShortestPaths out;
  out.dist.assign(n, kInf);
  out.parent.assign(n, kInvalidId);
  if (!usable(source)) return out;

  using Item = std::pair<double, std::size_t>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  out.dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > out.dist[u]) continue;  // stale entry
    for (const CommGraph::Edge& e : graph.neighbors(u)) {
      if (!usable(e.to)) continue;
      const double nd = d + e.length;
      if (nd < out.dist[e.to]) {
        out.dist[e.to] = nd;
        out.parent[e.to] = u;
        heap.emplace(nd, e.to);
      }
    }
  }
  return out;
}
}  // namespace

ShortestPaths dijkstra(const CommGraph& graph, std::size_t source,
                       const std::vector<bool>& usable) {
  return run_dijkstra(graph, source, usable);
}

void RoutingTree::build(const CommGraph& graph, const std::vector<bool>& usable) {
  ShortestPaths sp = run_dijkstra(graph, graph.base_station_index(), usable);
  parent_ = std::move(sp.parent);
  dist_ = std::move(sp.dist);
}

bool RoutingTree::reachable(std::size_t node) const {
  WRSN_ASSERT(node < dist_.size(), "routing query out of range");
  return dist_[node] < kInf;
}

std::optional<std::size_t> RoutingTree::hops_to_base(std::size_t node) const {
  if (!reachable(node)) return std::nullopt;
  std::size_t hops = 0;
  for (std::size_t cur = node; parent_[cur] != kInvalidId; cur = parent_[cur]) {
    ++hops;
    WRSN_ASSERT(hops <= parent_.size(), "routing tree contains a cycle");
  }
  return hops;
}

std::vector<std::size_t> RoutingTree::path_to_base(std::size_t node) const {
  std::vector<std::size_t> path;
  if (!reachable(node)) return path;
  for (std::size_t cur = node;; cur = parent_[cur]) {
    path.push_back(cur);
    if (parent_[cur] == kInvalidId) break;
    WRSN_ASSERT(path.size() <= parent_.size(), "routing tree contains a cycle");
  }
  return path;
}

}  // namespace wrsn
