#pragma once
// A sensor node (Section II-A): fixed position, rechargeable battery,
// PIR detector + CC2480 radio. A sensor monitors at most one target at a
// time (constraint (5)); cluster membership and the active/idle monitoring
// state are managed by the activity layer.

#include "energy/battery.hpp"
#include "geom/vec2.hpp"
#include "net/ids.hpp"

namespace wrsn {

struct Sensor {
  SensorId id = kInvalidId;
  Vec2 pos;
  Battery battery;

  // Cluster assignment: the target this sensor currently belongs to
  // (kInvalidId when unclustered).
  TargetId assigned_target = kInvalidId;
  // True while this sensor is the cluster's active monitor.
  bool monitoring = false;
  // True once the sensor's request is sitting in the recharge node list,
  // until an RV fulfils it.
  bool recharge_requested = false;

  [[nodiscard]] bool alive() const { return !battery.depleted(); }
  [[nodiscard]] bool below_threshold(double threshold_fraction) const {
    return battery.fraction() < threshold_fraction;
  }
};

struct Target {
  TargetId id = kInvalidId;
  Vec2 pos;
};

}  // namespace wrsn
