#include "net/stats.hpp"

#include <algorithm>
#include <queue>

namespace wrsn {

NetworkStats compute_stats(const Network& net) {
  NetworkStats stats;
  const CommGraph& g = net.graph();
  const std::size_t n = net.num_sensors();
  stats.num_sensors = n;
  stats.num_edges = g.num_edges();

  std::size_t degree_sum = 0;
  stats.min_degree = n > 0 ? g.degree(0) : 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t d = g.degree(s);
    degree_sum += d;
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated_sensors;
  }
  stats.avg_degree = n > 0 ? static_cast<double>(degree_sum) / static_cast<double>(n)
                           : 0.0;

  const RouteView& tree = net.routing();
  double hops_sum = 0.0;
  double length_sum = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!tree.reachable(s)) continue;
    ++stats.reachable_sensors;
    const auto hops = tree.hops_to_base(s);
    hops_sum += static_cast<double>(*hops);
    stats.max_hops_to_base = std::max(stats.max_hops_to_base, *hops);
    length_sum += tree.distance_to_base(s);
  }
  if (stats.reachable_sensors > 0) {
    stats.avg_hops_to_base =
        hops_sum / static_cast<double>(stats.reachable_sensors);
    stats.avg_route_length_m =
        length_sum / static_cast<double>(stats.reachable_sensors);
  }

  double coverage_sum = 0.0;
  for (const Target& t : net.targets()) {
    const std::size_t covering = net.count_covering(t.pos);
    coverage_sum += static_cast<double>(covering);
    if (covering == 0) ++stats.uncovered_targets;
  }
  stats.avg_coverage_degree =
      net.num_targets() > 0
          ? coverage_sum / static_cast<double>(net.num_targets())
          : 0.0;

  // Connected components over alive sensors plus the base station.
  const std::size_t num_nodes = g.num_nodes();
  std::vector<bool> usable(num_nodes, true);
  for (std::size_t s = 0; s < n; ++s) usable[s] = net.sensor(s).alive();
  std::vector<bool> visited(num_nodes, false);
  for (std::size_t start = 0; start < num_nodes; ++start) {
    if (visited[start] || !usable[start]) continue;
    ++stats.connected_components;
    std::queue<std::size_t> frontier;
    frontier.push(start);
    visited[start] = true;
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (const CommGraph::Edge& e : g.neighbors(u)) {
        if (!visited[e.to] && usable[e.to]) {
          visited[e.to] = true;
          frontier.push(e.to);
        }
      }
    }
  }
  return stats;
}

}  // namespace wrsn
