#pragma once
// Communication graph: sensors plus the base station, with an edge between
// any two nodes within communication range d_c. Stored in CSR form; built
// with the spatial grid so construction is O(N * neighbours) rather than
// O(N^2).

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "net/ids.hpp"

namespace wrsn {

class CommGraph {
 public:
  struct Edge {
    std::size_t to;
    double length;
  };

  CommGraph() = default;
  // `positions` are sensor positions; the base station is appended as the
  // last node, so node indices are [0, N) sensors and N the base station.
  CommGraph(const std::vector<Vec2>& positions, Vec2 base_station, double comm_range);

  [[nodiscard]] std::size_t num_nodes() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }
  [[nodiscard]] std::size_t base_station_index() const { return num_nodes() - 1; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size() / 2; }
  [[nodiscard]] double comm_range() const { return comm_range_; }

  [[nodiscard]] std::span<const Edge> neighbors(std::size_t node) const {
    return {edges_.data() + starts_[node], starts_[node + 1] - starts_[node]};
  }

  [[nodiscard]] std::size_t degree(std::size_t node) const {
    return starts_[node + 1] - starts_[node];
  }

 private:
  double comm_range_ = 0.0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> starts_;
};

}  // namespace wrsn
