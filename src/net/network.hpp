#pragma once
// The deployed network: N sensors uniform over the field, M mobile targets,
// a base station at the field centre (Section II-A), the communication
// graph, and a BS-rooted routing forest over alive sensors, built by the
// RoutingPolicy named in SimConfig::routing.

#include <memory>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/rng.hpp"
#include "geom/grid.hpp"
#include "net/graph.hpp"
#include "net/ids.hpp"
#include "net/routing.hpp"
#include "net/sensor.hpp"

namespace wrsn {

class Network {
 public:
  // Deploys sensors and targets using the given streams (deterministic).
  Network(const SimConfig& config, Xoshiro256& deploy_rng, Xoshiro256& target_rng);

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] Vec2 base_station() const { return base_station_; }

  [[nodiscard]] std::size_t num_sensors() const { return sensors_.size(); }
  [[nodiscard]] std::size_t num_targets() const { return targets_.size(); }
  [[nodiscard]] const std::vector<Sensor>& sensors() const { return sensors_; }
  [[nodiscard]] std::vector<Sensor>& sensors() { return sensors_; }
  [[nodiscard]] const Sensor& sensor(SensorId id) const { return sensors_[id]; }
  [[nodiscard]] Sensor& sensor(SensorId id) { return sensors_[id]; }
  [[nodiscard]] const std::vector<Target>& targets() const { return targets_; }
  [[nodiscard]] const Target& target(TargetId id) const { return targets_[id]; }

  // Ids of all sensors (alive or not) whose sensing disc contains `point`.
  // Allocates the result vector; hot paths that only need the count, a
  // yes/no, or a pass over the ids should use the allocation-free forms
  // below instead.
  [[nodiscard]] std::vector<SensorId> sensors_covering(Vec2 point) const;

  // Number of sensors whose sensing disc contains `point`, without
  // allocating.
  [[nodiscard]] std::size_t count_covering(Vec2 point) const;

  // Whether any sensor's sensing disc contains `point`; early-exits on the
  // first hit.
  [[nodiscard]] bool any_covering(Vec2 point) const;

  // Grid-free linear-scan equivalent of any_covering (identical predicate,
  // identical result). The reference world engine uses this so a spatial-
  // grid bug cannot hide in both engines at once.
  [[nodiscard]] bool any_covering_scan(Vec2 point) const;

  // Visits the id of every sensor whose sensing disc contains `point`
  // (unsorted cell order), without allocating.
  template <typename Fn>
  void for_each_covering(Vec2 point, Fn&& fn) const {
    sensing_grid_.for_each_in_radius(point, config_.sensing_range.value(),
                                     std::forward<Fn>(fn));
  }

  // Moves the target to a fresh uniform random location.
  void relocate_target(TargetId id, Xoshiro256& rng);
  // Places the target at an explicit position (random-waypoint motion).
  void set_target_position(TargetId id, Vec2 pos);

  [[nodiscard]] const CommGraph& graph() const { return graph_; }
  [[nodiscard]] const RouteTable& routing() const { return routing_; }

  // Rebuilds the routing forest over currently-alive sensors. Call after any
  // death or recharge-revival. Returns true when the alive mask actually
  // changed since the previous build (callers use this to skip reroutes).
  bool rebuild_routing();

  // Checkpoint support: the mask the current routing forest was built from.
  // Can lag the actual alive flags (a death crossing may be pending), so a
  // restore must rebuild routing from this serialized mask, not from the
  // restored sensors. The policy itself is config (SimConfig::routing), so
  // rebuilding through it reproduces the checkpointed forest exactly.
  [[nodiscard]] const std::vector<bool>& last_alive_mask() const {
    return last_alive_mask_;
  }
  void restore_routing(const std::vector<bool>& alive_mask);

  [[nodiscard]] std::size_t alive_count() const;

 private:
  SimConfig config_;
  Vec2 base_station_;
  std::vector<Sensor> sensors_;
  std::vector<Target> targets_;
  SpatialGrid sensing_grid_;  // sensor positions, for coverage queries
  CommGraph graph_;
  std::vector<Vec2> node_positions_;  // sensors then BS, graph node order
  std::unique_ptr<RoutingPolicy> router_;
  RouteTable routing_;
  std::vector<bool> last_alive_mask_;

  void build_routes(const std::vector<bool>& alive_mask);
};

}  // namespace wrsn
