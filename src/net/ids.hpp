#pragma once
// Entity identifiers. Plain indices into the owning containers; kInvalidId
// marks "none". The base station is addressed separately (it is not a
// sensor) — in routing graphs it occupies index num_sensors.

#include <cstddef>
#include <limits>

namespace wrsn {

using SensorId = std::size_t;
using TargetId = std::size_t;
using RvId = std::size_t;
using ClusterId = std::size_t;

inline constexpr std::size_t kInvalidId = std::numeric_limits<std::size_t>::max();

}  // namespace wrsn
