#include "net/graph.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "geom/grid.hpp"

namespace wrsn {

CommGraph::CommGraph(const std::vector<Vec2>& positions, Vec2 base_station,
                     double comm_range)
    : comm_range_(comm_range) {
  WRSN_REQUIRE(comm_range > 0.0, "communication range must be positive");

  std::vector<Vec2> nodes = positions;
  nodes.push_back(base_station);
  const std::size_t n = nodes.size();

  // Field extent for the helper grid: cover all coordinates (targets/BS can
  // sit anywhere, deployments are non-negative by construction).
  double extent = comm_range;
  for (const Vec2& p : nodes) extent = std::max({extent, p.x, p.y});

  SpatialGrid grid(extent + comm_range, comm_range);
  grid.build(nodes);

  std::vector<std::vector<Edge>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    grid.for_each_in_radius(nodes[i], comm_range, [&](std::size_t j) {
      if (j != i) adj[i].push_back({j, distance(nodes[i], nodes[j])});
    });
    std::sort(adj[i].begin(), adj[i].end(),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
  }

  starts_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) starts_[i + 1] = starts_[i] + adj[i].size();
  edges_.reserve(starts_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    edges_.insert(edges_.end(), adj[i].begin(), adj[i].end());
  }
}

}  // namespace wrsn
