#pragma once
// Random uniform deployment (Section II-B) of sensors and targets over the
// square field. Deterministic given the RNG stream.

#include <vector>

#include "core/rng.hpp"
#include "geom/vec2.hpp"

namespace wrsn {

// `n` points uniform over [0, side] x [0, side].
[[nodiscard]] std::vector<Vec2> deploy_uniform(std::size_t n, double side,
                                               Xoshiro256& rng);

// A fresh uniform location for a relocating target.
[[nodiscard]] Vec2 random_location(double side, Xoshiro256& rng);

}  // namespace wrsn
