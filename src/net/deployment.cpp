#include "net/deployment.hpp"

#include "core/error.hpp"

namespace wrsn {

std::vector<Vec2> deploy_uniform(std::size_t n, double side, Xoshiro256& rng) {
  WRSN_REQUIRE(side > 0.0, "field side must be positive");
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back(random_location(side, rng));
  return points;
}

Vec2 random_location(double side, Xoshiro256& rng) {
  WRSN_REQUIRE(side > 0.0, "field side must be positive");
  return {rng.uniform(0.0, side), rng.uniform(0.0, side)};
}

}  // namespace wrsn
