#include "geom/coverage.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace wrsn {

std::size_t min_sensors_for_coverage(double field_area, double sensing_range) {
  WRSN_REQUIRE(field_area > 0.0, "field area must be positive");
  WRSN_REQUIRE(sensing_range > 0.0, "sensing range must be positive");
  const double pi = std::numbers::pi;
  const double n =
      3.0 * std::sqrt(3.0) * field_area / (2.0 * pi * pi * sensing_range * sensing_range);
  return static_cast<std::size_t>(std::ceil(n));
}

double expected_coverage_degree(std::size_t n, double side, double sensing_range) {
  WRSN_REQUIRE(side > 0.0, "field side must be positive");
  WRSN_REQUIRE(sensing_range > 0.0, "sensing range must be positive");
  return static_cast<double>(n) * std::numbers::pi * sensing_range * sensing_range /
         (side * side);
}

}  // namespace wrsn
