#include "geom/grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace wrsn {

SpatialGrid::SpatialGrid(double field_side, double cell_size)
    : field_side_(field_side), cell_size_(cell_size) {
  WRSN_REQUIRE(field_side > 0.0, "field side must be positive");
  WRSN_REQUIRE(cell_size > 0.0, "cell size must be positive");
  cells_per_side_ =
      std::max(1, static_cast<int>(std::ceil(field_side / cell_size)));
}

int SpatialGrid::cell_coord(double v) const {
  const int c = static_cast<int>(std::floor(v / cell_size_));
  return std::clamp(c, 0, cells_per_side_ - 1);
}

std::size_t SpatialGrid::cell_index(int cx, int cy) const {
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_per_side_) +
         static_cast<std::size_t>(cx);
}

void SpatialGrid::build(const std::vector<Vec2>& points) {
  points_ = points;
  const std::size_t num_cells =
      static_cast<std::size_t>(cells_per_side_) * static_cast<std::size_t>(cells_per_side_);
  std::vector<std::size_t> counts(num_cells, 0);
  std::vector<std::size_t> cell_of(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_of[i] = cell_index(cell_coord(points_[i].x), cell_coord(points_[i].y));
    ++counts[cell_of[i]];
  }
  starts_.assign(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c) starts_[c + 1] = starts_[c] + counts[c];
  ids_.resize(points_.size());
  std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
  // Insert in ascending id order so each cell slice is already sorted.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    ids_[cursor[cell_of[i]]++] = i;
  }
}

std::vector<std::size_t> SpatialGrid::query_radius(Vec2 q, double radius) const {
  std::vector<std::size_t> result;
  for_each_in_radius(q, radius, [&](std::size_t id) { result.push_back(id); });
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t SpatialGrid::nearest(Vec2 q) const {
  WRSN_REQUIRE(!points_.empty(), "nearest() on an empty grid");
  // Expand the search ring until a hit is found, then verify one extra ring
  // (a point in a farther cell can still be closer than one found earlier).
  double best_d2 = std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (double radius = cell_size_;; radius *= 2.0) {
    for_each_in_radius(q, radius, [&](std::size_t id) {
      const double d2 = squared_distance(points_[id], q);
      if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
        best_d2 = d2;
        best = id;
      }
    });
    if (best_d2 <= radius * radius || radius > 2.0 * field_side_) break;
  }
  return best;
}

}  // namespace wrsn
