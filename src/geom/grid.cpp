#include "geom/grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace wrsn {

SpatialGrid::SpatialGrid(double field_side, double cell_size)
    : field_side_(field_side), cell_size_(cell_size) {
  WRSN_REQUIRE(field_side > 0.0, "field side must be positive");
  WRSN_REQUIRE(cell_size > 0.0, "cell size must be positive");
  cells_per_side_ =
      std::max(1, static_cast<int>(std::ceil(field_side / cell_size)));
}

int SpatialGrid::cell_coord(double v) const {
  const int c = static_cast<int>(std::floor(v / cell_size_));
  return std::clamp(c, 0, cells_per_side_ - 1);
}

std::size_t SpatialGrid::cell_index(int cx, int cy) const {
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_per_side_) +
         static_cast<std::size_t>(cx);
}

void SpatialGrid::build(const std::vector<Vec2>& points) {
  points_ = points;
  const std::size_t nc = num_cells();
  std::vector<std::size_t> counts(nc, 0);
  std::vector<std::size_t> cell_of(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_of[i] = cell_index(cell_coord(points_[i].x), cell_coord(points_[i].y));
    ++counts[cell_of[i]];
  }
  starts_.assign(nc + 1, 0);
  for (std::size_t c = 0; c < nc; ++c) starts_[c + 1] = starts_[c] + counts[c];
  ids_.resize(points_.size());
  std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
  // Insert in ascending id order so each cell slice is already sorted.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    ids_[cursor[cell_of[i]]++] = i;
  }
}

std::vector<std::size_t> SpatialGrid::query_radius(Vec2 q, double radius) const {
  // Reserve from cell occupancy so the collection loop never reallocates.
  const int lo_x = cell_coord(q.x - radius);
  const int hi_x = cell_coord(q.x + radius);
  const int lo_y = cell_coord(q.y - radius);
  const int hi_y = cell_coord(q.y + radius);
  std::size_t occupancy = 0;
  for (int cy = lo_y; cy <= hi_y; ++cy) {
    for (int cx = lo_x; cx <= hi_x; ++cx) occupancy += cell_count(cx, cy);
  }
  std::vector<std::size_t> result;
  result.reserve(occupancy);
  for_each_in_radius(q, radius, [&](std::size_t id) { result.push_back(id); });
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t SpatialGrid::count_in_radius(Vec2 q, double radius) const {
  std::size_t count = 0;
  for_each_in_radius(q, radius, [&](std::size_t) { ++count; });
  return count;
}

bool SpatialGrid::any_in_radius(Vec2 q, double radius) const {
  const double r2 = radius * radius;
  const int lo_x = cell_coord(q.x - radius);
  const int hi_x = cell_coord(q.x + radius);
  const int lo_y = cell_coord(q.y - radius);
  const int hi_y = cell_coord(q.y + radius);
  for (int cy = lo_y; cy <= hi_y; ++cy) {
    for (int cx = lo_x; cx <= hi_x; ++cx) {
      const std::size_t cell = cell_index(cx, cy);
      for (std::size_t k = starts_[cell]; k < starts_[cell + 1]; ++k) {
        if (squared_distance(points_[ids_[k]], q) <= r2) return true;
      }
    }
  }
  return false;
}

std::size_t SpatialGrid::nearest(Vec2 q) const {
  WRSN_REQUIRE(!points_.empty(), "nearest() on an empty grid");
  const int qx = cell_coord(q.x);
  const int qy = cell_coord(q.y);
  double best_d2 = std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  bool found = false;
  auto visit_cell = [&](int cx, int cy) {
    if (cx < 0 || cx >= cells_per_side_ || cy < 0 || cy >= cells_per_side_) return;
    const std::size_t cell = cell_index(cx, cy);
    for (std::size_t k = starts_[cell]; k < starts_[cell + 1]; ++k) {
      const std::size_t id = ids_[k];
      const double d2 = squared_distance(points_[id], q);
      if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
        best_d2 = d2;
        best = id;
        found = true;
      }
    }
  };
  // A point in a cell at Chebyshev ring r lies at distance > (r-1)*cell_size
  // from q (clamped out-of-field points only move cells inward, which keeps
  // the bound valid). The tiny shave guards against the product rounding up
  // past a true distance on the ring boundary.
  for (int ring = 0; ring < cells_per_side_ + 1; ++ring) {
    if (found && ring > 0) {
      const double lb = static_cast<double>(ring - 1) * cell_size_ *
                        (1.0 - 1e-12);
      if (lb * lb > best_d2) break;
    }
    if (ring == 0) {
      visit_cell(qx, qy);
      continue;
    }
    for (int cx = qx - ring; cx <= qx + ring; ++cx) {
      visit_cell(cx, qy - ring);
      visit_cell(cx, qy + ring);
    }
    for (int cy = qy - ring + 1; cy <= qy + ring - 1; ++cy) {
      visit_cell(qx - ring, cy);
      visit_cell(qx + ring, cy);
    }
  }
  return best;
}

}  // namespace wrsn
