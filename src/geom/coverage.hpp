#pragma once
// Coverage density math from Section II-B of the paper.

#include <cstddef>

namespace wrsn {

// Eq. (1): minimum number of sensors for full coverage of area `field_area`
// with sensing radius `sensing_range`, from the triangular-lattice result of
// Williams [20]:  N = 3*sqrt(3)*S_a / (2*pi^2*r^2)  -- as printed in the
// paper (the classic lattice constant is 2*pi*r^2/(3*sqrt(3)) per sensor; we
// reproduce the paper's formula verbatim).
[[nodiscard]] std::size_t min_sensors_for_coverage(double field_area,
                                                   double sensing_range);

// Expected number of sensors covering a uniformly random target when `n`
// sensors are uniform over a square field of side `side` (boundary effects
// ignored): n * pi * r^2 / side^2. Used by tests and the ablation bench to
// predict cluster sizes.
[[nodiscard]] double expected_coverage_degree(std::size_t n, double side,
                                              double sensing_range);

}  // namespace wrsn
