#pragma once
// Uniform spatial hash grid over the square sensing field.
//
// Supports the two queries the framework needs, both in O(points in the
// neighbouring cells) instead of O(N):
//   * all points within radius r of a query point (which sensors cover a
//     target; which sensors are communication neighbours),
//   * the nearest point to a query point.

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"

namespace wrsn {

class SpatialGrid {
 public:
  // `field_side` is the square field's side length; `cell_size` should be of
  // the order of the most common query radius.
  SpatialGrid(double field_side, double cell_size);

  // Builds the index over `points`; ids are the indices into `points`.
  void build(const std::vector<Vec2>& points);

  [[nodiscard]] std::size_t size() const { return points_.size(); }

  // Ids of all points with distance(p, q) <= radius, in ascending id order.
  [[nodiscard]] std::vector<std::size_t> query_radius(Vec2 q, double radius) const;

  // Visits ids within radius without allocating.
  template <typename Fn>
  void for_each_in_radius(Vec2 q, double radius, Fn&& fn) const {
    const double r2 = radius * radius;
    const int lo_x = cell_coord(q.x - radius);
    const int hi_x = cell_coord(q.x + radius);
    const int lo_y = cell_coord(q.y - radius);
    const int hi_y = cell_coord(q.y + radius);
    for (int cy = lo_y; cy <= hi_y; ++cy) {
      for (int cx = lo_x; cx <= hi_x; ++cx) {
        const std::size_t cell = cell_index(cx, cy);
        for (std::size_t k = starts_[cell]; k < starts_[cell + 1]; ++k) {
          const std::size_t id = ids_[k];
          if (squared_distance(points_[id], q) <= r2) fn(id);
        }
      }
    }
  }

  // Id of the nearest point to q; size() must be > 0.
  [[nodiscard]] std::size_t nearest(Vec2 q) const;

 private:
  [[nodiscard]] int cell_coord(double v) const;
  [[nodiscard]] std::size_t cell_index(int cx, int cy) const;

  double field_side_;
  double cell_size_;
  int cells_per_side_;
  std::vector<Vec2> points_;
  // CSR layout: ids_ grouped by cell, starts_[cell]..starts_[cell+1] slices it.
  std::vector<std::size_t> ids_;
  std::vector<std::size_t> starts_;
};

}  // namespace wrsn
