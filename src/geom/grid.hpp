#pragma once
// Uniform spatial hash grid over the square sensing field.
//
// Supports the queries the framework needs, all in O(points in the
// neighbouring cells) instead of O(N):
//   * all points within radius r of a query point (which sensors cover a
//     target; which sensors are communication neighbours),
//   * count / existence of points within radius r (allocation-free),
//   * the nearest point to a query point (ring-expanding search).
//
// The cell layer (cell coordinates, per-cell id slices, exact point-to-cell
// distance lower bounds) is public so branch-and-bound searches — the
// planner's PlanContext, the grid-pruned 2-opt — can traverse cells in
// expanding rings and prune whole cells against an incumbent.

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"

namespace wrsn {

class SpatialGrid {
 public:
  // `field_side` is the square field's side length; `cell_size` should be of
  // the order of the most common query radius.
  SpatialGrid(double field_side, double cell_size);

  // Builds the index over `points`; ids are the indices into `points`.
  void build(const std::vector<Vec2>& points);

  [[nodiscard]] std::size_t size() const { return points_.size(); }

  // --- cell layer --------------------------------------------------------
  [[nodiscard]] double cell_size() const { return cell_size_; }
  [[nodiscard]] int cells_per_side() const { return cells_per_side_; }
  [[nodiscard]] std::size_t num_cells() const {
    return static_cast<std::size_t>(cells_per_side_) *
           static_cast<std::size_t>(cells_per_side_);
  }
  // Grid coordinate of a world coordinate, clamped to [0, cells_per_side).
  [[nodiscard]] int cell_coord(double v) const;
  [[nodiscard]] std::size_t cell_index(int cx, int cy) const;
  [[nodiscard]] std::size_t cell_count(int cx, int cy) const {
    const std::size_t cell = cell_index(cx, cy);
    return starts_[cell + 1] - starts_[cell];
  }

  // Visits every id whose point hashed into cell (cx, cy).
  template <typename Fn>
  void for_each_in_cell(int cx, int cy, Fn&& fn) const {
    const std::size_t cell = cell_index(cx, cy);
    for (std::size_t k = starts_[cell]; k < starts_[cell + 1]; ++k) fn(ids_[k]);
  }

  // Lower bound on distance(q, p) for any point p hashed into cell (cx, cy).
  // Border cells absorb out-of-field points through clamping, so they extend
  // to infinity on the clamped side and the bound degrades to the in-range
  // axes only (never over-estimates).
  [[nodiscard]] double cell_distance_lower_bound_sq(Vec2 q, int cx, int cy) const {
    double dx = 0.0;
    if (cx > 0 && q.x < static_cast<double>(cx) * cell_size_) {
      dx = static_cast<double>(cx) * cell_size_ - q.x;
    } else if (cx + 1 < cells_per_side_ &&
               q.x > static_cast<double>(cx + 1) * cell_size_) {
      dx = q.x - static_cast<double>(cx + 1) * cell_size_;
    }
    double dy = 0.0;
    if (cy > 0 && q.y < static_cast<double>(cy) * cell_size_) {
      dy = static_cast<double>(cy) * cell_size_ - q.y;
    } else if (cy + 1 < cells_per_side_ &&
               q.y > static_cast<double>(cy + 1) * cell_size_) {
      dy = q.y - static_cast<double>(cy + 1) * cell_size_;
    }
    return dx * dx + dy * dy;
  }

  // --- queries ------------------------------------------------------------
  // Ids of all points with distance(p, q) <= radius, in ascending id order.
  // Capacity is reserved from the occupancy of the touched cells, so the
  // result vector never reallocates while collecting.
  [[nodiscard]] std::vector<std::size_t> query_radius(Vec2 q, double radius) const;

  // Number of points within radius, without allocating.
  [[nodiscard]] std::size_t count_in_radius(Vec2 q, double radius) const;

  // Whether any point lies within radius; early-exits on the first hit.
  [[nodiscard]] bool any_in_radius(Vec2 q, double radius) const;

  // Visits ids within radius without allocating.
  template <typename Fn>
  void for_each_in_radius(Vec2 q, double radius, Fn&& fn) const {
    const double r2 = radius * radius;
    const int lo_x = cell_coord(q.x - radius);
    const int hi_x = cell_coord(q.x + radius);
    const int lo_y = cell_coord(q.y - radius);
    const int hi_y = cell_coord(q.y + radius);
    for (int cy = lo_y; cy <= hi_y; ++cy) {
      for (int cx = lo_x; cx <= hi_x; ++cx) {
        const std::size_t cell = cell_index(cx, cy);
        for (std::size_t k = starts_[cell]; k < starts_[cell + 1]; ++k) {
          const std::size_t id = ids_[k];
          if (squared_distance(points_[id], q) <= r2) fn(id);
        }
      }
    }
  }

  // Id of the nearest point to q (lowest id on exact ties); size() must be
  // > 0. Expands Chebyshev cell rings outward from q's cell and stops as
  // soon as the next ring provably cannot beat the incumbent, so sparse
  // grids no longer degrade to repeated full-rectangle scans.
  [[nodiscard]] std::size_t nearest(Vec2 q) const;

 private:
  double field_side_;
  double cell_size_;
  int cells_per_side_;
  std::vector<Vec2> points_;
  // CSR layout: ids_ grouped by cell, starts_[cell]..starts_[cell+1] slices it.
  std::vector<std::size_t> ids_;
  std::vector<std::size_t> starts_;
};

}  // namespace wrsn
