#pragma once
// 2-D points/vectors on the sensing field. Plain doubles in metres; the
// strong Meter type is used at module boundaries, raw coordinates inside the
// geometry kernels.

#include <cmath>
#include <compare>
#include <ostream>

namespace wrsn {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend constexpr Vec2 operator/(Vec2 a, double s) { return {a.x / s, a.y / s}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << '(' << v.x << ", " << v.y << ')';
  }
};

[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }
[[nodiscard]] constexpr double squared_norm(Vec2 a) { return dot(a, a); }
[[nodiscard]] inline double norm(Vec2 a) { return std::sqrt(squared_norm(a)); }
[[nodiscard]] constexpr double squared_distance(Vec2 a, Vec2 b) {
  return squared_norm(a - b);
}
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return norm(a - b); }

// Point on the segment [a,b] at parameter t in [0,1].
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return a + (b - a) * t;
}

}  // namespace wrsn
