// Table II reproduction: prints the parameter settings the simulator runs
// with, next to the values the paper lists, and validates the derived device
// constants.
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "geom/coverage.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Table II - Parameter Settings",
                      "Table II, Section V, first paragraph");

  const SimConfig cfg = SimConfig::paper_defaults();

  Table t({"parameter", "paper", "this repo"});
  t.add_row({std::string("number of sensors N"), std::string("500"),
             static_cast<long long>(cfg.num_sensors)});
  t.add_row({std::string("number of targets M"), std::string("15"),
             static_cast<long long>(cfg.num_targets)});
  t.add_row({std::string("number of RVs m"), std::string("3"),
             static_cast<long long>(cfg.num_rvs)});
  t.add_row({std::string("side length L (m)"), std::string("200"),
             cfg.field_side.value()});
  t.add_row({std::string("transmission range d_c (m)"), std::string("12"),
             cfg.comm_range.value()});
  t.add_row({std::string("sensing range d_s (m)"), std::string("8"),
             cfg.sensing_range.value()});
  t.add_row({std::string("simulation time (days)"), std::string("120"),
             cfg.sim_duration.value() / 86400.0});
  t.add_row({std::string("target period (h)"), std::string("3"),
             cfg.target_period.value() / 3600.0});
  t.add_row({std::string("threshold E_th (% of E_c)"), std::string("50"),
             cfg.battery.threshold_fraction * 100.0});
  t.add_row({std::string("RV moving consumption e_m (J/m)"), std::string("5.6"),
             cfg.rv.move_cost.value()});
  t.add_row({std::string("RV speed v_r (m/s)"), std::string("1"),
             cfg.rv.speed.value()});
  t.add_row({std::string("data rate lambda (pkt/min)"), std::string("15"),
             cfg.data_rate_pkt_per_min});
  t.add_row({std::string("battery capacity E_c (J, 2xAAA Ni-MH)"),
             std::string("(derived)"), cfg.battery.capacity.value()});
  t.add_row({std::string("radio tx/rx power (mW, CC2480)"), std::string("81"),
             cfg.radio.tx_power.value() * 1e3});
  t.add_row({std::string("PIR active power (mW)"), std::string("30"),
             cfg.sensing.active_power.value() * 1e3});
  t.add_row({std::string("PIR idle power (mW)"), std::string("0.51"),
             cfg.sensing.idle_power.value() * 1e3});
  t.set_precision(2);
  t.print(std::cout);

  std::cout << "\nEq. (1) minimum sensors for full coverage at L=200, r=8: "
            << min_sensors_for_coverage(200.0 * 200.0, 8.0)
            << " (deployed: " << cfg.num_sensors << ")\n";
  return 0;
}
