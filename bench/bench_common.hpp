#pragma once
// Shared plumbing for the figure/table reproduction harnesses.
//
// Environment knobs (keep default runs fast but allow full-fidelity runs):
//   WRSN_BENCH_DAYS       simulated days per replica   (default 60)
//   WRSN_BENCH_SEEDS      replicas averaged per point  (default 2)
//   WRSN_BENCH_TELEMETRY  path: aggregate per-replica telemetry (event-loop
//                         counters, scheduler timing histograms) over every
//                         run_point replica and write it there on exit —
//                         JSON, or Prometheus text when it ends in ".prom"

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/config.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "obs/telemetry.hpp"
#include "sim/runner.hpp"

namespace wrsn::bench {

inline double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline double sim_days() { return env_or("WRSN_BENCH_DAYS", 60.0); }
inline std::size_t num_seeds() {
  return static_cast<std::size_t>(env_or("WRSN_BENCH_SEEDS", 2.0));
}

// Table II defaults with the repo's calibrated operating point (see
// DESIGN.md section 3) and the bench horizon applied.
inline SimConfig bench_config() {
  SimConfig cfg = SimConfig::paper_defaults();
  cfg.sim_duration = days(sim_days());
  return cfg;
}

// Registry aggregating telemetry across every replica this process runs, or
// nullptr when WRSN_BENCH_TELEMETRY is unset. The file is written when the
// bench exits, so harness mains need no extra plumbing.
inline obs::TelemetryRegistry* telemetry_registry() {
  static obs::TelemetryRegistry* registry = []() -> obs::TelemetryRegistry* {
    const char* path = std::getenv("WRSN_BENCH_TELEMETRY");
    if (path == nullptr || *path == '\0') return nullptr;
    static obs::TelemetryRegistry instance;
    static const std::string out_path = path;
    std::atexit([] {
      obs::write_registry_file(out_path, instance);
      std::cerr << "wrote bench telemetry to " << out_path << '\n';
    });
    return &instance;
  }();
  return registry;
}

inline MetricsReport run_point(const SimConfig& cfg) {
  static ThreadPool pool;
  return run_mean(cfg, num_seeds(), &pool, telemetry_registry());
}

inline void print_header(const std::string& title, const std::string& paper_note) {
  std::cout << "==================================================================\n"
            << title << '\n'
            << "paper reference: " << paper_note << '\n'
            << "horizon: " << sim_days() << " simulated days, " << num_seeds()
            << " seed(s) per point\n"
            << "==================================================================\n";
}

}  // namespace wrsn::bench
