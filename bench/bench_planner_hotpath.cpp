// bench_planner_hotpath — old-vs-new timing for the grid-pruned planners.
//
// Measures ns/op for the reference linear-scan planners against the
// PlanContext / grid-backed replacements at n in {100, 500, 2000, 10000}
// (constant item density: the field side grows with sqrt(n)) and writes a
// machine-readable JSON report:
//
//   bench_planner_hotpath [--quick] [--out FILE]
//
//   --quick   only n in {100, 500} (the ctest smoke target)
//   --out     output path (default BENCH_planner.json in the cwd)
//
// Timing is hand-rolled (steady_clock, best-of-reps over calibrated inner
// loops) so the JSON schema stays under our control and the binary has no
// benchmark-library dependency. Kernels produce a checksum that is written
// into the report, which both defeats dead-code elimination and doubles as
// an equivalence check: reference and optimized checksums must match.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/json.hpp"
#include "core/rng.hpp"
#include "sched/kmeans.hpp"
#include "sched/plan_context.hpp"
#include "sched/planner.hpp"
#include "sched/tsp.hpp"

namespace {

using namespace wrsn;

using Clock = std::chrono::steady_clock;

// Runs `fn` (which returns a double checksum) enough times to fill
// ~`budget_ns`, repeated `reps` times, and reports the fastest rep.
struct Timing {
  double ns_per_op = 0.0;
  double checksum = 0.0;
};

// Keeps the timed loops' results observable so they cannot be elided.
volatile double g_sink = 0.0;

// Interleaved variant for ref-vs-opt comparisons: reps alternate
// ref,opt,ref,opt,... so slow clock-frequency / thermal drift biases both
// sides equally instead of penalising whichever side ran second. Without
// this, two timings of the IDENTICAL code path (e.g. nearest_neighbor_tour
// below its small-n cutover, where the optimized entry point delegates to
// the reference) can report a consistent few-percent "slowdown".
template <typename RefFn, typename OptFn>
std::pair<Timing, Timing> time_kernel_pair(RefFn&& ref_fn, OptFn&& opt_fn,
                                           double budget_ns = 5e7,
                                           int reps = 3) {
  Timing ref, opt;
  auto calibrate = [](auto& fn, Timing& t) {
    const auto t0 = Clock::now();
    t.checksum = fn();
    const auto t1 = Clock::now();
    return std::max(
        1.0, std::chrono::duration<double, std::nano>(t1 - t0).count());
  };
  const double ref_once = calibrate(ref_fn, ref);
  const double opt_once = calibrate(opt_fn, opt);
  auto iters_for = [budget_ns](double once) {
    return static_cast<std::size_t>(std::clamp(budget_ns / once, 1.0, 1e6));
  };
  const std::size_t ref_iters = iters_for(ref_once);
  const std::size_t opt_iters = iters_for(opt_once);
  auto run_rep = [](auto& fn, std::size_t iters) {
    const auto t0 = Clock::now();
    double sink = 0.0;
    for (std::size_t i = 0; i < iters; ++i) sink += fn();
    const auto t1 = Clock::now();
    g_sink = sink;
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(iters);
  };
  double ref_best = ref_once;
  double opt_best = opt_once;
  for (int rep = 0; rep < reps; ++rep) {
    ref_best = std::min(ref_best, run_rep(ref_fn, ref_iters));
    opt_best = std::min(opt_best, run_rep(opt_fn, opt_iters));
  }
  ref.ns_per_op = ref_best;
  opt.ns_per_op = opt_best;
  return {ref, opt};
}

template <typename Fn>
Timing time_kernel(Fn&& fn, double budget_ns = 5e7, int reps = 3) {
  Timing t;
  // Calibration pass (also warms caches). Its result is the checksum — one
  // call's worth, so reference and optimized kernels are comparable even
  // though they calibrate to different iteration counts.
  auto t0 = Clock::now();
  t.checksum = fn();
  auto t1 = Clock::now();
  const double once =
      std::max(1.0, std::chrono::duration<double, std::nano>(t1 - t0).count());
  const auto iters =
      static_cast<std::size_t>(std::clamp(budget_ns / once, 1.0, 1e6));
  double best = once;
  for (int rep = 0; rep < reps; ++rep) {
    t0 = Clock::now();
    double sink = 0.0;
    for (std::size_t i = 0; i < iters; ++i) sink += fn();
    t1 = Clock::now();
    g_sink = sink;
    const double per =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    best = std::min(best, per);
  }
  t.ns_per_op = best;
  return t;
}

std::vector<RechargeItem> random_items(std::size_t n, double side,
                                       Xoshiro256& rng) {
  std::vector<RechargeItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RechargeItem it;
    it.pos = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    it.demand = Joule{rng.uniform(500.0, 3500.0)};
    it.critical = rng.uniform(0.0, 1.0) < 0.05;
    it.min_fraction = rng.uniform(0.05, 0.95);
    it.sensors = {i};
    items.push_back(std::move(it));
  }
  return items;
}

struct Row {
  std::string kernel;
  std::size_t n = 0;
  double ref_ns = -1.0;  // < 0 means "not measured at this size"
  double opt_ns = 0.0;
};

void run_size(std::size_t n, std::vector<Row>& rows) {
  // Constant density: the 500-item instance lives on a 200 m field, the
  // paper's Table II scale; everything else keeps items/m^2 fixed.
  const double side = 200.0 * std::sqrt(static_cast<double>(n) / 500.0);
  Xoshiro256 rng(0x9e3779b97f4a7c15ULL + n);
  const auto items = random_items(n, side, rng);
  const PlannerParams params{JoulePerMeter{5.6}, Vec2{side / 2.0, side / 2.0}};
  const RvPlanState rv{{side * 0.25, side * 0.75}, Joule{1e9}};
  const std::vector<bool> untaken(n, false);
  const PlanContext ctx(items, params);

  auto add = [&](const char* kernel, Timing ref, Timing opt, bool has_ref) {
    if (has_ref && ref.checksum != opt.checksum) {
      std::cerr << "bench_planner_hotpath: checksum mismatch on " << kernel
                << " at n=" << n << " (" << ref.checksum << " vs "
                << opt.checksum << ")\n";
      std::exit(1);
    }
    rows.push_back({kernel, n, has_ref ? ref.ns_per_op : -1.0, opt.ns_per_op});
    std::cerr << "  " << kernel << " n=" << n << ": ";
    if (has_ref) {
      std::cerr << ref.ns_per_op << " -> " << opt.ns_per_op << " ns/op ("
                << ref.ns_per_op / opt.ns_per_op << "x)\n";
    } else {
      std::cerr << opt.ns_per_op << " ns/op (reference skipped)\n";
    }
  };

  {
    const auto [ref, opt] = time_kernel_pair(
        [&] {
          const auto pick = greedy_next(rv, items, untaken, params);
          return pick ? static_cast<double>(*pick) : -1.0;
        },
        [&] {
          const auto pick = ctx.greedy_next(rv, untaken);
          return pick ? static_cast<double>(*pick) : -1.0;
        });
    add("greedy_next", ref, opt, true);
  }

  {
    const auto [ref, opt] = time_kernel_pair(
        [&] {
          const auto pick = nearest_next(rv, items, untaken, params);
          return pick ? static_cast<double>(*pick) : -1.0;
        },
        [&] {
          const auto pick = ctx.nearest_next(rv, untaken);
          return pick ? static_cast<double>(*pick) : -1.0;
        });
    add("nearest_next", ref, opt, true);
  }

  {
    // Bounded budget so the planned sequence has realistic (tour-sized)
    // length rather than swallowing the whole list.
    const RvPlanState tour_rv{rv.pos, Joule{2e5}};
    const auto [ref, opt] = time_kernel_pair(
        [&] {
          std::vector<bool> taken(n, false);
          const auto seq = insertion_sequence(tour_rv, items, taken, params);
          double sum = 0.0;
          for (const std::size_t i : seq) sum += static_cast<double>(i) + 1.0;
          return sum;
        },
        [&] {
          std::vector<bool> taken(n, false);
          const auto seq = ctx.insertion_sequence(tour_rv, taken);
          double sum = 0.0;
          for (const std::size_t i : seq) sum += static_cast<double>(i) + 1.0;
          return sum;
        });
    add("insertion_sequence", ref, opt, true);
  }

  std::vector<Vec2> points;
  points.reserve(n);
  for (const RechargeItem& it : items) points.push_back(it.pos);

  {
    const auto [ref, opt] = time_kernel_pair(
        [&] {
          const auto order =
              nearest_neighbor_tour_reference(params.base, points);
          double sum = 0.0;
          for (const std::size_t i : order) sum += static_cast<double>(i) + 1.0;
          return sum;
        },
        [&] {
          const auto order = nearest_neighbor_tour(params.base, points);
          double sum = 0.0;
          for (const std::size_t i : order) sum += static_cast<double>(i) + 1.0;
          return sum;
        });
    add("nearest_neighbor_tour", ref, opt, true);
  }

  {
    const auto base_order = nearest_neighbor_tour_reference(params.base, points);
    auto tour_sum = [](const std::vector<std::size_t>& order) {
      double sum = 0.0;
      for (const std::size_t i : order) sum += static_cast<double>(i) + 1.0;
      return sum;
    };
    // The reference 2-opt is O(n^2) per round; at n=10000 one call takes
    // whole seconds, so only the optimized side is measured there.
    const bool run_ref = n <= 2000;
    Timing ref, opt;
    if (run_ref) {
      std::tie(ref, opt) = time_kernel_pair(
          [&] {
            auto order = base_order;
            two_opt_reference(params.base, points, order);
            return tour_sum(order);
          },
          [&] {
            auto order = base_order;
            two_opt(params.base, points, order);
            return tour_sum(order);
          });
    } else {
      opt = time_kernel([&] {
        auto order = base_order;
        two_opt(params.base, points, order);
        return tour_sum(order);
      });
    }
    add("two_opt", ref, opt, run_ref);
  }

  {
    const std::size_t k = 16;
    const auto [ref, opt] = time_kernel_pair(
        [&] {
          Xoshiro256 r(42);
          const auto res = kmeans_reference(points, k, r);
          double sum = res.wcss + static_cast<double>(res.iterations);
          for (const std::size_t a : res.assignment) {
            sum += static_cast<double>(a);
          }
          return sum;
        },
        [&] {
          Xoshiro256 r(42);
          const auto res = kmeans(points, k, r);
          double sum = res.wcss + static_cast<double>(res.iterations);
          for (const std::size_t a : res.assignment) {
            sum += static_cast<double>(a);
          }
          return sum;
        });
    add("kmeans_k16", ref, opt, true);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_planner.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: bench_planner_hotpath [--quick] [--out FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {100, 500, 2000, 10000};
  if (quick) sizes = {100, 500};

  std::vector<Row> rows;
  for (const std::size_t n : sizes) {
    std::cerr << "n=" << n << '\n';
    run_size(n, rows);
  }

  JsonWriter w;
  w.begin_object()
      .field("schema", "wrsn.bench_planner.v1")
      .field("quick", quick)
      .key("results")
      .begin_array();
  for (const Row& r : rows) {
    w.begin_object()
        .field("kernel", r.kernel)
        .field("n", static_cast<std::uint64_t>(r.n));
    if (r.ref_ns >= 0.0) {
      w.field("ref_ns_per_op", r.ref_ns)
          .field("opt_ns_per_op", r.opt_ns)
          .field("speedup", r.ref_ns / r.opt_ns);
    } else {
      // The reference kernel was deliberately skipped (too slow at this
      // size); say so explicitly so downstream gates can distinguish a
      // capped row from a broken measurement.
      w.field("ref_timeout", true);
      w.key("ref_ns_per_op").null();
      w.field("opt_ns_per_op", r.opt_ns);
      w.key("speedup").null();
    }
    w.end_object();
  }
  w.end_array().end_object();

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "cannot open '" << out_path << "'\n";
    return 1;
  }
  out << w.str() << '\n';
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
