// Fig. 6 reproduction: the four panels comparing the recharging schemes over
// the ERP sweep.
//   6(a) RV traveling energy      - Partition lowest (paper: -41% vs greedy)
//   6(b) average coverage ratio   - all high, declining with ERP
//   6(c) % nonfunctional sensors  - Combined lowest (paper: -52% vs greedy)
//   6(d) recharging cost (m/sensor) - Partition lowest
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Fig. 6 - performance comparison between recharging schemes",
                      "Fig. 6(a)-(d), Section V-C");

  Table t({"scheme", "ERP", "travel (MJ)", "coverage (%)", "nonfunc (%)",
           "recharging cost (m/sensor)"});
  t.set_precision(3);

  struct Avg {
    double travel = 0.0, nonfunc = 0.0, cost = 0.0;
    int n = 0;
  };
  Avg avgs[3];
  int scheme_idx = 0;

  for (const std::string sched : {"greedy", "partition", "combined"}) {
    for (double erp : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      SimConfig cfg = bench::bench_config();
      cfg.scheduler = sched;
      cfg.energy_request_percentage = erp;
      const MetricsReport r = bench::run_point(cfg);
      t.add_row({sched, erp, r.rv_travel_energy.value() / 1e6,
                 100.0 * r.coverage_ratio, r.nonfunctional_pct,
                 r.recharging_cost_m_per_sensor()});
      avgs[scheme_idx].travel += r.rv_travel_energy.value() / 1e6;
      avgs[scheme_idx].nonfunc += r.nonfunctional_pct;
      avgs[scheme_idx].cost += r.recharging_cost_m_per_sensor();
      ++avgs[scheme_idx].n;
    }
    ++scheme_idx;
  }
  t.print(std::cout);

  const char* names[] = {"greedy", "partition", "combined"};
  std::cout << "\nERP-averaged summaries:\n";
  for (int i = 0; i < 3; ++i) {
    std::cout << "  " << names[i] << ": travel " << avgs[i].travel / avgs[i].n
              << " MJ, nonfunctional " << avgs[i].nonfunc / avgs[i].n
              << " %, recharging cost " << avgs[i].cost / avgs[i].n
              << " m/sensor\n";
  }
  auto pct = [](double base, double x) { return 100.0 * (base - x) / base; };
  std::cout << "\nshape check vs paper:\n"
            << "  6(a) partition saves "
            << pct(avgs[0].travel / avgs[0].n, avgs[1].travel / avgs[1].n)
            << "% travel vs greedy (paper: ~41%), combined "
            << pct(avgs[0].travel / avgs[0].n, avgs[2].travel / avgs[2].n)
            << "% (paper: ~13%)\n"
            << "  6(c) combined cuts nonfunctional by "
            << pct(avgs[0].nonfunc / avgs[0].n, avgs[2].nonfunc / avgs[2].n)
            << "% vs greedy (paper: ~52%), partition "
            << pct(avgs[0].nonfunc / avgs[0].n, avgs[1].nonfunc / avgs[1].n)
            << "% (paper: ~23%)\n"
            << "  6(d) partition cost is "
            << pct(avgs[0].cost / avgs[0].n, avgs[1].cost / avgs[1].n)
            << "% below greedy (paper: ~41%)\n";
  return 0;
}
