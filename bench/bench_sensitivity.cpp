// Sensitivity analysis backing two remarks in the paper's evaluation:
//   * "the advantages of the sensor activity management will become more
//     evident if there are more targets" (Section V-A, last paragraph) —
//     swept over M;
//   * fleet sizing — the same metrics swept over the number of RVs m.
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Sensitivity - number of targets M and fleet size m",
                      "Section V-A closing remark; fleet dimensioning");

  {
    Table t({"targets M", "travel NoERC-Full (MJ)", "travel ERC-RR (MJ)",
             "activity-mgmt saving (%)"});
    t.set_precision(3);
    // Up to M=20 the 3-RV fleet stays travel-bound; beyond that it
    // saturates on charge time and travel stops being the binding metric.
    for (std::size_t m : {5u, 8u, 10u, 15u, 20u}) {
      SimConfig base = bench::bench_config();
      base.num_targets = m;
      base.scheduler = "combined";

      SimConfig worst = base;
      worst.energy_request_control = false;
      worst.activation = ActivationPolicy::kFullTime;
      SimConfig bst = base;
      bst.energy_request_control = true;
      bst.activation = ActivationPolicy::kRoundRobin;

      const double e_worst =
          bench::run_point(worst).rv_travel_energy.value() / 1e6;
      const double e_best = bench::run_point(bst).rv_travel_energy.value() / 1e6;
      t.add_row({static_cast<long long>(m), e_worst, e_best,
                 e_worst > 0 ? 100.0 * (e_worst - e_best) / e_worst : 0.0});
    }
    t.print(std::cout);
    std::cout << "\nshape check: the saving grows with M — more targets mean a\n"
                 "larger share of sensors benefits from clustering, RR and ERC\n"
                 "(the paper's closing remark of Section V-A). Past ~M=20 the\n"
                 "3-RV fleet saturates on charging time and the comparison\n"
                 "stops being travel-bound.\n\n";
  }

  {
    Table t({"RVs m", "coverage (%)", "nonfunc (%)", "latency (min)",
             "cost (m/sensor)"});
    t.set_precision(2);
    for (std::size_t m : {1u, 2u, 3u, 5u, 8u}) {
      SimConfig cfg = bench::bench_config();
      cfg.num_rvs = m;
      const MetricsReport r = bench::run_point(cfg);
      t.add_row({static_cast<long long>(m), 100.0 * r.coverage_ratio,
                 r.nonfunctional_pct, r.avg_request_latency.value() / 60.0,
                 r.recharging_cost_m_per_sensor()});
    }
    t.print(std::cout);
    std::cout << "\nshape check: latency and nonfunctional percentage fall\n"
                 "steeply from m=1 and saturate — Table II's m=3 sits at the\n"
                 "knee of the curve.\n";
  }
  return 0;
}
