// Eq. (1) reproduction: minimum sensor count for full coverage as a function
// of sensing range, cross-checked against a Monte-Carlo estimate of actual
// coverage at that density.
#include <iostream>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "geom/coverage.hpp"
#include "geom/grid.hpp"
#include "net/deployment.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Eq. (1) - minimum sensors for full coverage",
                      "Section II-B, Eq. (1)");

  const double side = 200.0;
  Table t({"sensing range r (m)", "N_min (Eq. 1)", "expected degree at N_min",
           "MC covered fraction at N_min"});
  t.set_precision(3);

  Xoshiro256 rng(12345);
  for (double r : {4.0, 6.0, 8.0, 10.0, 12.0, 16.0}) {
    const std::size_t n_min = min_sensors_for_coverage(side * side, r);
    const double degree = expected_coverage_degree(n_min, side, r);

    // Monte-Carlo: deploy n_min sensors uniformly, sample random points,
    // count the fraction covered (random deployment needs more than the
    // deterministic-lattice minimum, so this is < 1 by design).
    const auto sensors = deploy_uniform(n_min, side, rng);
    SpatialGrid grid(side, r);
    grid.build(sensors);
    int covered = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      const Vec2 q{rng.uniform(0.0, side), rng.uniform(0.0, side)};
      bool hit = false;
      grid.for_each_in_radius(q, r, [&](std::size_t) { hit = true; });
      if (hit) ++covered;
    }
    t.add_row({r, static_cast<long long>(n_min), degree,
               static_cast<double>(covered) / trials});
  }
  t.print(std::cout);
  std::cout << "\nNote: Eq. (1) is the deterministic triangular-lattice bound; a\n"
               "random deployment at the same density leaves holes, which is why\n"
               "Table II deploys 500 >> N_min(8 m) sensors.\n";
  return 0;
}
