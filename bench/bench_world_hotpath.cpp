// bench_world_hotpath — old-vs-new event-loop throughput for the World.
//
// Runs the same battery-stressed random-waypoint + round-robin scenario
// under the reference engine (full O(N) rescans per event) and the
// incremental engine (lazy settlement, O(1) coverage counters, dirty-marked
// drain refreshes, grid-scoped reclustering) at n in {500, 2000, 10000,
// 100000} and writes a machine-readable JSON report:
//
//   bench_world_hotpath [--quick] [--out FILE] [--sizes N,N,...]
//                       [--ref-queue IMPL] [--inc-queue IMPL] [--no-ref]
//                       [--threads N] [--threads-sweep T,T,...]
//
//   --quick      only n in {500, 2000} (the ctest smoke target)
//   --out        output path (default BENCH_world.json in the cwd)
//   --sizes      comma-separated n list overriding the default ladder
//   --ref-queue  event queue for the reference engine (default heap)
//   --inc-queue  event queue for the incremental engine (default calendar)
//   --no-ref     probe mode: skip the reference run (and with it the
//                cross-check and speedup); rows carry only the inc columns
//   --threads N  shard-executor threads for every run (default 1 = serial)
//   --threads-sweep T,T,...
//                after the main rows, re-run the incremental engine at each
//                thread count and emit a "thread_scaling" array (wall time,
//                events/sec, speedup vs the sweep's first entry). Runs at
//                every benched size; each run is cross-checked bit-for-bit
//                against the first thread count, so the sweep doubles as a
//                determinism proof at scale.
//
// The two runs must agree bit-for-bit: the metrics report JSON and the final
// per-sensor battery vector are cross-checked before any timing is reported,
// so the benchmark doubles as an engine-equivalence smoke test at scales the
// unit suite does not reach. The reference run uses the binary-heap event
// queue and the incremental run the calendar queue, so the cross-check also
// proves the two queue implementations pop in an identical order at scale.
// Timing is whole-run wall clock (steady_clock, best of 2 fresh worlds per
// engine; a single rep at n=100000, where the reference engine's
// O(N)-per-event rescans already take minutes and rep noise is negligible
// next to the measured gap); the figure of merit is events/sec.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/json.hpp"
#include "sim/world.hpp"

namespace {

using namespace wrsn;

using Clock = std::chrono::steady_clock;

// Constant sensor density (the paper's Table II instance is 500 sensors on a
// 200 m field); targets and RVs scale with n so per-event work, not idle
// time, dominates. Small batteries and a high listen duty cycle compress the
// full request/recharge/death/revival lifecycle into a few simulated hours.
SimConfig bench_config(std::size_t n) {
  SimConfig cfg;
  cfg.num_sensors = n;
  cfg.num_targets = std::max<std::size_t>(4, n / 100);
  cfg.num_rvs = 2;
  cfg.field_side = meters(200.0 * std::sqrt(static_cast<double>(n) / 500.0));
  cfg.sim_duration = hours(1.8);
  cfg.seed = 0xbe7c0000ULL + n;
  cfg.target_motion = TargetMotion::kRandomWaypoint;
  cfg.target_period = minutes(1.0);
  cfg.target_speed = MeterPerSecond{1.0};
  cfg.activation = ActivationPolicy::kRoundRobin;
  cfg.activation_slot = Second{30.0};
  cfg.battery.capacity = Joule{200.0};
  cfg.radio.listen_duty_cycle = 0.3;
  cfg.rv.speed = MeterPerSecond{5.0};
  cfg.rv.charge_power = watts(10.0);
  return cfg;
}

struct RunOutcome {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::string report_json;
  std::vector<double> battery_levels;
};

// Old-vs-new covers both axes at once: the baseline pairs the reference
// engine with the heap queue, the optimized run the incremental engine with
// the calendar queue (both overridable from the command line for probing).
// The bit-identical cross-check then certifies both the engine counters and
// the queue's pop order.
std::string g_ref_queue = "heap";
std::string g_inc_queue = "calendar";
bool g_no_ref = false;
std::size_t g_threads = 1;

RunOutcome run_once(const SimConfig& cfg_in, WorldEngine engine) {
  SimConfig cfg = cfg_in;
  cfg.event_queue =
      engine == WorldEngine::kReference ? g_ref_queue : g_inc_queue;
  cfg.threads = g_threads;
  World w(cfg, engine);  // construction (clustering, seeding) is not timed
  const auto t0 = Clock::now();
  w.run_until(cfg.sim_duration);
  const auto t1 = Clock::now();
  RunOutcome out;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.events = w.events_processed();
  out.report_json = to_json(w.report());
  out.battery_levels.reserve(w.network().num_sensors());
  for (const Sensor& s : w.network().sensors()) {
    out.battery_levels.push_back(s.battery.level().value());
  }
  return out;
}

RunOutcome run_best(const SimConfig& cfg, WorldEngine engine, int reps) {
  RunOutcome best = run_once(cfg, engine);
  for (int r = 1; r < reps; ++r) {
    RunOutcome next = run_once(cfg, engine);
    if (next.wall_s < best.wall_s) best = std::move(next);
  }
  return best;
}

struct Row {
  std::size_t n = 0;
  std::uint64_t events = 0;
  double ref_wall_s = 0.0;
  double inc_wall_s = 0.0;
};

// One incremental-engine run of the thread sweep.
struct ScalingRow {
  std::size_t n = 0;
  std::size_t threads = 0;
  std::uint64_t events = 0;
  double inc_wall_s = 0.0;
};

// Re-runs the incremental engine at each thread count, cross-checking every
// run bit-for-bit against the first entry's outcome (report JSON, event
// count, final battery vector) — the determinism claim, enforced at bench
// scale.
bool run_thread_sweep(std::size_t n, const std::vector<std::size_t>& counts,
                      std::vector<ScalingRow>& rows) {
  const SimConfig cfg = bench_config(n);
  const int reps = n >= 100000 ? 1 : 2;
  const std::size_t saved_threads = g_threads;
  RunOutcome baseline;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    g_threads = counts[k];
    RunOutcome out = run_best(cfg, WorldEngine::kIncremental, reps);
    const double eps = static_cast<double>(out.events) / out.wall_s;
    std::cerr << "  n=" << n << " threads=" << counts[k] << ": "
              << static_cast<std::uint64_t>(eps) << " events/s\n";
    if (k == 0) {
      baseline = out;
    } else if (out.report_json != baseline.report_json ||
               out.events != baseline.events ||
               out.battery_levels != baseline.battery_levels) {
      std::cerr << "bench_world_hotpath: thread-count divergence at n=" << n
                << " threads=" << counts[k] << " vs " << counts[0] << '\n';
      g_threads = saved_threads;
      return false;
    }
    rows.push_back({n, counts[k], out.events, out.wall_s});
  }
  g_threads = saved_threads;
  return true;
}

bool run_size(std::size_t n, std::vector<Row>& rows) {
  const SimConfig cfg = bench_config(n);
  const int reps = n >= 100000 ? 1 : 2;
  const RunOutcome inc = run_best(cfg, WorldEngine::kIncremental, reps);
  const double inc_eps = static_cast<double>(inc.events) / inc.wall_s;
  if (g_no_ref) {
    rows.push_back({n, inc.events, 0.0, inc.wall_s});
    std::cerr << "  n=" << n << ": " << inc.events << " events, inc("
              << g_inc_queue << ") " << static_cast<std::uint64_t>(inc_eps)
              << " events/s\n";
    return true;
  }
  const RunOutcome ref = run_best(cfg, WorldEngine::kReference, reps);

  if (inc.report_json != ref.report_json || inc.events != ref.events ||
      inc.battery_levels != ref.battery_levels) {
    std::cerr << "bench_world_hotpath: engine divergence at n=" << n
              << " (events " << inc.events << " vs " << ref.events << ")\n";
    return false;
  }

  rows.push_back({n, inc.events, ref.wall_s, inc.wall_s});
  const double ref_eps = static_cast<double>(ref.events) / ref.wall_s;
  std::cerr << "  n=" << n << ": " << inc.events << " events, "
            << static_cast<std::uint64_t>(ref_eps) << " -> "
            << static_cast<std::uint64_t>(inc_eps) << " events/s ("
            << ref.wall_s / inc.wall_s << "x)\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_world.json";
  std::vector<std::size_t> size_override;
  std::vector<std::size_t> thread_sweep;
  const auto queue_ok = [](const std::string& q) {
    return q == "heap" || q == "calendar";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--sizes" && i + 1 < argc) {
      std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        size_override.push_back(std::stoull(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (a == "--ref-queue" && i + 1 < argc && queue_ok(argv[i + 1])) {
      g_ref_queue = argv[++i];
    } else if (a == "--inc-queue" && i + 1 < argc && queue_ok(argv[i + 1])) {
      g_inc_queue = argv[++i];
    } else if (a == "--no-ref") {
      g_no_ref = true;
    } else if (a == "--threads" && i + 1 < argc) {
      g_threads = std::stoull(argv[++i]);
      if (g_threads == 0) g_threads = 1;
    } else if (a == "--threads-sweep" && i + 1 < argc) {
      std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        thread_sweep.push_back(
            std::max<std::size_t>(std::stoull(list.substr(pos, comma - pos)), 1));
        pos = comma + 1;
      }
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: bench_world_hotpath [--quick] [--out FILE] "
                   "[--sizes N,N,...] [--ref-queue IMPL] [--inc-queue IMPL] "
                   "[--no-ref] [--threads N] [--threads-sweep T,T,...]\n";
      return 0;
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {500, 2000, 10000, 100000};
  if (quick) sizes = {500, 2000};
  if (!size_override.empty()) sizes = size_override;

  std::vector<Row> rows;
  for (const std::size_t n : sizes) {
    std::cerr << "n=" << n << '\n';
    if (!run_size(n, rows)) return 1;
  }

  std::vector<ScalingRow> scaling;
  if (!thread_sweep.empty()) {
    for (const std::size_t n : sizes) {
      std::cerr << "thread sweep, n=" << n << '\n';
      if (!run_thread_sweep(n, thread_sweep, scaling)) return 1;
    }
  }

  if (g_no_ref) return 0;  // probe mode: stderr only, no JSON report

  JsonWriter w;
  w.begin_object()
      .field("schema", "wrsn.bench_world.v1")
      .field("quick", quick)
      .field("threads", static_cast<std::uint64_t>(g_threads))
      .field("cores",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .key("results")
      .begin_array();
  for (const Row& r : rows) {
    const double ref_eps = static_cast<double>(r.events) / r.ref_wall_s;
    const double inc_eps = static_cast<double>(r.events) / r.inc_wall_s;
    w.begin_object()
        .field("n", static_cast<std::uint64_t>(r.n))
        .field("events", r.events)
        .field("ref_queue", g_ref_queue)
        .field("inc_queue", g_inc_queue)
        .field("ref_wall_s", r.ref_wall_s)
        .field("inc_wall_s", r.inc_wall_s)
        .field("ref_events_per_sec", ref_eps)
        .field("inc_events_per_sec", inc_eps)
        .field("speedup", r.ref_wall_s / r.inc_wall_s)
        .end_object();
  }
  w.end_array();
  if (!scaling.empty()) {
    // Speedups are relative to the sweep's FIRST thread count (run it with
    // a leading 1 to get classic parallel efficiency).
    w.key("thread_scaling").begin_array();
    for (const ScalingRow& r : scaling) {
      double base_wall = r.inc_wall_s;
      for (const ScalingRow& b : scaling) {
        if (b.n == r.n && b.threads == thread_sweep.front()) {
          base_wall = b.inc_wall_s;
          break;
        }
      }
      w.begin_object()
          .field("n", static_cast<std::uint64_t>(r.n))
          .field("threads", static_cast<std::uint64_t>(r.threads))
          .field("events", r.events)
          .field("inc_wall_s", r.inc_wall_s)
          .field("inc_events_per_sec",
                 static_cast<double>(r.events) / r.inc_wall_s)
          .field("speedup_vs_base", base_wall / r.inc_wall_s)
          .end_object();
    }
    w.end_array();
  }
  w.end_object();

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "cannot open '" << out_path << "'\n";
    return 1;
  }
  out << w.str() << '\n';
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
