// Ablation: the recharge-time model (ref. [15]).
//
// The schedulers implicitly assume dwell ~ demand (constant-power transfer).
// Ni-MH acceptance actually tapers near full charge; this bench quantifies
// how much the tapered CC-CV profile inflates RV occupation time and what
// that does to latency, nonfunctional sensors and the objective.
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "energy/charge_profile.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Ablation - charge-acceptance profile (ref. [15])",
                      "Section II-A recharge-time model substitution");

  {
    // Closed-form dwell comparison for one sensor battery.
    Table t({"start SoC (%)", "constant-power dwell (min)",
             "tapered CC-CV dwell (min)", "inflation"});
    t.set_precision(2);
    const SimConfig cfg;
    for (double soc : {0.0, 0.25, 0.5, 0.75, 0.9}) {
      Battery b(cfg.battery.capacity, cfg.battery.capacity * soc);
      const ChargeProfile cp{ChargeProfileKind::kConstantPower,
                             cfg.rv.charge_power, 0.8, 0.1};
      const ChargeProfile tp{ChargeProfileKind::kTaperedCcCv,
                             cfg.rv.charge_power, 0.8, 0.1};
      const double tc = cp.time_to_full(b).value() / 60.0;
      const double tt = tp.time_to_full(b).value() / 60.0;
      t.add_row({100.0 * soc, tc, tt, tc > 0 ? tt / tc : 1.0});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  {
    // End-to-end impact at Table II scale.
    Table t({"profile", "scheduler", "latency (min)", "nonfunc (%)",
             "travel (MJ)", "objective (MJ)"});
    t.set_precision(3);
    for (auto profile :
         {ChargeProfileKind::kConstantPower, ChargeProfileKind::kTaperedCcCv}) {
      for (const std::string sched : {"greedy", "combined"}) {
        SimConfig cfg = bench::bench_config();
        cfg.scheduler = sched;
        cfg.rv.charge_profile = profile;
        const MetricsReport r = bench::run_point(cfg);
        t.add_row({to_string(profile), sched,
                   r.avg_request_latency.value() / 60.0, r.nonfunctional_pct,
                   r.rv_travel_energy.value() / 1e6,
                   r.objective_score().value() / 1e6});
      }
    }
    t.print(std::cout);
    std::cout << "\nshape check: the taper inflates dwell (hence latency and\n"
                 "nonfunctional sensors) without changing who wins between the\n"
                 "schedulers — supporting the constant-power simplification the\n"
                 "paper's formulation relies on.\n";
  }
  return 0;
}
