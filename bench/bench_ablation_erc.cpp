// Ablation: the Section III-B closed-form ERC saving
//     E(K) = 2 n_c / max(n_c K, 1) * dist * e_m
// versus the measured per-cluster traveling energy of a simulated single
// cluster, plus a clustering ablation (balanced vs naive imbalance).
#include <iostream>

#include "activity/clustering.hpp"
#include "activity/erp.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "net/deployment.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Ablation - ERC analytic saving & balanced clustering",
                      "Section III-B analysis and Algorithm 1");

  {
    Table t({"K (ERP)", "analytic travel (kJ), n_c=6, dist=80m",
             "relative to K=0"});
    t.set_precision(3);
    const std::size_t nc = 6;
    const Meter dist{80.0};
    const JoulePerMeter em{5.6};
    const double base = travel_energy_without_erc(nc, dist, em).value();
    for (double k : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      const double e = travel_energy_with_erc(nc, k, dist, em).value();
      t.add_row({k, e / 1e3, e / base});
    }
    t.print(std::cout);
    std::cout << "K=1 uses exactly 1/n_c of the unmanaged traveling energy.\n\n";
  }

  {
    // Measured: single-cluster world; count RV travel per delivered joule as
    // ERP varies. The trend must match the analytic curve's direction.
    Table t({"K (ERP)", "measured travel per recharged MJ (km/MJ)"});
    t.set_precision(3);
    for (double k : {0.0, 0.5, 1.0}) {
      SimConfig cfg;
      cfg.num_sensors = 60;
      cfg.num_targets = 1;
      cfg.num_rvs = 1;
      cfg.field_side = meters(120.0);
      cfg.sim_duration = days(bench::sim_days() / 2.0);
      cfg.energy_request_percentage = k;
      const MetricsReport r = bench::run_point(cfg);
      const double km_per_mj =
          r.energy_recharged.value() > 0
              ? (r.rv_travel_distance.value() / 1e3) /
                    (r.energy_recharged.value() / 1e6)
              : 0.0;
      t.add_row({k, km_per_mj});
    }
    t.print(std::cout);
    std::cout << "shape check: travel per delivered joule declines with K.\n\n";
  }

  {
    // Clustering ablation: balanced (Algorithm 1) vs naive first-come
    // assignment, imbalance averaged over random instances.
    Table t({"targets M", "avg imbalance (balanced)", "avg imbalance (naive)"});
    t.set_precision(2);
    Xoshiro256 rng(4096);
    for (std::size_t m : {5u, 10u, 15u, 25u}) {
      double bal = 0.0, nai = 0.0;
      const int trials = 30;
      for (int i = 0; i < trials; ++i) {
        const auto sensors = deploy_uniform(500, 200.0, rng);
        const auto targets = deploy_uniform(m, 200.0, rng);
        bal += static_cast<double>(
            balanced_clustering(sensors, targets, 8.0).imbalance());
        nai += static_cast<double>(
            naive_clustering(sensors, targets, 8.0).imbalance());
      }
      t.add_row({static_cast<long long>(m), bal / trials, nai / trials});
    }
    t.print(std::cout);
    std::cout << "Algorithm 1 keeps cluster sizes closer to equal than naive\n"
                 "first-come assignment, which is what lets whole clusters\n"
                 "request recharges together.\n";
  }
  return 0;
}
