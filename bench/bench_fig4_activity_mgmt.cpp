// Fig. 4 reproduction: RV traveling energy under the four sensor-activity
// management cases {No ERC, With ERC} x {Full time, Round Robin} for each of
// the three recharge schedulers.
//
// Paper shape: for every scheduler, "No ERC-Full time" consumes the most and
// "With ERC-With RR" the least (the paper reports ~16% saving).
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Fig. 4 - impact of sensor activity management on RV moving cost",
                      "Fig. 4, Section V-A");

  Table t({"scheduler", "case", "traveling energy (MJ)", "coverage (%)"});
  t.set_precision(3);

  struct Case {
    const char* name;
    bool erc;
    ActivationPolicy activation;
  };
  const Case cases[] = {
      {"No ERC - Full time", false, ActivationPolicy::kFullTime},
      {"No ERC - With RR", false, ActivationPolicy::kRoundRobin},
      {"With ERC - Full time", true, ActivationPolicy::kFullTime},
      {"With ERC - With RR", true, ActivationPolicy::kRoundRobin},
  };

  for (const std::string sched : {"greedy", "partition", "combined"}) {
    double worst = 0.0, best = 0.0;
    for (const Case& c : cases) {
      SimConfig cfg = bench::bench_config();
      cfg.scheduler = sched;
      cfg.energy_request_control = c.erc;
      cfg.activation = c.activation;
      const MetricsReport r = bench::run_point(cfg);
      const double mj = r.rv_travel_energy.value() / 1e6;
      if (std::string(c.name) == "No ERC - Full time") worst = mj;
      if (std::string(c.name) == "With ERC - With RR") best = mj;
      t.add_row({sched, std::string(c.name), mj,
                 100.0 * r.coverage_ratio});
    }
    std::cout << sched << ": activity management saves "
              << (worst > 0 ? 100.0 * (worst - best) / worst : 0.0)
              << "% traveling energy (paper: ~16%)\n";
  }
  std::cout << '\n';
  t.print(std::cout);
  return 0;
}
