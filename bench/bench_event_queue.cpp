// bench_event_queue — push/pop throughput of the two EventQueue backends.
//
// Drives the binary-heap and calendar-queue implementations through the
// classic hold model (steady state: every pop is followed by a push some
// random hold time in the future) across distributions chosen to stress
// different queue behaviours:
//
//   uniform   holds ~ U(0, 2*mean): the calendar queue's best case — events
//             spread evenly over the year, pops scan O(1) buckets.
//   bursty    equal-time batches: each pop pushes a whole batch at one
//             instant, stressing the (time, seq) FIFO tie-break and bucket
//             chains much deeper than the bucket count.
//   bimodal   90% short / 10% long holds: a skewed day population where most
//             buckets are empty ahead of the cursor.
//
//   bench_event_queue [--quick] [--out FILE]
//
//   --quick   smaller queue sizes and fewer ops (the ctest smoke target)
//   --out     output path (default BENCH_event_queue.json in the cwd)
//
// Both backends consume the identical schedule (same RNG seed) and fold the
// popped (time, kind, subject) stream into a checksum; a checksum mismatch
// is a pop-order divergence and fails the run. Timing is whole-phase wall
// clock over `ops` hold steps after warm-up; figure of merit is ns/op where
// one op = one pop + one push.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/rng.hpp"
#include "sim/events.hpp"

namespace {

using namespace wrsn;

using Clock = std::chrono::steady_clock;

enum class Dist { kUniform, kBursty, kBimodal };

const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kBursty: return "bursty";
    case Dist::kBimodal: return "bimodal";
  }
  return "?";
}

// One hold step's worth of pushes after a pop at `now`. The burst batch size
// matches what TrafficModel floods produce in the simulator: many crossings
// re-predicted to one instant.
constexpr std::size_t kBurstBatch = 8;

struct HoldResult {
  double ns_per_op = 0.0;
  double checksum = 0.0;
};

HoldResult run_hold(EventQueueImpl impl, Dist dist, std::size_t size,
                    std::size_t ops, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  EventQueue q(impl);
  const double mean_hold = 30.0;  // seconds; matches the sim's event spacing
  // Pre-fill to steady-state occupancy.
  for (std::size_t i = 0; i < size; ++i) {
    q.push(rng.uniform(0.0, 2.0 * mean_hold), EventKind::kSensorCrossing,
           i % 1024, 0);
  }
  auto hold = [&](double now) {
    switch (dist) {
      case Dist::kUniform:
        return now + rng.uniform(0.0, 2.0 * mean_hold);
      case Dist::kBursty:
        // Batch instant: quantized so whole batches collide exactly.
        return now + std::ceil(rng.uniform(0.0, 4.0) ) * mean_hold;
      case Dist::kBimodal:
        return now + (rng.uniform(0.0, 1.0) < 0.9
                          ? rng.uniform(0.0, 0.2 * mean_hold)
                          : rng.uniform(0.0, 20.0 * mean_hold));
    }
    return now;
  };

  double checksum = 0.0;
  std::size_t done = 0;
  const auto t0 = Clock::now();
  while (done < ops) {
    const Event ev = q.pop();
    checksum += ev.time + static_cast<double>(ev.subject) +
                static_cast<double>(ev.seq % 9973);
    if (dist == Dist::kBursty) {
      // Refill in bursts: one pop in kBurstBatch triggers a whole equal-time
      // batch, the rest push nothing, keeping occupancy at `size` on average.
      if (ev.seq % kBurstBatch == 0) {
        const double when = hold(ev.time);
        for (std::size_t b = 0; b < kBurstBatch; ++b) {
          q.push(when, EventKind::kSensorCrossing, b, 0);
        }
      }
    } else {
      q.push(hold(ev.time), EventKind::kSensorCrossing, ev.subject, 0);
    }
    ++done;
  }
  const auto t1 = Clock::now();

  HoldResult r;
  r.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(ops);
  r.checksum = checksum;
  return r;
}

struct Row {
  Dist dist;
  std::size_t size = 0;
  double heap_ns = 0.0;
  double cal_ns = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_event_queue.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: bench_event_queue [--quick] [--out FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {1000, 100000};
  std::size_t ops = 2000000;
  if (quick) {
    sizes = {1000};
    ops = 200000;
  }

  std::vector<Row> rows;
  for (const Dist dist : {Dist::kUniform, Dist::kBursty, Dist::kBimodal}) {
    for (const std::size_t size : sizes) {
      const std::uint64_t seed = 0xe0e90000ULL ^ (size * 2654435761ULL);
      const HoldResult heap =
          run_hold(EventQueueImpl::kHeap, dist, size, ops, seed);
      const HoldResult cal =
          run_hold(EventQueueImpl::kCalendar, dist, size, ops, seed);
      if (heap.checksum != cal.checksum) {
        std::cerr << "bench_event_queue: pop-order divergence (" << dist_name(dist)
                  << ", size=" << size << "): checksum " << heap.checksum
                  << " vs " << cal.checksum << '\n';
        return 1;
      }
      rows.push_back({dist, size, heap.ns_per_op, cal.ns_per_op});
      std::cerr << "  " << dist_name(dist) << " size=" << size << ": "
                << heap.ns_per_op << " -> " << cal.ns_per_op << " ns/op ("
                << heap.ns_per_op / cal.ns_per_op << "x)\n";
    }
  }

  JsonWriter w;
  w.begin_object()
      .field("schema", "wrsn.bench_event_queue.v1")
      .field("quick", quick)
      .field("ops", static_cast<std::uint64_t>(ops))
      .key("results")
      .begin_array();
  for (const Row& r : rows) {
    w.begin_object()
        .field("dist", dist_name(r.dist))
        .field("queue_size", static_cast<std::uint64_t>(r.size))
        .field("heap_ns_per_op", r.heap_ns)
        .field("calendar_ns_per_op", r.cal_ns)
        .field("speedup", r.heap_ns / r.cal_ns)
        .end_object();
  }
  w.end_array().end_object();

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "cannot open '" << out_path << "'\n";
    return 1;
  }
  out << w.str() << '\n';
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
