// Fig. 7 reproduction: recharge profit evaluation.
//   7(a) total energy recharged vs ERP - declines with ERP; Combined highest
//   7(b) objective score (expression (2): recharged minus traveling energy)
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Fig. 7 - evaluation of recharge profit",
                      "Fig. 7(a)-(b), Section V-D, expression (2)");

  Table t({"scheme", "ERP", "energy recharged (MJ)", "travel (MJ)",
           "objective score (MJ)"});
  t.set_precision(3);

  double rech[3] = {0, 0, 0}, obj[3] = {0, 0, 0};
  int n = 0, idx = 0;
  for (const std::string sched : {"greedy", "partition", "combined"}) {
    n = 0;
    for (double erp : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      SimConfig cfg = bench::bench_config();
      cfg.scheduler = sched;
      cfg.energy_request_percentage = erp;
      const MetricsReport r = bench::run_point(cfg);
      t.add_row({sched, erp, r.energy_recharged.value() / 1e6,
                 r.rv_travel_energy.value() / 1e6,
                 r.objective_score().value() / 1e6});
      rech[idx] += r.energy_recharged.value() / 1e6;
      obj[idx] += r.objective_score().value() / 1e6;
      ++n;
    }
    ++idx;
  }
  t.print(std::cout);

  const char* names[] = {"greedy", "partition", "combined"};
  std::cout << "\nERP-averaged:\n";
  for (int i = 0; i < 3; ++i) {
    std::cout << "  " << names[i] << ": recharged " << rech[i] / n
              << " MJ, objective " << obj[i] / n << " MJ\n";
  }
  std::cout << "\nshape check: energy recharged declines as ERP grows (fewer,\n"
               "later requests); the Combined-Scheme recharges the most (paper\n"
               "Fig. 7a) because its global view lets RVs pick up every\n"
               "profitable node.\n";
  return 0;
}
