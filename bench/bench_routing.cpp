// bench_routing — forest build and reroute cost of every registered routing
// policy.
//
// For each policy x network size, times two hot paths:
//
//   build    RoutingPolicy::build() over a fresh RouteTable — what every
//            topology change (death / revival) pays to rebuild the forest.
//   reroute  TrafficModel::reroute() against the built table with one source
//            per ten nodes — the path re-capture and rate re-application
//            that follows every rebuild.
//
// Deployment density is held constant across sizes (the field grows with
// sqrt(n)), so per-node neighbourhood work stays comparable and the scaling
// column isolates the policy's own complexity.
//
//   bench_routing [--quick] [--out FILE]
//
//   --quick   smallest size and fewer repetitions (the ctest smoke target)
//   --out     output path (default BENCH_routing.json in the cwd)
//
// Every timed build feeds a reachable-count / total-distance checksum; a
// policy whose repetitions disagree fails the run (nondeterminism would
// break snapshot restore, not just this benchmark).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "net/graph.hpp"
#include "net/routing.hpp"
#include "net/traffic.hpp"

namespace {

using namespace wrsn;

using Clock = std::chrono::steady_clock;

struct Instance {
  CommGraph graph;
  std::vector<Vec2> positions;  // BS last
  std::vector<bool> usable;
};

// ~1 node / 100 m^2 at 14 m range: ~6 neighbours per node at any size.
Instance make_instance(std::size_t n, std::uint64_t seed) {
  const double side = std::sqrt(static_cast<double>(n) * 100.0);
  const Vec2 bs{side / 2.0, side / 2.0};
  Xoshiro256 rng(seed);
  Instance inst;
  std::vector<Vec2> sensors = deploy_uniform(n, side, rng);
  inst.graph = CommGraph(sensors, bs, 14.0);
  inst.positions = std::move(sensors);
  inst.positions.push_back(bs);
  inst.usable.assign(n, true);
  // A sprinkling of dead nodes keeps the usable-mask branch hot.
  for (std::size_t i = 0; i < n; i += 17) inst.usable[i] = false;
  return inst;
}

double table_checksum(const RouteTable& table) {
  double sum = 0.0;
  for (std::size_t v = 0; v < table.num_nodes(); ++v) {
    if (!table.reachable(v)) continue;
    sum += 1.0 + table.distance_to_base(v);
  }
  return sum;
}

struct Timing {
  double build_ms = 0.0;
  double reroute_ms = 0.0;
  double checksum = 0.0;
  std::size_t sources = 0;
};

Timing run_policy(const std::string& name, const Instance& inst,
                  std::size_t reps) {
  const auto policy = RoutingRegistry::instance().create(name);
  const RoutingBuildInput in{&inst.graph, &inst.positions, &inst.usable};
  const std::size_t n = inst.usable.size();

  Timing t;
  RouteTable table;
  policy->build(in, table);  // warm-up, and the table reroute() runs against
  t.checksum = table_checksum(table);

  const auto b0 = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    RouteTable rebuilt;
    policy->build(in, rebuilt);
    if (table_checksum(rebuilt) != t.checksum) {
      std::cerr << "bench_routing: nondeterministic build for '" << name
                << "'\n";
      std::exit(1);
    }
  }
  const auto b1 = Clock::now();
  t.build_ms = std::chrono::duration<double, std::milli>(b1 - b0).count() /
               static_cast<double>(reps);

  TrafficModel traffic(n);
  for (std::size_t s = 1; s < n; s += 10) {
    traffic.add_source(table, s, 0.2);
    ++t.sources;
  }
  const auto r0 = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) traffic.reroute(table);
  const auto r1 = Clock::now();
  t.reroute_ms = std::chrono::duration<double, std::milli>(r1 - r0).count() /
                 static_cast<double>(reps);
  return t;
}

struct Row {
  std::string policy;
  std::size_t n = 0;
  Timing timing;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_routing.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: bench_routing [--quick] [--out FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {1000, 10000, 100000};
  std::size_t reps = 5;
  if (quick) {
    sizes = {1000};
    reps = 2;
  }

  std::vector<Row> rows;
  for (const std::size_t n : sizes) {
    const Instance inst = make_instance(n, 0x90071u ^ n);
    for (const std::string& name : routing_names()) {
      Row row{name, n, run_policy(name, inst, reps)};
      std::cerr << "  " << name << " n=" << n << ": build "
                << row.timing.build_ms << " ms, reroute "
                << row.timing.reroute_ms << " ms (" << row.timing.sources
                << " sources)\n";
      rows.push_back(std::move(row));
    }
  }

  JsonWriter w;
  w.begin_object()
      .field("schema", "wrsn.bench_routing.v1")
      .field("quick", quick)
      .field("reps", static_cast<std::uint64_t>(reps))
      .key("results")
      .begin_array();
  for (const Row& r : rows) {
    w.begin_object()
        .field("policy", r.policy)
        .field("num_sensors", static_cast<std::uint64_t>(r.n))
        .field("build_ms", r.timing.build_ms)
        .field("reroute_ms", r.timing.reroute_ms)
        .field("sources", static_cast<std::uint64_t>(r.timing.sources))
        .field("checksum", r.timing.checksum)
        .end_object();
  }
  w.end_array().end_object();

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "cannot open '" << out_path << "'\n";
    return 1;
  }
  out << w.str() << '\n';
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
