// google-benchmark microbenchmarks for the scheduling algorithms, matching
// the complexity analysis of Section IV-E: greedy O(n^2) over a whole list,
// insertion O(n)..O(n^3) per sequence, K-means O(nmk), balanced clustering
// O(MN + |A| M log M), plus the DES end-to-end throughput.
#include <benchmark/benchmark.h>

#include "activity/clustering.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "sched/kmeans.hpp"
#include "sched/planner.hpp"
#include "sched/tsp.hpp"
#include "sim/world.hpp"

namespace {

using namespace wrsn;

std::vector<RechargeItem> random_items(std::size_t n, Xoshiro256& rng) {
  std::vector<RechargeItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RechargeItem it;
    it.pos = {rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
    it.demand = Joule{rng.uniform(500.0, 3500.0)};
    it.sensors = {i};
    items.push_back(std::move(it));
  }
  return items;
}

void BM_GreedyNext(benchmark::State& state) {
  Xoshiro256 rng(1);
  const auto items = random_items(static_cast<std::size_t>(state.range(0)), rng);
  const std::vector<bool> taken(items.size(), false);
  const RvPlanState rv{{100, 100}, Joule{1e9}};
  const PlannerParams params{JoulePerMeter{5.6}, Vec2{100, 100}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_next(rv, items, taken, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyNext)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_InsertionSequence(benchmark::State& state) {
  Xoshiro256 rng(2);
  const auto items = random_items(static_cast<std::size_t>(state.range(0)), rng);
  const RvPlanState rv{{100, 100}, Joule{50000.0}};
  const PlannerParams params{JoulePerMeter{5.6}, Vec2{100, 100}};
  for (auto _ : state) {
    std::vector<bool> taken(items.size(), false);
    benchmark::DoNotOptimize(insertion_sequence(rv, items, taken, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InsertionSequence)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_KMeansPartition(benchmark::State& state) {
  Xoshiro256 rng(3);
  const auto items = random_items(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    Xoshiro256 r2(7);
    benchmark::DoNotOptimize(partition_items(items, 3, r2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KMeansPartition)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_BalancedClustering(benchmark::State& state) {
  Xoshiro256 rng(4);
  const auto sensors = deploy_uniform(static_cast<std::size_t>(state.range(0)),
                                      200.0, rng);
  const auto targets = deploy_uniform(15, 200.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balanced_clustering(sensors, targets, 8.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BalancedClustering)->RangeMultiplier(2)->Range(125, 2000)->Complexity();

void BM_NearestNeighborTour(benchmark::State& state) {
  Xoshiro256 rng(5);
  const auto pts = deploy_uniform(static_cast<std::size_t>(state.range(0)), 16.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nearest_neighbor_tour({8, 8}, pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NearestNeighborTour)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_SimulatedDay(benchmark::State& state) {
  // End-to-end DES throughput: one simulated day at Table II scale.
  for (auto _ : state) {
    SimConfig cfg;
    cfg.sim_duration = days(1.0);
    World world(cfg);
    benchmark::DoNotOptimize(world.run());
  }
}
BENCHMARK(BM_SimulatedDay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
