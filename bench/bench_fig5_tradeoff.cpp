// Fig. 5 reproduction: the trade-off between energy efficiency and network
// performance under the greedy scheduler — RV traveling energy declines with
// ERP while the target missing rate rises (jumping above zero once ERP
// exceeds ~0.6 in the paper).
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Fig. 5 - trade-off between energy efficiency and coverage",
                      "Fig. 5, Section V-B (greedy scheduler)");

  Table t({"ERP", "traveling energy (MJ)", "missing rate (%)",
           "coverage (%)", "nonfunctional (%)"});
  t.set_precision(4);

  for (double erp : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    SimConfig cfg = bench::bench_config();
    cfg.scheduler = "greedy";
    cfg.energy_request_percentage = erp;
    const MetricsReport r = bench::run_point(cfg);
    t.add_row({erp, r.rv_travel_energy.value() / 1e6, 100.0 * r.missing_rate,
               100.0 * r.coverage_ratio, r.nonfunctional_pct});
  }
  t.print(std::cout);
  std::cout << "\nshape check: traveling energy should decline with ERP while the\n"
               "missing rate stays near its structural floor at low ERP and rises\n"
               "once ERP passes ~0.4-0.6 (paper: jump above 0.6).\n";
  return 0;
}
