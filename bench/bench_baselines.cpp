// Extended baseline comparison (library extension, not a paper figure):
// the paper's three schedulers against two extra baselines (nearest-first,
// FCFS) and against the 2-opt-polished variant of the Combined-Scheme.
// Quantifies how much of the schemes' advantage comes from profit awareness
// versus plain geometry.
#include <iostream>

#include "bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace wrsn;
  bench::print_header("Baseline ablation - all schedulers at ERP = 0.6",
                      "extension (DESIGN.md section 4, row A-)");

  Table t({"scheduler", "travel (MJ)", "coverage (%)", "nonfunc (%)",
           "recharged (MJ)", "objective (MJ)", "latency (min)"});
  t.set_precision(3);

  auto run_case = [&](const std::string& sched, bool two_opt,
                      const std::string& label) {
    SimConfig cfg = bench::bench_config();
    cfg.scheduler = sched;
    cfg.two_opt_tours = two_opt;
    const MetricsReport r = bench::run_point(cfg);
    t.add_row({label, r.rv_travel_energy.value() / 1e6, 100.0 * r.coverage_ratio,
               r.nonfunctional_pct, r.energy_recharged.value() / 1e6,
               r.objective_score().value() / 1e6,
               r.avg_request_latency.value() / 60.0});
  };

  run_case("greedy", false, "greedy (Alg. 2)");
  run_case("partition", false, "partition (IV-D-1)");
  run_case("combined", false, "combined (IV-D-2)");
  run_case("combined", true, "combined + 2-opt");
  run_case("nearest-first", false, "nearest-first (ext)");
  run_case("fcfs", false, "fcfs (ext)");
  run_case("edf", false, "edf (ext)");

  t.print(std::cout);
  std::cout << "\nnotes: nearest-first ignores demand (pure geometry); fcfs\n"
               "ignores both demand and geometry (pure fairness). The paper's\n"
               "profit-driven schemes should dominate fcfs on travel, and the\n"
               "2-opt polish should not hurt the Combined-Scheme.\n";
  return 0;
}
