#!/usr/bin/env python3
"""Run bench_planner_hotpath and summarize BENCH_planner.json.

Builds nothing itself: point --bin at an already-built bench_planner_hotpath
(default: build/bench/bench_planner_hotpath relative to the repo root). The
binary writes the JSON report; this script renders the old-vs-new table and
can gate on minimum speedups:

    scripts/bench_planner.py                       # full sizes
    scripts/bench_planner.py --quick               # n in {100, 500} only
    scripts/bench_planner.py --check greedy_next:3 --check two_opt:3
                                                   # fail unless >= 3x at the
                                                   # largest measured n

Only the standard library is used.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys


def run(argv: list[str] | None = None) -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bin", default=str(repo / "build" / "bench" / "bench_planner_hotpath"),
                    help="path to the bench_planner_hotpath binary")
    ap.add_argument("--out", default=str(repo / "BENCH_planner.json"),
                    help="where the JSON report is written")
    ap.add_argument("--quick", action="store_true", help="small sizes only")
    ap.add_argument("--check", action="append", default=[], metavar="KERNEL:MIN",
                    help="fail unless KERNEL reaches MIN x speedup at the "
                         "largest n where its reference ran (repeatable)")
    args = ap.parse_args(argv)

    cmd = [args.bin, "--out", args.out]
    if args.quick:
        cmd.append("--quick")
    try:
        subprocess.run(cmd, check=True)
    except FileNotFoundError:
        print(f"bench binary not found: {args.bin} (build with cmake first)",
              file=sys.stderr)
        return 2
    except subprocess.CalledProcessError as err:
        return err.returncode

    with open(args.out, encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != "wrsn.bench_planner.v1":
        print(f"unexpected schema in {args.out}", file=sys.stderr)
        return 2

    rows = report["results"]
    print(f"\n{'kernel':<22} {'n':>6} {'ref ns/op':>14} {'opt ns/op':>14} {'speedup':>9}")
    for r in rows:
        ref = r["ref_ns_per_op"]
        ref_s = f"{ref:14.0f}" if ref is not None else f"{'-':>14}"
        spd = r["speedup"]
        if spd is not None:
            spd_s = f"{spd:8.2f}x"
        elif r.get("ref_timeout"):
            spd_s = f"{'(capped)':>9}"
        else:
            spd_s = f"{'-':>9}"
        print(f"{r['kernel']:<22} {r['n']:>6} {ref_s} {r['opt_ns_per_op']:14.0f} {spd_s}")

    failures = []
    for spec in args.check:
        kernel, _, minimum = spec.partition(":")
        want = float(minimum) if minimum else 1.0
        # Rows whose reference was deliberately capped (ref_timeout) carry no
        # speedup and are excluded from the gate rather than treated as a
        # missing measurement.
        measured = [r for r in rows if r["kernel"] == kernel and r["speedup"] is not None]
        capped = [r for r in rows if r["kernel"] == kernel and r.get("ref_timeout")]
        if not measured:
            if capped:
                print(f"note: {kernel} gate skipped — reference capped at "
                      f"n={max(r['n'] for r in capped)}")
                continue
            failures.append(f"{kernel}: no measured speedup in report")
            continue
        best_n = max(measured, key=lambda r: r["n"])
        if best_n["speedup"] < want:
            failures.append(f"{kernel}: {best_n['speedup']:.2f}x at n={best_n['n']}"
                            f" < required {want:.2f}x")
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    if not failures and args.check:
        print("all speedup checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run())
