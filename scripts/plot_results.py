#!/usr/bin/env python3
"""Plot wrsn_sweep CSV output.

Usage:
    tools/wrsn_sweep --sweep scheduler=greedy,partition,combined \
        --sweep energy_request_percentage=0,0.2,0.4,0.6,0.8,1 \
        --days 120 --seeds 3 --csv fig6.csv
    scripts/plot_results.py fig6.csv --x energy_request_percentage \
        --y travel_mj --series scheduler --out fig6a.png

Produces one line per series value with 95% CI error bars (the *_ci95
columns wrsn_sweep emits), mirroring the panels of the paper's Fig. 5-7.
Requires matplotlib.
"""

import argparse
import csv
import sys
from collections import defaultdict


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_file")
    parser.add_argument("--x", required=True, help="column for the x axis")
    parser.add_argument("--y", required=True, help="metric column to plot")
    parser.add_argument("--series", default=None,
                        help="column whose values become separate lines")
    parser.add_argument("--out", default=None, help="output image (else show)")
    parser.add_argument("--title", default=None)
    args = parser.parse_args()

    with open(args.csv_file, newline="") as fh:
        rows = list(csv.DictReader(fh))
    if not rows:
        print("no data rows in", args.csv_file, file=sys.stderr)
        return 1
    for col in (args.x, args.y):
        if col not in rows[0]:
            print(f"column '{col}' not in CSV; available: {list(rows[0])}",
                  file=sys.stderr)
            return 1

    ci_col = args.y + "_ci95" if args.y + "_ci95" in rows[0] else None
    series = defaultdict(list)
    for row in rows:
        key = row[args.series] if args.series else args.y
        ci = float(row[ci_col]) if ci_col else 0.0
        series[key].append((float(row[args.x]), float(row[args.y]), ci))

    import matplotlib
    if args.out:
        matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(6, 4))
    for name, points in series.items():
        points.sort()
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        cis = [p[2] for p in points]
        ax.errorbar(xs, ys, yerr=cis, marker="o", capsize=3, label=str(name))
    ax.set_xlabel(args.x)
    ax.set_ylabel(args.y)
    if args.title:
        ax.set_title(args.title)
    if args.series:
        ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if args.out:
        fig.savefig(args.out, dpi=150)
        print("wrote", args.out)
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
