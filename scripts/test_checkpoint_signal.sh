#!/usr/bin/env bash
# Kill-and-resume contract test for `wrsn_sim --checkpoint-on-signal`.
#
#   test_checkpoint_signal.sh WRSN_SIM_BINARY WORK_DIR
#
# Launches a run with signal checkpointing and a flight recorder, SIGTERMs
# it mid-flight, and asserts the whole crash-safety contract:
#   1. the interrupted process exits 75 (stopped-but-resumable),
#   2. it leaves a terminal snapshot + fsync'd manifest behind,
#   3. the flight recorder dumped the last events to stderr,
#   4. `--restore` of that snapshot runs to the horizon and produces a
#      report byte-identical to an uninterrupted run.
# The kill lands at a wall-clock offset, so on a fast machine the run may
# finish before the signal arrives; the test retries with a longer horizon
# (more simulated days) until the kill genuinely interrupts.
set -u

SIM=${1:?usage: test_checkpoint_signal.sh WRSN_SIM_BINARY WORK_DIR}
DIR=${2:?usage: test_checkpoint_signal.sh WRSN_SIM_BINARY WORK_DIR}

fail() { echo "test_checkpoint_signal: FAIL: $*" >&2; exit 1; }

rm -rf "$DIR"
mkdir -p "$DIR"
cd "$DIR" || fail "cannot enter $DIR"

# Moderate network, faults on: exercises the full mutable-state surface.
COMMON_ARGS=(--seeds 1 --set num_sensors=40 --set battery.capacity_j=200
             --faults request_loss_prob=0.2,sensor_fault_rate_per_day=2)

days=320
for attempt in 1 2 3 4; do
  rm -f ck.* golden.json resumed.json run.err

  "$SIM" --days "$days" "${COMMON_ARGS[@]}" --json golden.json \
    >/dev/null 2>&1 || fail "golden run failed (days=$days)"

  "$SIM" --days "$days" "${COMMON_ARGS[@]}" --json interrupted.json \
    --checkpoint ck --checkpoint-on-signal --flight-recorder 32 \
    >/dev/null 2>run.err &
  pid=$!
  sleep 0.6
  kill -TERM "$pid" 2>/dev/null
  wait "$pid"
  rc=$?

  if [ "$rc" -eq 0 ]; then
    # Finished before the signal landed — lengthen the run and try again.
    days=$((days * 4))
    continue
  fi
  [ "$rc" -eq 75 ] || fail "interrupted run exited $rc, expected 75"

  snap=$(ls ck.*.snap 2>/dev/null | sort | tail -1)
  [ -n "$snap" ] || fail "no snapshot written"
  [ -s ck.manifest.jsonl ] || fail "no snapshot manifest written"
  grep -q '"terminal":true' ck.manifest.jsonl \
    || fail "manifest has no terminal record"
  grep -q '=== flight recorder dump' run.err \
    || fail "no flight-recorder dump on stderr"

  "$SIM" --restore "$snap" --json resumed.json >/dev/null 2>&1 \
    || fail "restore from $snap failed"
  cmp -s golden.json resumed.json \
    || fail "resumed report differs from uninterrupted golden"

  echo "test_checkpoint_signal: OK (days=$days, resumed from $snap," \
       "report byte-identical)"
  exit 0
done

fail "run kept finishing before the signal after $((attempt)) attempts"
