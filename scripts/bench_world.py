#!/usr/bin/env python3
"""Run bench_world_hotpath and summarize BENCH_world.json.

Builds nothing itself: point --bin at an already-built bench_world_hotpath
(default: build/bench/bench_world_hotpath relative to the repo root). The
binary runs the reference and incremental World engines over identical
scenarios, cross-checks them bit-for-bit, and writes the JSON report; this
script renders the events/sec table and can gate on a minimum speedup:

    scripts/bench_world.py                  # full sizes (500, 2000, 10000)
    scripts/bench_world.py --quick          # n in {500, 2000} only
    scripts/bench_world.py --min-speedup 3  # fail unless >= 3x at largest n
    scripts/bench_world.py --queue-bench    # also run bench_event_queue and
                                            # append its heap-vs-calendar table
    scripts/bench_world.py --threads-sweep 1,2,8
                                            # re-run the incremental engine at
                                            # each thread count (bit-identical
                                            # cross-check) and print/record the
                                            # scaling table
    scripts/bench_world.py --threads-sweep 1,2,8 --min-parallel-speedup 2
                                            # additionally require the largest
                                            # n to reach 2x at the highest
                                            # thread count; auto-skipped (with
                                            # a message) when the machine has
                                            # fewer than 2 CPU cores, where no
                                            # parallel speedup is physically
                                            # possible

Only the standard library is used.
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys


def run(argv: list[str] | None = None) -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bin", default=str(repo / "build" / "bench" / "bench_world_hotpath"),
                    help="path to the bench_world_hotpath binary")
    ap.add_argument("--out", default=str(repo / "BENCH_world.json"),
                    help="where the JSON report is written")
    ap.add_argument("--quick", action="store_true", help="small sizes only")
    ap.add_argument("--sizes", default=None, metavar="N,N,...",
                    help="explicit comma-separated network sizes "
                         "(overrides --quick for the world bench)")
    ap.add_argument("--min-speedup", type=float, default=None, metavar="MIN",
                    help="fail unless the largest measured n reaches MIN x")
    ap.add_argument("--threads", type=int, default=None, metavar="N",
                    help="shard-executor threads for the main ref-vs-inc rows")
    ap.add_argument("--threads-sweep", default=None, metavar="T,T,...",
                    help="also run the incremental engine at each thread count "
                         "and record a thread_scaling section")
    ap.add_argument("--min-parallel-speedup", type=float, default=None,
                    metavar="MIN",
                    help="with --threads-sweep: fail unless the largest n "
                         "reaches MIN x at the highest thread count vs the "
                         "first; skipped on machines with < 2 CPU cores")
    ap.add_argument("--queue-bench", action="store_true",
                    help="also run the bench_event_queue microbench")
    ap.add_argument("--queue-bin",
                    default=str(repo / "build" / "bench" / "bench_event_queue"),
                    help="path to the bench_event_queue binary")
    ap.add_argument("--queue-out", default=str(repo / "BENCH_event_queue.json"),
                    help="where the queue microbench JSON report is written")
    args = ap.parse_args(argv)

    cmd = [args.bin, "--out", args.out]
    if args.sizes:
        cmd.extend(["--sizes", args.sizes])
    elif args.quick:
        cmd.append("--quick")
    if args.threads is not None:
        cmd.extend(["--threads", str(args.threads)])
    if args.threads_sweep:
        cmd.extend(["--threads-sweep", args.threads_sweep])
    try:
        subprocess.run(cmd, check=True)
    except FileNotFoundError:
        print(f"bench binary not found: {args.bin} (build with cmake first)",
              file=sys.stderr)
        return 2
    except subprocess.CalledProcessError as err:
        return err.returncode

    with open(args.out, encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != "wrsn.bench_world.v1":
        print(f"unexpected schema in {args.out}", file=sys.stderr)
        return 2

    rows = report["results"]
    print(f"\n{'n':>6} {'events':>9} {'ref ev/s':>12} {'inc ev/s':>12} {'speedup':>9}")
    for r in rows:
        print(f"{r['n']:>6} {r['events']:>9} {r['ref_events_per_sec']:12.0f} "
              f"{r['inc_events_per_sec']:12.0f} {r['speedup']:8.2f}x")

    if args.queue_bench:
        qcmd = [args.queue_bin, "--out", args.queue_out]
        if args.quick:
            qcmd.append("--quick")
        try:
            subprocess.run(qcmd, check=True)
        except FileNotFoundError:
            print(f"queue bench binary not found: {args.queue_bin}",
                  file=sys.stderr)
            return 2
        except subprocess.CalledProcessError as err:
            return err.returncode
        with open(args.queue_out, encoding="utf-8") as fh:
            qreport = json.load(fh)
        if qreport.get("schema") != "wrsn.bench_event_queue.v1":
            print(f"unexpected schema in {args.queue_out}", file=sys.stderr)
            return 2
        print(f"\n{'dist':<10} {'size':>8} {'heap ns/op':>12} "
              f"{'calendar ns/op':>15} {'speedup':>9}")
        for r in qreport["results"]:
            print(f"{r['dist']:<10} {r['queue_size']:>8} "
                  f"{r['heap_ns_per_op']:12.1f} {r['calendar_ns_per_op']:15.1f} "
                  f"{r['speedup']:8.2f}x")

    scaling = report.get("thread_scaling", [])
    cores = os.cpu_count() or 1
    if scaling and cores < 2:
        # One core timeshares the workers: the numbers are still valid
        # determinism evidence but meaningless as scaling data. Mark every
        # row so downstream consumers of the report don't chart them.
        for r in scaling:
            r["skipped"] = True
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"thread_scaling marked skipped: {cores} CPU core(s)")
    if scaling:
        print(f"\n{'n':>6} {'threads':>8} {'inc ev/s':>12} {'vs base':>9}")
        for r in scaling:
            print(f"{r['n']:>6} {r['threads']:>8} "
                  f"{r['inc_events_per_sec']:12.0f} "
                  f"{r['speedup_vs_base']:8.2f}x"
                  + ("  (skipped)" if r.get("skipped") else ""))

    if args.min_speedup is not None:
        largest = max(rows, key=lambda r: r["n"])
        if largest["speedup"] < args.min_speedup:
            print(f"CHECK FAILED: {largest['speedup']:.2f}x at n={largest['n']}"
                  f" < required {args.min_speedup:.2f}x", file=sys.stderr)
            return 1
        print("speedup check passed")

    if args.min_parallel_speedup is not None:
        if not scaling:
            print("CHECK FAILED: --min-parallel-speedup needs --threads-sweep",
                  file=sys.stderr)
            return 2
        if cores < 2:
            # One core timeshares the workers: the sweep still proves
            # determinism, but no wall-clock speedup is physically possible.
            print(f"parallel speedup check skipped: {cores} CPU core(s)")
            return 0
        top_n = max(r["n"] for r in scaling)
        top = max((r for r in scaling if r["n"] == top_n),
                  key=lambda r: r["threads"])
        if top["speedup_vs_base"] < args.min_parallel_speedup:
            print(f"CHECK FAILED: {top['speedup_vs_base']:.2f}x at "
                  f"n={top['n']} threads={top['threads']} < required "
                  f"{args.min_parallel_speedup:.2f}x", file=sys.stderr)
            return 1
        print("parallel speedup check passed")
    return 0


if __name__ == "__main__":
    sys.exit(run())
