#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "net/graph.hpp"

namespace wrsn {
namespace {

TEST(CommGraph, LineTopology) {
  // Three sensors in a line 10 m apart, comm range 12 m, BS at the end.
  const std::vector<Vec2> pos = {{0, 0}, {10, 0}, {20, 0}};
  CommGraph g(pos, Vec2{30, 0}, 12.0);
  ASSERT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.base_station_index(), 3u);
  // Sensor 0 reaches only sensor 1.
  ASSERT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].length, 10.0);
  // Sensor 1 reaches 0 and 2.
  EXPECT_EQ(g.degree(1), 2u);
  // Sensor 2 reaches 1 and the BS.
  EXPECT_EQ(g.degree(2), 2u);
  // BS reaches sensor 2 only.
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.neighbors(3)[0].to, 2u);
}

TEST(CommGraph, EdgesAreSymmetric) {
  Xoshiro256 rng(2);
  const auto pos = deploy_uniform(200, 100.0, rng);
  CommGraph g(pos, Vec2{50, 50}, 12.0);
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    for (const auto& e : g.neighbors(u)) {
      bool found = false;
      for (const auto& back : g.neighbors(e.to)) {
        if (back.to == u) {
          EXPECT_DOUBLE_EQ(back.length, e.length);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "edge " << u << "->" << e.to << " not symmetric";
    }
  }
}

TEST(CommGraph, MatchesBruteForceAdjacency) {
  Xoshiro256 rng(3);
  const auto pos = deploy_uniform(150, 80.0, rng);
  const Vec2 bs{40, 40};
  const double range = 12.0;
  CommGraph g(pos, bs, range);

  std::vector<Vec2> all = pos;
  all.push_back(bs);
  for (std::size_t u = 0; u < all.size(); ++u) {
    std::vector<std::size_t> want;
    for (std::size_t v = 0; v < all.size(); ++v) {
      if (v != u && distance(all[u], all[v]) <= range) want.push_back(v);
    }
    std::vector<std::size_t> got;
    for (const auto& e : g.neighbors(u)) got.push_back(e.to);
    EXPECT_EQ(got, want) << "node " << u;
  }
}

TEST(CommGraph, NeighborsSortedById) {
  Xoshiro256 rng(4);
  const auto pos = deploy_uniform(100, 50.0, rng);
  CommGraph g(pos, Vec2{25, 25}, 15.0);
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1].to, nbrs[i].to);
    }
  }
}

TEST(CommGraph, EdgeLengthsWithinRange) {
  Xoshiro256 rng(5);
  const auto pos = deploy_uniform(100, 60.0, rng);
  CommGraph g(pos, Vec2{30, 30}, 10.0);
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    for (const auto& e : g.neighbors(u)) {
      EXPECT_LE(e.length, 10.0);
      EXPECT_GT(e.length, 0.0);
    }
  }
}

TEST(CommGraph, EdgeCountConsistent) {
  Xoshiro256 rng(6);
  const auto pos = deploy_uniform(80, 40.0, rng);
  CommGraph g(pos, Vec2{20, 20}, 12.0);
  std::size_t total_degree = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) total_degree += g.degree(u);
  EXPECT_EQ(total_degree, 2 * g.num_edges());
}

TEST(CommGraph, IsolatedNode) {
  const std::vector<Vec2> pos = {{0, 0}, {100, 100}};
  CommGraph g(pos, Vec2{50, 50}, 5.0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 0u);  // BS isolated too
}

TEST(CommGraph, InvalidRange) {
  EXPECT_THROW(CommGraph({{0, 0}}, Vec2{1, 1}, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
