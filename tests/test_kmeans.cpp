#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "sched/kmeans.hpp"

namespace wrsn {
namespace {

TEST(KMeans, EmptyInput) {
  Xoshiro256 rng(1);
  const auto r = kmeans({}, 3, rng);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_TRUE(r.converged);
}

TEST(KMeans, KAtLeastN) {
  Xoshiro256 rng(1);
  const std::vector<Vec2> pts = {{0, 0}, {1, 1}};
  const auto r = kmeans(pts, 5, rng);
  EXPECT_EQ(r.assignment, (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(r.converged);
}

TEST(KMeans, RejectsZeroK) {
  Xoshiro256 rng(1);
  EXPECT_THROW(kmeans({{0, 0}}, 0, rng), InvalidArgument);
}

TEST(KMeans, SeparatesObviousClusters) {
  Xoshiro256 rng(2);
  std::vector<Vec2> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
  for (int i = 0; i < 20; ++i) pts.push_back({rng.uniform(95.0, 100.0), rng.uniform(95.0, 100.0)});
  const auto r = kmeans(pts, 2, rng);
  ASSERT_TRUE(r.converged);
  // All of the first 20 share one label, all of the last 20 the other.
  for (int i = 1; i < 20; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(r.assignment[i], r.assignment[20]);
  EXPECT_NE(r.assignment[0], r.assignment[20]);
}

TEST(KMeans, CentroidsAreClusterMeans) {
  Xoshiro256 rng(3);
  const auto pts = deploy_uniform(100, 50.0, rng);
  const auto r = kmeans(pts, 4, rng);
  std::vector<Vec2> sums(4, Vec2{});
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    sums[r.assignment[i]] += pts[i];
    ++counts[r.assignment[i]];
  }
  for (std::size_t c = 0; c < 4; ++c) {
    if (counts[c] == 0) continue;
    const Vec2 mean = sums[c] / static_cast<double>(counts[c]);
    EXPECT_NEAR(mean.x, r.centroids[c].x, 1e-9);
    EXPECT_NEAR(mean.y, r.centroids[c].y, 1e-9);
  }
}

TEST(KMeans, AssignmentIsNearestCentroid) {
  Xoshiro256 rng(4);
  const auto pts = deploy_uniform(150, 80.0, rng);
  const auto r = kmeans(pts, 3, rng);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double assigned = squared_distance(pts[i], r.centroids[r.assignment[i]]);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_LE(assigned, squared_distance(pts[i], r.centroids[c]) + 1e-9);
    }
  }
}

TEST(KMeans, WcssMatchesHelper) {
  Xoshiro256 rng(5);
  const auto pts = deploy_uniform(60, 40.0, rng);
  const auto r = kmeans(pts, 3, rng);
  EXPECT_NEAR(r.wcss, wcss_of(pts, r.assignment, r.centroids), 1e-9);
}

TEST(KMeans, MoreClustersNeverIncreaseWcss) {
  Xoshiro256 rng(6);
  const auto pts = deploy_uniform(120, 60.0, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 6; ++k) {
    Xoshiro256 r2(6);  // fresh stream per k for determinism
    const auto r = kmeans(pts, k, r2);
    // Lloyd is a local optimizer; allow slight non-monotonicity headroom.
    EXPECT_LE(r.wcss, prev * 1.10 + 1e-9) << "k=" << k;
    prev = std::min(prev, r.wcss);
  }
}

TEST(KMeans, DeterministicGivenSameRngState) {
  Xoshiro256 a(7), b(7);
  const auto pts = deploy_uniform(80, 30.0, a);
  Xoshiro256 c(9), d(9);
  const auto r1 = kmeans(pts, 3, c);
  const auto r2 = kmeans(pts, 3, d);
  EXPECT_EQ(r1.assignment, r2.assignment);
  EXPECT_DOUBLE_EQ(r1.wcss, r2.wcss);
  (void)b;
}

TEST(KMeans, IdenticalPointsHandled) {
  Xoshiro256 rng(8);
  const std::vector<Vec2> pts(10, Vec2{5.0, 5.0});
  const auto r = kmeans(pts, 3, rng);
  EXPECT_EQ(r.assignment.size(), 10u);
  EXPECT_NEAR(r.wcss, 0.0, 1e-12);
}

TEST(KMeans, NoEmptyClustersOnDistinctPoints) {
  Xoshiro256 rng(9);
  const auto pts = deploy_uniform(50, 100.0, rng);
  const auto r = kmeans(pts, 5, rng);
  std::set<std::size_t> used(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(used.size(), 5u);
}

TEST(KMeans, WcssOfValidation) {
  EXPECT_THROW((void)wcss_of({{0, 0}}, {0, 1}, {{0, 0}}), InvalidArgument);
  EXPECT_THROW((void)wcss_of({{0, 0}}, {3}, {{0, 0}}), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
