#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "net/network.hpp"

namespace wrsn {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_sensors = 100;
  cfg.num_targets = 5;
  cfg.field_side = meters(80.0);
  return cfg;
}

Network make_network(const SimConfig& cfg, std::uint64_t seed = 1) {
  RngStreams streams(seed);
  Xoshiro256 deploy = streams.stream("deployment");
  Xoshiro256 targets = streams.stream("target-placement");
  return Network(cfg, deploy, targets);
}

TEST(Network, ConstructionPopulatesEverything) {
  const SimConfig cfg = small_config();
  Network net = make_network(cfg);
  EXPECT_EQ(net.num_sensors(), 100u);
  EXPECT_EQ(net.num_targets(), 5u);
  EXPECT_EQ(net.alive_count(), 100u);
  EXPECT_EQ(net.base_station(), (Vec2{40.0, 40.0}));
  EXPECT_EQ(net.graph().num_nodes(), 101u);
  for (SensorId s = 0; s < net.num_sensors(); ++s) {
    EXPECT_EQ(net.sensor(s).id, s);
    EXPECT_DOUBLE_EQ(net.sensor(s).battery.fraction(), 1.0);
    EXPECT_TRUE(net.sensor(s).alive());
  }
}

TEST(Network, DeterministicDeployment) {
  const SimConfig cfg = small_config();
  Network a = make_network(cfg, 7);
  Network b = make_network(cfg, 7);
  for (SensorId s = 0; s < a.num_sensors(); ++s) {
    EXPECT_EQ(a.sensor(s).pos, b.sensor(s).pos);
  }
  for (TargetId t = 0; t < a.num_targets(); ++t) {
    EXPECT_EQ(a.target(t).pos, b.target(t).pos);
  }
}

TEST(Network, SensorsCoveringMatchesBruteForce) {
  const SimConfig cfg = small_config();
  Network net = make_network(cfg, 3);
  for (TargetId t = 0; t < net.num_targets(); ++t) {
    const Vec2 p = net.target(t).pos;
    const auto got = net.sensors_covering(p);
    std::vector<SensorId> want;
    for (SensorId s = 0; s < net.num_sensors(); ++s) {
      if (distance(net.sensor(s).pos, p) <= cfg.sensing_range.value()) {
        want.push_back(s);
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST(Network, RelocateTargetMovesWithinField) {
  const SimConfig cfg = small_config();
  Network net = make_network(cfg);
  Xoshiro256 rng(5);
  const Vec2 before = net.target(2).pos;
  net.relocate_target(2, rng);
  const Vec2 after = net.target(2).pos;
  EXPECT_NE(before, after);
  EXPECT_GE(after.x, 0.0);
  EXPECT_LT(after.x, cfg.field_side.value());
}

TEST(Network, RoutingRebuildDetectsChanges) {
  const SimConfig cfg = small_config();
  Network net = make_network(cfg);
  // No change -> no rebuild.
  EXPECT_FALSE(net.rebuild_routing());
  // Kill a sensor -> rebuild.
  net.sensor(0).battery.drain(net.sensor(0).battery.level());
  EXPECT_FALSE(net.sensor(0).alive());
  EXPECT_TRUE(net.rebuild_routing());
  EXPECT_FALSE(net.routing().reachable(0));
  EXPECT_EQ(net.alive_count(), 99u);
  // Revive -> rebuild again.
  net.sensor(0).battery.refill();
  EXPECT_TRUE(net.rebuild_routing());
}

TEST(Network, MostSensorsReachBaseAtTableIIDensity) {
  // At Table II density (500 sensors, d_c = 12 m over 200x200 m) the vast
  // majority of nodes must be connected to the BS.
  SimConfig cfg;  // full paper defaults
  Network net = make_network(cfg, 11);
  std::size_t reachable = 0;
  for (SensorId s = 0; s < net.num_sensors(); ++s) {
    if (net.routing().reachable(s)) ++reachable;
  }
  EXPECT_GT(static_cast<double>(reachable) / static_cast<double>(net.num_sensors()),
            0.9);
}

TEST(Network, ConfigIsValidatedOnConstruction) {
  SimConfig cfg = small_config();
  cfg.comm_range = meters(-1.0);
  RngStreams streams(1);
  Xoshiro256 deploy = streams.stream("deployment");
  Xoshiro256 targets = streams.stream("target-placement");
  EXPECT_THROW(Network(cfg, deploy, targets), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
