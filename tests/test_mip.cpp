#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "sched/exact.hpp"
#include "sched/mip.hpp"

namespace wrsn {
namespace {

RechargeItem item_at(Vec2 pos, double demand, SensorId sensor = 0) {
  RechargeItem it;
  it.pos = pos;
  it.demand = Joule{demand};
  it.sensors = {sensor};
  return it;
}

PlannerParams params() { return {JoulePerMeter{5.6}, Vec2{100, 100}}; }

JrssamModel line_model(std::size_t rvs = 1, double capacity = 50000.0) {
  // Nodes at 110, 120, 130 on the y=100 line, base at (100,100).
  const std::vector<RechargeItem> items = {
      item_at({110, 100}, 1000.0, 0),
      item_at({120, 100}, 1000.0, 1),
      item_at({130, 100}, 1000.0, 2),
  };
  return JrssamModel::from_items(items, rvs, Joule{capacity}, params());
}

TEST(Mip, ModelFromItems) {
  const JrssamModel m = line_model(2);
  EXPECT_EQ(m.num_nodes(), 3u);
  EXPECT_EQ(m.num_rvs, 2u);
  EXPECT_DOUBLE_EQ(m.demand[1].value(), 1000.0);
  EXPECT_DOUBLE_EQ(m.edge_cost(0, 1).value(), 5.6 * 10.0);
  EXPECT_DOUBLE_EQ(m.base_cost(0).value(), 5.6 * 10.0);
}

TEST(Mip, ObjectiveClosedTour) {
  const JrssamModel m = line_model(1);
  RouteSolution sol;
  sol.routes = {{0, 1, 2}};
  // demand 3000 - e_m*(10 + 10 + 10 + 30).
  EXPECT_DOUBLE_EQ(objective(m, sol).value(), 3000.0 - 5.6 * 60.0);
}

TEST(Mip, ObjectiveEmptyRoutes) {
  const JrssamModel m = line_model(2);
  RouteSolution sol;
  sol.routes = {{}, {}};
  EXPECT_DOUBLE_EQ(objective(m, sol).value(), 0.0);
}

TEST(Mip, ValidateAcceptsFeasible) {
  const JrssamModel m = line_model(2);
  RouteSolution sol;
  sol.routes = {{0, 1}, {2}};
  EXPECT_TRUE(validate(m, sol).empty());
}

TEST(Mip, ValidateWrongRouteCount) {
  const JrssamModel m = line_model(2);
  RouteSolution sol;
  sol.routes = {{0}};
  const auto violations = validate(m, sol);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].constraint.find("(3)"), std::string::npos);
}

TEST(Mip, ValidateDetectsDoubleService) {
  const JrssamModel m = line_model(2);
  RouteSolution sol;
  sol.routes = {{0, 1}, {1}};
  const auto violations = validate(m, sol);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].constraint.find("(8)"), std::string::npos);
}

TEST(Mip, ValidateDetectsWithinRouteDuplicate) {
  const JrssamModel m = line_model(1);
  RouteSolution sol;
  sol.routes = {{0, 1, 0}};
  bool found = false;
  for (const auto& v : validate(m, sol)) {
    if (v.constraint.find("(4)") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Mip, ValidateDetectsCapacityViolation) {
  const JrssamModel m = line_model(1, /*capacity=*/1500.0);
  RouteSolution sol;
  sol.routes = {{0, 1, 2}};  // 3000 J demand alone exceeds 1500 J
  bool found = false;
  for (const auto& v : validate(m, sol)) {
    if (v.constraint.find("(7)") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Mip, ValidateDetectsUnknownNode) {
  const JrssamModel m = line_model(1);
  RouteSolution sol;
  sol.routes = {{7}};
  const auto violations = validate(m, sol);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].constraint.find("domain"), std::string::npos);
}

TEST(MipExact, EmptyInstance) {
  JrssamModel m;
  m.num_rvs = 2;
  m.rv_capacity = Joule{1000.0};
  m.base = {0, 0};
  const auto result = exact_multi_rv(m);
  EXPECT_DOUBLE_EQ(result.objective.value(), 0.0);
  EXPECT_EQ(result.solution.routes.size(), 2u);
}

TEST(MipExact, SingleRvMatchesExactSingle) {
  // The multi-RV solver with m=1 must agree with the single-RV solver when
  // the latter also charges the return leg against the budget and profit.
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RechargeItem> items;
    const std::size_t n = 2 + rng.uniform_int(4);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(item_at({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                              rng.uniform(500.0, 3000.0), i));
    }
    const JrssamModel model =
        JrssamModel::from_items(items, 1, Joule{15000.0}, params());
    const auto multi = exact_multi_rv(model);
    // Feasibility + objective consistency of the reported optimum.
    EXPECT_TRUE(validate(model, multi.solution).empty()) << "trial " << trial;
    EXPECT_NEAR(objective(model, multi.solution).value(), multi.objective.value(),
                1e-6);
  }
}

TEST(MipExact, TwoRvsBeatOneOnSpreadNodes) {
  // Two far-apart nodes with a tight capacity: one RV cannot serve both, two
  // can, so the two-RV optimum is strictly higher.
  const std::vector<RechargeItem> items = {
      item_at({0, 100}, 3000.0, 0),
      item_at({200, 100}, 3000.0, 1),
  };
  const Joule cap{3000.0 + 5.6 * 2.0 * 100.0 + 10.0};  // one node + round trip
  const auto one = exact_multi_rv(JrssamModel::from_items(items, 1, cap, params()));
  const auto two = exact_multi_rv(JrssamModel::from_items(items, 2, cap, params()));
  EXPECT_GT(two.objective.value(), one.objective.value());
}

TEST(MipExact, HeuristicsNeverBeatExact) {
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RechargeItem> items;
    const std::size_t n = 3 + rng.uniform_int(4);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(item_at({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                              rng.uniform(500.0, 3000.0), i));
    }
    const std::size_t m = 1 + rng.uniform_int(2);
    const Joule cap{12000.0};
    const JrssamModel model = JrssamModel::from_items(items, m, cap, params());
    const auto exact = exact_multi_rv(model);

    // Build a heuristic solution via combined_plan and evaluate it under the
    // MIP objective (which also charges the return legs).
    std::vector<RvPlanState> rvs(m, RvPlanState{params().base, cap});
    const auto plans = combined_plan(rvs, items, params());
    RouteSolution heuristic;
    heuristic.routes = plans;
    EXPECT_TRUE(validate(model, heuristic).empty()) << "trial " << trial;
    EXPECT_GE(exact.objective.value(),
              objective(model, heuristic).value() - 1e-6)
        << "trial " << trial;
  }
}

TEST(MipExact, SizeLimits) {
  std::vector<RechargeItem> items;
  for (std::size_t i = 0; i < 11; ++i) items.push_back(item_at({0, 0}, 1.0, i));
  const JrssamModel model =
      JrssamModel::from_items(items, 1, Joule{100.0}, params());
  EXPECT_THROW((void)exact_multi_rv(model), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
