#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace wrsn {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 1234567 from the published SplitMix64.
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());  // deterministic
  // Distinct consecutive outputs.
  SplitMix64 sm3(42);
  EXPECT_NE(sm3.next(), sm3.next());
}

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, RejectsAllZeroState) {
  std::array<std::uint64_t, 4> zeros{0, 0, 0, 0};
  EXPECT_THROW(Xoshiro256 x(zeros), InvalidArgument);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 15.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 15.0);
  }
  EXPECT_THROW(rng.uniform(3.0, 2.0), InvalidArgument);
}

TEST(Xoshiro, UniformIntBoundsAndCoverage) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit in 1000 draws
  EXPECT_THROW(rng.uniform_int(0), InvalidArgument);
}

TEST(Xoshiro, UniformIntUnbiasedAcrossBuckets) {
  Xoshiro256 rng(19);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Xoshiro, ExponentialMeanAndValidation) {
  Xoshiro256 rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Xoshiro, BernoulliFrequency) {
  Xoshiro256 rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
}

TEST(Xoshiro, LongJumpDecorrelates) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStreams, NamedStreamsAreIndependent) {
  RngStreams streams(12345);
  Xoshiro256 a = streams.stream("deployment");
  Xoshiro256 b = streams.stream("targets");
  EXPECT_NE(a.next(), b.next());
}

TEST(RngStreams, SameNameSameStream) {
  RngStreams streams(12345);
  Xoshiro256 a = streams.stream("deployment");
  Xoshiro256 b = streams.stream("deployment");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngStreams, IndexedStreamsDiffer) {
  RngStreams streams(777);
  Xoshiro256 a = streams.stream("target", 0);
  Xoshiro256 b = streams.stream("target", 1);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngStreams, DifferentMasterSeedsDiffer) {
  RngStreams s1(1), s2(2);
  EXPECT_NE(s1.stream("x").next(), s2.stream("x").next());
}

}  // namespace
}  // namespace wrsn
