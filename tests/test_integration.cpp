// End-to-end integration tests: full simulation replicas at reduced scale,
// checking the cross-module behaviours the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "core/thread_pool.hpp"
#include "sim/runner.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

// ~1/4 of Table II scale, 12 simulated days: requests, recharges, deaths and
// re-clustering all occur, each replica takes a fraction of a second.
SimConfig integration_config() {
  SimConfig cfg;
  cfg.num_sensors = 150;
  cfg.num_targets = 6;
  cfg.num_rvs = 2;
  cfg.field_side = meters(110.0);
  cfg.sim_duration = days(12.0);
  cfg.radio.listen_duty_cycle = 0.12;  // compress the demand cycle
  cfg.seed = 90210;
  return cfg;
}

TEST(Integration, FullReplicaProducesCompleteReport) {
  const auto r = run_replica(integration_config());
  EXPECT_DOUBLE_EQ(r.duration.value(), days(12.0).value());
  EXPECT_GT(r.recharge_requests, 10u);
  EXPECT_GT(r.sensors_recharged, 10u);
  EXPECT_GT(r.energy_recharged.value(), 0.0);
  EXPECT_GT(r.rv_travel_distance.value(), 0.0);
  EXPECT_GT(r.rv_tours, 0u);
  EXPECT_GT(r.packets_delivered, 1000.0);
  EXPECT_GT(r.coverage_ratio, 0.8);
  EXPECT_LT(r.nonfunctional_pct, 50.0);
  EXPECT_GT(r.avg_request_latency.value(), 0.0);
}

TEST(Integration, ErcReducesTravelVersusNoErc) {
  SimConfig with = integration_config();
  with.energy_request_control = true;
  with.energy_request_percentage = 0.8;
  SimConfig without = integration_config();
  without.energy_request_control = false;
  const auto rw = run_mean(with, 3);
  const auto ro = run_mean(without, 3);
  EXPECT_LT(rw.rv_travel_energy.value(), ro.rv_travel_energy.value());
}

TEST(Integration, RoundRobinReducesClusterConsumption) {
  SimConfig rr = integration_config();
  rr.activation = ActivationPolicy::kRoundRobin;
  SimConfig ft = integration_config();
  ft.activation = ActivationPolicy::kFullTime;
  const auto rrr = run_mean(rr, 3);
  const auto rft = run_mean(ft, 3);
  // Full-time activation consumes more, so more energy must be recharged.
  EXPECT_LT(rrr.energy_recharged.value(), rft.energy_recharged.value());
}

TEST(Integration, HigherErpLowersTravelAndRaisesRisk) {
  SimConfig lo = integration_config();
  lo.energy_request_percentage = 0.0;
  SimConfig hi = integration_config();
  hi.energy_request_percentage = 1.0;
  const auto rlo = run_mean(lo, 3);
  const auto rhi = run_mean(hi, 3);
  EXPECT_LT(rhi.rv_travel_energy.value(), rlo.rv_travel_energy.value());
  EXPECT_GE(rhi.nonfunctional_pct, rlo.nonfunctional_pct);
}

TEST(Integration, AllSchedulersKeepNetworkAlive) {
  for (const std::string sched : {"greedy", "partition", "combined"}) {
    SimConfig cfg = integration_config();
    cfg.scheduler = sched;
    const auto r = run_replica(cfg);
    EXPECT_GT(r.coverage_ratio, 0.8) << sched;
    EXPECT_LT(r.nonfunctional_pct, 40.0) << sched;
    EXPECT_GT(r.sensors_recharged, 0u) << sched;
  }
}

TEST(Integration, MoreRvsReduceBacklogEffects) {
  SimConfig one = integration_config();
  one.num_rvs = 1;
  SimConfig three = integration_config();
  three.num_rvs = 3;
  const auto r1 = run_mean(one, 3);
  const auto r3 = run_mean(three, 3);
  // More vehicles -> requests served sooner.
  EXPECT_LT(r3.avg_request_latency.value(), r1.avg_request_latency.value());
  EXPECT_LE(r3.nonfunctional_pct, r1.nonfunctional_pct + 1.0);
}

TEST(Integration, RunReplicasSeedsDiffer) {
  const auto reports = run_replicas(integration_config(), 3);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_NE(reports[0].packets_delivered, reports[1].packets_delivered);
  EXPECT_NE(reports[1].packets_delivered, reports[2].packets_delivered);
}

TEST(Integration, ParallelAndSerialRunnersAgree) {
  ThreadPool pool(2);
  SimConfig cfg = integration_config();
  cfg.sim_duration = days(4.0);
  const auto serial = run_replicas(cfg, 3, nullptr);
  const auto parallel = run_replicas(cfg, 3, &pool);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(serial[i].rv_travel_energy.value(),
                     parallel[i].rv_travel_energy.value());
    EXPECT_DOUBLE_EQ(serial[i].coverage_ratio, parallel[i].coverage_ratio);
  }
}

TEST(Integration, MeanReportAveragesFields) {
  std::vector<MetricsReport> reports(2);
  reports[0].rv_travel_energy = Joule{100.0};
  reports[1].rv_travel_energy = Joule{300.0};
  reports[0].coverage_ratio = 0.9;
  reports[1].coverage_ratio = 1.0;
  reports[0].sensors_recharged = 10;
  reports[1].sensors_recharged = 20;
  const auto mean = mean_report(reports);
  EXPECT_DOUBLE_EQ(mean.rv_travel_energy.value(), 200.0);
  EXPECT_DOUBLE_EQ(mean.coverage_ratio, 0.95);
  EXPECT_EQ(mean.sensors_recharged, 15u);
  EXPECT_THROW((void)mean_report({}), InvalidArgument);
}

TEST(Integration, DeadSensorsGetRevivedByRvs) {
  SimConfig cfg = integration_config();
  cfg.energy_request_percentage = 1.0;  // provoke deaths
  cfg.sim_duration = days(15.0);
  const auto r = run_replica(cfg);
  EXPECT_GT(r.sensor_deaths, 0u);
  // Deaths happened but the network did not stay dead: final nonfunctional
  // fraction is bounded because RVs revive depleted nodes.
  EXPECT_LT(r.nonfunctional_pct, 60.0);
}

}  // namespace
}  // namespace wrsn
