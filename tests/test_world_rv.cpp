// Focused tests of RV behaviour inside the World: reserve discipline,
// self-recharge cycles, claimed-set consistency, partial delivery and
// return-to-base logic.
#include <gtest/gtest.h>

#include <set>

#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig rv_config() {
  SimConfig cfg;
  cfg.num_sensors = 120;
  cfg.num_targets = 5;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = days(6.0);
  cfg.radio.listen_duty_cycle = 0.25;  // brisk demand
  cfg.seed = 808;
  return cfg;
}

TEST(WorldRv, ReserveNeverViolatedOverTime) {
  SimConfig cfg = rv_config();
  World w(cfg);
  // The reserve is a planning margin: RVs may dip slightly into it on
  // demand drift, but must never approach empty.
  const double hard_floor = 0.0;
  for (double t = 0.25; t <= 6.0; t += 0.25) {
    w.run_until(days(t));
    for (const Rv& rv : w.rvs()) {
      EXPECT_GT(rv.battery.level().value(), hard_floor) << "day " << t;
    }
  }
  // And they never stall permanently: work keeps being served.
  EXPECT_GT(w.report().sensors_recharged, 20u);
}

TEST(WorldRv, SelfRechargeCyclesHappen) {
  SimConfig cfg = rv_config();
  // Small RV battery forces many base returns.
  cfg.rv.capacity = kilojoules(15.0);
  World w(cfg);
  const auto r = w.run();
  EXPECT_GT(r.rv_base_recharges, 3u);
  EXPECT_GT(r.rv_base_energy_drawn.value(), 0.0);
  EXPECT_GT(r.rv_tours, r.rv_base_recharges / 2);
}

TEST(WorldRv, SmallerRvBatteryMeansMoreBaseVisits) {
  SimConfig big = rv_config();
  big.rv.capacity = kilojoules(100.0);
  SimConfig small = rv_config();
  small.rv.capacity = kilojoules(12.0);
  const auto rb = World(big).run();
  const auto rs = World(small).run();
  EXPECT_GT(rs.rv_base_recharges, rb.rv_base_recharges);
}

TEST(WorldRv, ClaimedSetAlwaysSubsetOfRequests) {
  SimConfig cfg = rv_config();
  World w(cfg);
  for (double t = 0.1; t <= 4.0; t += 0.1) {
    w.run_until(days(t));
    // Every queued service target must have a pending request.
    std::set<SensorId> queued;
    for (const Rv& rv : w.rvs()) {
      for (SensorId s : rv.service_queue) {
        EXPECT_TRUE(queued.insert(s).second)
            << "sensor " << s << " queued on two RVs at day " << t;
        EXPECT_TRUE(w.recharge_list().contains(s))
            << "sensor " << s << " queued without a pending request";
      }
    }
  }
}

TEST(WorldRv, ChargingBringsSensorsToFull) {
  SimConfig cfg = rv_config();
  cfg.sim_duration = days(6.0);
  World w(cfg);
  std::vector<double> fractions_after_charge;
  w.set_tracer([&](const World::TraceEvent& e) {
    if (e.kind == EventKind::kRvChargeDone) {
      const Rv& rv = w.rvs()[e.subject];
      // The node just served is the one the RV sits on; find the nearest
      // sensor to the RV position.
      // (Indirect check: overall, served sensors end up essentially full.)
      (void)rv;
    }
  });
  const auto r = w.run();
  ASSERT_GT(r.sensors_recharged, 0u);
  // Average delivered per service is close to the threshold-to-full demand
  // (E_c/2) — i.e. sensors are topped up, not trickled.
  const double avg_delivered =
      r.energy_recharged.value() / static_cast<double>(r.sensors_recharged);
  EXPECT_GT(avg_delivered, 0.4 * cfg.battery.capacity.value());
}

TEST(WorldRv, NoServiceWithoutRequests) {
  SimConfig cfg = rv_config();
  cfg.radio.listen_duty_cycle = 0.0;  // negligible drain
  cfg.sim_duration = days(2.0);
  World w(cfg);
  const auto r = w.run();
  EXPECT_EQ(r.recharge_requests, 0u);
  EXPECT_EQ(r.sensors_recharged, 0u);
  EXPECT_DOUBLE_EQ(r.rv_travel_distance.value(), 0.0);
  for (const Rv& rv : w.rvs()) {
    EXPECT_EQ(rv.pos, w.network().base_station());
    EXPECT_TRUE(rv.idle());
  }
}

TEST(WorldRv, TravelDistanceConsistentWithSpeedAndTime) {
  SimConfig cfg = rv_config();
  World w(cfg);
  const auto r = w.run();
  // At v_r = 1 m/s an RV cannot cover more metres than seconds of sim time.
  const double max_possible =
      cfg.rv.speed.value() * cfg.sim_duration.value() * cfg.num_rvs;
  EXPECT_LE(r.rv_travel_distance.value(), max_possible);
}

TEST(WorldRv, FasterChargerRaisesThroughput) {
  SimConfig slow = rv_config();
  slow.rv.charge_power = watts(0.6);
  SimConfig fast = rv_config();
  fast.rv.charge_power = watts(4.0);
  const auto rs = World(slow).run();
  const auto rf = World(fast).run();
  EXPECT_LT(rf.avg_request_latency.value(), rs.avg_request_latency.value());
  EXPECT_GE(rf.sensors_recharged + 5, rs.sensors_recharged);
}

TEST(WorldRv, SingleRvHandlesLightLoadEventually) {
  SimConfig cfg = rv_config();
  cfg.num_rvs = 1;
  cfg.radio.listen_duty_cycle = 0.08;  // light demand a lone RV can absorb
  cfg.sim_duration = days(10.0);
  World w(cfg);
  const auto r = w.run();
  EXPECT_GT(r.sensors_recharged, 10u);
  // Backlog at the end is bounded.
  EXPECT_LT(w.recharge_list().size(), 40u);
}

TEST(WorldRv, MoreRvsMoreParallelService) {
  SimConfig one = rv_config();
  one.num_rvs = 1;
  SimConfig four = rv_config();
  four.num_rvs = 4;
  const auto r1 = World(one).run();
  const auto r4 = World(four).run();
  EXPECT_LT(r4.avg_request_latency.value(), r1.avg_request_latency.value());
}

TEST(WorldRv, PerRvOdometersSumToTotal) {
  World w(rv_config());
  const auto r = w.run();
  double total = 0.0;
  for (const Rv& rv : w.rvs()) total += rv.distance_traveled;
  EXPECT_NEAR(total, r.rv_travel_distance.value(), 1e-6);
}

TEST(WorldRv, PartitionUsesBothRvs) {
  SimConfig cfg = rv_config();
  cfg.scheduler = "partition";
  cfg.sim_duration = days(8.0);
  World w(cfg);
  w.run();
  // Confinement must not starve one vehicle entirely.
  for (const Rv& rv : w.rvs()) {
    EXPECT_GT(rv.nodes_served, 0u) << "RV " << rv.id << " never served";
  }
}

}  // namespace
}  // namespace wrsn
