// Snapshot building blocks: the binary codec (core/binio.hpp), atomic file
// and fsync'd journal primitives (core/atomic_file.hpp), the EventQueue
// export/restore path, the whole-file snapshot format (magic + version +
// FNV-1a trailer) and the wrsn.snapshot manifest lines.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/atomic_file.hpp"
#include "core/binio.hpp"
#include "core/error.hpp"
#include "core/json.hpp"
#include "sim/events.hpp"
#include "sim/snapshot.hpp"

namespace wrsn {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BinIo, ScalarRoundTrip) {
  BinWriter w;
  w.u8(std::uint8_t{7});
  w.u32(std::uint32_t{0xdeadbeef});
  w.u64(std::uint64_t{0x0123456789abcdefULL});
  w.f64(-0.1);
  w.boolean(true);
  w.size(std::size_t{42});
  w.str("hello");

  BinReader r(w.bytes());
  std::uint8_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  double d = 0.0;
  bool e = false;
  std::size_t f = 0;
  std::string s;
  r.u8(a);
  r.u32(b);
  r.u64(c);
  r.f64(d);
  r.boolean(e);
  r.size(f);
  r.str(s);
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefULL);
  EXPECT_EQ(d, -0.1);  // bit-exact, not approximate
  EXPECT_TRUE(e);
  EXPECT_EQ(f, 42u);
  EXPECT_EQ(s, "hello");
  EXPECT_NO_THROW(r.expect_end());
}

TEST(BinIo, DoubleBitPatternsSurvive) {
  // Signed zero and subnormals round-trip bit-for-bit (the property the
  // deterministic snapshot relies on).
  for (const double v : {-0.0, 5e-324, 1.0 / 3.0, 1e308}) {
    BinWriter w;
    w.f64(v);
    BinReader r(w.bytes());
    double out = 1.0;
    r.f64(out);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out), std::bit_cast<std::uint64_t>(v));
  }
}

TEST(BinIo, VectorRoundTrip) {
  BinWriter w;
  const std::vector<double> doubles{1.5, -2.25, 0.0};
  const std::vector<std::uint64_t> words{1, 2, 3};
  const std::vector<std::uint8_t> bytes{0, 255, 7};
  w.vec(doubles);
  w.vec(words);
  w.vec(bytes);
  BinReader r(w.bytes());
  std::vector<double> d2;
  std::vector<std::uint64_t> w2;
  std::vector<std::uint8_t> b2;
  r.vec(d2);
  r.vec(w2);
  r.vec(b2);
  EXPECT_EQ(d2, doubles);
  EXPECT_EQ(w2, words);
  EXPECT_EQ(b2, bytes);
}

TEST(BinIo, TruncationThrows) {
  BinWriter w;
  w.u64(std::uint64_t{1});
  const std::string bytes = w.bytes();
  BinReader r(std::string_view(bytes).substr(0, 4));
  std::uint64_t v = 0;
  EXPECT_THROW(r.u64(v), InvalidArgument);
}

TEST(BinIo, TrailingBytesThrow) {
  BinWriter w;
  w.u8(std::uint8_t{1});
  w.u8(std::uint8_t{2});
  BinReader r(w.bytes());
  std::uint8_t v = 0;
  r.u8(v);
  EXPECT_THROW(r.expect_end(), InvalidArgument);
}

TEST(BinIo, Fnv1a64KnownValues) {
  // Reference values for the FNV-1a 64-bit parameters.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(AtomicFile, WriteFileAtomicReplaces) {
  const std::string path = temp_path("atomic_replace.txt");
  write_file_atomic(path, "first");
  EXPECT_EQ(read_file(path), "first");
  write_file_atomic(path, "second");
  EXPECT_EQ(read_file(path), "second");
  std::remove(path.c_str());
}

TEST(AtomicFile, UncommittedLeavesNoFinalFile) {
  const std::string path = temp_path("atomic_uncommitted.txt");
  std::remove(path.c_str());
  {
    AtomicFile file(path);
    file.stream() << "half-written";
    // no commit(): destructor discards the temp file
  }
  std::ifstream in(path);
  EXPECT_FALSE(in.is_open());
}

TEST(AtomicFile, CommitPublishes) {
  const std::string path = temp_path("atomic_commit.txt");
  {
    AtomicFile file(path);
    file.stream() << "payload";
    file.commit();
  }
  EXPECT_EQ(read_file(path), "payload");
  std::remove(path.c_str());
}

TEST(JournalWriter, AppendsLines) {
  const std::string path = temp_path("journal.jsonl");
  std::remove(path.c_str());
  {
    JournalWriter journal(path);
    journal.append("{\"a\":1}");
    journal.append("{\"a\":2}");
  }
  {
    JournalWriter journal(path);  // reopen appends, never truncates
    journal.append("{\"a\":3}");
  }
  EXPECT_EQ(read_file(path), "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n");
  std::remove(path.c_str());
}

TEST(EventQueueSnapshot, SortedEventsIsNonDestructive) {
  for (const EventQueueImpl impl : {EventQueueImpl::kCalendar, EventQueueImpl::kHeap}) {
    EventQueue q(impl);
    q.push(5.0, EventKind::kSlotRotation);
    q.push(1.0, EventKind::kTargetMove, 3);
    q.push(1.0, EventKind::kSensorCrossing, 7, 2);
    const std::vector<Event> events = q.sorted_events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(q.size(), 3u);  // export worked on a copy
    EXPECT_DOUBLE_EQ(events[0].time, 1.0);
    EXPECT_EQ(events[0].subject, 3u);  // seq tie-break preserved
    EXPECT_EQ(events[1].subject, 7u);
    EXPECT_DOUBLE_EQ(events[2].time, 5.0);
  }
}

TEST(EventQueueSnapshot, RestorePreservesSeqOrder) {
  // Export from one impl, restore into the other: pop order must match,
  // including the FIFO tie-break at equal times.
  EventQueue src(EventQueueImpl::kCalendar);
  src.push(2.0, EventKind::kTargetMove, 0);
  src.push(2.0, EventKind::kTargetMove, 1);
  src.push(1.0, EventKind::kRvArrival, 4, 9);
  const std::vector<Event> events = src.sorted_events();
  const std::uint64_t next_seq = src.next_seq();

  for (const EventQueueImpl impl : {EventQueueImpl::kCalendar, EventQueueImpl::kHeap}) {
    EventQueue dst(impl);
    dst.push(99.0, EventKind::kSimEnd);  // restore clears pre-existing state
    dst.restore(events, next_seq);
    EXPECT_EQ(dst.size(), 3u);
    EXPECT_EQ(dst.next_seq(), next_seq);
    EXPECT_EQ(dst.pop().subject, 4u);
    EXPECT_EQ(dst.pop().subject, 0u);
    EXPECT_EQ(dst.pop().subject, 1u);
    // New pushes continue the sequence without colliding with restored seqs.
    dst.push(1.0, EventKind::kSimEnd);
    EXPECT_EQ(dst.pop().seq, next_seq);
  }
}

TEST(EventQueueSnapshot, RestoreRejectsSeqAboveNextSeq) {
  EventQueue q;
  std::vector<Event> events(1);
  events[0].time = 1.0;
  events[0].seq = 5;
  EXPECT_THROW(q.restore(events, 5), InvalidArgument);
}

WorldSnapshot tiny_snapshot() {
  SimConfig cfg;
  cfg.num_sensors = 20;
  cfg.num_targets = 3;
  cfg.num_rvs = 1;
  cfg.field_side = meters(60.0);
  cfg.sim_duration = hours(1.0);
  cfg.seed = 77;
  World world(cfg, WorldEngine::kIncremental);
  world.run_until(minutes(20.0));
  return world.checkpoint();
}

TEST(SnapshotFile, SerializeDeserializeRoundTrip) {
  const WorldSnapshot snap = tiny_snapshot();
  const std::string bytes = serialize_snapshot(snap);
  EXPECT_EQ(bytes.substr(0, 8), "WRSNSNAP");
  const WorldSnapshot back = deserialize_snapshot(bytes);
  EXPECT_EQ(back.version, snap.version);
  EXPECT_EQ(back.config_text, snap.config_text);
  EXPECT_EQ(back.engine, snap.engine);
  EXPECT_EQ(back.now, snap.now);
  EXPECT_EQ(back.events_processed, snap.events_processed);
  EXPECT_EQ(back.state, snap.state);
  EXPECT_EQ(back.span_state, snap.span_state);
}

TEST(SnapshotFile, RejectsCorruption) {
  const std::string bytes = serialize_snapshot(tiny_snapshot());
  EXPECT_THROW(deserialize_snapshot("short"), InvalidArgument);
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(deserialize_snapshot(bad_magic), InvalidArgument);
  std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(deserialize_snapshot(truncated), InvalidArgument);
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(deserialize_snapshot(flipped), InvalidArgument);
}

TEST(SnapshotFile, SaveLoadFile) {
  const std::string path = temp_path("world.snap");
  const WorldSnapshot snap = tiny_snapshot();
  save_snapshot_file(path, snap);
  const WorldSnapshot back = load_snapshot_file(path);
  EXPECT_EQ(back.state, snap.state);
  EXPECT_EQ(back.now, snap.now);
  std::remove(path.c_str());
  EXPECT_THROW(load_snapshot_file(path), InvalidArgument);
}

TEST(SnapshotManifest, LinesAreValidJson) {
  std::string err;
  EXPECT_TRUE(json_validate(snapshot_manifest_meta_line(), &err)) << err;
  SnapshotManifestRecord rec;
  rec.id = 3;
  rec.file = "ckpt.000003.snap";
  rec.t_s = 1234.5;
  rec.events = 999;
  rec.bytes = 4096;
  rec.terminal = true;
  const std::string line = snapshot_manifest_line(rec);
  EXPECT_TRUE(json_validate(line, &err)) << err;
  EXPECT_NE(line.find("\"record\":\"snapshot\""), std::string::npos);
  EXPECT_NE(line.find("\"terminal\":true"), std::string::npos);
  EXPECT_NE(line.find("ckpt.000003.snap"), std::string::npos);
}

}  // namespace
}  // namespace wrsn
