// Failure-injection tests: the framework's behaviour when sensors drop dead
// unexpectedly — rotor failover, routing repair, request escalation and
// eventual revival by RVs.
#include <gtest/gtest.h>

#include <set>

#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_sensors = 120;
  cfg.num_targets = 4;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = days(3.0);
  cfg.seed = 555;
  return cfg;
}

TEST(FaultInjection, KillsSensorImmediately) {
  World w(small_config());
  w.run_until(hours(1.0));
  ASSERT_TRUE(w.network().sensor(0).alive());
  w.inject_sensor_failure(0);
  EXPECT_FALSE(w.network().sensor(0).alive());
  EXPECT_FALSE(w.network().sensor(0).monitoring);
}

TEST(FaultInjection, IdempotentOnDeadSensor) {
  World w(small_config());
  w.inject_sensor_failure(0);
  const auto deaths_before = w.report().sensor_deaths;
  w.inject_sensor_failure(0);  // no-op
  EXPECT_EQ(w.report().sensor_deaths, deaths_before);
}

TEST(FaultInjection, OutOfRangeRejected) {
  World w(small_config());
  EXPECT_THROW(w.inject_sensor_failure(99999), InvalidArgument);
}

TEST(FaultInjection, MonitorFailoverWithinCluster) {
  World w(small_config());
  // Find a cluster with at least two members and kill its active monitor.
  const auto& cs = w.clusters();
  TargetId target = kInvalidId;
  SensorId monitor = kInvalidId;
  for (TargetId t = 0; t < cs.num_clusters(); ++t) {
    if (cs.members[t].size() < 2) continue;
    for (SensorId s : cs.members[t]) {
      if (w.network().sensor(s).monitoring) {
        target = t;
        monitor = s;
      }
    }
    if (monitor != kInvalidId) break;
  }
  ASSERT_NE(monitor, kInvalidId) << "test network has no multi-member cluster";
  w.inject_sensor_failure(monitor);
  // Another member of the same cluster must have taken over.
  std::size_t monitoring = 0;
  for (SensorId s : cs.members[target]) {
    if (w.network().sensor(s).monitoring) {
      ++monitoring;
      EXPECT_NE(s, monitor);
      EXPECT_TRUE(w.network().sensor(s).alive());
    }
  }
  EXPECT_EQ(monitoring, 1u);
}

TEST(FaultInjection, DeadSensorLeavesRoutingTree) {
  World w(small_config());
  // Pick a sensor that currently relays (has a parent and children).
  SensorId relay = kInvalidId;
  for (SensorId s = 0; s < w.network().num_sensors() && relay == kInvalidId; ++s) {
    for (SensorId v = 0; v < w.network().num_sensors(); ++v) {
      if (w.network().routing().next_hop(v) == s) {
        relay = s;
        break;
      }
    }
  }
  ASSERT_NE(relay, kInvalidId);
  w.inject_sensor_failure(relay);
  EXPECT_FALSE(w.network().routing().reachable(relay));
  // No alive sensor routes through the dead relay anymore.
  for (SensorId v = 0; v < w.network().num_sensors(); ++v) {
    if (!w.network().sensor(v).alive()) continue;
    EXPECT_NE(w.network().routing().next_hop(v), relay);
  }
}

TEST(FaultInjection, FailedSensorRequestsAndGetsRevived) {
  SimConfig cfg = small_config();
  cfg.sim_duration = days(2.0);
  World w(cfg);
  w.run_until(hours(1.0));
  w.inject_sensor_failure(7);
  // The dead node's request must be pending or already claimed.
  EXPECT_TRUE(w.network().sensor(7).recharge_requested);
  // Give the RVs time to drive out and recharge it.
  w.run_until(hours(12.0));
  EXPECT_TRUE(w.network().sensor(7).alive());
  EXPECT_GE(w.report().sensors_recharged, 1u);
}

TEST(FaultInjection, MassFailureDegradesCoverageThenRecovers) {
  SimConfig cfg = small_config();
  cfg.sim_duration = days(4.0);
  World w(cfg);
  w.run_until(hours(1.0));
  const StateSnapshot before = w.snapshot();
  // Kill a third of the network.
  for (SensorId s = 0; s < 40; ++s) w.inject_sensor_failure(s);
  const StateSnapshot after = w.snapshot();
  EXPECT_EQ(after.alive_sensors, before.alive_sensors - 40);
  // Recovery: RVs revive nodes over the following days.
  w.run_until(days(4.0));
  EXPECT_GT(w.snapshot().alive_sensors, after.alive_sensors);
}

TEST(Tracer, ReceivesEventsInTimeOrder) {
  SimConfig cfg = small_config();
  cfg.sim_duration = hours(6.0);
  World w(cfg);
  std::vector<World::TraceEvent> events;
  w.set_tracer([&](const World::TraceEvent& e) { events.push_back(e); });
  w.run();
  ASSERT_FALSE(events.empty());
  double prev = -1.0;
  std::set<EventKind> kinds;
  for (const auto& e : events) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    kinds.insert(e.kind);
  }
  // At minimum the periodic machinery fired.
  EXPECT_TRUE(kinds.contains(EventKind::kSlotRotation));
  EXPECT_TRUE(kinds.contains(EventKind::kTargetMove));
  EXPECT_TRUE(kinds.contains(EventKind::kMetricsSample));
}

TEST(Tracer, CanBeCleared) {
  SimConfig cfg = small_config();
  cfg.sim_duration = hours(2.0);
  World w(cfg);
  int count = 0;
  w.set_tracer([&](const World::TraceEvent&) { ++count; });
  w.run_until(hours(1.0));
  const int after_first = count;
  EXPECT_GT(after_first, 0);
  w.set_tracer(nullptr);
  w.run_until(hours(2.0));
  EXPECT_EQ(count, after_first);
}

}  // namespace
}  // namespace wrsn
