#include <gtest/gtest.h>

#include "activity/erp.hpp"
#include "core/error.hpp"

namespace wrsn {
namespace {

TEST(Erp, ZeroErpTriggersOnFirstRequest) {
  for (std::size_t n : {1u, 2u, 5u, 20u}) {
    EXPECT_EQ(erp_trigger_count(n, 0.0), 1u) << "n=" << n;
  }
}

TEST(Erp, FullErpRequiresWholeCluster) {
  for (std::size_t n : {1u, 2u, 5u, 20u}) {
    EXPECT_EQ(erp_trigger_count(n, 1.0), n) << "n=" << n;
  }
}

TEST(Erp, CeilSemantics) {
  EXPECT_EQ(erp_trigger_count(5, 0.6), 3u);   // ceil(3.0)
  EXPECT_EQ(erp_trigger_count(5, 0.61), 4u);  // ceil(3.05)
  EXPECT_EQ(erp_trigger_count(3, 0.5), 2u);   // ceil(1.5)
  EXPECT_EQ(erp_trigger_count(10, 0.25), 3u); // ceil(2.5)
}

TEST(Erp, AtLeastOneEvenForTinyErp) {
  EXPECT_EQ(erp_trigger_count(10, 0.001), 1u);
  EXPECT_EQ(erp_trigger_count(0, 0.5), 1u);  // degenerate empty cluster
}

TEST(Erp, NeverExceedsClusterSize) {
  for (std::size_t n = 1; n <= 30; ++n) {
    for (double k : {0.0, 0.1, 0.33, 0.5, 0.75, 0.99, 1.0}) {
      const std::size_t trig = erp_trigger_count(n, k);
      EXPECT_GE(trig, 1u);
      EXPECT_LE(trig, n);
    }
  }
}

TEST(Erp, Validation) {
  EXPECT_THROW((void)erp_trigger_count(5, -0.1), InvalidArgument);
  EXPECT_THROW((void)erp_trigger_count(5, 1.1), InvalidArgument);
  EXPECT_THROW((void)travel_energy_with_erc(5, 2.0, Meter{1.0}, JoulePerMeter{5.6}),
               InvalidArgument);
}

TEST(Erp, TravelEnergyWithoutErcWorstCase) {
  // 2 * n_c * dist * e_m
  const Joule e = travel_energy_without_erc(6, Meter{100.0}, JoulePerMeter{5.6});
  EXPECT_DOUBLE_EQ(e.value(), 2.0 * 6.0 * 100.0 * 5.6);
}

TEST(Erp, TravelEnergyFullBatchingIsOneTrip) {
  // K = 1: a single round trip, 1/n_c of the unmanaged cost.
  const std::size_t nc = 8;
  const Joule with = travel_energy_with_erc(nc, 1.0, Meter{50.0}, JoulePerMeter{5.6});
  const Joule without = travel_energy_without_erc(nc, Meter{50.0}, JoulePerMeter{5.6});
  EXPECT_DOUBLE_EQ(with.value() * static_cast<double>(nc), without.value());
}

TEST(Erp, TravelEnergyK0MatchesUnmanaged) {
  // max(n_c*0, 1) = 1 -> same as requesting individually.
  const Joule with = travel_energy_with_erc(5, 0.0, Meter{70.0}, JoulePerMeter{5.6});
  const Joule without = travel_energy_without_erc(5, Meter{70.0}, JoulePerMeter{5.6});
  EXPECT_DOUBLE_EQ(with.value(), without.value());
}

// Property sweep over K: the analytic saving is monotone non-increasing in K
// and bounded between 1/n_c and 1 of the unmanaged cost.
class ErpSavingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ErpSavingProperty, MonotoneAndBounded) {
  const std::size_t nc = GetParam();
  const Meter dist{120.0};
  const JoulePerMeter em{5.6};
  const Joule unmanaged = travel_energy_without_erc(nc, dist, em);
  double prev = unmanaged.value() + 1.0;
  for (double k = 0.0; k <= 1.0; k += 0.05) {
    const double cur = travel_energy_with_erc(nc, k, dist, em).value();
    EXPECT_LE(cur, prev + 1e-9) << "k=" << k;
    EXPECT_LE(cur, unmanaged.value() + 1e-9);
    EXPECT_GE(cur * static_cast<double>(nc), unmanaged.value() - 1e-9);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, ErpSavingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace wrsn
