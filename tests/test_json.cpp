#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/json.hpp"
#include "sim/metrics.hpp"

namespace wrsn {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, EmptyArray) {
  JsonWriter w;
  w.begin_array().end_array();
  EXPECT_EQ(w.str(), "[]");
}

TEST(Json, ScalarFields) {
  JsonWriter w;
  w.begin_object()
      .field("s", "text")
      .field("d", 1.5)
      .field("i", std::int64_t{-3})
      .field("u", std::uint64_t{7})
      .field("b", true)
      .key("n")
      .null()
      .end_object();
  EXPECT_EQ(w.str(), R"({"s":"text","d":1.5,"i":-3,"u":7,"b":true,"n":null})");
}

TEST(Json, NestedStructures) {
  JsonWriter w;
  w.begin_object().key("xs").begin_array();
  w.value(1.0).value(2.0);
  w.begin_object().field("k", "v").end_object();
  w.end_array().end_object();
  EXPECT_EQ(w.str(), R"({"xs":[1,2,{"k":"v"}]})");
}

TEST(Json, StringEscaping) {
  JsonWriter w;
  w.begin_object().field("k", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharactersEscaped) {
  JsonWriter w;
  std::string s = "x";
  s += static_cast<char>(1);
  w.begin_array().value(s).end_array();
  EXPECT_EQ(w.str(), "[\"x\\u0001\"]");
}

TEST(Json, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, MisuseDetected) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), InvalidArgument);  // value without key
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), InvalidArgument);  // two keys in a row
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("a"), InvalidArgument);  // key inside array
    EXPECT_THROW(w.end_object(), InvalidArgument);
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.end_object(), InvalidArgument);  // dangling key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), InvalidArgument);  // unclosed scope
  }
  {
    JsonWriter w;
    w.value(1.0);
    EXPECT_THROW(w.value(2.0), InvalidArgument);  // two top-level documents
  }
}

TEST(JsonValidate, AcceptsWellFormedDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           R"("a string with \"escapes\" and é")",
           "-12.5e3",
           "0",
           R"({"a":[1,2,{"b":null}],"c":-0.5,"d":"x"})",
           "  { \"spaced\" : [ 1 , 2 ] }  ",
       }) {
    std::string error;
    EXPECT_TRUE(json_validate(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  for (const char* doc : {
           "",
           "{",
           "[1,2",
           "{\"a\":}",
           "{\"a\":1,}",
           "[1,]",
           "{'a':1}",
           "\"unterminated",
           "\"bad \\u12 escape\"",
           "01",
           "1.",
           "1e",
           "nul",
           "truefalse",
           "{} extra",
           "\x01",
       }) {
    std::string error;
    EXPECT_FALSE(json_validate(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(JsonValidate, ValidatesWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .field("s", "text \"quoted\" \n")
      .field("d", 0.97)
      .field("neg", -1.5e-8)
      .key("arr")
      .begin_array()
      .value(std::int64_t{-3})
      .value(std::uint64_t{7})
      .end_array()
      .end_object();
  std::string error;
  EXPECT_TRUE(json_validate(w.str(), &error)) << error;
}

TEST(JsonValidate, ErrorIsOptional) {
  EXPECT_FALSE(json_validate("{"));
  EXPECT_TRUE(json_validate("{}"));
}

TEST(Json, MetricsReportRoundTripKeys) {
  MetricsReport r;
  r.duration = days(1.0);
  r.rv_travel_energy = megajoules(1.5);
  r.energy_recharged = megajoules(3.0);
  r.coverage_ratio = 0.97;
  r.sensors_recharged = 42;
  const std::string json = to_json(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"duration_s\":86400"), std::string::npos);
  EXPECT_NE(json.find("\"energy_recharged_j\":3000000"), std::string::npos);
  EXPECT_NE(json.find("\"sensors_recharged\":42"), std::string::npos);
  EXPECT_NE(json.find("\"objective_score_j\":1500000"), std::string::npos);
  // Doubles print with full precision (0.97 -> 0.96999...); check prefix.
  EXPECT_NE(json.find("\"coverage_ratio\":0.9"), std::string::npos);
}

}  // namespace
}  // namespace wrsn
