#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/error.hpp"

namespace wrsn {
namespace {

TEST(Config, PaperDefaultsMatchTableII) {
  const SimConfig cfg = SimConfig::paper_defaults();
  EXPECT_EQ(cfg.num_sensors, 500u);
  EXPECT_EQ(cfg.num_targets, 15u);
  EXPECT_EQ(cfg.num_rvs, 3u);
  EXPECT_DOUBLE_EQ(cfg.field_side.value(), 200.0);
  EXPECT_DOUBLE_EQ(cfg.comm_range.value(), 12.0);
  EXPECT_DOUBLE_EQ(cfg.sensing_range.value(), 8.0);
  EXPECT_DOUBLE_EQ(cfg.sim_duration.value(), 120.0 * 86400.0);
  EXPECT_DOUBLE_EQ(cfg.target_period.value(), 3.0 * 3600.0);
  EXPECT_DOUBLE_EQ(cfg.battery.threshold_fraction, 0.5);
  EXPECT_DOUBLE_EQ(cfg.rv.move_cost.value(), 5.6);
  EXPECT_DOUBLE_EQ(cfg.rv.speed.value(), 1.0);
  EXPECT_DOUBLE_EQ(cfg.data_rate_pkt_per_min, 15.0);
}

TEST(Config, DeviceConstantsMatchDatasheets) {
  const SimConfig cfg;
  // CC2480: 27 mA @ 3 V tx/rx.
  EXPECT_DOUBLE_EQ(cfg.radio.tx_power.value(), 0.081);
  EXPECT_DOUBLE_EQ(cfg.radio.rx_power.value(), 0.081);
  // PIR: 10 mA active, 170 uA idle @ 3 V.
  EXPECT_DOUBLE_EQ(cfg.sensing.active_power.value(), 0.030);
  EXPECT_NEAR(cfg.sensing.idle_power.value(), 0.00051, 1e-9);
  // 2x AAA Ni-MH 750 mAh @ 1.2 V.
  EXPECT_DOUBLE_EQ(cfg.battery.capacity.value(), 6480.0);
  EXPECT_DOUBLE_EQ(cfg.battery.threshold().value(), 3240.0);
}

TEST(Config, PacketAirtime) {
  const RadioModel radio;
  // (20 + 13) bytes at 250 kbit/s.
  EXPECT_NEAR(radio.packet_airtime().value(), 33.0 * 8.0 / 250e3, 1e-12);
  EXPECT_NEAR(radio.tx_energy_per_packet().value(),
              0.081 * 33.0 * 8.0 / 250e3, 1e-12);
}

TEST(Config, DefaultsValidate) {
  EXPECT_NO_THROW(SimConfig{}.validate());
}

TEST(Config, ValidationCatchesBadValues) {
  {
    SimConfig c;
    c.num_sensors = 0;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.num_rvs = 0;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.energy_request_percentage = 1.5;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.energy_request_percentage = -0.1;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.battery.threshold_fraction = 1.0;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.rv.speed = MeterPerSecond{0.0};
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.rv.self_recharge_fraction = 0.01;  // below the reserve fraction
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.activation_slot = Second{0.0};
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.field_side = Meter{-5.0};
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
}

TEST(Config, EnumNames) {
  EXPECT_EQ(to_string(SchedulerKind::kGreedy), "greedy");
  EXPECT_EQ(to_string(SchedulerKind::kPartition), "partition");
  EXPECT_EQ(to_string(SchedulerKind::kCombined), "combined");
  EXPECT_EQ(to_string(ActivationPolicy::kFullTime), "full-time");
  EXPECT_EQ(to_string(ActivationPolicy::kRoundRobin), "round-robin");
}

}  // namespace
}  // namespace wrsn
