#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/error.hpp"

namespace wrsn {
namespace {

TEST(Config, PaperDefaultsMatchTableII) {
  const SimConfig cfg = SimConfig::paper_defaults();
  EXPECT_EQ(cfg.num_sensors, 500u);
  EXPECT_EQ(cfg.num_targets, 15u);
  EXPECT_EQ(cfg.num_rvs, 3u);
  EXPECT_DOUBLE_EQ(cfg.field_side.value(), 200.0);
  EXPECT_DOUBLE_EQ(cfg.comm_range.value(), 12.0);
  EXPECT_DOUBLE_EQ(cfg.sensing_range.value(), 8.0);
  EXPECT_DOUBLE_EQ(cfg.sim_duration.value(), 120.0 * 86400.0);
  EXPECT_DOUBLE_EQ(cfg.target_period.value(), 3.0 * 3600.0);
  EXPECT_DOUBLE_EQ(cfg.battery.threshold_fraction, 0.5);
  EXPECT_DOUBLE_EQ(cfg.rv.move_cost.value(), 5.6);
  EXPECT_DOUBLE_EQ(cfg.rv.speed.value(), 1.0);
  EXPECT_DOUBLE_EQ(cfg.data_rate_pkt_per_min, 15.0);
}

TEST(Config, DeviceConstantsMatchDatasheets) {
  const SimConfig cfg;
  // CC2480: 27 mA @ 3 V tx/rx.
  EXPECT_DOUBLE_EQ(cfg.radio.tx_power.value(), 0.081);
  EXPECT_DOUBLE_EQ(cfg.radio.rx_power.value(), 0.081);
  // PIR: 10 mA active, 170 uA idle @ 3 V.
  EXPECT_DOUBLE_EQ(cfg.sensing.active_power.value(), 0.030);
  EXPECT_NEAR(cfg.sensing.idle_power.value(), 0.00051, 1e-9);
  // 2x AAA Ni-MH 750 mAh @ 1.2 V.
  EXPECT_DOUBLE_EQ(cfg.battery.capacity.value(), 6480.0);
  EXPECT_DOUBLE_EQ(cfg.battery.threshold().value(), 3240.0);
}

TEST(Config, PacketAirtime) {
  const RadioModel radio;
  // (20 + 13) bytes at 250 kbit/s.
  EXPECT_NEAR(radio.packet_airtime().value(), 33.0 * 8.0 / 250e3, 1e-12);
  EXPECT_NEAR(radio.tx_energy_per_packet().value(),
              0.081 * 33.0 * 8.0 / 250e3, 1e-12);
}

TEST(Config, DefaultsValidate) {
  EXPECT_NO_THROW(SimConfig{}.validate());
}

TEST(Config, ValidationCatchesBadValues) {
  {
    SimConfig c;
    c.num_sensors = 0;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.num_rvs = 0;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.energy_request_percentage = 1.5;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.energy_request_percentage = -0.1;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.battery.threshold_fraction = 1.0;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.rv.speed = MeterPerSecond{0.0};
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.rv.self_recharge_fraction = 0.01;  // below the reserve fraction
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.activation_slot = Second{0.0};
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
  {
    SimConfig c;
    c.field_side = Meter{-5.0};
    EXPECT_THROW(c.validate(), InvalidArgument);
  }
}

// Table-driven validation hardening: every mutation below must be rejected
// with a clear InvalidArgument, never accepted silently or crash later.
TEST(Config, ValidationRejectsNonFiniteAndOutOfRange) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  struct Case {
    const char* name;
    void (*mutate)(SimConfig&, double);
    double value;
  };
  const Case cases[] = {
      {"field_side NaN", [](SimConfig& c, double v) { c.field_side = Meter{v}; },
       nan},
      {"sim_duration inf",
       [](SimConfig& c, double v) { c.sim_duration = Second{v}; }, inf},
      {"comm_range NaN", [](SimConfig& c, double v) { c.comm_range = Meter{v}; },
       nan},
      {"battery capacity -inf",
       [](SimConfig& c, double v) { c.battery.capacity = Joule{v}; }, -inf},
      {"battery capacity negative",
       [](SimConfig& c, double v) { c.battery.capacity = Joule{v}; }, -1.0},
      {"listen duty cycle NaN",
       [](SimConfig& c, double v) { c.radio.listen_duty_cycle = v; }, nan},
      {"listen duty cycle above one",
       [](SimConfig& c, double v) { c.radio.listen_duty_cycle = v; }, 1.5},
      {"rv move cost NaN",
       [](SimConfig& c, double v) { c.rv.move_cost = JoulePerMeter{v}; }, nan},
      {"target speed inf",
       [](SimConfig& c, double v) { c.target_speed = MeterPerSecond{v}; }, inf},
      {"data rate NaN",
       [](SimConfig& c, double v) { c.data_rate_pkt_per_min = v; }, nan},
      {"erp NaN",
       [](SimConfig& c, double v) { c.energy_request_percentage = v; }, nan},
      {"fault loss prob negative",
       [](SimConfig& c, double v) { c.fault.request_loss_prob = v; }, -0.1},
      {"fault loss prob above one",
       [](SimConfig& c, double v) { c.fault.request_loss_prob = v; }, 1.1},
      {"fault loss prob NaN",
       [](SimConfig& c, double v) { c.fault.request_loss_prob = v; }, nan},
      {"fault delay prob above one",
       [](SimConfig& c, double v) { c.fault.request_delay_prob = v; }, 2.0},
      {"fault delay max negative",
       [](SimConfig& c, double v) { c.fault.request_delay_max = Second{v}; },
       -1.0},
      {"fault retry timeout zero",
       [](SimConfig& c, double v) { c.fault.request_retry_timeout = Second{v}; },
       0.0},
      {"fault backoff below one",
       [](SimConfig& c, double v) { c.fault.request_retry_backoff = v; }, 0.5},
      {"fault backoff NaN",
       [](SimConfig& c, double v) { c.fault.request_retry_backoff = v; }, nan},
      {"fault mtbf negative",
       [](SimConfig& c, double v) { c.fault.rv_mtbf_hours = v; }, -2.0},
      {"fault mtbf inf", [](SimConfig& c, double v) { c.fault.rv_mtbf_hours = v; },
       inf},
      {"fault repair duration zero",
       [](SimConfig& c, double v) { c.fault.rv_repair_duration = Second{v}; },
       0.0},
      {"fault sensor rate negative",
       [](SimConfig& c, double v) { c.fault.sensor_fault_rate_per_day = v; },
       -1.0},
      {"fault sensor duration zero",
       [](SimConfig& c, double v) { c.fault.sensor_fault_duration = Second{v}; },
       0.0},
      {"fault battery noise NaN",
       [](SimConfig& c, double v) { c.fault.battery_noise_per_day = v; }, nan},
      {"fault battery noise at one",
       [](SimConfig& c, double v) { c.fault.battery_noise_per_day = v; }, 1.0},
  };
  for (const Case& tc : cases) {
    SimConfig cfg;
    tc.mutate(cfg, tc.value);
    EXPECT_THROW(cfg.validate(), InvalidArgument) << tc.name;
  }
}

// The error message must point at the problem, not just say "bad config".
TEST(Config, ValidationErrorsNameTheProblem) {
  SimConfig cfg;
  cfg.fault.request_retry_backoff = std::numeric_limits<double>::quiet_NaN();
  try {
    cfg.validate();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos)
        << e.what();
  }
}

TEST(Config, FaultDefaultsValidateAndStayDisabled) {
  SimConfig cfg;
  EXPECT_FALSE(cfg.fault.enabled);
  cfg.fault.enabled = true;  // defaults must be a valid enabled block too
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, EnumNames) {
  EXPECT_EQ(to_string(ActivationPolicy::kFullTime), "full-time");
  EXPECT_EQ(to_string(ActivationPolicy::kRoundRobin), "round-robin");
  EXPECT_EQ(to_string(TargetMotion::kTeleport), "teleport");
  EXPECT_EQ(to_string(ChargeProfileKind::kConstantPower), "constant-power");
}

TEST(Config, EnumNameListsMatchToString) {
  EXPECT_EQ(activation_policy_names(),
            (std::vector<std::string>{"full-time", "round-robin"}));
  EXPECT_EQ(charge_profile_names(),
            (std::vector<std::string>{"constant-power", "tapered-cc-cv"}));
  EXPECT_EQ(target_motion_names(),
            (std::vector<std::string>{"teleport", "random-waypoint"}));
}

TEST(Config, EmptySchedulerNameRejected) {
  SimConfig cfg;
  cfg.scheduler.clear();
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
