#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"
#include "sim/metrics.hpp"

namespace wrsn {
namespace {

StateSnapshot snap(std::size_t coverable, std::size_t covered, std::size_t alive,
                   std::size_t total, double pps = 0.0) {
  StateSnapshot s;
  s.coverable_targets = coverable;
  s.covered_targets = covered;
  s.alive_sensors = alive;
  s.total_sensors = total;
  s.delivery_rate_pps = pps;
  return s;
}

TEST(Metrics, EmptyFinalize) {
  MetricsIntegrator m;
  const auto r = m.finalize(Second{0.0});
  EXPECT_DOUBLE_EQ(r.coverage_ratio, 1.0);  // vacuous coverage
  EXPECT_DOUBLE_EQ(r.missing_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.rv_travel_energy.value(), 0.0);
}

TEST(Metrics, CoverageTimeWeighted) {
  MetricsIntegrator m;
  m.advance(Second{10.0}, snap(10, 10, 100, 100));  // fully covered
  m.advance(Second{10.0}, snap(10, 5, 100, 100));   // half covered
  const auto r = m.finalize(Second{20.0});
  EXPECT_DOUBLE_EQ(r.coverage_ratio, 0.75);
  EXPECT_DOUBLE_EQ(r.missing_rate, 0.25);
}

TEST(Metrics, CoverableWeighting) {
  MetricsIntegrator m;
  // 2 coverable of which 2 covered, then 8 coverable of which 2 covered.
  m.advance(Second{1.0}, snap(2, 2, 10, 10));
  m.advance(Second{1.0}, snap(8, 2, 10, 10));
  const auto r = m.finalize(Second{2.0});
  EXPECT_DOUBLE_EQ(r.coverage_ratio, 4.0 / 10.0);
  EXPECT_DOUBLE_EQ(r.avg_coverable_targets, 5.0);
}

TEST(Metrics, NonfunctionalPercent) {
  MetricsIntegrator m;
  m.advance(Second{10.0}, snap(1, 1, 90, 100));
  m.advance(Second{10.0}, snap(1, 1, 70, 100));
  const auto r = m.finalize(Second{20.0});
  EXPECT_DOUBLE_EQ(r.nonfunctional_pct, 20.0);
  EXPECT_DOUBLE_EQ(r.avg_alive_sensors, 80.0);
}

TEST(Metrics, PacketsIntegrateRate) {
  MetricsIntegrator m;
  m.advance(Second{100.0}, snap(0, 0, 1, 1, 0.25));
  m.advance(Second{100.0}, snap(0, 0, 1, 1, 0.75));
  const auto r = m.finalize(Second{200.0});
  EXPECT_DOUBLE_EQ(r.packets_delivered, 100.0);
}

TEST(Metrics, ZeroDtIsNoop) {
  MetricsIntegrator m;
  m.advance(Second{0.0}, snap(5, 0, 0, 10));
  const auto r = m.finalize(Second{0.0});
  EXPECT_DOUBLE_EQ(r.coverage_ratio, 1.0);
}

TEST(Metrics, NegativeDtRejected) {
  MetricsIntegrator m;
  EXPECT_THROW(m.advance(Second{-1.0}, snap(0, 0, 0, 0)), InvalidArgument);
}

TEST(Metrics, RvCounters) {
  MetricsIntegrator m;
  m.on_rv_leg(Meter{100.0}, Joule{560.0});
  m.on_rv_leg(Meter{50.0}, Joule{280.0});
  m.on_recharge(3, Joule{1000.0}, Second{60.0});
  m.on_recharge(4, Joule{2000.0}, Second{120.0});
  m.on_rv_tour_started();
  m.on_rv_base_recharge(Joule{5000.0});
  m.on_sensor_death();
  m.on_request();
  m.on_request();
  const auto r = m.finalize(Second{100.0});
  EXPECT_DOUBLE_EQ(r.rv_travel_distance.value(), 150.0);
  EXPECT_DOUBLE_EQ(r.rv_travel_energy.value(), 840.0);
  EXPECT_DOUBLE_EQ(r.energy_recharged.value(), 3000.0);
  EXPECT_EQ(r.sensors_recharged, 2u);
  EXPECT_DOUBLE_EQ(r.avg_request_latency.value(), 90.0);
  EXPECT_EQ(r.rv_tours, 1u);
  EXPECT_EQ(r.rv_base_recharges, 1u);
  EXPECT_DOUBLE_EQ(r.rv_base_energy_drawn.value(), 5000.0);
  EXPECT_EQ(r.sensor_deaths, 1u);
  EXPECT_EQ(r.recharge_requests, 2u);
}

TEST(Metrics, LatencyPercentiles) {
  MetricsIntegrator m;
  for (int i = 1; i <= 100; ++i) {
    m.on_recharge(static_cast<std::size_t>(i), Joule{1.0},
                  Second{static_cast<double>(i)});
  }
  const auto r = m.finalize(Second{1.0});
  EXPECT_NEAR(r.p50_request_latency.value(), 50.0, 1.0);
  EXPECT_NEAR(r.p95_request_latency.value(), 95.0, 1.0);
  EXPECT_NEAR(r.p99_request_latency.value(), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(r.max_request_latency.value(), 100.0);
  EXPECT_DOUBLE_EQ(r.avg_request_latency.value(), 50.5);
  // Quantiles are ordered.
  EXPECT_LE(r.p50_request_latency.value(), r.p95_request_latency.value());
  EXPECT_LE(r.p95_request_latency.value(), r.p99_request_latency.value());
  EXPECT_LE(r.p99_request_latency.value(), r.max_request_latency.value());
  // ...and exported.
  EXPECT_NE(to_json(r).find("\"p99_request_latency_s\":"), std::string::npos);
}

TEST(Metrics, LatencyPercentilesEmptyAndSingle) {
  MetricsIntegrator empty;
  EXPECT_DOUBLE_EQ(empty.finalize(Second{1.0}).p95_request_latency.value(), 0.0);
  MetricsIntegrator one;
  one.on_recharge(0, Joule{1.0}, Second{42.0});
  const auto r = one.finalize(Second{1.0});
  EXPECT_DOUBLE_EQ(r.p50_request_latency.value(), 42.0);
  EXPECT_DOUBLE_EQ(r.p95_request_latency.value(), 42.0);
  EXPECT_DOUBLE_EQ(r.p99_request_latency.value(), 42.0);
  EXPECT_DOUBLE_EQ(r.max_request_latency.value(), 42.0);
}

TEST(Metrics, JainFairness) {
  // Perfectly even: fairness 1.
  MetricsIntegrator even;
  for (std::size_t s = 0; s < 4; ++s) {
    even.on_recharge(s, Joule{1.0}, Second{0.0});
    even.on_recharge(s, Joule{1.0}, Second{0.0});
  }
  EXPECT_DOUBLE_EQ(even.finalize(Second{1.0}).recharge_fairness_jain, 1.0);
  // Skewed: (1+1+6)^2 / (3 * (1+1+36)) = 64/114.
  MetricsIntegrator skew;
  skew.on_recharge(0, Joule{1.0}, Second{0.0});
  skew.on_recharge(1, Joule{1.0}, Second{0.0});
  for (int i = 0; i < 6; ++i) skew.on_recharge(2, Joule{1.0}, Second{0.0});
  EXPECT_NEAR(skew.finalize(Second{1.0}).recharge_fairness_jain, 64.0 / 114.0,
              1e-12);
  // No recharges: defined as 1.
  MetricsIntegrator none;
  EXPECT_DOUBLE_EQ(none.finalize(Second{1.0}).recharge_fairness_jain, 1.0);
}

TEST(Metrics, ObjectiveScoreIsExpressionTwo) {
  MetricsIntegrator m;
  m.on_recharge(0, Joule{10000.0}, Second{0.0});
  m.on_rv_leg(Meter{100.0}, Joule{560.0});
  const auto r = m.finalize(Second{1.0});
  EXPECT_DOUBLE_EQ(r.objective_score().value(), 10000.0 - 560.0);
}

TEST(Metrics, RechargingCostDefinition) {
  MetricsIntegrator m;
  m.on_rv_leg(Meter{1000.0}, Joule{5600.0});
  m.advance(Second{10.0}, snap(0, 0, 100, 100));
  const auto r = m.finalize(Second{10.0});
  EXPECT_DOUBLE_EQ(r.recharging_cost_m_per_sensor(), 10.0);
}

TEST(Metrics, RechargingCostZeroAliveGuard) {
  MetricsIntegrator m;
  m.on_rv_leg(Meter{100.0}, Joule{560.0});
  const auto r = m.finalize(Second{1.0});
  EXPECT_DOUBLE_EQ(r.recharging_cost_m_per_sensor(), 0.0);
}

}  // namespace
}  // namespace wrsn
