#include <gtest/gtest.h>

#include <set>

#include "activity/activation.hpp"

namespace wrsn {
namespace {

TEST(ClusterRotor, EmptyRotor) {
  ClusterRotor rotor;
  EXPECT_TRUE(rotor.empty());
  EXPECT_EQ(rotor.current(), kInvalidId);
  EXPECT_EQ(rotor.advance([](SensorId) { return true; }), kInvalidId);
}

TEST(ClusterRotor, MembersSortedAscending) {
  ClusterRotor rotor({9, 3, 7});
  EXPECT_EQ(rotor.members(), (std::vector<SensorId>{3, 7, 9}));
}

TEST(ClusterRotor, SelectFirstPicksLowestAliveId) {
  ClusterRotor rotor({5, 2, 8});
  EXPECT_EQ(rotor.select_first([](SensorId) { return true; }), 2u);
  EXPECT_EQ(rotor.current(), 2u);
}

TEST(ClusterRotor, SelectFirstSkipsDead) {
  ClusterRotor rotor({2, 5, 8});
  EXPECT_EQ(rotor.select_first([](SensorId s) { return s != 2; }), 5u);
}

TEST(ClusterRotor, SelectFirstAllDead) {
  ClusterRotor rotor({2, 5});
  EXPECT_EQ(rotor.select_first([](SensorId) { return false; }), kInvalidId);
  EXPECT_EQ(rotor.current(), kInvalidId);
}

TEST(ClusterRotor, AdvanceCyclesInIdOrder) {
  ClusterRotor rotor({1, 2, 3});
  rotor.select_first([](SensorId) { return true; });
  auto alive = [](SensorId) { return true; };
  EXPECT_EQ(rotor.advance(alive), 2u);
  EXPECT_EQ(rotor.advance(alive), 3u);
  EXPECT_EQ(rotor.advance(alive), 1u);  // wraps
  EXPECT_EQ(rotor.advance(alive), 2u);
}

TEST(ClusterRotor, AdvanceSkipsDeadMember) {
  ClusterRotor rotor({1, 2, 3});
  rotor.select_first([](SensorId) { return true; });  // current = 1
  auto alive = [](SensorId s) { return s != 2; };     // 2 never acks
  EXPECT_EQ(rotor.advance(alive), 3u);
  EXPECT_EQ(rotor.advance(alive), 1u);
}

TEST(ClusterRotor, AdvanceSingleSurvivorStays) {
  ClusterRotor rotor({1, 2, 3});
  rotor.select_first([](SensorId s) { return s == 2; });  // current = 2
  auto alive = [](SensorId s) { return s == 2; };
  EXPECT_EQ(rotor.advance(alive), 2u);
  EXPECT_EQ(rotor.advance(alive), 2u);
}

TEST(ClusterRotor, AdvanceAllDeadReturnsInvalid) {
  ClusterRotor rotor({1, 2});
  rotor.select_first([](SensorId) { return true; });
  EXPECT_EQ(rotor.advance([](SensorId) { return false; }), kInvalidId);
  EXPECT_EQ(rotor.current(), kInvalidId);
}

TEST(ClusterRotor, RecoverAfterAllDead) {
  ClusterRotor rotor({4, 6});
  rotor.select_first([](SensorId) { return false; });
  // Everyone revives: advance finds a member again.
  EXPECT_NE(rotor.advance([](SensorId) { return true; }), kInvalidId);
}

TEST(ClusterRotor, SingleMemberRotor) {
  ClusterRotor rotor({7});
  auto alive = [](SensorId) { return true; };
  EXPECT_EQ(rotor.select_first(alive), 7u);
  EXPECT_EQ(rotor.advance(alive), 7u);
}

// Property: over n advances with all members alive, every member is selected
// the same number of times (perfect load balancing, Section III-C).
class RotorFairness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RotorFairness, EqualShares) {
  const std::size_t n = GetParam();
  std::vector<SensorId> members;
  for (std::size_t i = 0; i < n; ++i) members.push_back(i * 3 + 1);
  ClusterRotor rotor(members);
  auto alive = [](SensorId) { return true; };
  rotor.select_first(alive);
  std::map<SensorId, int> counts;
  ++counts[rotor.current()];
  const std::size_t rounds = 4;
  for (std::size_t k = 1; k < n * rounds; ++k) ++counts[rotor.advance(alive)];
  for (const auto& [id, c] : counts) {
    EXPECT_EQ(c, static_cast<int>(rounds)) << "member " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RotorFairness, ::testing::Values(1, 2, 3, 5, 9));

}  // namespace
}  // namespace wrsn
