// Engine-equivalence suite: the incremental event-loop engine (lazy battery
// settlement, O(1) coverage counters, dirty-marked drain refreshes, scoped
// reclustering) must be BIT-IDENTICAL to the reference engine, which derives
// the same state by full rescans. Both engines share the physics core and
// settle batteries at the same points, so any divergence in the metrics
// report, the event trace or the final battery vector pinpoints a stale
// counter, a missed dirty mark or a spatial-grid bug.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace wrsn {
namespace {

struct Scenario {
  std::uint64_t seed = 0;
  TargetMotion motion = TargetMotion::kRandomWaypoint;
  ActivationPolicy activation = ActivationPolicy::kRoundRobin;
  std::string scheduler = "combined";
};

std::string describe(const Scenario& sc) {
  std::ostringstream os;
  os << "seed=" << sc.seed
     << " motion=" << (sc.motion == TargetMotion::kTeleport ? "teleport" : "waypoint")
     << " activation="
     << (sc.activation == ActivationPolicy::kRoundRobin ? "rr" : "full-time")
     << " scheduler=" << sc.scheduler;
  return os.str();
}

// Small, battery-stressed instances: capacities are shrunk so threshold
// crossings, deaths, recharge tours and revivals all happen within a few
// simulated hours, and target periods shortened so motion re-clusters fire
// many times per run.
SimConfig eq_config(const Scenario& sc) {
  SimConfig cfg;
  cfg.num_sensors = 40 + (sc.seed % 5) * 10;  // 40..80
  cfg.num_targets = 4;
  cfg.num_rvs = 2;
  cfg.field_side = meters(90.0);
  cfg.sim_duration = hours(6.0);
  cfg.seed = 0x9000 + sc.seed * 7919;
  cfg.target_motion = sc.motion;
  cfg.target_period = minutes(30.0);
  cfg.target_speed = MeterPerSecond{1.0};
  cfg.activation = sc.activation;
  cfg.scheduler = sc.scheduler;
  cfg.battery.capacity = Joule{150.0};
  cfg.radio.listen_duty_cycle = 0.2;
  return cfg;
}

struct RunResult {
  std::string report_json;
  std::vector<World::TraceEvent> trace;
  std::vector<double> battery_levels;
  double consumed = 0.0;
  std::uint64_t events = 0;
};

RunResult run_engine(const SimConfig& cfg, WorldEngine engine) {
  World w(cfg, engine);
  RunResult out;
  w.set_tracer([&out](const World::TraceEvent& ev) { out.trace.push_back(ev); });
  w.run_until(cfg.sim_duration);
  out.report_json = to_json(w.report());
  out.battery_levels.reserve(w.network().num_sensors());
  for (const Sensor& s : w.network().sensors()) {
    out.battery_levels.push_back(s.battery.level().value());
  }
  out.consumed = w.sensor_energy_consumed().value();
  out.events = w.events_processed();
  // The O(1) counters must agree with a from-scratch rescan at any time the
  // world is settled; the public snapshot uses whichever the engine keeps.
  EXPECT_EQ(w.snapshot().alive_sensors, w.network().alive_count());
  return out;
}

void expect_identical(const SimConfig& cfg, const std::string& what) {
  const RunResult inc = run_engine(cfg, WorldEngine::kIncremental);
  const RunResult ref = run_engine(cfg, WorldEngine::kReference);

  EXPECT_GT(inc.events, 0u) << what;
  EXPECT_EQ(inc.report_json, ref.report_json) << what;
  EXPECT_EQ(inc.events, ref.events) << what;
  EXPECT_EQ(inc.consumed, ref.consumed) << what;  // bit-exact, no tolerance

  ASSERT_EQ(inc.trace.size(), ref.trace.size()) << what;
  for (std::size_t i = 0; i < inc.trace.size(); ++i) {
    const auto& a = inc.trace[i];
    const auto& b = ref.trace[i];
    ASSERT_TRUE(a.time == b.time && a.kind == b.kind && a.subject == b.subject &&
                a.epoch == b.epoch && a.queue_size == b.queue_size)
        << what << " diverges at trace index " << i << ": t=" << a.time
        << " kind=" << kind_name(a.kind) << " subject=" << a.subject << " vs t="
        << b.time << " kind=" << kind_name(b.kind) << " subject=" << b.subject;
  }

  ASSERT_EQ(inc.battery_levels.size(), ref.battery_levels.size()) << what;
  for (std::size_t s = 0; s < inc.battery_levels.size(); ++s) {
    ASSERT_EQ(inc.battery_levels[s], ref.battery_levels[s])
        << what << " battery diverges at sensor " << s;
  }
}

// 25 seeds x 2 motions x 2 activation policies x 2 schedulers = 200
// randomized instances, every one required to match bit-for-bit.
TEST(WorldEquivalence, RandomizedInstancesMatchBitForBit) {
  const TargetMotion motions[] = {TargetMotion::kRandomWaypoint,
                                  TargetMotion::kTeleport};
  const ActivationPolicy activations[] = {ActivationPolicy::kRoundRobin,
                                          ActivationPolicy::kFullTime};
  const std::string schedulers[] = {"combined", "greedy"};
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    for (const TargetMotion motion : motions) {
      for (const ActivationPolicy activation : activations) {
        for (const std::string& scheduler : schedulers) {
          const Scenario sc{seed, motion, activation, scheduler};
          expect_identical(eq_config(sc), describe(sc));
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

// The fault subsystem layered on top: same plan, both engines, still
// bit-identical. Covers uplink loss/delay/retry, a pinned breakdown with
// failover, random breakdowns, transient hardware faults and battery noise
// all at once — divergence here means a fault handler updated incremental
// state without the matching reference-path effect (or vice versa).
SimConfig fault_eq_config(const Scenario& sc) {
  SimConfig cfg = eq_config(sc);
  cfg.fault.enabled = true;
  cfg.fault.request_loss_prob = 0.25;
  cfg.fault.request_delay_prob = 0.2;
  cfg.fault.request_delay_max = minutes(10.0);
  cfg.fault.request_retry_timeout = minutes(5.0);
  cfg.fault.rv_breakdown_at = hours(2.0);
  cfg.fault.rv_repair_duration = hours(1.0);
  cfg.fault.rv_mtbf_hours = 8.0;
  cfg.fault.sensor_fault_rate_per_day = 6.0;
  cfg.fault.sensor_fault_duration = minutes(40.0);
  cfg.fault.battery_noise_per_day = 0.05;
  return cfg;
}

TEST(WorldEquivalence, FaultEnabledInstancesMatchBitForBit) {
  const ActivationPolicy activations[] = {ActivationPolicy::kRoundRobin,
                                          ActivationPolicy::kFullTime};
  const std::string schedulers[] = {"combined", "greedy"};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    for (const ActivationPolicy activation : activations) {
      for (const std::string& scheduler : schedulers) {
        Scenario sc{seed, TargetMotion::kRandomWaypoint, activation, scheduler};
        expect_identical(fault_eq_config(sc), "faults on, " + describe(sc));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

// Every registered policy, both engines, faults off and on: the policy
// extraction must leave each scheme's trace bit-identical regardless of the
// engine maintaining derived state. New registry entries are swept
// automatically.
TEST(WorldEquivalence, AllRegisteredPoliciesMatchBitForBit) {
  for (const std::string& scheduler : scheduler_names()) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      for (const bool faults : {false, true}) {
        Scenario sc{seed, TargetMotion::kRandomWaypoint,
                    ActivationPolicy::kRoundRobin, scheduler};
        const SimConfig cfg = faults ? fault_eq_config(sc) : eq_config(sc);
        expect_identical(cfg, (faults ? "faults on, " : "faults off, ") +
                                  describe(sc));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

// Same config, same engine, run twice: the fault plan and every downstream
// decision must reproduce exactly (no hidden global state).
TEST(WorldEquivalence, FaultRunsAreReproducible) {
  Scenario sc;
  sc.seed = 3;
  const SimConfig cfg = fault_eq_config(sc);
  const RunResult a = run_engine(cfg, WorldEngine::kIncremental);
  const RunResult b = run_engine(cfg, WorldEngine::kIncremental);
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.battery_levels, b.battery_levels);
}

// Fault injection must behave identically under both engines, including the
// hardest case: killing an active monitor mid-run, which forces a rotor
// advance, a monitor handover and a routing-tree rebuild.
TEST(WorldEquivalence, InjectedMonitorDeathMatchesAcrossEngines) {
  Scenario sc;
  sc.seed = 11;
  const SimConfig cfg = eq_config(sc);

  World inc(cfg, WorldEngine::kIncremental);
  World ref(cfg, WorldEngine::kReference);
  inc.run_until(hours(1.0));
  ref.run_until(hours(1.0));

  // Both engines are in the same state, so the same sensor is the monitor.
  SensorId victim = kInvalidId;
  for (TargetId t = 0; t < cfg.num_targets; ++t) {
    const SensorId m = inc.active_monitor(t);
    if (m != kInvalidId && inc.network().sensor(m).alive()) {
      victim = m;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidId) << "instance has no alive monitor";
  ASSERT_EQ(victim, [&] {
    for (TargetId t = 0; t < cfg.num_targets; ++t) {
      const SensorId m = ref.active_monitor(t);
      if (m != kInvalidId && ref.network().sensor(m).alive()) return m;
    }
    return kInvalidId;
  }());

  inc.inject_sensor_failure(victim);
  ref.inject_sensor_failure(victim);
  EXPECT_FALSE(inc.network().sensor(victim).alive());
  EXPECT_FALSE(inc.network().sensor(victim).monitoring);

  inc.run_until(cfg.sim_duration);
  ref.run_until(cfg.sim_duration);

  EXPECT_EQ(to_json(inc.report()), to_json(ref.report()));
  EXPECT_GE(inc.report().sensor_deaths, 1u);
  for (SensorId s = 0; s < inc.network().num_sensors(); ++s) {
    ASSERT_EQ(inc.network().sensor(s).battery.level().value(),
              ref.network().sensor(s).battery.level().value())
        << "battery diverges at sensor " << s;
  }
}

// WRSN_REFERENCE_WORLD picks the engine for the default constructor, read
// per construction (not cached) so tests can toggle it.
TEST(WorldEquivalence, EnvironmentVariableSelectsEngine) {
  Scenario sc;
  const SimConfig cfg = eq_config(sc);

  ::unsetenv("WRSN_REFERENCE_WORLD");
  EXPECT_EQ(World(cfg).engine(), WorldEngine::kIncremental);

  ::setenv("WRSN_REFERENCE_WORLD", "1", 1);
  EXPECT_EQ(World(cfg).engine(), WorldEngine::kReference);

  ::setenv("WRSN_REFERENCE_WORLD", "0", 1);
  EXPECT_EQ(World(cfg).engine(), WorldEngine::kIncremental);

  ::unsetenv("WRSN_REFERENCE_WORLD");
  EXPECT_EQ(World(cfg).engine(), WorldEngine::kIncremental);
}

}  // namespace
}  // namespace wrsn
