// Checkpoint/restore equivalence: save-at-t then restore-and-run must be
// BYTE-IDENTICAL to an uninterrupted run — report JSON, event trace, final
// battery bit patterns, span files — across both world engines, both event
// queue implementations, with and without fault injection, with the snapshot
// taken at a pseudo-random event index of each run. Any divergence pinpoints
// a member missing from SnapshotAccess::io or a restore that recomputes
// state instead of reinstating it.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "obs/spans.hpp"
#include "sim/snapshot.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

struct Scenario {
  std::uint64_t seed = 0;
  WorldEngine engine = WorldEngine::kIncremental;
  std::string queue = "calendar";
  bool faults = false;
};

std::string describe(const Scenario& sc) {
  std::ostringstream os;
  os << "seed=" << sc.seed
     << " engine=" << (sc.engine == WorldEngine::kIncremental ? "incremental" : "reference")
     << " queue=" << sc.queue << " faults=" << (sc.faults ? "on" : "off");
  return os.str();
}

// Small, battery-stressed instances (the test_world_equivalence recipe):
// deaths, recharge tours, target moves and — when enabled — uplink faults,
// breakdowns and hw-fault windows all fire within a short horizon.
SimConfig eq_config(const Scenario& sc) {
  SimConfig cfg;
  cfg.num_sensors = 36 + (sc.seed % 3) * 12;  // 36..60
  cfg.num_targets = 4;
  cfg.num_rvs = 2;
  cfg.field_side = meters(90.0);
  cfg.sim_duration = hours(3.0);
  cfg.seed = 0xC0DE + sc.seed * 7919;
  cfg.target_motion = sc.seed % 2 == 0 ? TargetMotion::kRandomWaypoint
                                       : TargetMotion::kTeleport;
  cfg.target_period = minutes(30.0);
  cfg.target_speed = MeterPerSecond{1.0};
  cfg.scheduler = "combined";
  cfg.battery.capacity = Joule{150.0};
  cfg.radio.listen_duty_cycle = 0.2;
  cfg.event_queue = sc.queue;
  if (sc.faults) {
    cfg.fault.enabled = true;
    cfg.fault.request_loss_prob = 0.2;
    cfg.fault.request_delay_prob = 0.1;
    cfg.fault.request_retry_timeout = minutes(5.0);
    cfg.fault.rv_mtbf_hours = 4.0;
    cfg.fault.rv_repair_duration = hours(1.0);
    cfg.fault.sensor_fault_rate_per_day = 4.0;
    cfg.fault.sensor_fault_duration = minutes(30.0);
    cfg.fault.battery_noise_per_day = 0.05;
  }
  return cfg;
}

struct RunResult {
  std::string report_json;
  std::vector<World::TraceEvent> trace;
  std::vector<std::uint64_t> battery_bits;
  std::uint64_t consumed_bits = 0;
  std::uint64_t events = 0;
  std::string span_jsonl;
};

void harvest(World& w, RunResult& out) {
  out.report_json = to_json(w.report());
  out.battery_bits.clear();
  for (const Sensor& s : w.network().sensors()) {
    out.battery_bits.push_back(std::bit_cast<std::uint64_t>(s.battery.level().value()));
  }
  out.consumed_bits = std::bit_cast<std::uint64_t>(w.sensor_energy_consumed().value());
  out.events = w.events_processed();
}

// Uninterrupted golden run.
RunResult run_golden(const SimConfig& cfg, WorldEngine engine) {
  RunResult out;
  std::ostringstream span_out;
  obs::JsonlSpanSink sink(span_out);
  obs::SpanLog spans(&sink);
  World w(cfg, engine);
  w.set_tracer([&out](const World::TraceEvent& ev) { out.trace.push_back(ev); });
  w.set_span_log(&spans);
  w.run_until(cfg.sim_duration);
  spans.finish(w.now().value());
  harvest(w, out);
  out.span_jsonl = span_out.str();
  return out;
}

// Everything after the first line (the sink's meta record): a restored run
// opens a fresh sink, so its meta line is a duplicate when stitching.
std::string strip_meta_line(const std::string& jsonl) {
  const auto nl = jsonl.find('\n');
  return nl == std::string::npos ? std::string{} : jsonl.substr(nl + 1);
}

void expect_same(const RunResult& golden, const RunResult& got,
                 const std::string& what) {
  EXPECT_EQ(golden.report_json, got.report_json) << what;
  EXPECT_EQ(golden.battery_bits, got.battery_bits) << what;
  EXPECT_EQ(golden.consumed_bits, got.consumed_bits) << what;
  EXPECT_EQ(golden.events, got.events) << what;
  ASSERT_EQ(golden.trace.size(), got.trace.size()) << what;
  for (std::size_t i = 0; i < golden.trace.size(); ++i) {
    const auto& a = golden.trace[i];
    const auto& b = got.trace[i];
    ASSERT_TRUE(a.time == b.time && a.kind == b.kind && a.subject == b.subject &&
                a.epoch == b.epoch && a.queue_size == b.queue_size)
        << what << " trace diverges at event " << i;
  }
  EXPECT_EQ(golden.span_jsonl, got.span_jsonl) << what;
}

void expect_checkpoint_equivalent(const Scenario& sc) {
  const std::string what = describe(sc);
  const SimConfig cfg = eq_config(sc);
  const RunResult golden = run_golden(cfg, sc.engine);
  ASSERT_GT(golden.events, 2u) << what;

  // Snapshot index: pseudo-random in (0, events), derived from the scenario
  // so every instance stops somewhere else.
  Xoshiro256 pick = RngStreams(cfg.seed ^ 0x5A5A).stream("snapshot-index");
  const std::uint64_t stop_at = 1 + pick.uniform_int(golden.events - 1);

  // Part 1: run to the stop index, checkpoint, serialize through the full
  // file codec.
  RunResult stitched;
  std::ostringstream span_part1;
  WorldSnapshot snap;
  {
    obs::JsonlSpanSink sink(span_part1);
    obs::SpanLog spans(&sink);
    World w(cfg, sc.engine);
    w.set_tracer([&stitched](const World::TraceEvent& ev) { stitched.trace.push_back(ev); });
    w.set_span_log(&spans);
    w.set_checkpoint_hook(
        [stop_at](const World& world) { return world.events_processed() >= stop_at; });
    w.run_until(cfg.sim_duration);
    ASSERT_FALSE(w.finished()) << what;
    ASSERT_EQ(w.events_processed(), stop_at) << what;
    snap = deserialize_snapshot(serialize_snapshot(w.checkpoint()));
    sink.finish();
  }

  // Restore → re-checkpoint must be a fixed point (proves load reinstates
  // exactly what save captured, with nothing recomputed differently).
  {
    World restored(snap);
    const WorldSnapshot again = restored.checkpoint();
    EXPECT_EQ(again.state, snap.state) << what << " (restore is not a fixed point)";
    EXPECT_EQ(again.now, snap.now) << what;
    EXPECT_EQ(again.config_text, snap.config_text) << what;
  }

  // Part 2: restore into a fresh world (fresh span log deserialized from the
  // snapshot, fresh sinks) and run to the horizon.
  std::ostringstream span_part2;
  {
    obs::JsonlSpanSink sink(span_part2);
    obs::SpanLog spans(&sink);
    if (!snap.span_state.empty()) {
      BinReader r(snap.span_state);
      spans.deserialize(r);
      r.expect_end();
    }
    World w(snap);
    w.set_tracer([&stitched](const World::TraceEvent& ev) { stitched.trace.push_back(ev); });
    w.set_span_log(&spans);
    w.run_until(cfg.sim_duration);
    EXPECT_TRUE(w.finished()) << what;
    spans.finish(w.now().value());
    harvest(w, stitched);
  }
  stitched.span_jsonl = span_part1.str() + strip_meta_line(span_part2.str());
  expect_same(golden, stitched, what);
}

class SnapshotEquivalence : public testing::TestWithParam<Scenario> {};

TEST_P(SnapshotEquivalence, RestoredRunIsByteIdentical) {
  expect_checkpoint_equivalent(GetParam());
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (const WorldEngine engine : {WorldEngine::kIncremental, WorldEngine::kReference}) {
    for (const std::string& queue : {std::string("calendar"), std::string("heap")}) {
      for (const bool faults : {false, true}) {
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
          out.push_back({seed, engine, queue, faults});
        }
      }
    }
  }
  return out;  // 2 x 2 x 2 x 5 = 40 instances
}

std::string scenario_name(const testing::TestParamInfo<Scenario>& info) {
  const Scenario& sc = info.param;
  std::ostringstream os;
  os << (sc.engine == WorldEngine::kIncremental ? "inc" : "ref") << "_"
     << sc.queue << "_" << (sc.faults ? "faults" : "clean") << "_s" << sc.seed;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(AllEnginesQueuesFaults, SnapshotEquivalence,
                         testing::ValuesIn(scenarios()), scenario_name);

// Resuming the SAME world object after a hook stop (hook cleared) must also
// match the golden run: checkpoint capture is observational.
TEST(SnapshotEquivalence, InProcessResumeAfterHookStop) {
  const Scenario sc{3, WorldEngine::kIncremental, "calendar", true};
  const SimConfig cfg = eq_config(sc);
  const RunResult golden = run_golden(cfg, sc.engine);
  ASSERT_GT(golden.events, 2u);

  RunResult resumed;
  std::ostringstream span_out;
  obs::JsonlSpanSink sink(span_out);
  obs::SpanLog spans(&sink);
  World w(cfg, sc.engine);
  w.set_tracer([&resumed](const World::TraceEvent& ev) { resumed.trace.push_back(ev); });
  w.set_span_log(&spans);
  const std::uint64_t stop_at = golden.events / 2;
  w.set_checkpoint_hook(
      [stop_at](const World& world) { return world.events_processed() >= stop_at; });
  w.run_until(cfg.sim_duration);
  ASSERT_FALSE(w.finished());
  (void)w.checkpoint();  // capture and discard: must not perturb the run
  w.set_checkpoint_hook(nullptr);
  w.run_until(cfg.sim_duration);
  ASSERT_TRUE(w.finished());
  spans.finish(w.now().value());
  harvest(w, resumed);
  resumed.span_jsonl = span_out.str();
  expect_same(golden, resumed, "in-process resume");
}

// A snapshot taken between run_until calls (settled horizon, no hook) also
// restores byte-identically. The golden here is the same SPLIT run without a
// snapshot: run_until(1h) settles batteries at the 1h horizon, which regroups
// the lazy-settlement FP sums at ULP level relative to one uninterrupted
// run_until(3h) — a pre-existing property of horizon settlement, orthogonal
// to checkpointing. Snapshotting must add no divergence on top of it.
TEST(SnapshotEquivalence, QuiescentSnapshotBetweenRuns) {
  const Scenario sc{1, WorldEngine::kIncremental, "calendar", false};
  const SimConfig cfg = eq_config(sc);
  RunResult golden;
  {
    World w(cfg, sc.engine);
    w.run_until(hours(1.0));
    w.run_until(cfg.sim_duration);
    harvest(w, golden);
  }

  std::ostringstream span_dummy;
  obs::JsonlSpanSink sink(span_dummy);
  obs::SpanLog spans(&sink);
  World w(cfg, sc.engine);
  w.set_span_log(&spans);
  w.run_until(hours(1.0));
  const WorldSnapshot snap =
      deserialize_snapshot(serialize_snapshot(w.checkpoint()));

  std::ostringstream span2;
  obs::JsonlSpanSink sink2(span2);
  obs::SpanLog spans2(&sink2);
  BinReader r(snap.span_state);
  spans2.deserialize(r);
  World restored(snap);
  restored.set_span_log(&spans2);
  restored.run_until(cfg.sim_duration);
  EXPECT_TRUE(restored.finished());
  RunResult got;
  harvest(restored, got);
  EXPECT_EQ(golden.report_json, got.report_json);
  EXPECT_EQ(golden.battery_bits, got.battery_bits);
}

}  // namespace
}  // namespace wrsn
