// Heisenberg tests: observation features (time series, tracer, sampling
// cadence) must never perturb the simulated physics.
#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig obs_config() {
  SimConfig cfg;
  cfg.num_sensors = 130;
  cfg.num_targets = 5;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = days(5.0);
  cfg.radio.listen_duty_cycle = 0.2;
  cfg.seed = 20101;
  return cfg;
}

void expect_same_physics(const MetricsReport& a, const MetricsReport& b) {
  EXPECT_DOUBLE_EQ(a.rv_travel_distance.value(), b.rv_travel_distance.value());
  EXPECT_DOUBLE_EQ(a.energy_recharged.value(), b.energy_recharged.value());
  EXPECT_DOUBLE_EQ(a.coverage_ratio, b.coverage_ratio);
  EXPECT_DOUBLE_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.sensor_deaths, b.sensor_deaths);
  EXPECT_EQ(a.recharge_requests, b.recharge_requests);
  EXPECT_EQ(a.sensors_recharged, b.sensors_recharged);
}

TEST(Observability, TimeSeriesRecordingDoesNotPerturb) {
  World plain(obs_config());
  World observed(obs_config());
  observed.enable_time_series(true);
  expect_same_physics(plain.run(), observed.run());
  EXPECT_FALSE(observed.time_series().empty());
}

TEST(Observability, TracerDoesNotPerturb) {
  World plain(obs_config());
  World traced(obs_config());
  std::size_t events = 0;
  traced.set_tracer([&](const World::TraceEvent&) { ++events; });
  expect_same_physics(plain.run(), traced.run());
  EXPECT_GT(events, 100u);
}

TEST(Observability, SamplePeriodDoesNotPerturbPhysics) {
  SimConfig coarse = obs_config();
  coarse.metrics_sample_period = hours(12.0);
  SimConfig fine = obs_config();
  fine.metrics_sample_period = minutes(10.0);
  World a(coarse), b(fine);
  expect_same_physics(a.run(), b.run());
}

TEST(Observability, SnapshotQueryIsPure) {
  World w(obs_config());
  w.run_until(days(1.0));
  const StateSnapshot s1 = w.snapshot();
  const StateSnapshot s2 = w.snapshot();
  EXPECT_EQ(s1.covered_targets, s2.covered_targets);
  EXPECT_EQ(s1.alive_sensors, s2.alive_sensors);
  EXPECT_DOUBLE_EQ(s1.delivery_rate_pps, s2.delivery_rate_pps);
  // Querying does not advance time or change outcomes.
  World untouched(obs_config());
  untouched.run_until(days(1.0));
  w.run_until(days(5.0));
  untouched.run_until(days(5.0));
  expect_same_physics(w.report(), untouched.report());
}

TEST(Observability, ReportIsIdempotentMidRun) {
  World w(obs_config());
  w.run_until(days(2.0));
  const MetricsReport r1 = w.report();
  const MetricsReport r2 = w.report();
  expect_same_physics(r1, r2);
  EXPECT_DOUBLE_EQ(r1.duration.value(), days(2.0).value());
}

TEST(Observability, JsonSerializationIsStableForAReport) {
  World w(obs_config());
  const MetricsReport r = w.run();
  EXPECT_EQ(to_json(r), to_json(r));
}

}  // namespace
}  // namespace wrsn
