// Heisenberg tests: observation features (time series, tracer, telemetry
// registry, trace sinks, sampling cadence) must never perturb the simulated
// physics.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig obs_config() {
  SimConfig cfg;
  cfg.num_sensors = 130;
  cfg.num_targets = 5;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = days(5.0);
  cfg.radio.listen_duty_cycle = 0.2;
  cfg.seed = 20101;
  return cfg;
}

void expect_same_physics(const MetricsReport& a, const MetricsReport& b) {
  EXPECT_DOUBLE_EQ(a.rv_travel_distance.value(), b.rv_travel_distance.value());
  EXPECT_DOUBLE_EQ(a.energy_recharged.value(), b.energy_recharged.value());
  EXPECT_DOUBLE_EQ(a.coverage_ratio, b.coverage_ratio);
  EXPECT_DOUBLE_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.sensor_deaths, b.sensor_deaths);
  EXPECT_EQ(a.recharge_requests, b.recharge_requests);
  EXPECT_EQ(a.sensors_recharged, b.sensors_recharged);
}

TEST(Observability, TimeSeriesRecordingDoesNotPerturb) {
  World plain(obs_config());
  World observed(obs_config());
  observed.enable_time_series(true);
  expect_same_physics(plain.run(), observed.run());
  EXPECT_FALSE(observed.time_series().empty());
}

TEST(Observability, TracerDoesNotPerturb) {
  World plain(obs_config());
  World traced(obs_config());
  std::size_t events = 0;
  traced.set_tracer([&](const World::TraceEvent&) { ++events; });
  expect_same_physics(plain.run(), traced.run());
  EXPECT_GT(events, 100u);
}

TEST(Observability, SamplePeriodDoesNotPerturbPhysics) {
  SimConfig coarse = obs_config();
  coarse.metrics_sample_period = hours(12.0);
  SimConfig fine = obs_config();
  fine.metrics_sample_period = minutes(10.0);
  World a(coarse), b(fine);
  expect_same_physics(a.run(), b.run());
}

TEST(Observability, SnapshotQueryIsPure) {
  World w(obs_config());
  w.run_until(days(1.0));
  const StateSnapshot s1 = w.snapshot();
  const StateSnapshot s2 = w.snapshot();
  EXPECT_EQ(s1.covered_targets, s2.covered_targets);
  EXPECT_EQ(s1.alive_sensors, s2.alive_sensors);
  EXPECT_DOUBLE_EQ(s1.delivery_rate_pps, s2.delivery_rate_pps);
  // Querying does not advance time or change outcomes.
  World untouched(obs_config());
  untouched.run_until(days(1.0));
  w.run_until(days(5.0));
  untouched.run_until(days(5.0));
  expect_same_physics(w.report(), untouched.report());
}

TEST(Observability, ReportIsIdempotentMidRun) {
  World w(obs_config());
  w.run_until(days(2.0));
  const MetricsReport r1 = w.report();
  const MetricsReport r2 = w.report();
  expect_same_physics(r1, r2);
  EXPECT_DOUBLE_EQ(r1.duration.value(), days(2.0).value());
}

TEST(Observability, JsonSerializationIsStableForAReport) {
  World w(obs_config());
  const MetricsReport r = w.run();
  EXPECT_EQ(to_json(r), to_json(r));
}

TEST(Observability, TelemetryRegistryDoesNotPerturb) {
  World plain(obs_config());
  World instrumented(obs_config());
  obs::TelemetryRegistry registry;
  instrumented.set_telemetry(&registry);
  const MetricsReport a = plain.run();
  const MetricsReport b = instrumented.run();
  expect_same_physics(a, b);
  // The whole report must be byte-identical, not just the spot checks.
  EXPECT_EQ(to_json(a), to_json(b));
  // ...and the registry actually observed the run.
  EXPECT_GT(registry.counter("events/popped/metrics-sample").value(), 0u);
  EXPECT_GT(registry.gauge("events/queue-high-water").value(), 0.0);
  EXPECT_GT(registry.timer("planner/greedy").count(), 0u);
}

TEST(Observability, TraceSinkDoesNotPerturb) {
  World plain(obs_config());
  World traced(obs_config());
  std::ostringstream jsonl;
  obs::JsonlTraceSink sink(jsonl);
  traced.set_trace_sink(&sink);
  const MetricsReport a = plain.run();
  const MetricsReport b = traced.run();
  sink.finish();
  expect_same_physics(a, b);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_GT(sink.events_written(), 100u);
  std::istringstream lines(jsonl.str());
  std::string line, error;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(json_validate(line, &error)) << error << ": " << line;
  }
}

TEST(Observability, DisabledTelemetryAddsNoEvents) {
  // A registry that is never attached must stay empty even while other
  // worlds run: scope installation is per-thread and per-run.
  obs::TelemetryRegistry unattached;
  World w(obs_config());
  w.run();
  EXPECT_TRUE(unattached.empty());
  EXPECT_EQ(obs::current_registry(), nullptr);
}

TEST(Observability, TraceEventsCarryEpochAndQueueDepth) {
  World w(obs_config());
  std::size_t events = 0;
  std::size_t max_queue = 0;
  w.set_tracer([&](const World::TraceEvent& ev) {
    ++events;
    max_queue = std::max(max_queue, ev.queue_size);
  });
  w.run();
  EXPECT_GT(events, 100u);
  // A live simulation always has pending events while it runs.
  EXPECT_GT(max_queue, 0u);
}

}  // namespace
}  // namespace wrsn
