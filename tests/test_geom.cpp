#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "geom/coverage.hpp"
#include "geom/grid.hpp"
#include "geom/vec2.hpp"

namespace wrsn {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -0.5}));
}

TEST(Vec2, DotNormDistance) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(squared_norm({3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2, Lerp) {
  const Vec2 a{0, 0};
  const Vec2 b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5, 10}));
}

class SpatialGridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Xoshiro256 rng(42);
    points_.reserve(300);
    for (int i = 0; i < 300; ++i) {
      points_.push_back({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)});
    }
  }
  std::vector<Vec2> points_;
};

TEST_F(SpatialGridTest, RadiusQueryMatchesBruteForce) {
  SpatialGrid grid(200.0, 12.0);
  grid.build(points_);
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
    const double r = rng.uniform(1.0, 40.0);
    auto got = grid.query_radius(q, r);
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (distance(points_[i], q) <= r) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST_F(SpatialGridTest, NearestMatchesBruteForce) {
  SpatialGrid grid(200.0, 8.0);
  grid.build(points_);
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 q{rng.uniform(-10.0, 210.0), rng.uniform(-10.0, 210.0)};
    const std::size_t got = grid.nearest(q);
    double best = std::numeric_limits<double>::infinity();
    std::size_t want = 0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const double d = squared_distance(points_[i], q);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    EXPECT_DOUBLE_EQ(squared_distance(points_[got], q), best) << "trial " << trial;
    EXPECT_EQ(got, want);
  }
}

TEST(SpatialGrid, EmptyGridQueriesAreEmpty) {
  SpatialGrid grid(100.0, 10.0);
  grid.build({});
  EXPECT_TRUE(grid.query_radius({50, 50}, 30.0).empty());
  EXPECT_THROW((void)grid.nearest({50, 50}), InvalidArgument);
}

TEST(SpatialGrid, SinglePoint) {
  SpatialGrid grid(100.0, 10.0);
  grid.build({{5.0, 5.0}});
  EXPECT_EQ(grid.nearest({99.0, 99.0}), 0u);
  EXPECT_EQ(grid.query_radius({5.0, 5.0}, 0.1).size(), 1u);
}

TEST(SpatialGrid, PointsOnBoundary) {
  SpatialGrid grid(100.0, 10.0);
  grid.build({{0.0, 0.0}, {100.0, 100.0}, {0.0, 100.0}, {100.0, 0.0}});
  EXPECT_EQ(grid.query_radius({0.0, 0.0}, 1.0), std::vector<std::size_t>{0});
  EXPECT_EQ(grid.query_radius({50.0, 50.0}, 200.0).size(), 4u);
}

TEST(SpatialGrid, InvalidConstruction) {
  EXPECT_THROW(SpatialGrid(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(SpatialGrid(10.0, 0.0), InvalidArgument);
}

TEST(SpatialGrid, DuplicatePointsAllReturned) {
  SpatialGrid grid(10.0, 2.0);
  grid.build({{3.0, 3.0}, {3.0, 3.0}, {3.0, 3.0}});
  EXPECT_EQ(grid.query_radius({3.0, 3.0}, 0.5).size(), 3u);
}

TEST(SpatialGrid, NearestOnSparseGridMatchesBruteForce) {
  // A handful of points in a big field: the ring expansion has to cross
  // many empty rings and must not stop early on the first hit when a closer
  // point can still live in the next ring's corner.
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Vec2> points;
    const std::size_t n = 1 + rng.uniform_int(6);
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back({rng.uniform(0.0, 5000.0), rng.uniform(0.0, 5000.0)});
    }
    SpatialGrid grid(5000.0, 50.0);
    grid.build(points);
    const Vec2 q{rng.uniform(-100.0, 5100.0), rng.uniform(-100.0, 5100.0)};
    double best = std::numeric_limits<double>::infinity();
    std::size_t want = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d = squared_distance(points[i], q);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    EXPECT_EQ(grid.nearest(q), want) << "trial " << trial;
  }
}

TEST_F(SpatialGridTest, CountAndAnyMatchQueryRadius) {
  SpatialGrid grid(200.0, 9.0);
  grid.build(points_);
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q{rng.uniform(-20.0, 220.0), rng.uniform(-20.0, 220.0)};
    const double r = rng.uniform(0.5, 60.0);
    const auto ids = grid.query_radius(q, r);
    EXPECT_EQ(grid.count_in_radius(q, r), ids.size()) << "trial " << trial;
    EXPECT_EQ(grid.any_in_radius(q, r), !ids.empty()) << "trial " << trial;
    std::vector<std::size_t> via_each;
    grid.for_each_in_radius(q, r, [&](std::size_t id) { via_each.push_back(id); });
    std::sort(via_each.begin(), via_each.end());
    EXPECT_EQ(via_each, ids) << "trial " << trial;
  }
}

TEST(Coverage, Eq1MatchesPaperFormula) {
  // N = 3*sqrt(3)*S_a / (2*pi^2*r^2), Table II: L=200, d_s=8.
  const double expected =
      3.0 * std::sqrt(3.0) * 200.0 * 200.0 /
      (2.0 * std::numbers::pi * std::numbers::pi * 8.0 * 8.0);
  EXPECT_EQ(min_sensors_for_coverage(200.0 * 200.0, 8.0),
            static_cast<std::size_t>(std::ceil(expected)));
}

TEST(Coverage, Eq1ScalesInverselyWithRangeSquared) {
  const auto n1 = min_sensors_for_coverage(1e4, 4.0);
  const auto n2 = min_sensors_for_coverage(1e4, 8.0);
  // Doubling the range divides the requirement by ~4 (up to ceil effects).
  EXPECT_NEAR(static_cast<double>(n1) / static_cast<double>(n2), 4.0, 0.15);
}

TEST(Coverage, Eq1Validation) {
  EXPECT_THROW((void)min_sensors_for_coverage(0.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)min_sensors_for_coverage(1.0, 0.0), InvalidArgument);
}

TEST(Coverage, ExpectedDegreeTableII) {
  // 500 sensors, L=200, r=8: lambda = 500*pi*64/40000 ~= 2.513.
  EXPECT_NEAR(expected_coverage_degree(500, 200.0, 8.0), 2.513, 0.01);
}

TEST(Coverage, ExpectedDegreeMonteCarlo) {
  Xoshiro256 rng(99);
  std::vector<Vec2> sensors;
  for (int i = 0; i < 500; ++i) {
    sensors.push_back({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)});
  }
  SpatialGrid grid(200.0, 8.0);
  grid.build(sensors);
  double total = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    // Sample interior points to avoid boundary truncation.
    const Vec2 q{rng.uniform(20.0, 180.0), rng.uniform(20.0, 180.0)};
    total += static_cast<double>(grid.query_radius(q, 8.0).size());
  }
  EXPECT_NEAR(total / trials, expected_coverage_degree(500, 200.0, 8.0), 0.25);
}

}  // namespace
}  // namespace wrsn
