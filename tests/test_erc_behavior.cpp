// End-to-end behavioural tests of Energy Request Control (Section III-B):
// the ERP trigger semantics observed through the full simulation, not just
// the erp_trigger_count unit.
#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace wrsn {
namespace {

// One stationary target covered by the whole (tiny) network so the cluster
// composition is known; high listening duty so thresholds cross quickly.
SimConfig one_cluster_config(double erp) {
  SimConfig cfg;
  cfg.num_sensors = 8;
  cfg.num_targets = 1;
  cfg.num_rvs = 1;
  cfg.field_side = meters(10.0);
  cfg.sensing_range = meters(15.0);  // everyone covers the target
  cfg.comm_range = meters(20.0);     // fully connected
  cfg.target_period = days(30.0);    // effectively static target
  cfg.sim_duration = days(10.0);
  cfg.energy_request_percentage = erp;
  cfg.radio.listen_duty_cycle = 0.5;
  cfg.seed = 99;
  return cfg;
}

// Fine-grained scan (~3 simulated minutes) for the first pending request;
// returns {time, pending count at that moment}.
std::pair<double, std::size_t> first_request(World& w) {
  const double step = 0.002;  // days
  for (double t = step; t <= 10.0; t += step) {
    w.run_until(days(t));
    if (!w.recharge_list().empty() || w.report().recharge_requests > 0) {
      return {w.now().value(), w.recharge_list().size()};
    }
  }
  return {-1.0, 0};
}

TEST(ErcBehavior, AllSensorsJoinTheSingleCluster) {
  World w(one_cluster_config(0.5));
  EXPECT_EQ(w.clusters().members[0].size(), 8u);
}

TEST(ErcBehavior, HigherErpPostponesFirstRequest) {
  // Round-robin balances the members' drains, so the whole cluster crosses
  // the threshold within a few rotation slots of each other — the K=1
  // release is later than the K=0 one by that spread, not by a large
  // factor. Assert strict postponement by at least one rotation slot.
  World w0(one_cluster_config(0.0));
  World w1(one_cluster_config(1.0));
  const auto [t0, n0] = first_request(w0);
  const auto [t1, n1] = first_request(w1);
  ASSERT_GT(t0, 0.0) << "no request at ERP 0 within the horizon";
  ASSERT_GT(t1, 0.0) << "no request at ERP 1 within the horizon";
  EXPECT_GT(t1, t0);
  // K=0 trickles (first release is a single node); K=1 releases the batch.
  EXPECT_LE(n0, 2u);
  EXPECT_GE(n1, 7u);
}

TEST(ErcBehavior, Erp1ReleasesWholeClusterTogether) {
  SimConfig cfg = one_cluster_config(1.0);
  World w(cfg);
  // Step until requests appear, then check the batch size: with K=1 all
  // below-threshold members request simultaneously.
  for (double t = 0.05; t <= 10.0; t += 0.05) {
    w.run_until(days(t));
    if (!w.recharge_list().empty()) break;
  }
  ASSERT_FALSE(w.recharge_list().empty());
  // The whole cluster fell below threshold before anyone was allowed to
  // request, so the batch is the full cluster (minus any already claimed by
  // the instantly-dispatched RV, which retains them in the list until
  // served).
  EXPECT_GE(w.recharge_list().size(), 7u);
}

TEST(ErcBehavior, Erp0ServesAcrossTheWholeHorizon) {
  // With K=0 requests trickle in as sensors cross and the RV keeps up over
  // the long run: everything requested eventually gets served, coverage
  // stays near the structural level.
  SimConfig cfg = one_cluster_config(0.0);
  World w(cfg);
  const auto r = w.run();
  EXPECT_GT(r.recharge_requests, 8u);  // multiple recharge cycles completed
  EXPECT_LE(w.recharge_list().size() + 8, r.recharge_requests);
  EXPECT_GT(r.coverage_ratio, 0.9);
}

TEST(ErcBehavior, ErcOffEqualsErpZero) {
  SimConfig off = one_cluster_config(0.7);
  off.energy_request_control = false;
  SimConfig zero = one_cluster_config(0.0);
  zero.energy_request_control = true;
  World a(off), b(zero);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.recharge_requests, rb.recharge_requests);
  EXPECT_DOUBLE_EQ(ra.rv_travel_distance.value(), rb.rv_travel_distance.value());
}

TEST(ErcBehavior, UnclusteredSensorsBypassErc) {
  // Sensors that cover no target request immediately at threshold, whatever
  // the ERP (prior-work rule).
  SimConfig cfg;
  cfg.num_sensors = 10;
  cfg.num_targets = 0;  // nobody is clustered
  cfg.num_rvs = 1;
  cfg.field_side = meters(30.0);
  cfg.comm_range = meters(50.0);
  cfg.sim_duration = days(40.0);
  cfg.energy_request_percentage = 1.0;  // would postpone forever if applied
  cfg.radio.listen_duty_cycle = 0.5;
  World w(cfg);
  const auto r = w.run();
  EXPECT_GT(r.recharge_requests, 0u);
}

TEST(ErcBehavior, PerRvCountersConsistent) {
  SimConfig cfg = one_cluster_config(0.5);
  World w(cfg);
  const auto r = w.run();
  double rv_delivered = 0.0, rv_distance = 0.0;
  std::size_t rv_served = 0;
  for (const Rv& rv : w.rvs()) {
    rv_delivered += rv.energy_delivered;
    rv_distance += rv.distance_traveled;
    rv_served += rv.nodes_served;
  }
  EXPECT_NEAR(rv_delivered, r.energy_recharged.value(), 1e-6);
  EXPECT_NEAR(rv_distance, r.rv_travel_distance.value(), 1e-6);
  EXPECT_EQ(rv_served, r.sensors_recharged);
}

}  // namespace
}  // namespace wrsn
