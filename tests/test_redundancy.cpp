#include <gtest/gtest.h>

#include "activity/redundancy.hpp"

namespace wrsn {
namespace {

Network make_network(const SimConfig& cfg, std::uint64_t seed = 1) {
  RngStreams streams(seed);
  Xoshiro256 deploy = streams.stream("deployment");
  Xoshiro256 targets = streams.stream("target-placement");
  return Network(cfg, deploy, targets);
}

ClusterSet cluster(const Network& net) {
  std::vector<Vec2> spos, tpos;
  for (const Sensor& s : net.sensors()) spos.push_back(s.pos);
  for (const Target& t : net.targets()) tpos.push_back(t.pos);
  return balanced_clustering(spos, tpos, net.config().sensing_range.value());
}

TEST(Redundancy, DegreesMatchDirectQueries) {
  SimConfig cfg;
  cfg.num_sensors = 200;
  cfg.num_targets = 8;
  cfg.field_side = meters(120.0);
  Network net = make_network(cfg, 3);
  Xoshiro256 rng(1);
  const auto cs = cluster(net);
  const auto report = analyze_redundancy(net, cs, 4, 0, rng);
  ASSERT_EQ(report.degree_per_target.size(), 8u);
  for (TargetId t = 0; t < 8; ++t) {
    EXPECT_EQ(report.degree_per_target[t],
              net.sensors_covering(net.target(t).pos).size());
  }
  EXPECT_LE(report.min_degree, report.max_degree);
  EXPECT_GE(report.mean_degree, static_cast<double>(report.min_degree));
  EXPECT_LE(report.mean_degree, static_cast<double>(report.max_degree));
}

TEST(Redundancy, KCoverageIsMonotoneDecreasing) {
  SimConfig cfg;  // Table II density
  Network net = make_network(cfg, 7);
  Xoshiro256 rng(2);
  const auto cs = cluster(net);
  const auto report = analyze_redundancy(net, cs, 6, 20000, rng);
  ASSERT_EQ(report.k_coverage.size(), 7u);
  EXPECT_DOUBLE_EQ(report.k_coverage[0], 1.0);
  for (std::size_t k = 1; k < report.k_coverage.size(); ++k) {
    EXPECT_LE(report.k_coverage[k], report.k_coverage[k - 1] + 1e-12);
    EXPECT_GE(report.k_coverage[k], 0.0);
  }
  // Table II density: ~92% 1-coverage, expected degree ~2.5.
  EXPECT_GT(report.k_coverage[1], 0.85);
  EXPECT_LT(report.k_coverage[4], 0.60);
}

TEST(Redundancy, SleepFractionMatchesClusterSizes) {
  // Two clusters of sizes 3 and 2 -> sleepers (2+1)/(3+2) = 0.6.
  SimConfig cfg;
  cfg.num_sensors = 5;
  cfg.num_targets = 2;
  cfg.field_side = meters(100.0);
  Network net = make_network(cfg, 1);
  ClusterSet cs;
  cs.members = {{0, 1, 2}, {3, 4}};
  cs.assignment = {0, 0, 0, 1, 1};
  Xoshiro256 rng(3);
  const auto report = analyze_redundancy(net, cs, 1, 0, rng);
  EXPECT_DOUBLE_EQ(report.rr_sleep_fraction, 0.6);
}

TEST(Redundancy, EmptyClustersIgnored) {
  SimConfig cfg;
  cfg.num_sensors = 4;
  cfg.num_targets = 3;
  cfg.field_side = meters(50.0);
  Network net = make_network(cfg, 9);
  ClusterSet cs;
  cs.members = {{0, 1}, {}, {2}};
  cs.assignment = {0, 0, 2, kInvalidId};
  Xoshiro256 rng(4);
  const auto report = analyze_redundancy(net, cs, 1, 0, rng);
  // sleepers = 1 + 0, members = 3.
  EXPECT_NEAR(report.rr_sleep_fraction, 1.0 / 3.0, 1e-12);
}

TEST(Redundancy, UncoveredTargetsCounted) {
  SimConfig cfg;
  cfg.num_sensors = 1;
  cfg.num_targets = 6;
  cfg.field_side = meters(300.0);
  cfg.comm_range = meters(400.0);
  Network net = make_network(cfg, 11);
  Xoshiro256 rng(5);
  ClusterSet cs;
  cs.members.resize(6);
  cs.assignment.assign(1, kInvalidId);
  const auto report = analyze_redundancy(net, cs, 2, 0, rng);
  // One sensor in a 300 m field: most targets are uncovered.
  EXPECT_GE(report.uncovered_targets, 4u);
}

TEST(Redundancy, Validation) {
  SimConfig cfg;
  cfg.num_sensors = 2;
  cfg.num_targets = 1;
  Network net = make_network(cfg, 13);
  Xoshiro256 rng(6);
  ClusterSet cs;
  cs.members.resize(1);
  cs.assignment.assign(2, kInvalidId);
  EXPECT_THROW((void)analyze_redundancy(net, cs, 0, 0, rng), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
