// FaultPlan contract tests: determinism, order-independence of uplink
// verdicts, window generation, retry backoff, and the World-level fault
// behaviors (retry/TTL, hardware-fault coverage loss, battery noise).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fault/fault.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_sensors = 30;
  cfg.num_targets = 3;
  cfg.num_rvs = 2;
  cfg.field_side = meters(80.0);
  cfg.sim_duration = hours(12.0);
  cfg.seed = 0xfa17;
  cfg.battery.capacity = Joule{200.0};
  cfg.radio.listen_duty_cycle = 0.2;
  cfg.fault.enabled = true;
  return cfg;
}

TEST(FaultPlan, SameConfigYieldsIdenticalPlan) {
  SimConfig cfg = small_config();
  cfg.fault.rv_mtbf_hours = 4.0;
  cfg.fault.rv_repair_duration = hours(1.0);
  cfg.fault.sensor_fault_rate_per_day = 6.0;
  cfg.fault.sensor_fault_duration = minutes(30.0);
  cfg.fault.battery_noise_per_day = 0.05;
  cfg.fault.request_loss_prob = 0.3;
  cfg.fault.request_delay_prob = 0.3;

  const FaultPlan a(cfg);
  const FaultPlan b(cfg);
  for (std::size_t r = 0; r < cfg.num_rvs; ++r) {
    ASSERT_EQ(a.rv_breakdowns(r).size(), b.rv_breakdowns(r).size());
    for (std::size_t i = 0; i < a.rv_breakdowns(r).size(); ++i) {
      EXPECT_EQ(a.rv_breakdowns(r)[i].start, b.rv_breakdowns(r)[i].start);
      EXPECT_EQ(a.rv_breakdowns(r)[i].end, b.rv_breakdowns(r)[i].end);
    }
  }
  for (SensorId s = 0; s < cfg.num_sensors; ++s) {
    ASSERT_EQ(a.sensor_faults(s).size(), b.sensor_faults(s).size());
    EXPECT_EQ(a.extra_drain_w(s), b.extra_drain_w(s));
    for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
      const UplinkDecision da = a.uplink(s, attempt);
      const UplinkDecision db = b.uplink(s, attempt);
      EXPECT_EQ(da.outcome, db.outcome);
      EXPECT_EQ(da.delay_s, db.delay_s);
    }
  }
}

TEST(FaultPlan, UplinkVerdictIndependentOfQueryOrder) {
  SimConfig cfg = small_config();
  cfg.fault.request_loss_prob = 0.4;
  cfg.fault.request_delay_prob = 0.4;
  const FaultPlan plan(cfg);

  // Query forward then backward: each (sensor, attempt) draws from its own
  // sub-stream, so the interleaving must not matter.
  std::vector<UplinkDecision> forward, backward;
  for (SensorId s = 0; s < cfg.num_sensors; ++s) {
    for (std::uint64_t a = 0; a < 3; ++a) forward.push_back(plan.uplink(s, a));
  }
  for (SensorId s = cfg.num_sensors; s-- > 0;) {
    for (std::uint64_t a = 3; a-- > 0;) backward.push_back(plan.uplink(s, a));
  }
  std::reverse(backward.begin(), backward.end());
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].outcome, backward[i].outcome) << i;
    EXPECT_EQ(forward[i].delay_s, backward[i].delay_s) << i;
  }
}

TEST(FaultPlan, ZeroRatesYieldNoWindowsAndAlwaysDeliver) {
  const SimConfig cfg = small_config();  // all fault rates default to 0
  const FaultPlan plan(cfg);
  for (std::size_t r = 0; r < cfg.num_rvs; ++r) {
    EXPECT_TRUE(plan.rv_breakdowns(r).empty());
  }
  for (SensorId s = 0; s < cfg.num_sensors; ++s) {
    EXPECT_TRUE(plan.sensor_faults(s).empty());
    EXPECT_EQ(plan.extra_drain_w(s), 0.0);
    EXPECT_EQ(plan.uplink(s, 0).outcome, UplinkOutcome::kDeliver);
  }
}

TEST(FaultPlan, PinnedBreakdownLandsOnRvZero) {
  SimConfig cfg = small_config();
  cfg.fault.rv_breakdown_at = hours(3.0);
  cfg.fault.rv_repair_duration = hours(2.0);
  const FaultPlan plan(cfg);
  ASSERT_EQ(plan.rv_breakdowns(0).size(), 1u);
  EXPECT_DOUBLE_EQ(plan.rv_breakdowns(0)[0].start, hours(3.0).value());
  EXPECT_DOUBLE_EQ(plan.rv_breakdowns(0)[0].end, hours(5.0).value());
  EXPECT_TRUE(plan.rv_breakdowns(1).empty());
}

TEST(FaultPlan, WindowsAreSortedDisjointAndClipped) {
  SimConfig cfg = small_config();
  cfg.sim_duration = days(4.0);
  cfg.fault.rv_mtbf_hours = 6.0;  // several breakdowns per RV expected
  cfg.fault.rv_repair_duration = hours(2.0);
  cfg.fault.sensor_fault_rate_per_day = 8.0;
  cfg.fault.sensor_fault_duration = hours(1.0);
  const FaultPlan plan(cfg);

  const double horizon = cfg.sim_duration.value();
  std::size_t total_windows = 0;
  auto check = [&](const std::vector<FaultWindow>& ws) {
    for (std::size_t i = 0; i < ws.size(); ++i) {
      EXPECT_LT(ws[i].start, ws[i].end);
      EXPECT_GE(ws[i].start, 0.0);
      EXPECT_LE(ws[i].end, horizon);
      if (i > 0) {
        EXPECT_GE(ws[i].start, ws[i - 1].end);
      }
      ++total_windows;
    }
  };
  for (std::size_t r = 0; r < cfg.num_rvs; ++r) check(plan.rv_breakdowns(r));
  for (SensorId s = 0; s < cfg.num_sensors; ++s) check(plan.sensor_faults(s));
  EXPECT_GT(total_windows, 0u);
}

TEST(FaultPlan, RetryDelayGrowsExponentially) {
  SimConfig cfg = small_config();
  cfg.fault.request_retry_timeout = minutes(10.0);
  cfg.fault.request_retry_backoff = 2.0;
  const FaultPlan plan(cfg);
  EXPECT_DOUBLE_EQ(plan.retry_delay_s(0), 600.0);
  EXPECT_DOUBLE_EQ(plan.retry_delay_s(1), 1200.0);
  EXPECT_DOUBLE_EQ(plan.retry_delay_s(3), 4800.0);
}

TEST(FaultPlan, ExtremeLossAndDelayProbabilities) {
  SimConfig cfg = small_config();
  cfg.fault.request_loss_prob = 1.0;
  for (SensorId s = 0; s < 10; ++s) {
    EXPECT_EQ(FaultPlan(cfg).uplink(s, 0).outcome, UplinkOutcome::kDrop);
  }
  cfg.fault.request_loss_prob = 0.0;
  cfg.fault.request_delay_prob = 1.0;
  cfg.fault.request_delay_max = minutes(20.0);
  const FaultPlan plan(cfg);
  for (SensorId s = 0; s < 10; ++s) {
    const UplinkDecision d = plan.uplink(s, 0);
    EXPECT_EQ(d.outcome, UplinkOutcome::kDelay);
    EXPECT_GE(d.delay_s, 0.0);
    EXPECT_LE(d.delay_s, minutes(20.0).value());
  }
}

TEST(FaultPlan, BatteryNoiseBoundedByConfiguredRate) {
  SimConfig cfg = small_config();
  cfg.fault.battery_noise_per_day = 0.1;
  const FaultPlan plan(cfg);
  const double max_w = 0.1 * cfg.battery.capacity.value() / 86400.0;
  bool any_positive = false;
  for (SensorId s = 0; s < cfg.num_sensors; ++s) {
    EXPECT_GE(plan.extra_drain_w(s), 0.0);
    EXPECT_LE(plan.extra_drain_w(s), max_w);
    any_positive = any_positive || plan.extra_drain_w(s) > 0.0;
  }
  EXPECT_TRUE(any_positive);
}

// --- World-level behaviors ------------------------------------------------

TEST(FaultWorld, TotalLossExpiresRequestsAfterMaxRetries) {
  SimConfig cfg = small_config();
  cfg.fault.request_loss_prob = 1.0;  // every attempt drops
  cfg.fault.request_max_retries = 2;
  cfg.fault.request_retry_timeout = minutes(5.0);
  World w(cfg);
  const MetricsReport r = w.run();
  // No request ever reaches the base station, so nothing is recharged and
  // every request eventually expires after 1 + max_retries drops.
  EXPECT_EQ(r.sensors_recharged, 0u);
  EXPECT_GT(r.requests_lost, 0u);
  EXPECT_GT(r.requests_expired, 0u);
  EXPECT_EQ(r.requests_lost, 3 * r.requests_expired);
  EXPECT_TRUE(w.recharge_list().empty());
}

TEST(FaultWorld, RetriesRecoverLostRequests) {
  SimConfig cfg = small_config();
  cfg.fault.request_loss_prob = 0.5;
  cfg.fault.request_retry_timeout = minutes(2.0);
  World w(cfg);
  const MetricsReport done = w.run();
  EXPECT_GT(done.requests_lost, 0u);
  EXPECT_GT(done.requests_retried, 0u);
  // With retries enabled most requests still get through eventually.
  EXPECT_GT(done.sensors_recharged, 0u);
}

TEST(FaultWorld, HardwareFaultsReduceCoverage) {
  SimConfig cfg = small_config();
  cfg.battery.capacity = Joule{5000.0};  // keep everyone alive; isolate faults
  SimConfig faulty = cfg;
  faulty.fault.sensor_fault_rate_per_day = 20.0;
  faulty.fault.sensor_fault_duration = hours(2.0);

  World base(cfg), with_faults(faulty);
  const MetricsReport rb = base.run();
  const MetricsReport rf = with_faults.run();
  EXPECT_EQ(rb.sensor_hw_faults, 0u);
  EXPECT_GT(rf.sensor_hw_faults, 0u);
  // Faulted sensors stop monitoring, so time-averaged coverage drops.
  EXPECT_LT(rf.coverage_ratio, rb.coverage_ratio);
  // Hardware faults do not kill sensors.
  EXPECT_EQ(rf.sensor_deaths, rb.sensor_deaths);
}

TEST(FaultWorld, BatteryNoiseDrainsFasterThanBaseline) {
  SimConfig cfg = small_config();
  SimConfig noisy = cfg;
  noisy.fault.battery_noise_per_day = 0.2;
  World base(cfg), with_noise(noisy);
  base.run();
  with_noise.run();
  EXPECT_GT(with_noise.sensor_energy_consumed().value(),
            base.sensor_energy_consumed().value());
}

TEST(FaultWorld, DisabledFaultsMatchNoFaultBlockBitForBit) {
  SimConfig cfg = small_config();
  cfg.fault.enabled = false;
  // A config with a populated-but-disabled fault block must be bit-identical
  // to one that never mentions faults.
  SimConfig loud = cfg;
  loud.fault.request_loss_prob = 0.9;
  loud.fault.rv_mtbf_hours = 1.0;
  loud.fault.sensor_fault_rate_per_day = 50.0;
  loud.fault.battery_noise_per_day = 0.5;

  World a(cfg), b(loud);
  const MetricsReport ra = a.run();
  const MetricsReport rb = b.run();
  EXPECT_EQ(to_json(ra), to_json(rb));
  for (SensorId s = 0; s < cfg.num_sensors; ++s) {
    ASSERT_EQ(a.network().sensor(s).battery.level().value(),
              b.network().sensor(s).battery.level().value());
  }
}

}  // namespace
}  // namespace wrsn
