#include <gtest/gtest.h>

#include "core/error.hpp"
#include "energy/battery.hpp"
#include "energy/charger.hpp"

namespace wrsn {
namespace {

TEST(Battery, StartsFullByDefault) {
  Battery b(Joule{100.0});
  EXPECT_DOUBLE_EQ(b.level().value(), 100.0);
  EXPECT_DOUBLE_EQ(b.capacity().value(), 100.0);
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
  EXPECT_DOUBLE_EQ(b.demand().value(), 0.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, PartialInitialLevel) {
  Battery b(Joule{100.0}, Joule{40.0});
  EXPECT_DOUBLE_EQ(b.fraction(), 0.4);
  EXPECT_DOUBLE_EQ(b.demand().value(), 60.0);
}

TEST(Battery, ConstructionValidation) {
  EXPECT_THROW(Battery(Joule{0.0}), InvalidArgument);
  EXPECT_THROW(Battery(Joule{-1.0}), InvalidArgument);
  EXPECT_THROW(Battery(Joule{10.0}, Joule{11.0}), InvalidArgument);
  EXPECT_THROW(Battery(Joule{10.0}, Joule{-1.0}), InvalidArgument);
}

TEST(Battery, DrainClampsAtZeroAndReportsDrawn) {
  Battery b(Joule{10.0});
  EXPECT_DOUBLE_EQ(b.drain(Joule{4.0}).value(), 4.0);
  EXPECT_DOUBLE_EQ(b.level().value(), 6.0);
  EXPECT_DOUBLE_EQ(b.drain(Joule{100.0}).value(), 6.0);  // clamped
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.drain(Joule{1.0}).value(), 0.0);
  EXPECT_THROW(b.drain(Joule{-1.0}), InvalidArgument);
}

TEST(Battery, ChargeClampsAtCapacity) {
  Battery b(Joule{10.0}, Joule{2.0});
  EXPECT_DOUBLE_EQ(b.charge(Joule{5.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ(b.level().value(), 7.0);
  EXPECT_DOUBLE_EQ(b.charge(Joule{100.0}).value(), 3.0);  // clamped
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
  EXPECT_THROW(b.charge(Joule{-0.5}), InvalidArgument);
}

TEST(Battery, Refill) {
  Battery b(Joule{10.0}, Joule{1.0});
  b.refill();
  EXPECT_DOUBLE_EQ(b.level().value(), 10.0);
}

TEST(Battery, TimeToReachClosedForm) {
  Battery b(Joule{100.0});
  const auto t = b.time_to_reach(Joule{50.0}, Watt{2.0});
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->value(), 25.0);
}

TEST(Battery, TimeToReachAtOrBelowIsZero) {
  Battery b(Joule{100.0}, Joule{30.0});
  const auto t = b.time_to_reach(Joule{50.0}, Watt{2.0});
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->value(), 0.0);
}

TEST(Battery, TimeToReachNoDrain) {
  Battery b(Joule{100.0});
  EXPECT_FALSE(b.time_to_reach(Joule{50.0}, Watt{0.0}).has_value());
  EXPECT_FALSE(b.time_to_reach(Joule{50.0}, Watt{-1.0}).has_value());
}

TEST(Battery, DrainThenCrossingConsistency) {
  // Drain at constant power for the predicted crossing time lands exactly on
  // the threshold (the invariant the DES depends on).
  Battery b(Joule{3240.0 * 2});
  const Watt p{0.0305};
  const auto t = b.time_to_reach(Joule{3240.0}, p);
  ASSERT_TRUE(t.has_value());
  b.drain(p * *t);
  EXPECT_NEAR(b.level().value(), 3240.0, 1e-9);
}

TEST(Charger, TransferTime) {
  Charger c(Watt{5.0});
  EXPECT_DOUBLE_EQ(c.transfer_time(Joule{50.0}).value(), 10.0);
  EXPECT_DOUBLE_EQ(c.transfer_time(Joule{0.0}).value(), 0.0);
  EXPECT_THROW((void)c.transfer_time(Joule{-1.0}), InvalidArgument);
  EXPECT_THROW(Charger(Watt{0.0}), InvalidArgument);
}

TEST(Charger, DeliverBoundedByBudgetAndHeadroom) {
  Charger c(Watt{5.0});
  Battery sink(Joule{100.0}, Joule{80.0});
  EXPECT_DOUBLE_EQ(c.deliver(sink, Joule{50.0}).value(), 20.0);  // headroom caps
  EXPECT_DOUBLE_EQ(sink.fraction(), 1.0);

  Battery sink2(Joule{100.0}, Joule{10.0});
  EXPECT_DOUBLE_EQ(c.deliver(sink2, Joule{30.0}).value(), 30.0);  // budget caps
  EXPECT_DOUBLE_EQ(sink2.level().value(), 40.0);
}

TEST(Charger, DeliverFull) {
  Charger c(Watt{5.0});
  Battery sink(Joule{100.0}, Joule{25.0});
  EXPECT_DOUBLE_EQ(c.deliver_full(sink).value(), 75.0);
  EXPECT_DOUBLE_EQ(sink.fraction(), 1.0);
}

TEST(Traction, EnergyAndTime) {
  Traction t{JoulePerMeter{5.6}, MeterPerSecond{1.0}};
  EXPECT_DOUBLE_EQ(t.energy(Meter{100.0}).value(), 560.0);
  EXPECT_DOUBLE_EQ(t.time(Meter{100.0}).value(), 100.0);
}

}  // namespace
}  // namespace wrsn
